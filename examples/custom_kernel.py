#!/usr/bin/env python3
"""Bring your own kernel: write a program, wrap it as an App, harden it.

Shows the extension path a downstream user takes to protect code the
library does not ship: implement a stencil kernel against the Builder API,
give it an input specification, and run the whole MINPSID pipeline on it —
no changes to the library required.

Run: ``python examples/custom_kernel.py``
"""

from repro import MINPSIDConfig, minpsid
from repro.apps.base import App, ArgSpec, InputSpec
from repro.ir import F64, I64, VOID, Builder, Module
from repro.minpsid.ga import GAConfig
from repro.minpsid.search import InputSearchConfig


class HeatStencilApp(App):
    """1-D explicit heat diffusion: u[i] += alpha*(u[i-1] - 2u[i] + u[i+1]).

    The boundary comparisons and the magnitude of ``alpha`` make error
    propagation input-dependent — exactly the behaviour SID cares about.
    """

    name = "heat-stencil"
    suite = "custom"
    description = "Explicit 1-D heat diffusion with Dirichlet boundaries"
    rel_tol = 1e-9
    abs_tol = 1e-12

    SIZE = 64

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("n", "int", 8, 48),
                ArgSpec("steps", "int", 2, 12),
                ArgSpec("alpha", "float", 0.05, 0.45),
                ArgSpec("amplitude", "float", 0.1, 30.0),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {"n": 24, "steps": 6, "alpha": 0.2, "amplitude": 1.0, "seed": 8}

    def encode(self, inp):
        n = int(inp["n"])
        rng = self.data_rng(inp, n)
        amp = float(inp["amplitude"])
        u0 = [rng.uniform(0.0, amp) for _ in range(n)]
        return [n, int(inp["steps"]), float(inp["alpha"])], {"u": u0}

    def build_module(self) -> Module:
        m = Module(self.name)
        u = m.add_global("u", F64, self.SIZE)
        nxt = m.add_global("next", F64, self.SIZE)
        b = Builder.new_function(
            m, "main", [("n", I64), ("steps", I64), ("alpha", F64)], VOID
        )
        n = b.function.arg("n")
        steps = b.function.arg("steps")
        alpha = b.function.arg("alpha")
        one = b.i64(1)
        last = b.sub(n, one)
        two = b.f64(2.0)
        with b.for_loop(b.i64(0), steps, hint="t") as _:
            with b.for_loop(one, last, hint="i") as i:
                left = b.load(b.gep(u, b.sub(i, one)), F64)
                mid = b.load(b.gep(u, i), F64)
                right = b.load(b.gep(u, b.add(i, one)), F64)
                lap = b.fsub(b.fadd(left, right), b.fmul(two, mid))
                b.store(b.fadd(mid, b.fmul(alpha, lap)), b.gep(nxt, i))
            with b.for_loop(one, last, hint="c") as i:
                b.store(b.load(b.gep(nxt, i), F64), b.gep(u, i))
        total = b.local(F64, b.f64(0.0), hint="sum")
        with b.for_loop(b.i64(0), n, hint="o") as i:
            v = b.load(b.gep(u, i), F64)
            b.emit_output(v)
            b.set(total, b.fadd(b.get(total, F64), v))
        b.emit_output(b.get(total, F64))
        b.ret()
        return m


def main() -> None:
    app = HeatStencilApp()
    golden = app.run_reference()
    print(f"{app.name}: {app.module.instruction_count()} static instructions, "
          f"{golden.steps} dynamic on the reference input")
    print(f"total heat after diffusion: {golden.output[-1]:.4f}")

    res = minpsid(
        app,
        MINPSIDConfig(
            protection_level=0.5,
            per_instruction_trials=8,
            search=InputSearchConfig(
                max_inputs=4,
                stall_limit=2,
                per_instruction_trials=5,
                ga=GAConfig(population_size=5, max_generations=3),
            ),
        ),
    )
    print(f"\nMINPSID hardened the kernel:")
    print(f"  searched inputs:        {len(res.search.inputs) - 1}")
    print(f"  incubative found:       {len(res.incubative)}")
    print(f"  instructions protected: {len(res.selection.selected)}")
    print(f"  expected coverage:      {res.expected_coverage:.1%}")
    print(f"  one-time cost:          {res.stopwatch.total():.1f}s")


if __name__ == "__main__":
    main()
