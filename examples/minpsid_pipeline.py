#!/usr/bin/env python3
"""Run the full MINPSID pipeline on a benchmark and compare with classic SID.

Demonstrates the paper's complete workflow (Fig. 4): reference-input
profiling, GA input search with the weighted-CFG fitness, incubative
identification, re-prioritization, selection, duplication — then a
side-by-side coverage evaluation against the SID baseline across fresh
random inputs, plus the Fig. 8-style time breakdown.

Run: ``python examples/minpsid_pipeline.py [app-name]``
"""

import sys

from repro import (
    MINPSIDConfig,
    SIDConfig,
    classic_sid,
    get_app,
    minpsid,
    run_campaign,
)
from repro.exp.runner import generate_eval_inputs
from repro.ir.printer import format_instruction
from repro.minpsid.ga import GAConfig
from repro.minpsid.search import InputSearchConfig
from repro.sid.coverage import measured_coverage
from repro.vm import Program


def main(app_name: str = "fft") -> None:
    app = get_app(app_name)
    print(f"Benchmark: {app.name} — {app.description}")
    level = 0.5

    # --- MINPSID --------------------------------------------------------
    cfg = MINPSIDConfig(
        protection_level=level,
        per_instruction_trials=10,
        search=InputSearchConfig(
            max_inputs=5,
            stall_limit=2,
            per_instruction_trials=6,
            ga=GAConfig(population_size=6, max_generations=4),
        ),
    )
    res = minpsid(app, cfg)
    print(f"\nMINPSID searched {len(res.search.inputs) - 1} inputs "
          f"(fitness trace: {[round(f, 1) for f in res.search.fitness_trace]})")
    print(f"incubative instructions found: {len(res.incubative)} "
          f"(trace per input: {res.search.trace})")
    for iid in sorted(res.incubative)[:5]:
        print(f"  e.g. {format_instruction(app.module.instruction(iid))}")
    print(f"expected coverage (conservative): {res.expected_coverage:.1%}")
    print("time breakdown (Fig. 8 shape):")
    for phase, seconds in res.stopwatch.totals.items():
        print(f"  {phase:26s} {seconds:7.2f}s "
              f"({res.stopwatch.fractions().get(phase, 0):.0%})")

    # --- Baseline SID ----------------------------------------------------
    args, bindings = app.encode(app.reference_input)
    sid = classic_sid(
        app.module, args, bindings,
        SIDConfig(protection_level=level, per_instruction_trials=10,
                  rel_tol=app.rel_tol, abs_tol=app.abs_tol),
    )
    print(f"\nbaseline SID expected coverage: {sid.expected_coverage:.1%}")

    # --- Head-to-head across fresh inputs --------------------------------
    p_sid = Program(sid.protected.module)
    p_min = Program(res.protected.module)
    inputs = generate_eval_inputs(app, 6, seed=777)
    print("\nper-input coverage (SID vs MINPSID):")
    worst_sid, worst_min = 1.0, 1.0
    for k, inp in enumerate(inputs):
        a, b = app.encode(inp)
        pu = run_campaign(app.program, 150, seed=3 * k, args=a, bindings=b,
                          rel_tol=app.rel_tol, abs_tol=app.abs_tol).sdc_probability
        ps = run_campaign(p_sid, 150, seed=3 * k + 1, args=a, bindings=b,
                          rel_tol=app.rel_tol, abs_tol=app.abs_tol).sdc_probability
        pm = run_campaign(p_min, 150, seed=3 * k + 2, args=a, bindings=b,
                          rel_tol=app.rel_tol, abs_tol=app.abs_tol).sdc_probability
        cs, cm = measured_coverage(pu, ps), measured_coverage(pu, pm)
        if cs is None or cm is None:
            continue
        worst_sid, worst_min = min(worst_sid, cs), min(worst_min, cm)
        print(f"  input {k}: SID {cs:6.1%}   MINPSID {cm:6.1%}")
    print(f"\nminimum coverage: SID {worst_sid:.1%} vs MINPSID {worst_min:.1%}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "fft")
