#!/usr/bin/env python3
"""Visualize the GA input search vs random search (Fig. 7).

Shows how the weighted-CFG fitness steers the genetic algorithm toward
inputs that exercise new execution paths, and how many incubative
instructions each strategy uncovers per searched input.

Run: ``python examples/input_search_demo.py [app-name]``
"""

import sys

import numpy as np

from repro import get_app, run_per_instruction_campaign
from repro.minpsid.ga import GAConfig
from repro.minpsid.search import InputSearchConfig, run_input_search
from repro.minpsid.wcfg import indexed_cfg_list
from repro.sid.profiles import build_cost_benefit_profile
from repro.vm import profile_run


def reference_benefits(app):
    args, bindings = app.encode(app.reference_input)
    prof = profile_run(app.program, args=args, bindings=bindings)
    fi = run_per_instruction_campaign(
        app.program, 8, seed=11, args=args, bindings=bindings, profile=prof,
        rel_tol=app.rel_tol, abs_tol=app.abs_tol,
    )
    return build_cost_benefit_profile(app.module, prof, fi).benefit


def ascii_series(trace, width=40):
    peak = max(max(trace), 1)
    return [
        f"  after input {i:2d}: {'#' * int(round(width * v / peak)):<{width}} {v}"
        for i, v in enumerate(trace)
    ]


def main(app_name: str = "kmeans") -> None:
    app = get_app(app_name)
    print(f"Benchmark: {app.name} — static CFG has "
          f"{app.program.cfg.num_blocks} basic blocks")

    # Show the weighted CFG of two different inputs.
    ref_args, ref_bind = app.encode(app.reference_input)
    ref_list = indexed_cfg_list(
        app.program, profile_run(app.program, args=ref_args, bindings=ref_bind)
    )
    from repro.util.rng import RngStream

    other = app.random_input(RngStream(5))
    o_args, o_bind = app.encode(other)
    other_list = indexed_cfg_list(
        app.program, profile_run(app.program, args=o_args, bindings=o_bind)
    )
    dist = float(np.sqrt(((ref_list - other_list) ** 2).sum()))
    print(f"indexed-CFG-list distance between reference and a random input: "
          f"{dist:.1f}")

    ref = reference_benefits(app)
    budget = 6
    for strategy in ("ga", "random"):
        cfg = InputSearchConfig(
            max_inputs=budget,
            stall_limit=budget,  # fixed budget for an apples-to-apples plot
            per_instruction_trials=5,
            ga=GAConfig(population_size=6, max_generations=3),
            strategy=strategy,
        )
        out = run_input_search(app, ref, seed=42, config=cfg)
        label = "weighted-CFG GA" if strategy == "ga" else "random searcher"
        print(f"\n{label}: {len(out.incubative)} incubative instructions, "
              f"{out.fi_runs} FI runs")
        print("\n".join(ascii_series(out.trace)))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "kmeans")
