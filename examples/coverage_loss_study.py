#!/usr/bin/env python3
"""Reproduce the paper's core observation on one benchmark.

Protects Kmeans (the paper's most extreme case) with classic SID using its
reference input, then measures SDC coverage across random inputs — showing
the loss-of-coverage phenomenon of Fig. 2 — and prints which instructions
turned out to be incubative (§IV).

Run: ``python examples/coverage_loss_study.py [app-name]``
"""

import sys

from repro import SIDConfig, classic_sid, get_app, run_campaign
from repro.exp.runner import generate_eval_inputs
from repro.ir.printer import format_instruction
from repro.sid.coverage import measured_coverage
from repro.util.tables import render_candlestick_row
from repro.vm import Program


def main(app_name: str = "kmeans") -> None:
    app = get_app(app_name)
    print(f"Benchmark: {app.name} ({app.suite}) — {app.description}")
    args, bindings = app.encode(app.reference_input)

    level = 0.5
    sid = classic_sid(
        app.module, args, bindings,
        SIDConfig(
            protection_level=level,
            per_instruction_trials=10,
            rel_tol=app.rel_tol,
            abs_tol=app.abs_tol,
        ),
    )
    print(
        f"SID @{level:.0%}: {len(sid.selection.selected)} instructions "
        f"protected, expected coverage {sid.expected_coverage:.1%}"
    )

    protected = Program(sid.protected.module)
    inputs = generate_eval_inputs(app, 8, seed=1234)
    coverages = []
    print("\nper-input measured coverage:")
    for k, inp in enumerate(inputs):
        a, b = app.encode(inp)
        pu = run_campaign(
            app.program, 150, seed=2 * k, args=a, bindings=b,
            rel_tol=app.rel_tol, abs_tol=app.abs_tol,
        ).sdc_probability
        pp = run_campaign(
            protected, 150, seed=2 * k + 1, args=a, bindings=b,
            rel_tol=app.rel_tol, abs_tol=app.abs_tol,
        ).sdc_probability
        cov = measured_coverage(pu, pp)
        if cov is None:
            print(f"  input {k}: no SDC evidence (unprotected SDC prob 0)")
            continue
        coverages.append(cov)
        flag = "  <-- LOSS" if cov < sid.expected_coverage else ""
        print(f"  input {k}: coverage {cov:.1%}{flag}")

    if coverages:
        cov_sorted = sorted(coverages)
        mid = cov_sorted[len(cov_sorted) // 2]
        print("\n" + render_candlestick_row(
            f"{app.name}@{level:.0%}",
            min(coverages), cov_sorted[len(cov_sorted) // 4], mid,
            cov_sorted[3 * len(cov_sorted) // 4], max(coverages),
            expected=sid.expected_coverage,
        ))
        losses = sum(1 for c in coverages if c < sid.expected_coverage)
        print(f"coverage-loss inputs: {losses}/{len(coverages)}")

    # Which unprotected instructions caused SDCs on the worst input?
    worst = min(
        range(len(coverages)), key=lambda i: coverages[i]
    ) if coverages else 0
    a, b = app.encode(inputs[worst])
    camp = run_campaign(
        protected, 200, seed=999, args=a, bindings=b,
        rel_tol=app.rel_tol, abs_tol=app.abs_tol,
    )
    origins = {}
    for iid, outcome in camp.per_fault:
        if outcome.value == "sdc":
            origin = sid.protected.origin_of(iid)
            if origin is not None:
                origins[origin] = origins.get(origin, 0) + 1
    print(f"\ninstructions still causing SDCs on the worst input (top 5):")
    for origin, count in sorted(origins.items(), key=lambda kv: -kv[1])[:5]:
        instr = app.module.instruction(origin)
        protected_mark = "protected" if origin in sid.selection.selected else "UNPROTECTED"
        print(f"  [{count:3d} SDCs] ({protected_mark}) {format_instruction(instr)}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "kmeans")
