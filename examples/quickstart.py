#!/usr/bin/env python3
"""Quickstart: protect a program with SID and watch a fault get caught.

Walks the whole vocabulary of the library on a small kernel:

1. build an IR program with the Builder API,
2. run it and profile its dynamic behaviour,
3. measure per-instruction SDC probabilities by fault injection,
4. select + duplicate instructions at a 50% protection level,
5. inject faults into the protected binary and compare outcomes.

Run: ``python examples/quickstart.py``
"""

from repro.fi import Outcome, run_campaign
from repro.ir import F64, I64, VOID, Builder, Module, print_module
from repro.sid import SIDConfig, classic_sid
from repro.vm import Program, profile_run


def build_dot_product() -> Module:
    """dot(a, b) over two global arrays, emitting the scalar result."""
    m = Module("dot")
    a = m.add_global("a", F64, 64)
    b_arr = m.add_global("b", F64, 64)
    b = Builder.new_function(m, "main", [("n", I64)], VOID)
    acc = b.local(F64, b.f64(0.0), hint="acc")
    with b.for_loop(b.i64(0), b.function.arg("n")) as i:
        x = b.load(b.gep(a, i), F64)
        y = b.load(b.gep(b_arr, i), F64)
        b.set(acc, b.fadd(b.get(acc, F64), b.fmul(x, y)))
    b.emit_output(b.get(acc, F64))
    b.ret()
    return m.finalize()


def main() -> None:
    module = build_dot_product()
    print("=== The program (textual IR) ===")
    print(print_module(module))

    n = 32
    bindings = {
        "a": [0.5 + 0.01 * i for i in range(n)],
        "b": [1.0 - 0.02 * i for i in range(n)],
    }
    program = Program(module)

    golden = program.run(args=[n], bindings=bindings)
    print(f"golden output: {golden.output[0]:.6f} "
          f"({golden.steps} dynamic instructions)")

    profile = profile_run(program, args=[n], bindings=bindings)
    print(f"total dynamic cycles: {profile.total_cycles}")

    # Unprotected: how often does a random bit flip silently corrupt us?
    base = run_campaign(program, 300, seed=1, args=[n], bindings=bindings)
    print(f"\nunprotected outcomes: {base.counts!r}")
    print(f"unprotected SDC probability: {base.sdc_probability:.1%}")

    # Classic SID at a 50% dynamic-cycle budget.
    result = classic_sid(
        module, [n], bindings,
        SIDConfig(protection_level=0.5, per_instruction_trials=20),
    )
    sel = result.selection
    print(f"\nSID selected {len(sel.selected)} instructions "
          f"({sel.used_budget:.1%} of cycles), expected coverage "
          f"{result.expected_coverage:.1%}")

    protected = Program(result.protected.module)
    prot = run_campaign(protected, 300, seed=2, args=[n], bindings=bindings)
    print(f"protected outcomes:  {prot.counts!r}")
    print(f"protected SDC probability: {prot.sdc_probability:.1%}")
    detected = prot.counts.counts[Outcome.DETECTED]
    print(f"duplication checks caught {detected} faults at runtime")
    measured = 1 - prot.sdc_probability / base.sdc_probability
    print(f"measured SDC coverage on this input: {measured:.1%}")


if __name__ == "__main__":
    main()
