"""Smoke tests: the example scripts and the experiment runner stay importable
and their entry points run at micro scale.

Full example runs take minutes; these tests execute the cheap paths (module
import, argument parsing, tiny harness invocations) so refactors cannot
silently break the documented entry points.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def load_script(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "coverage_loss_study",
            "minpsid_pipeline",
            "input_search_demo",
            "custom_kernel",
        ],
    )
    def test_example_loads_and_has_main(self, name):
        mod = load_script(ROOT / "examples" / f"{name}.py")
        assert callable(mod.main)


class TestCustomKernelApp:
    def test_heat_stencil_is_a_valid_app(self):
        mod = load_script(ROOT / "examples" / "custom_kernel.py")
        app = mod.HeatStencilApp()
        r = app.run_reference()
        assert r.output
        # Conservation sanity: interior diffusion with fixed boundaries keeps
        # values within the initial range.
        assert all(v == v for v in r.output)  # no NaN

    def test_heat_stencil_matches_numpy(self):
        import numpy as np

        mod = load_script(ROOT / "examples" / "custom_kernel.py")
        app = mod.HeatStencilApp()
        inp = app.reference_input
        args, bindings = app.encode(inp)
        n, steps, alpha = args
        u = np.array(bindings["u"][:n])
        for _ in range(steps):
            nxt = u.copy()
            nxt[1:-1] = u[1:-1] + alpha * (u[:-2] - 2 * u[1:-1] + u[2:])
            u = nxt
        got = app.run_reference().output
        assert got[:n] == pytest.approx(list(u), rel=1e-9)


class TestRunExperimentsScript:
    def test_cli_parses_and_runs_micro(self, tmp_path):
        script = load_script(ROOT / "scripts" / "run_experiments.py")
        rc = script.main(
            [
                "--scale", "tiny",
                "--out", str(tmp_path),
                "--apps", "pathfinder",
                "--skip", "fig3", "fig7", "fig8", "fig9", "mt",
            ]
        )
        assert rc == 0
        for artifact in ("table1", "fig2", "table2", "fig6", "table3",
                         "overhead", "fleet", "summary"):
            assert (tmp_path / f"{artifact}.txt").exists(), artifact
        assert (tmp_path / "fig2.json").exists()

    def test_one_failing_study_does_not_sink_the_batch(
        self, tmp_path, monkeypatch, capsys
    ):
        """Per-figure isolation: fig2 dies, fig6 still runs, exit is 1."""
        script = load_script(ROOT / "scripts" / "run_experiments.py")

        def explode(*a, **kw):
            raise RuntimeError("injected study failure")

        monkeypatch.setattr(script, "run_fig2_study", explode)
        rc = script.main(
            [
                "--scale", "tiny",
                "--out", str(tmp_path),
                "--apps", "pathfinder",
                "--skip", "fig3", "fig7", "fig8", "fig9", "mt",
            ]
        )
        assert rc == 1
        # The failing figure's artifacts are absent...
        assert not (tmp_path / "fig2.txt").exists()
        # ...but the rest of the batch still ran to completion.
        for artifact in ("table1", "fig6", "table3"):
            assert (tmp_path / f"{artifact}.txt").exists(), artifact
        err = capsys.readouterr().err
        assert "1 experiment(s) failed" in err
        assert "fig2: RuntimeError: injected study failure" in err
