"""Semantic validation: each IR kernel vs an independent Python reference.

These tests re-implement every benchmark's algorithm in plain Python/NumPy
and check the IR program computes the same result on the reference input and
on random inputs — the strongest evidence the IR kernels are faithful.
"""

import math

import numpy as np
import pytest

from repro.util.rng import RngStream
from tests.conftest import cached_app


def run_app(name, inp):
    app = cached_app(name)
    args, bindings = app.encode(inp)
    return app, app.program.run(args=args, bindings=bindings), args, bindings


def random_inputs(name, count=3, seed=1234):
    app = cached_app(name)
    rng = RngStream(seed, name)
    return [app.reference_input] + [
        app.random_input(rng.child(t)) for t in range(count)
    ]


class TestPathfinder:
    @pytest.mark.parametrize("inp", random_inputs("pathfinder"))
    def test_dp_matches(self, inp):
        app, r, args, bindings = run_app("pathfinder", inp)
        rows, cols = args
        grid = np.array(bindings["grid"]).reshape(rows, cols)
        src = grid[0].copy()
        for i in range(1, rows):
            dst = np.empty_like(src)
            for j in range(cols):
                best = src[j]
                if j > 0:
                    best = min(best, src[j - 1])
                if j < cols - 1:
                    best = min(best, src[j + 1])
                dst[j] = grid[i, j] + best
            src = dst
        expect = list(src) + [int(src.min())]
        assert r.output == [int(v) for v in expect]


class TestKnn:
    @pytest.mark.parametrize("inp", random_inputs("knn"))
    def test_nearest_neighbours(self, inp):
        app, r, args, bindings = run_app("knn", inp)
        n, k, qx, qy = args
        px, py = np.array(bindings["px"]), np.array(bindings["py"])
        d2 = (px - qx) ** 2 + (py - qy) ** 2
        order = np.argsort(d2, kind="stable")[:k]
        got_idx = [int(v) for v in r.output[0::2]]
        got_d = [float(v) for v in r.output[1::2]]
        assert sorted(got_idx) == sorted(int(i) for i in order) or (
            # ties can reorder; distances must match regardless
            got_d == pytest.approx(sorted(d2)[:k])
        )
        assert got_d == pytest.approx(list(np.sort(d2)[:k]))


class TestBfs:
    @pytest.mark.parametrize("inp", random_inputs("bfs"))
    def test_depths_match(self, inp):
        app, r, args, bindings = run_app("bfs", inp)
        n, src = args
        row_off, cols = bindings["row_off"], bindings["cols"]
        depth = [-1] * n
        depth[src] = 0
        queue = [src]
        while queue:
            u = queue.pop(0)
            for e in range(row_off[u], row_off[u + 1]):
                v = cols[e]
                if depth[v] == -1:
                    depth[v] = depth[u] + 1
                    queue.append(v)
        assert r.output == depth


class TestNeedle:
    @pytest.mark.parametrize("inp", random_inputs("needle"))
    def test_alignment_score(self, inp):
        app, r, args, bindings = run_app("needle", inp)
        l1, l2, pen, ma, mi = args
        s1, s2 = bindings["seq1"], bindings["seq2"]
        score = np.zeros((l1 + 1, l2 + 1), dtype=np.int64)
        for j in range(1, l2 + 1):
            score[0, j] = -pen * j
        for i in range(1, l1 + 1):
            score[i, 0] = -pen * i
        for i in range(1, l1 + 1):
            for j in range(1, l2 + 1):
                sub = ma if s1[i - 1] == s2[j - 1] else -mi
                score[i, j] = max(
                    score[i - 1, j - 1] + sub,
                    score[i - 1, j] - pen,
                    score[i, j - 1] - pen,
                )
        assert r.output[0] == int(score[l1, l2])
        assert r.output[1:] == [int(v) for v in score[l1, : l2 + 1]]


class TestLu:
    @pytest.mark.parametrize("inp", random_inputs("lu"))
    def test_decomposition(self, inp):
        app, r, args, bindings = run_app("lu", inp)
        n = args[0]
        a = np.array(bindings["a"], dtype=np.float64).reshape(n, n)
        lu = a.copy()
        for k in range(n):
            for i in range(k + 1, n):
                f = lu[i, k] / lu[k, k]
                lu[i, k] = f
                lu[i, k + 1:] -= f * lu[k, k + 1:]
        diag = [lu[i, i] for i in range(n)]
        assert r.output[:n] == pytest.approx(diag, rel=1e-9)
        assert r.output[n] == pytest.approx(float(np.prod(diag)), rel=1e-9)
        assert r.output[n + 1] == pytest.approx(float(np.abs(lu).sum()), rel=1e-9)

    def test_lu_reconstructs_matrix(self):
        """L @ U == A — the decomposition is actually correct."""
        app, r, args, bindings = run_app("lu", cached_app("lu").reference_input)
        n = args[0]
        a = np.array(bindings["a"]).reshape(n, n)
        lu = a.copy()
        for k in range(n):
            for i in range(k + 1, n):
                f = lu[i, k] / lu[k, k]
                lu[i, k] = f
                lu[i, k + 1:] -= f * lu[k, k + 1:]
        L = np.tril(lu, -1) + np.eye(n)
        U = np.triu(lu)
        assert np.allclose(L @ U, a)


class TestKmeans:
    @pytest.mark.parametrize("inp", random_inputs("kmeans"))
    def test_lloyd_iterations(self, inp):
        app, r, args, bindings = run_app("kmeans", inp)
        n, k, iters = args
        px = np.array(bindings["px"][:n])
        py = np.array(bindings["py"][:n])
        cx = np.array(bindings["cx"][:k], dtype=np.float64)
        cy = np.array(bindings["cy"][:k], dtype=np.float64)
        member = np.zeros(n, dtype=int)
        for _ in range(iters):
            d = (px[:, None] - cx[None, :]) ** 2 + (py[:, None] - cy[None, :]) ** 2
            member = d.argmin(axis=1)
            for c in range(k):
                sel = member == c
                if sel.any():
                    cx[c] = px[sel].mean()
                    cy[c] = py[sel].mean()
        expect = []
        counts = np.bincount(member, minlength=k)
        for c in range(k):
            expect += [cx[c], cy[c], int(counts[c])]
        expect.append(int(np.sum(member * (np.arange(n) + 1))))
        got = r.output
        assert len(got) == len(expect)
        for g, e in zip(got, expect):
            if isinstance(e, int):
                assert g == e
            else:
                assert g == pytest.approx(e, rel=1e-9, abs=1e-12)


class TestFft:
    @pytest.mark.parametrize("inp", random_inputs("fft"))
    def test_matches_numpy_fft(self, inp):
        app, r, args, bindings = run_app("fft", inp)
        n = args[0]
        x = np.array(bindings["re"][:n]) + 1j * np.array(bindings["im"][:n])
        expect = np.fft.fft(x)
        got = np.array(r.output[:-1:2]) + 1j * np.array(r.output[1:-1:2])
        assert np.allclose(got, expect, rtol=1e-9, atol=1e-9)
        power = float((np.abs(got) ** 2).sum())
        assert r.output[-1] == pytest.approx(power, rel=1e-9)


class TestHpccg:
    @pytest.mark.parametrize("inp", random_inputs("hpccg"))
    def test_cg_iterations(self, inp):
        app, r, args, bindings = run_app("hpccg", inp)
        n, iters = args
        row_off, cols, vals = bindings["row_off"], bindings["cols"], bindings["vals"]
        A = np.zeros((n, n))
        for row in range(n):
            for e in range(row_off[row], row_off[row + 1]):
                A[row, cols[e]] = vals[e]
        b = np.array(bindings["rhs"][:n])
        x = np.zeros(n)
        rres = b.copy()
        p = b.copy()
        rt = float(rres @ rres)
        norms = []
        for _ in range(iters):
            Ap = A @ p
            denom = float(p @ Ap)
            if denom != 0.0:
                alpha = rt / denom
                x += alpha * p
                rres -= alpha * Ap
                new_rt = float(rres @ rres)
                beta = new_rt / rt
                rt = new_rt
                p = rres + beta * p
            norms.append(math.sqrt(rt))
        assert r.output[:iters] == pytest.approx(norms, rel=1e-8, abs=1e-10)
        assert r.output[iters] == pytest.approx(float(x.sum()), rel=1e-8, abs=1e-10)

    def test_cg_converges(self):
        """Residual norms must decrease — CG actually solves the system."""
        app, r, args, _ = run_app("hpccg", cached_app("hpccg").reference_input)
        iters = args[1]
        norms = r.output[:iters]
        assert norms[-1] < norms[0]


class TestXsbench:
    @pytest.mark.parametrize("inp", random_inputs("xsbench"))
    def test_lookup_accumulation(self, inp):
        app, r, args, bindings = run_app("xsbench", inp)
        g, nuc, lookups, seed = args
        egrid = bindings["egrid"]
        xs = bindings["xs"]
        LCG_A = 6364136223846793005
        LCG_C = 1442695040888963407
        MASK62 = (1 << 62) - 1
        M64 = (1 << 64) - 1
        state = seed
        total = 0.0
        outs = []
        for _ in range(lookups):
            state = (state * LCG_A + LCG_C) & M64
            frac = state & MASK62
            # The IR treats the masked value as signed, but bit 62/63 are
            # cleared by the mask so it is always non-negative.
            e = float(frac) * (1.0 / float(1 << 62))
            lo, hi = 0, g - 1
            while lo + 1 < hi:
                mid = (lo + hi) // 2
                if egrid[mid] < e:
                    lo = mid
                else:
                    hi = mid
            e0, e1 = egrid[lo], egrid[lo + 1]
            f = (e - e0) / (e1 - e0)
            f = min(1.0, max(0.0, f))
            macro = 0.0
            for nn in range(nuc):
                x0 = xs[nn * g + lo]
                x1 = xs[nn * g + lo + 1]
                macro += x0 + f * (x1 - x0)
            outs.append(macro)
            total += macro
        assert r.output[:-1] == pytest.approx(outs, rel=1e-9)
        assert r.output[-1] == pytest.approx(total, rel=1e-9)


class TestBackprop:
    @pytest.mark.parametrize("inp", random_inputs("backprop"))
    def test_forward_backward(self, inp):
        app, r, args, bindings = run_app("backprop", inp)
        n_in, n_hid, lr, target = args
        x = np.array(bindings["x"][:n_in])
        w1 = np.array(bindings["w1"][: n_in * n_hid]).reshape(n_hid, n_in)
        w2 = np.array(bindings["w2"][:n_hid])

        def sigmoid(z):
            return 1.0 / (1.0 + np.exp(-z))

        hid = sigmoid(w1 @ x)
        out = float(sigmoid(w2 @ hid))
        err = target - out
        dout = err * out * (1 - out)
        dhid = dout * w2 * hid * (1 - hid)
        w2_new = w2 + lr * dout * hid
        w1_new = w1 + lr * np.outer(dhid, x)
        assert r.output[0] == pytest.approx(out, rel=1e-9)
        assert r.output[1] == pytest.approx(err, rel=1e-9)
        assert r.output[2] == pytest.approx(float(w2_new.sum()), rel=1e-9)
        assert r.output[3] == pytest.approx(float(w1_new.sum()), rel=1e-8)


class TestParticlefilter:
    @pytest.mark.parametrize("inp", random_inputs("particlefilter"))
    def test_estimates(self, inp):
        app, r, args, bindings = run_app("particlefilter", inp)
        n, steps, vel, obs_noise = args
        xs = np.array(bindings["xs"][:n], dtype=np.float64)
        noise = bindings["noise"]
        obs = bindings["obs"]
        us = bindings["resample_u"]
        var = obs_noise * obs_noise
        estimates = []
        for t in range(steps):
            xs = xs + vel + np.array(noise[t * n : (t + 1) * n])
            w = np.exp(-0.5 * (xs - obs[t]) ** 2 / var)
            total = float(w.sum())
            if total <= 0.0:
                cdf = np.cumsum(np.full(n, 1.0 / n))
            else:
                cdf = np.cumsum(w / total)
            newx = np.empty_like(xs)
            for j in range(n):
                u = us[t] + j / n
                idx = 0
                while idx < n - 1 and cdf[idx] < u:
                    idx += 1
                newx[j] = xs[idx]
            xs = newx
            estimates.append(float(xs.mean()))
        # Floating-point summation order differs (np.sum pairwise vs the
        # kernel's sequential adds), so compare with a modest tolerance.
        assert r.output == pytest.approx(estimates, rel=1e-6, abs=1e-9)
