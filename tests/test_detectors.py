"""Tests for the detector zoo: checkrange, transforms, optimizer, FI hooks."""

import math

import pytest

from repro.cache.active import cache_scope
from repro.detectors import (
    ChecksumDetector,
    DetectorContext,
    FrontierConfig,
    PlanAction,
    apply_plan,
    build_frontier,
    duplicate_instructions,
    frontier_detector_kinds,
    frontier_is_monotone,
    frontier_is_nondominated,
    gather_candidates,
    make_detectors,
    mine_value_profile,
    pareto_frontier,
    select_configuration,
)
from repro.errors import ConfigError, DetectedError
from repro.fi.campaign import (
    per_detector_detection,
    run_campaign,
    run_per_instruction_campaign,
)
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.obs import MemorySink
from repro.obs.core import session
from repro.sid.profiles import build_cost_benefit_profile
from repro.vm.interpreter import Program
from repro.vm.profiler import profile_run
from tests.conftest import build_sum_squares_module, cached_app

DATA = {"data": [float(i % 5) + 0.5 for i in range(32)]}


@pytest.fixture(scope="module")
def sumsq():
    m = build_sum_squares_module()
    return m, Program(m)


@pytest.fixture(scope="module")
def sumsq_ctx(sumsq):
    m, p = sumsq
    dyn = profile_run(p, args=[16], bindings=DATA)
    fi = run_per_instruction_campaign(
        p, 4, seed=7, args=[16], bindings=DATA, profile=dyn
    )
    prof = build_cost_benefit_profile(m, dyn, fi)
    return DetectorContext(program=p, profile=prof, args=[16], bindings=DATA)


def _fmul_iid(m):
    return next(i.iid for i in m.instructions() if i.opcode == "fmul")


class TestCheckrange:
    def test_golden_run_passes_inclusive_envelope(self, sumsq):
        m, p = sumsq
        prof = mine_value_profile(p, args=[16], bindings=DATA, cache=False)
        iid = _fmul_iid(m)
        rec = prof.record(iid)
        prot = apply_plan(
            m, {iid: PlanAction("range", lo=rec.vmin, hi=rec.vmax)}
        )
        golden = p.run(args=[16], bindings=DATA)
        run = Program(prot.module).run(args=[16], bindings=DATA)
        assert run.output == golden.output
        assert prot.range_checks == 1

    def test_out_of_range_value_traps(self, sumsq):
        m, _ = sumsq
        iid = _fmul_iid(m)
        prot = apply_plan(m, {iid: PlanAction("range", lo=-2.0, hi=-1.0)})
        with pytest.raises(DetectedError):
            Program(prot.module).run(args=[16], bindings=DATA)

    def test_nan_always_traps(self, sumsq):
        m, _ = sumsq
        iid = next(
            i.iid for i in m.instructions()
            if i.opcode == "load" and i.type.is_float
        )
        prot = apply_plan(
            m, {iid: PlanAction("range", lo=-1e308, hi=1e308)}
        )
        poisoned = {"data": [math.nan] + [1.0] * 31}
        with pytest.raises(DetectedError):
            Program(prot.module).run(args=[16], bindings=poisoned)

    def test_checkrange_survives_text_round_trip(self, sumsq):
        m, _ = sumsq
        iid = _fmul_iid(m)
        prot = apply_plan(m, {iid: PlanAction("range", lo=0.0, hi=100.0)})
        text = print_module(prot.module)
        assert "checkrange" in text
        reparsed = parse_module(text)
        run = Program(reparsed).run(args=[16], bindings=DATA)
        golden = Program(m).run(args=[16], bindings=DATA)
        assert run.output == golden.output

    def test_batch_engine_matches_scalar(self, sumsq):
        m, _ = sumsq
        prof = mine_value_profile(
            Program(m), args=[16], bindings=DATA, cache=False
        )
        plan = {
            iid: PlanAction("range", lo=r.vmin, hi=r.vmax)
            for iid, r in sorted(prof.records.items())
            if not r.nan_seen
            and (m.instruction(iid).type.is_int
                 or m.instruction(iid).type.is_float)
        }
        prot = Program(apply_plan(m, plan).module)
        scalar = run_campaign(
            prot, 40, seed=11, args=[16], bindings=DATA, engine="scalar"
        )
        batch = run_campaign(
            prot, 40, seed=11, args=[16], bindings=DATA, engine="batch"
        )
        assert scalar.counts.counts == batch.counts.counts


class TestDuplicationParity:
    """The Detector-interface transform is bit-identical to legacy SID."""

    def _selection(self, m):
        # Pointer producers (alloca/gep) are excluded: a duplicate
        # allocation is a *different* address, so its check would trap on
        # the golden run — in the legacy path and the plan path alike.
        iids = [
            i.iid for i in m.instructions()
            if i.produces_value and (i.type.is_int or i.type.is_float)
            and i.opcode != "gep"
        ]
        return iids[::3][:20]

    @pytest.mark.parametrize("name", [
        "backprop", "bfs", "fft", "hpccg", "kmeans", "knn", "lu",
        "needle", "particlefilter", "pathfinder", "xsbench",
    ])
    def test_plan_path_matches_legacy_text(self, name):
        app = cached_app(name)
        m = app.module
        sel = self._selection(m)
        legacy = duplicate_instructions(m, sel, check_placement="sync")
        plan = {iid: PlanAction("dup", placement="sync") for iid in sel}
        via_plan = apply_plan(m, plan)
        assert print_module(via_plan.module) == print_module(legacy.module)
        assert via_plan.iid_map == legacy.iid_map
        assert via_plan.dup_map == legacy.dup_map
        assert via_plan.checks == legacy.checks

    def test_campaign_outcomes_identical(self, sumsq):
        m, _ = sumsq
        sel = self._selection(m)
        legacy = Program(duplicate_instructions(m, sel).module)
        plan = {iid: PlanAction("dup") for iid in sel}
        via_plan = Program(apply_plan(m, plan).module)
        a = run_campaign(legacy, 40, seed=3, args=[16], bindings=DATA)
        b = run_campaign(via_plan, 40, seed=3, args=[16], bindings=DATA)
        assert a.counts.counts == b.counts.counts


class TestValueProfile:
    def test_envelope_matches_data(self, sumsq):
        m, p = sumsq
        prof = mine_value_profile(p, args=[16], bindings=DATA, cache=False)
        iid = next(
            i.iid for i in m.instructions()
            if i.opcode == "load" and i.type.is_float
        )
        rec = prof.record(iid)
        assert rec.count == 16
        assert rec.vmin == min(DATA["data"][:16])
        assert rec.vmax == max(DATA["data"][:16])
        assert not rec.nan_seen
        assert not rec.all_integral  # values end in .5

    def test_warm_rebuild_from_cache(self, sumsq, tmp_path):
        _, p = sumsq
        sink = MemorySink()
        with cache_scope(tmp_path / "store"), session(sink=sink):
            cold = mine_value_profile(p, args=[16], bindings=DATA)
            warm = mine_value_profile(p, args=[16], bindings=DATA)
        counters = sink.records[-1]["fields"]["counters"]
        assert counters["detectors.value_profile.mined"] == 1
        assert counters["detectors.value_profile.cache_hits"] == 1
        assert warm.records == cold.records
        assert warm.observed == cold.observed

    def test_payload_round_trip(self, sumsq):
        _, p = sumsq
        prof = mine_value_profile(p, args=[16], bindings=DATA, cache=False)
        from repro.detectors import ValueProfile

        again = ValueProfile.from_payload(prof.to_payload())
        assert again.records == prof.records


class TestZoo:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_detectors(["dup", "voodoo"])

    def test_each_detector_produces_priced_candidates(self, sumsq_ctx):
        for det in make_detectors(("dup", "range", "store")):
            cands = det.candidates(sumsq_ctx)
            assert cands, det.kind
            for c in cands:
                assert c.detector == det.kind
                assert c.cost >= 0.0
                assert all(0.0 <= v <= 1.0 for v in c.coverage.values())

    def test_store_only_is_cheaper_than_dup(self, sumsq_ctx):
        dup, store = make_detectors(("dup", "store"))
        dup_costs = {c.iids[0]: c.cost for c in dup.candidates(sumsq_ctx)}
        for c in store.candidates(sumsq_ctx):
            assert c.cost < dup_costs[c.iids[0]]

    def test_checksum_candidate_on_fft(self):
        app = cached_app("fft")
        p = app.program
        a, b = app.encode(app.reference_input)
        dyn = profile_run(p, args=a, bindings=b)
        fi = run_per_instruction_campaign(
            p, 2, seed=5, args=a, bindings=b, profile=dyn
        )
        prof = build_cost_benefit_profile(app.module, dyn, fi)
        ctx = DetectorContext(program=p, profile=prof, args=a, bindings=b)
        cands = ChecksumDetector().candidates(ctx)
        assert len(cands) == 1
        cand = cands[0]
        assert cand.checksum is not None
        assert cand.iids  # nonempty covered slice
        prot = apply_plan(app.module, {}, checksum=cand.checksum)
        assert prot.has_checksum
        golden = p.run(args=a, bindings=b)
        run = Program(prot.module).run(args=a, bindings=b)
        assert run.output == golden.output  # golden sum passes its own check


class TestOptimizer:
    def test_selection_is_deterministic(self, sumsq_ctx):
        cands = gather_candidates(
            make_detectors(("dup", "range", "store")), sumsq_ctx
        )
        a = select_configuration(cands, 0.3, sumsq_ctx.profile)
        b = select_configuration(
            list(reversed(cands)), 0.3, sumsq_ctx.profile
        )
        assert a.assigned == b.assigned
        assert a.cost == b.cost

    def test_at_most_one_detector_per_instruction(self, sumsq_ctx):
        cands = gather_candidates(
            make_detectors(("dup", "range", "store")), sumsq_ctx
        )
        cfg = select_configuration(cands, 0.5, sumsq_ctx.profile)
        assert set(cfg.plan) == set(cfg.assigned)
        assert sum(cfg.by_kind.values()) == len(cfg.assigned)

    def test_frontier_gates(self, sumsq_ctx):
        cands = gather_candidates(
            make_detectors(("dup", "range", "store")), sumsq_ctx
        )
        points = pareto_frontier(
            cands, sumsq_ctx.profile, budgets=(0.05, 0.15, 0.35, 0.6)
        )
        assert len(points) == 4
        assert frontier_is_monotone(points)
        assert frontier_is_nondominated(points)
        for p in points:
            assert p.config.cost <= p.budget * sumsq_ctx.profile.total_cycles

    def test_frontier_mixes_detector_kinds(self):
        app = cached_app("pathfinder")
        a, b = app.encode(app.reference_input)
        res = build_frontier(
            app.module, a, b,
            FrontierConfig(
                detectors=("dup", "range", "store"),
                budgets=(0.1, 0.35, 0.6),
                profile_source="model",
            ),
        )
        kinds = frontier_detector_kinds(res.points)
        assert len(kinds) >= 3


class TestValidation:
    def test_per_detector_detection_tallies(self, sumsq):
        m, _ = sumsq
        prof = mine_value_profile(
            Program(m), args=[16], bindings=DATA, cache=False
        )
        iids = sorted(
            iid for iid, r in prof.records.items() if not r.nan_seen
        )
        plan = {}
        for k, iid in enumerate(iids):
            rec = prof.record(iid)
            plan[iid] = (
                PlanAction("dup") if k % 2 == 0
                else PlanAction("range", lo=rec.vmin, hi=rec.vmax)
            )
        prot = apply_plan(m, plan)
        campaign = run_campaign(
            Program(prot.module), 40, seed=9, args=[16], bindings=DATA
        )
        per = per_detector_detection(campaign, prot)
        assert set(per) <= {"dup", "range", "none"}
        assert sum(v[1] for v in per.values()) == campaign.trials
        for detected, faults in per.values():
            assert 0 <= detected <= faults

    def test_frontier_validation_end_to_end(self, sumsq):
        m, _ = sumsq
        res = build_frontier(
            m, [16], DATA,
            FrontierConfig(
                detectors=("dup", "range", "store"),
                budgets=(0.15, 0.5),
                profile_source="model",
                validate_faults=25,
                seed=13,
            ),
        )
        assert len(res.validations) == 2
        for v in res.validations:
            assert 0.0 <= v.detected_rate <= 1.0
            assert v.measured_overhead >= 0.0
            assert v.campaign.trials == 25
