"""Semantics tests for the interpreter: every opcode, trap behaviour, faults."""

import math

import pytest

from repro.errors import (
    ArithmeticTrap,
    HangTimeout,
    IRError,
    MemoryFault,
    StackOverflow,
)
from repro.ir import F32, F64, I1, I8, I32, I64, Builder, Module, VOID
from repro.vm.interpreter import FaultSpec, Program


def run_expr(build, args=(), arg_specs=(), ret_type=I64):
    """Build a main that emits build(b)'s value and run it."""
    m = Module("expr")
    b = Builder.new_function(m, "main", list(arg_specs), VOID)
    v = build(b)
    b.emit_output(v)
    b.ret()
    m.finalize()
    return Program(m).run(args=list(args)).output[0]


class TestIntegerOps:
    def test_add_wraps(self):
        v = run_expr(lambda b: b.add(b.const(I8, 200), b.const(I8, 100)))
        assert v == 300 & 0xFF  # wraps to 44, positive in signed i8

    def test_sub(self):
        assert run_expr(lambda b: b.sub(b.i64(3), b.i64(10))) == -7

    def test_mul(self):
        assert run_expr(lambda b: b.mul(b.i64(-4), b.i64(6))) == -24

    def test_sdiv_truncates_toward_zero(self):
        assert run_expr(lambda b: b.sdiv(b.i64(-7), b.i64(2))) == -3
        assert run_expr(lambda b: b.sdiv(b.i64(7), b.i64(-2))) == -3

    def test_srem_sign_follows_dividend(self):
        assert run_expr(lambda b: b.srem(b.i64(-7), b.i64(2))) == -1
        assert run_expr(lambda b: b.srem(b.i64(7), b.i64(-2))) == 1

    def test_udiv(self):
        assert run_expr(lambda b: b.udiv(b.const(I8, 0xFF), b.const(I8, 2))) == 127

    def test_division_by_zero_traps(self):
        m = Module("m")
        b = Builder.new_function(m, "main", [("n", I64)], VOID)
        b.emit_output(b.sdiv(b.i64(1), b.function.arg("n")))
        b.ret()
        m.finalize()
        with pytest.raises(ArithmeticTrap):
            Program(m).run(args=[0])

    def test_shl_overflow_is_zero(self):
        assert run_expr(lambda b: b.shl(b.i64(1), b.i64(64))) == 0

    def test_lshr(self):
        assert run_expr(lambda b: b.lshr(b.const(I8, 0x80), b.const(I8, 7))) == 1

    def test_ashr_sign_fills(self):
        assert run_expr(lambda b: b.ashr(b.const(I8, 0x80), b.const(I8, 7))) == -1

    def test_ashr_huge_shift_saturates(self):
        assert run_expr(lambda b: b.ashr(b.const(I8, 0x80), b.const(I8, 200))) == -1
        assert run_expr(lambda b: b.ashr(b.const(I8, 0x10), b.const(I8, 200))) == 0

    def test_bitwise(self):
        assert run_expr(lambda b: b.and_(b.i64(0b1100), b.i64(0b1010))) == 0b1000
        assert run_expr(lambda b: b.or_(b.i64(0b1100), b.i64(0b1010))) == 0b1110
        assert run_expr(lambda b: b.xor(b.i64(0b1100), b.i64(0b1010))) == 0b0110


class TestComparisons:
    @pytest.mark.parametrize(
        "pred,a,b,expect",
        [
            ("eq", 1, 1, 1), ("ne", 1, 2, 1),
            ("slt", -1, 0, 1), ("slt", 0, -1, 0),
            ("sle", 5, 5, 1), ("sgt", 1, -1, 1), ("sge", -2, -2, 1),
            ("ult", 1, 2, 1),
            ("ult", -1, 0, 0),  # -1 is max unsigned
            ("ule", 3, 3, 1), ("ugt", -1, 1, 1), ("uge", 0, 0, 1),
        ],
    )
    def test_icmp(self, pred, a, b, expect):
        got = run_expr(lambda bb: bb.zext(bb.icmp(pred, bb.i64(a), bb.i64(b)), I64))
        assert got == expect

    @pytest.mark.parametrize(
        "pred,a,b,expect",
        [
            ("oeq", 1.0, 1.0, 1), ("one", 1.0, 2.0, 1),
            ("olt", 1.0, 2.0, 1), ("ole", 2.0, 2.0, 1),
            ("ogt", 3.0, 2.0, 1), ("oge", 2.0, 2.0, 1),
        ],
    )
    def test_fcmp(self, pred, a, b, expect):
        got = run_expr(
            lambda bb: bb.zext(bb.fcmp(pred, bb.f64(a), bb.f64(b)), I64)
        )
        assert got == expect

    def test_fcmp_nan_all_false(self):
        for pred in ("oeq", "one", "olt", "ole", "ogt", "oge"):
            got = run_expr(
                lambda bb: bb.zext(
                    bb.fcmp(pred, bb.f64(float("nan")), bb.f64(1.0)), I64
                )
            )
            assert got == 0, pred


class TestFloatOps:
    def test_fdiv_by_zero_gives_inf(self):
        v = run_expr(lambda b: b.fdiv(b.f64(1.0), b.f64(0.0)))
        assert v == math.inf

    def test_fdiv_zero_by_zero_gives_nan(self):
        v = run_expr(lambda b: b.fdiv(b.f64(0.0), b.f64(0.0)))
        assert math.isnan(v)

    def test_fdiv_negative_zero(self):
        v = run_expr(lambda b: b.fdiv(b.f64(1.0), b.f64(-0.0)))
        assert v == -math.inf

    def test_f32_rounding(self):
        # 0.1 is not representable; f32 arithmetic must round.
        v = run_expr(
            lambda b: b.fadd(b.const(F32, 0.1), b.const(F32, 0.2))
        )
        assert v != pytest.approx(0.3, abs=1e-12)
        assert v == pytest.approx(0.3, abs=1e-6)

    def test_sqrt_negative_is_nan(self):
        assert math.isnan(run_expr(lambda b: b.fmath("sqrt", b.f64(-1.0))))

    def test_log_zero_is_neg_inf(self):
        assert run_expr(lambda b: b.fmath("log", b.f64(0.0))) == -math.inf

    def test_log_negative_is_nan(self):
        assert math.isnan(run_expr(lambda b: b.fmath("log", b.f64(-1.0))))

    def test_exp_overflow_is_inf(self):
        assert run_expr(lambda b: b.fmath("exp", b.f64(1e9))) == math.inf

    def test_floor(self):
        assert run_expr(lambda b: b.fmath("floor", b.f64(2.7))) == 2.0
        assert run_expr(lambda b: b.fmath("floor", b.f64(-2.1))) == -3.0

    def test_fabs(self):
        assert run_expr(lambda b: b.fmath("fabs", b.f64(-3.5))) == 3.5


class TestCasts:
    def test_trunc(self):
        assert run_expr(lambda b: b.trunc(b.i64(0x1FF), I8)) == -1  # 0xFF signed

    def test_zext_sext(self):
        assert run_expr(lambda b: b.zext(b.const(I8, 0xFF), I64)) == 0xFF
        assert run_expr(lambda b: b.sext(b.const(I8, 0xFF), I64)) == -1

    def test_fptosi_truncates(self):
        assert run_expr(lambda b: b.fptosi(b.f64(2.9))) == 2
        assert run_expr(lambda b: b.fptosi(b.f64(-2.9))) == -2

    def test_fptosi_nan_is_zero(self):
        assert run_expr(lambda b: b.fptosi(b.f64(float("nan")))) == 0

    def test_sitofp(self):
        assert run_expr(lambda b: b.sitofp(b.i64(-5))) == -5.0

    def test_fptrunc_rounds(self):
        v = run_expr(lambda b: b.cast("fptrunc", b.f64(0.1), F32))
        assert v != 0.1 and v == pytest.approx(0.1, abs=1e-7)


class TestMemoryOps:
    def test_alloca_load_store(self):
        def build(b):
            slot = b.alloca(I64, 4)
            p = b.gep(slot, b.i64(2))
            b.store(b.i64(7), p)
            return b.load(p, I64)

        assert run_expr(build) == 7

    def test_negative_gep_traps(self):
        m = Module("m")
        b = Builder.new_function(m, "main", [], VOID)
        slot = b.alloca(I64, 4)
        p = b.gep(slot, b.i64(-1))
        b.emit_output(b.load(p, I64))
        b.ret()
        m.finalize()
        with pytest.raises(MemoryFault):
            Program(m).run()

    def test_oob_load_traps(self):
        m = Module("m")
        b = Builder.new_function(m, "main", [], VOID)
        slot = b.alloca(I64, 4)
        b.emit_output(b.load(b.gep(slot, b.i64(4)), I64))
        b.ret()
        m.finalize()
        with pytest.raises(MemoryFault):
            Program(m).run()

    def test_global_binding(self, sumsq_program):
        out = sumsq_program.run(args=[3], bindings={"data": [1.0, 2.0, 3.0]})
        assert out.output == [14.0]

    def test_binding_unknown_global(self, sumsq_program):
        with pytest.raises(IRError):
            sumsq_program.run(args=[1], bindings={"ghost": [1.0]})

    def test_binding_too_long(self, sumsq_program):
        with pytest.raises(IRError):
            sumsq_program.run(args=[1], bindings={"data": [0.0] * 1000})

    def test_runs_are_isolated(self, sumsq_program):
        """Memory mutations must not leak between runs."""
        a = sumsq_program.run(args=[3], bindings={"data": [1.0, 1.0, 1.0]})
        b = sumsq_program.run(args=[3])  # default zeros
        assert a.output == [3.0]
        assert b.output == [0.0]


class TestTraps:
    def test_hang_detection(self):
        m = Module("m")
        b = Builder.new_function(m, "main", [], VOID)
        loop = b.new_block("loop")
        b.br(loop)
        b.position_at_end(loop)
        b.br(loop)
        m.finalize()
        with pytest.raises(HangTimeout):
            Program(m).run(step_limit=1000)

    def test_stack_overflow(self):
        m = Module("m")
        bf = Builder.new_function(m, "spin", [], VOID)
        bf.call("spin", [], VOID)
        bf.ret()
        b = Builder.new_function(m, "main", [], VOID)
        b.call("spin", [], VOID)
        b.ret()
        m.finalize()
        with pytest.raises(StackOverflow):
            Program(m).run()

    def test_wrong_arg_count(self, sumsq_program):
        with pytest.raises(IRError):
            sumsq_program.run(args=[])


class TestFaultInjection:
    def test_fault_fires_and_corrupts(self, sumsq_program, sumsq_data):
        golden = sumsq_program.run(args=[8], bindings=sumsq_data)
        fmul = [
            i.iid for i in sumsq_program.module.instructions() if i.opcode == "fmul"
        ][0]
        r = sumsq_program.run(
            args=[8], bindings=sumsq_data, fault=FaultSpec(fmul, 1, 62)
        )
        assert r.fault_fired
        assert r.output != golden.output

    def test_prefix_identical_until_fault(self, sumsq_program, sumsq_data):
        """A fault at the last instance only affects the tail of the run."""
        fadd = [
            i.iid for i in sumsq_program.module.instructions() if i.opcode == "fadd"
        ][0]
        r = sumsq_program.run(
            args=[8], bindings=sumsq_data, fault=FaultSpec(fadd, 8, 52)
        )
        assert r.fault_fired

    def test_fault_on_unreached_instance_does_not_fire(
        self, sumsq_program, sumsq_data
    ):
        fadd = [
            i.iid for i in sumsq_program.module.instructions() if i.opcode == "fadd"
        ][0]
        r = sumsq_program.run(
            args=[8], bindings=sumsq_data, fault=FaultSpec(fadd, 9999, 3)
        )
        assert not r.fault_fired
        assert r.output == sumsq_program.run(args=[8], bindings=sumsq_data).output

    def test_fault_determinism(self, sumsq_program, sumsq_data):
        f = FaultSpec(
            [i.iid for i in sumsq_program.module.instructions() if i.opcode == "load"][0],
            3,
            50,
        )
        r1 = sumsq_program.run(args=[8], bindings=sumsq_data, fault=f)
        r2 = sumsq_program.run(args=[8], bindings=sumsq_data, fault=f)
        assert r1.output == r2.output

    def test_i1_flip_inverts_branch(self, branchy_program):
        data = {"data": [1.0] * 8}
        golden = branchy_program.run(args=[8, 0.5], bindings=data)
        icmp = [
            i.iid for i in branchy_program.module.instructions() if i.opcode == "fcmp"
        ][0]
        r = branchy_program.run(
            args=[8, 0.5], bindings=data, fault=FaultSpec(icmp, 4, 0)
        )
        assert r.fault_fired
        assert r.output != golden.output  # one element mis-classified

    def test_instance_is_one_based(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, 0)
        with pytest.raises(ValueError):
            FaultSpec(0, 1, -1)


class TestProfiling:
    def test_counts_match_loop_trips(self, sumsq_program, sumsq_data):
        r = sumsq_program.run(args=[8], bindings=sumsq_data, profile=True)
        fmul = [
            i for i in sumsq_program.module.instructions() if i.opcode == "fmul"
        ][0]
        assert r.instr_counts[fmul.iid] == 8

    def test_edges_recorded(self, sumsq_program, sumsq_data):
        r = sumsq_program.run(args=[8], bindings=sumsq_data, profile=True)
        assert r.edge_counts
        assert all(c > 0 for c in r.edge_counts.values())

    def test_profiling_does_not_change_output(self, sumsq_program, sumsq_data):
        a = sumsq_program.run(args=[8], bindings=sumsq_data)
        b = sumsq_program.run(args=[8], bindings=sumsq_data, profile=True)
        assert a.output == b.output
