"""Tests for parallel map, tables and the stopwatch."""

import time

import pytest

from repro.util.parallel import (
    WORKERS_ENV,
    default_workers,
    parallel_map,
    resolve_workers,
)
from repro.util.tables import format_percent, format_table, render_candlestick_row
from repro.util.timing import Stopwatch


def _square(x):
    return x * x


_init_calls: list = []


def _record_init(tag):
    _init_calls.append(tag)


def _read_init(_x):
    return list(_init_calls)


class TestParallelMap:
    def test_serial_default(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_order_preserved_parallel(self):
        items = list(range(40))
        out = parallel_map(_square, items, workers=2)
        assert out == [x * x for x in items]

    def test_auto_chunksize_parallel(self):
        items = list(range(100))
        out = parallel_map(_square, items, workers=2, chunksize=None)
        assert out == [x * x for x in items]

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [5], workers=8) == [25]

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_initializer_runs_on_serial_path(self):
        _init_calls.clear()
        out = parallel_map(
            _read_init, [0, 1], workers=0,
            initializer=_record_init, initargs=("ctx",),
        )
        assert out == [["ctx"], ["ctx"]]  # once per map, visible to items

    def test_initializer_seeds_worker_processes(self):
        _init_calls.clear()
        out = parallel_map(
            _read_init, list(range(8)), workers=2,
            initializer=_record_init, initargs=("w",),
        )
        assert all(call == ["w"] for call in out)
        assert _init_calls == []  # parent process untouched


class TestResolveWorkers:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == 0

    def test_negative_clamped(self):
        assert resolve_workers(-4) == 0

    def test_none_without_env_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 0

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "auto")
        assert resolve_workers(None) == default_workers()

    def test_env_garbage_falls_back_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        assert resolve_workers(None) == 0

    def test_env_empty_is_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "  ")
        assert resolve_workers(None) == 0

    def test_parallel_map_honors_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        items = list(range(10))
        assert parallel_map(_square, items) == [x * x for x in items]


class TestTables:
    def test_format_percent(self):
        assert format_percent(0.5) == "50.00%"
        assert format_percent(1.0, digits=0) == "100%"

    def test_format_table_alignment(self):
        out = format_table(["a", "long"], [["xx", "1"], ["y", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_format_table_title(self):
        out = format_table(["h"], [["v"]], title="T")
        assert out.startswith("T\n")

    def test_candlestick_row_markers(self):
        row = render_candlestick_row("x", 0.0, 0.25, 0.5, 0.75, 1.0, expected=0.9)
        assert "E" in row and "|" in row and "#" in row

    def test_candlestick_row_degenerate(self):
        row = render_candlestick_row("x", 1.0, 1.0, 1.0, 1.0, 1.0)
        assert "min=1.000" in row


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.phase("a"):
            time.sleep(0.01)
        with sw.phase("a"):
            time.sleep(0.01)
        assert sw.totals["a"] >= 0.02

    def test_fractions_sum_to_one(self):
        sw = Stopwatch()
        with sw.phase("a"):
            time.sleep(0.005)
        with sw.phase("b"):
            time.sleep(0.005)
        fr = sw.fractions()
        assert pytest.approx(sum(fr.values()), abs=1e-9) == 1.0

    def test_empty_fractions(self):
        assert Stopwatch().fractions() == {}

    def test_phase_records_on_exception(self):
        sw = Stopwatch()
        with pytest.raises(ValueError):
            with sw.phase("x"):
                raise ValueError
        assert "x" in sw.totals
