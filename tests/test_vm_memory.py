"""Tests for the segmented memory model."""

import pytest

from repro.errors import MemoryFault
from repro.vm.memory import (
    MAX_SEGMENT_ELEMS,
    Memory,
    address_of,
    offset_of,
    segment_of,
)


class TestAddressing:
    def test_compose_decompose(self):
        a = address_of(3, 17)
        assert segment_of(a) == 3
        assert offset_of(a) == 17

    def test_offset_wraps_into_low_bits(self):
        a = address_of(1, MAX_SEGMENT_ELEMS + 5)
        assert offset_of(a) == 5


class TestMemory:
    def test_allocate_and_rw(self):
        mem = Memory()
        addr = mem.allocate(4)
        mem.store(addr + 2, 42)
        assert mem.load(addr + 2) == 42
        assert mem.load(addr) == 0

    def test_null_page_unmapped(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.load(0)

    def test_out_of_bounds(self):
        mem = Memory()
        addr = mem.allocate(4)
        with pytest.raises(MemoryFault):
            mem.load(addr + 4)

    def test_unmapped_segment(self):
        mem = Memory()
        mem.allocate(4)
        with pytest.raises(MemoryFault):
            mem.load(address_of(99, 0))

    def test_oversized_allocation(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.allocate(MAX_SEGMENT_ELEMS + 1)

    def test_zero_allocation(self):
        mem = Memory()
        with pytest.raises(MemoryFault):
            mem.allocate(0)

    def test_segments_disjoint(self):
        mem = Memory()
        a = mem.allocate(4, fill=1)
        b = mem.allocate(4, fill=2)
        mem.store(a, 99)
        assert mem.load(b) == 2

    def test_array_helpers(self):
        mem = Memory()
        a = mem.allocate(5)
        mem.write_array(a, [1, 2, 3, 4, 5])
        assert mem.read_array(a + 1, 3) == [2, 3, 4]
