"""The campaign supervisor: recovery semantics and the chaos hook.

The invariant under test everywhere: a supervised map that survived worker
crashes, hangs, injected exceptions, pool respawns, or degradation returns
results **bit-identical** to a plain serial map, in submission order. The
``REPRO_CHAOS``-style faults used here go through the same
:func:`repro.util.supervisor.maybe_chaos` trigger the env hook uses, so
these tests exercise the production recovery paths, not mocks.

Pool-spawning tests keep worker counts and item counts small — each test
pays real ``ProcessPoolExecutor`` startup, and several deliberately kill it.
"""

from __future__ import annotations

import logging

import pytest

from repro.errors import (
    ChaosError,
    ConfigError,
    HarnessError,
    PoolDegraded,
    WorkerError,
    WorkerTimeout,
)
from repro.obs.core import session
from repro.obs.sink import MemorySink
from repro.util.parallel import WORKERS_ENV, resolve_workers
from repro.util.supervisor import (
    CHAOS_ENV,
    MAX_RETRIES_ENV,
    TASK_TIMEOUT_ENV,
    CHAOS_IDENTITY_ENV,
    ChaosFault,
    SupervisorConfig,
    chaos_identity,
    maybe_chaos,
    parse_chaos,
    resolve_config,
    set_chaos_identity,
    supervised_map,
)


def _square(x):  # module-level: must pickle into pool workers
    return x * x


ITEMS = list(range(8))
EXPECT = [x * x for x in ITEMS]

#: Fast-failure policy for tests that expect recovery (not exhaustion).
FAST = SupervisorConfig(backoff_base=0.01, backoff_max=0.05)


def _chaos(*entries: str) -> tuple[ChaosFault, ...]:
    return parse_chaos(",".join(entries))


class TestParseChaos:
    def test_single_entry_defaults_to_attempt_zero(self):
        assert parse_chaos("crash@1") == (ChaosFault("crash", 1, 0),)

    def test_full_grammar(self):
        got = parse_chaos("crash@1, hang@3#0 ,exc@5#*")
        assert got == (
            ChaosFault("crash", 1, 0),
            ChaosFault("hang", 3, 0),
            ChaosFault("exc", 5, None),
        )

    @pytest.mark.parametrize(
        "bad", ["boom@1", "crash", "crash@x", "crash@1#y", "@1", "exc@"]
    )
    def test_bad_entries_raise_config_error(self, bad):
        with pytest.raises(ConfigError, match="kind@chunk"):
            parse_chaos(bad)

    def test_empty_parts_are_ignored(self):
        assert parse_chaos("crash@1,,") == (ChaosFault("crash", 1, 0),)


class TestChaosTargets:
    """Sticky/targeted grammar: ``kind@chunk[#attempt|#*][@target]``."""

    def test_sticky_wildcard_with_target(self):
        assert parse_chaos("crash@*#*@adapter1") == (
            ChaosFault("crash", None, None, "adapter1"),
        )

    def test_target_without_attempt_segment(self):
        assert parse_chaos("exc@2@w1") == (ChaosFault("exc", 2, 0, "w1"),)

    def test_wildcard_chunk_default_attempt(self):
        assert parse_chaos("hang@*") == (ChaosFault("hang", None, 0),)

    @pytest.mark.parametrize("bad", ["crash@1@", "crash@*#*@", "exc@2#1@"])
    def test_empty_target_raises_config_error(self, bad):
        with pytest.raises(ConfigError, match="kind@chunk"):
            parse_chaos(bad)

    def test_maybe_chaos_requires_matching_identity(self):
        faults = parse_chaos("exc@*#*@hostA")
        set_chaos_identity(None)
        try:
            maybe_chaos(faults, 0, 0)  # anonymous process: must not fire
            set_chaos_identity("hostB")
            maybe_chaos(faults, 0, 0)  # wrong identity: must not fire
            set_chaos_identity("hostA")
            for _ in range(2):  # sticky: fires deterministically, every time
                with pytest.raises(ChaosError):
                    maybe_chaos(faults, 3, 1)
        finally:
            set_chaos_identity(None)

    def test_env_fallback_supplies_identity(self, monkeypatch):
        monkeypatch.setenv(CHAOS_IDENTITY_ENV, "envhost")
        set_chaos_identity(None)
        assert chaos_identity() == "envhost"
        with pytest.raises(ChaosError):
            maybe_chaos(parse_chaos("exc@1@envhost"), 1, 0)
        set_chaos_identity("other")
        try:
            maybe_chaos(parse_chaos("exc@1@envhost"), 1, 0)  # explicit wins
        finally:
            set_chaos_identity(None)


class TestResolveConfig:
    def test_defaults(self, monkeypatch):
        for env in (MAX_RETRIES_ENV, TASK_TIMEOUT_ENV, CHAOS_ENV):
            monkeypatch.delenv(env, raising=False)
        cfg = resolve_config()
        assert cfg.max_retries == 2
        assert cfg.task_timeout is None
        assert cfg.chaos == ()

    def test_env_supplies_ambient_defaults(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "1.5")
        monkeypatch.setenv(CHAOS_ENV, "exc@2")
        cfg = resolve_config()
        assert cfg.max_retries == 5
        assert cfg.task_timeout == 1.5
        assert cfg.chaos == (ChaosFault("exc", 2, 0),)

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "1.5")
        cfg = resolve_config(max_retries=1, task_timeout=9.0)
        assert cfg.max_retries == 1
        assert cfg.task_timeout == 9.0

    def test_nonpositive_timeout_disables_hang_detection(self):
        assert resolve_config(task_timeout=0).task_timeout is None
        assert resolve_config(task_timeout=-1).task_timeout is None

    def test_unparsable_env_warns_and_uses_default(self, monkeypatch, caplog):
        monkeypatch.setenv(MAX_RETRIES_ENV, "many")
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "soon")
        with caplog.at_level(logging.WARNING, logger="repro"):
            cfg = resolve_config()
        assert cfg.max_retries == 2
        assert cfg.task_timeout is None
        assert MAX_RETRIES_ENV in caplog.text
        assert TASK_TIMEOUT_ENV in caplog.text


class TestResolveWorkersWarning:
    def test_unparsable_env_warns_and_falls_back_to_serial(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert resolve_workers(None) == 0
        assert WORKERS_ENV in caplog.text
        assert "serial" in caplog.text

    def test_valid_env_stays_silent(self, monkeypatch, caplog):
        monkeypatch.setenv(WORKERS_ENV, "3")
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert resolve_workers(None) == 3
        assert not caplog.records


class TestSupervisedMapPlain:
    def test_matches_serial(self):
        got = supervised_map(_square, ITEMS, workers=2, chunksize=1,
                             config=FAST)
        assert got == EXPECT

    def test_serial_path_for_workers_leq_one(self):
        # Chaos aimed at chunk 0 must NOT fire here: workers<=1 runs fn
        # in-process and a triggered crash would kill pytest itself.
        cfg = SupervisorConfig(chaos=_chaos("crash@0#*"))
        assert supervised_map(_square, ITEMS, workers=0, config=cfg) == EXPECT
        assert supervised_map(_square, ITEMS, workers=1, config=cfg) == EXPECT

    def test_on_result_streams_in_submission_order(self):
        seen = []
        supervised_map(_square, ITEMS, workers=2, chunksize=1,
                       on_result=seen.append, config=FAST)
        assert seen == EXPECT


class TestRecovery:
    def test_worker_crash_is_retried_bit_identically(self):
        cfg = SupervisorConfig(
            backoff_base=0.01, backoff_max=0.05, chaos=_chaos("crash@2")
        )
        got = supervised_map(_square, ITEMS, workers=2, chunksize=1,
                             config=cfg)
        assert got == EXPECT

    def test_worker_exception_is_retried_bit_identically(self):
        cfg = SupervisorConfig(
            backoff_base=0.01, backoff_max=0.05,
            chaos=_chaos("exc@1", "exc@6"),
        )
        seen = []
        got = supervised_map(_square, ITEMS, workers=2, chunksize=1,
                             on_result=seen.append, config=cfg)
        assert got == EXPECT
        assert seen == EXPECT  # ordered delivery survives retries

    def test_hung_worker_is_killed_and_retried(self):
        cfg = SupervisorConfig(
            task_timeout=0.7, backoff_base=0.01, backoff_max=0.05,
            chaos=_chaos("hang@0"),
        )
        got = supervised_map(_square, ITEMS, workers=2, chunksize=1,
                             config=cfg)
        assert got == EXPECT

    def test_retry_exhaustion_raises_typed_worker_error(self):
        cfg = SupervisorConfig(
            max_retries=1, backoff_base=0.01, backoff_max=0.02,
            chaos=_chaos("exc@3#*"),
        )
        with pytest.raises(WorkerError, match="chunk 3") as ei:
            supervised_map(_square, ITEMS, workers=2, chunksize=1, config=cfg)
        assert isinstance(ei.value, HarnessError)
        assert isinstance(ei.value.__cause__, ChaosError)

    def test_hang_exhaustion_raises_worker_timeout(self):
        cfg = SupervisorConfig(
            max_retries=0, task_timeout=0.5, backoff_base=0.01,
            chaos=_chaos("hang@0#*"),
        )
        with pytest.raises(WorkerTimeout, match="deadline"):
            supervised_map(_square, ITEMS, workers=2, chunksize=1, config=cfg)

    def test_persistent_crashes_degrade_to_serial(self):
        # The crashing chunk never succeeds in a worker, so the only way
        # this returns is the serial fallback — where chaos doesn't fire.
        cfg = SupervisorConfig(
            max_retries=1, max_pool_respawns=0, backoff_base=0.01,
            chaos=_chaos("crash@0#*"),
        )
        with session(sink=MemorySink()) as t:
            got = supervised_map(_square, ITEMS, workers=2, chunksize=1,
                                 config=cfg)
        assert got == EXPECT
        assert t.metrics.counters.get("harness.degraded") == 1
        assert t.metrics.counters.get("harness.pool_respawns", 0) >= 1

    def test_sticky_targeted_chunk_degrades_to_serial_exactly_once(self):
        # Satellite case: a *sticky* targeted fault (``crash@5#*@badhost``)
        # with every pool worker wearing the ``badhost`` identity (env
        # fallback, inherited at spawn). Chunk 5 kills any worker that
        # touches it, the bounded retry/respawn budget burns out, and the
        # harness degrades to serial exactly once — where chaos is
        # scrubbed — yielding results bit-identical to a clean serial map.
        import os

        os.environ[CHAOS_IDENTITY_ENV] = "badhost"
        cfg = SupervisorConfig(
            max_retries=1, max_pool_respawns=1, backoff_base=0.01,
            chaos=_chaos("crash@5#*@badhost"),
        )
        try:
            with session(sink=MemorySink()) as t:
                got = supervised_map(_square, ITEMS, workers=2, chunksize=1,
                                     config=cfg)
        finally:
            del os.environ[CHAOS_IDENTITY_ENV]
        assert got == EXPECT
        assert got == supervised_map(_square, ITEMS, workers=0, config=cfg)
        assert t.metrics.counters.get("harness.degraded") == 1

    def test_targeted_fault_skips_anonymous_workers(self, monkeypatch):
        # Same sticky directive, but no process claims the identity: the
        # fault never fires and the run completes without a single retry.
        monkeypatch.delenv(CHAOS_IDENTITY_ENV, raising=False)
        cfg = SupervisorConfig(
            backoff_base=0.01, backoff_max=0.05,
            chaos=_chaos("crash@5#*@badhost"),
        )
        with session(sink=MemorySink()) as t:
            got = supervised_map(_square, ITEMS, workers=2, chunksize=1,
                                 config=cfg)
        assert got == EXPECT
        assert t.metrics.counters.get("harness.retries", 0) == 0
        assert t.metrics.counters.get("harness.degraded", 0) == 0

    def test_pool_degraded_raises_when_fallback_disabled(self):
        cfg = SupervisorConfig(
            max_pool_respawns=0, serial_fallback=False, backoff_base=0.01,
            chaos=_chaos("crash@0#*"),
        )
        with pytest.raises(PoolDegraded):
            supervised_map(_square, ITEMS, workers=2, chunksize=1, config=cfg)

    def test_harness_telemetry_is_emitted_on_recovery(self):
        cfg = SupervisorConfig(
            backoff_base=0.01, backoff_max=0.05, chaos=_chaos("exc@4")
        )
        sink = MemorySink()
        with session(sink=sink) as t:
            supervised_map(_square, ITEMS, workers=2, chunksize=1, config=cfg)
        assert t.metrics.counters.get("harness.retries") == 1
        retries = [r for r in sink.records if r.get("name") == "harness.retry"]
        assert retries and retries[0]["fields"]["chunk"] == 4
