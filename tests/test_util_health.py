"""The shared health taxonomy: evidence, quarantine, readmission.

One state machine serves both simulated fleet hosts and real fabric
adapters, so these tests pin the lifecycle invariants both callers rely
on: evidence only grows, quarantine trips at the policy threshold,
readmission re-enters the suspect band (history kept), and clean tests
never launder a SUSPECT back to HEALTHY.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.util.health import (
    EVIDENCE_WEIGHTS,
    HEALTHY,
    QUARANTINED,
    SUSPECT,
    HealthPolicy,
    HealthTracker,
)


class TestHealthPolicy:
    def test_defaults(self):
        p = HealthPolicy()
        assert p.quarantine_at == 3
        assert p.readmit_after == 0

    @pytest.mark.parametrize("kw", [
        {"quarantine_at": 0}, {"quarantine_at": -1}, {"readmit_after": -1},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigError):
            HealthPolicy(**kw)


class TestEvidence:
    def test_unknown_entity_is_healthy(self):
        assert HealthTracker().status("h0") == HEALTHY

    def test_charge_walks_healthy_suspect_quarantined(self):
        t = HealthTracker(HealthPolicy(quarantine_at=3))
        assert t.charge("h0", "detected") == SUSPECT  # weight 1
        assert t.charge("h0", "crash") == SUSPECT     # score 2
        assert t.charge("h0", "detected") == QUARANTINED
        assert t.quarantined() == ["h0"]

    def test_heavy_evidence_quarantines_in_one_step(self):
        t = HealthTracker(HealthPolicy(quarantine_at=3))
        assert EVIDENCE_WEIGHTS["test_fail"] == 3
        assert t.charge("h0", "test_fail") == QUARANTINED

    def test_unknown_kind_charges_weight_one(self):
        t = HealthTracker()
        t.charge("h0", "gremlin")
        assert t.record("h0").score == 1
        assert t.record("h0").by_kind == {"gremlin": 1}

    def test_explicit_weight_overrides_table(self):
        t = HealthTracker()
        t.charge("h0", "detected", weight=5)
        assert t.record("h0").score == 5

    def test_custom_weights_merge_over_defaults(self):
        t = HealthTracker(weights={"detected": 4})
        assert t.weights["detected"] == 4
        assert t.weights["crash"] == EVIDENCE_WEIGHTS["crash"]

    def test_active_filters_quarantined(self):
        t = HealthTracker(HealthPolicy(quarantine_at=1))
        t.charge("h1", "crash")
        assert t.active(["h0", "h1", "h2"]) == ["h0", "h2"]


class TestReadmission:
    def test_quarantine_is_final_when_readmit_after_zero(self):
        t = HealthTracker(HealthPolicy(quarantine_at=1, readmit_after=0))
        t.charge("h0", "crash")
        for _ in range(10):
            assert not t.clear_pass("h0")
        assert t.status("h0") == QUARANTINED

    def test_streak_of_clean_tests_readmits_into_suspect_band(self):
        t = HealthTracker(HealthPolicy(quarantine_at=3, readmit_after=2))
        t.charge("h0", "test_fail")
        assert t.status("h0") == QUARANTINED
        assert not t.clear_pass("h0")
        assert t.clear_pass("h0")
        rec = t.record("h0")
        assert t.status("h0") == SUSPECT      # not HEALTHY: history kept
        assert rec.score == 2                 # quarantine_at - 1
        assert rec.readmissions == 1
        assert rec.by_kind == {"test_fail": 1}  # evidence never erased
        # One more piece of evidence re-quarantines immediately.
        assert t.charge("h0", "detected") == QUARANTINED

    def test_fresh_evidence_breaks_the_streak(self):
        t = HealthTracker(HealthPolicy(quarantine_at=2, readmit_after=2))
        t.charge("h0", "disconnect")
        assert not t.clear_pass("h0")
        t.charge("h0", "crash")               # streak resets
        assert not t.clear_pass("h0")
        assert t.status("h0") == QUARANTINED

    def test_suspect_never_accumulates_streak(self):
        t = HealthTracker(HealthPolicy(quarantine_at=5, readmit_after=1))
        t.charge("h0", "detected")
        assert t.status("h0") == SUSPECT
        assert not t.clear_pass("h0")
        assert t.record("h0").clean_streak == 0

    def test_force_readmit_returns_entity_to_service(self):
        t = HealthTracker(HealthPolicy(quarantine_at=1, readmit_after=0))
        t.charge("h0", "sdc")
        assert t.status("h0") == QUARANTINED
        t.force_readmit("h0")
        assert t.status("h0") != QUARANTINED
        assert t.record("h0").readmissions == 1
        t.force_readmit("h1")                 # no-op on non-quarantined
        assert t.record("h1").readmissions == 0
