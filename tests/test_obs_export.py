"""Chrome trace-event export: a recorded campaign trace converts into a
valid, Perfetto-loadable event stream — even when the trace was truncated
mid-write by a crashed producer."""

from __future__ import annotations

import json

import pytest

from repro.fi.campaign import run_campaign
from repro.obs.core import session
from repro.obs.export import (
    PHASE_TID,
    lint_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.report import load_trace


@pytest.fixture(autouse=True)
def _fast_heartbeats(monkeypatch):
    monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0")


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    from tests.conftest import cached_app

    app = cached_app("pathfinder")
    path = tmp_path_factory.mktemp("export") / "t.jsonl"
    a, b = app.encode(app.reference_input)
    with session(trace=str(path)) as t:
        run_campaign(
            app.program, 48, 7, args=a, bindings=b, rel_tol=app.rel_tol,
            abs_tol=app.abs_tol, workers=2, cache=False,
        )
        t.emit_phase("profiling", 0.25)
    return path


class TestChromeTraceExport:
    def test_export_validates(self, trace_path):
        obj = to_chrome_trace(load_trace(trace_path))
        assert lint_chrome_trace(obj) == []
        assert obj["displayTimeUnit"] == "ms"

    def test_spans_become_complete_events(self, trace_path):
        records = load_trace(trace_path)
        obj = to_chrome_trace(records)
        slices = [
            e for e in obj["traceEvents"]
            if e.get("cat") == "span" and e["ph"] == "X"
        ]
        n_spans = sum(1 for r in records if r["kind"] == "span")
        assert len(slices) == n_spans > 0
        for e in slices:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert "span_id" in e["args"] and "parent_id" in e["args"]

    def test_worker_spans_get_their_own_lane(self, trace_path):
        obj = to_chrome_trace(load_trace(trace_path))
        span_tids = {
            e["tid"] for e in obj["traceEvents"] if e.get("cat") == "span"
        }
        assert 0 in span_tids          # the parent process lane
        assert len(span_tids) >= 2     # at least one worker lane
        names = {
            (e["tid"], e["args"]["name"]) for e in obj["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        labels = {label for _, label in names}
        assert "main" in labels
        assert any(label.startswith("worker ") for label in labels)

    def test_phase_records_land_on_dedicated_lane(self, trace_path):
        obj = to_chrome_trace(load_trace(trace_path))
        phases = [
            e for e in obj["traceEvents"] if e.get("cat") == "phase"
        ]
        assert phases
        assert {e["tid"] for e in phases} == {PHASE_TID}

    def test_round_trip_on_truncated_trace(self, trace_path, tmp_path):
        # Chop the final line mid-JSON, as a killed producer would: export
        # must still produce a valid object from the recovered records.
        text = trace_path.read_text()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(text[: len(text) - 25])
        warnings: list[str] = []
        records = load_trace(
            torn, tolerate_torn_tail=True, warnings=warnings
        )
        assert len(warnings) == 1
        out = tmp_path / "torn.chrome.json"
        n = write_chrome_trace(records, out)
        obj = json.loads(out.read_text())
        assert lint_chrome_trace(obj) == []
        assert len(obj["traceEvents"]) == n

    def test_cli_export_subcommand(self, trace_path, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "exported.json"
        rc = main(["obs", "export", str(trace_path), "-o", str(out)])
        assert rc == 0
        obj = json.loads(out.read_text())
        assert lint_chrome_trace(obj) == []
        assert str(out) in capsys.readouterr().out

    def test_lint_catches_malformed_events(self):
        assert lint_chrome_trace([]) != []
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0, "dur": -1},
            {"name": "y", "ph": "Z"},
            {"ph": "i", "ts": "nope"},
        ]}
        errs = lint_chrome_trace(bad)
        # dur<0; unsupported phase; missing name + non-numeric ts.
        assert len(errs) == 4
