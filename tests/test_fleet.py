"""The fleet resilience simulator (:mod:`repro.fleet`).

The acceptance bar mirrors ``fleet-smoke`` in CI: given ``--seed``, the
whole simulation — host population, defect signatures, job schedule,
health evolution — is byte-identical across worker counts; in-field
testing catches seeded defects; and the policy sweep's escape-rate /
throughput-cost tradeoff renders. Tests run a deliberately tiny fleet
(24 hosts, 2 defective, 8 rounds, 2 apps) so the suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.fleet import (
    FleetPolicy,
    FleetSim,
    parse_policy,
    render_fleet_summary,
    render_sweep,
    run_fleet,
    run_sweep,
    seed_fleet,
)
from repro.fleet.jobs import build_job_specs, job_mix_opcodes
from repro.fleet.policy import PRESETS
from repro.fleet.sweep import sweep_is_monotone
from repro.obs.core import session
from repro.obs.fleetview import render_fleet
from repro.obs.sink import MemorySink

#: The shared tiny-fleet configuration (seed 3 exercises every outcome
#: class: escapes, detections, crashes, and in-field catches).
SMALL = dict(rounds=8, apps=["kmeans", "fft"], n_defective=2)
SEED = 3


def _small_run(policy="default", seed=SEED, workers=0):
    return run_fleet(24, 0.0, parse_policy(policy), seed, workers=workers,
                     **SMALL)


class TestPolicy:
    def test_parse_default(self):
        assert parse_policy(None) == FleetPolicy()
        assert parse_policy("") == FleetPolicy()

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_parse_by_name(self, name):
        assert parse_policy(name) == PRESETS[name]

    def test_overrides_on_preset(self):
        p = parse_policy("lax,test_every=4,test_coverage=0.25")
        assert p.test_every == 4
        assert p.test_coverage == 0.25
        assert p.quarantine_at == PRESETS["lax"].quarantine_at

    @pytest.mark.parametrize("bad", [
        "nosuchpreset", "test_every=4,lax", "bogus_key=1",
        "test_every=soon", "quarantine_at=0", "test_coverage=0",
    ])
    def test_bad_specs_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            parse_policy(bad)

    def test_describe_reparses_to_same_policy(self):
        p = PRESETS["paranoid"]
        assert parse_policy(p.describe()) == p


class TestSeedFleet:
    def test_deterministic_and_sized(self):
        opcodes = {"fmul", "add"}
        a = seed_fleet(50, 0.1, 7, opcodes)
        b = seed_fleet(50, 0.1, 7, opcodes)
        assert [h.defect for h in a] == [h.defect for h in b]
        assert len(a) == 50
        assert sum(h.defective for h in a) == 5
        for h in a:
            if h.defect is not None:
                assert h.defect.opcode in opcodes

    def test_n_defective_overrides_rate(self):
        hosts = seed_fleet(50, 0.1, 7, {"fmul"}, n_defective=2)
        assert sum(h.defective for h in hosts) == 2


class TestFleetSim:
    def test_small_fleet_accounting(self):
        r = _small_run()
        assert r.n_hosts == 24
        assert len(r.defective) == 2
        assert r.jobs_run > 0
        assert r.sdc_escapes > 0          # permanent defect escapes SID
        assert r.detected > 0             # intermittent defect is caught
        assert r.test_catches > 0         # in-field testing works
        assert r.caught_all               # both defects end quarantined
        assert r.quarantines == 2
        assert 0.0 < r.escape_rate < 1.0
        assert r.throughput_cost > 0.0

    def test_summary_identical_across_worker_counts(self):
        serial = render_fleet_summary(_small_run(workers=0))
        pooled = render_fleet_summary(_small_run(workers=2))
        assert serial == pooled

    def test_different_seeds_differ(self):
        assert render_fleet_summary(_small_run(seed=3)) != \
            render_fleet_summary(_small_run(seed=5))

    def test_no_testing_means_no_catches(self):
        r = _small_run(policy="test_every=0,quarantine_at=50")
        assert r.tests_run == 0
        assert r.test_catches == 0
        assert r.test_cost == 0.0

    def test_sim_reuses_prebuilt_population(self):
        specs = build_job_specs(SMALL["apps"], protection=0.5)
        opcodes = job_mix_opcodes(specs)
        hosts = seed_fleet(24, 0.0, SEED, opcodes, n_defective=2)
        r = FleetSim(hosts, specs, parse_policy("default"), SEED,
                     rounds=8, workers=0).run()
        assert render_fleet_summary(r) == render_fleet_summary(_small_run())


class TestSweep:
    def test_sweep_runs_ladder_and_renders(self):
        results = run_sweep(24, 0.0, SEED, workers=0, **SMALL)
        names = [name for name, _ in results]
        assert names == ["lax", "default", "strict", "paranoid"]
        text = render_sweep(results)
        for name in names:
            assert name in text
        assert "monotone" in text.lower()

    def test_monotone_check_is_order_sensitive(self):
        results = run_sweep(24, 0.0, SEED, workers=0, **SMALL)
        assert sweep_is_monotone(results) == (
            "NOT MONOTONE" not in render_sweep(results)
        )


class TestFleetObsView:
    def test_report_renders_from_trace_records(self):
        sink = MemorySink()
        with session(sink=sink):
            _small_run()
        text = render_fleet(sink.records)
        assert "hosts" in text and "24" in text
        assert "escape rate" in text
        assert "fleet.jobs" in text          # counters table
        assert "test_fail" in text or "quarantine" in text  # timeline

    def test_empty_trace_says_so(self):
        assert "no fleet.* records" in render_fleet([])
