"""Smoke tests of every experiment driver at micro scale, plus the result
and reporting machinery."""

import pytest

from repro.exp import TINY, Candlestick
from repro.exp.config import FULL, SMALL, ScaleConfig
from repro.exp.results import AppLevelResult, CoverageStudyResult, load_json, save_json

MICRO = TINY.with_(
    apps=("pathfinder",),
    eval_inputs=2,
    campaign_faults=25,
    per_instr_trials=2,
    search_per_instr_trials=2,
    search_max_inputs=1,
    search_stall=1,
    ga_population=3,
    ga_generations=1,
    protection_levels=(0.5,),
)


class TestConfig:
    def test_presets_ordered(self):
        assert TINY.campaign_faults < SMALL.campaign_faults < FULL.campaign_faults

    def test_with_override(self):
        assert TINY.with_(eval_inputs=99).eval_inputs == 99
        assert TINY.eval_inputs != 99

    def test_paper_levels_default(self):
        assert SMALL.protection_levels == (0.3, 0.5, 0.7)


class TestCandlestick:
    def test_five_numbers(self):
        c = Candlestick.from_values([0.1, 0.2, 0.3, 0.4, 0.5])
        assert c.lo == 0.1 and c.hi == 0.5 and c.median == 0.3
        assert c.q1 <= c.median <= c.q3

    def test_empty(self):
        c = Candlestick.from_values([])
        assert c.n == 0 and c.spread == 0.0

    def test_roundtrip(self):
        c = Candlestick.from_values([0.5, 0.9])
        assert Candlestick.from_dict(c.to_dict()) == c


class TestResults:
    def make_result(self):
        return AppLevelResult(
            app="x", technique="sid", protection_level=0.5,
            expected_coverage=0.9,
            measured=[0.95, 0.85, None, 0.7],
            sdc_unprotected=[0.3, 0.3, 0.0, 0.2],
            sdc_protected=[0.01, 0.04, 0.0, 0.06],
        )

    def test_loss_fraction_ignores_none(self):
        r = self.make_result()
        assert r.loss_input_fraction() == pytest.approx(2 / 3)

    def test_min_coverage(self):
        assert self.make_result().min_coverage() == 0.7

    def test_study_json_roundtrip(self, tmp_path):
        study = CoverageStudyResult(technique="sid", scale="tiny")
        study.results.append(self.make_result())
        path = tmp_path / "study.json"
        save_json(path, study.to_dict())
        back = CoverageStudyResult.from_dict(load_json(path))
        assert back.results[0].measured == study.results[0].measured

    def test_average_loss(self):
        study = CoverageStudyResult(technique="sid", scale="tiny")
        study.results.append(self.make_result())
        assert study.average_loss_fraction(0.5) == pytest.approx(2 / 3)
        assert study.average_loss_fraction(0.3) == 0.0


class TestDrivers:
    def test_fig2(self):
        from repro.exp.fig2 import run_fig2_study
        from repro.exp.report import render_coverage_figure, render_loss_table

        study = run_fig2_study(MICRO)
        assert len(study.results) == 1
        assert render_loss_table(study, "t")
        assert render_coverage_figure(study, "f")

    def test_fig6(self):
        from repro.exp.fig6 import run_fig6_study

        study = run_fig6_study(MICRO)
        assert study.technique == "minpsid"
        assert study.results[0].measured

    def test_fig3(self):
        from repro.exp.fig3 import find_incubative_example

        ex = find_incubative_example(
            MICRO.with_(eval_inputs=3), app_name="pathfinder"
        )
        assert ex.swing >= 0.0
        assert "SDC probability" in ex.render()

    def test_fig7(self):
        from repro.exp.fig7 import run_fig7_study

        cmp = run_fig7_study("pathfinder", MICRO.with_(search_max_inputs=2))
        assert cmp.ga_trace and cmp.random_trace
        assert cmp.ga_trace[0] == 0  # reference input alone finds nothing

    def test_fig8(self):
        from repro.exp.fig8 import render_fig8, run_fig8_study

        rows = run_fig8_study(["pathfinder"], MICRO)
        assert rows[0].total > 0
        assert "Fig. 8" in render_fig8(rows)

    def test_sec4(self):
        from repro.exp.sec4 import run_sec4_analysis

        res = run_sec4_analysis("pathfinder", MICRO.with_(protection_levels=(0.3, 0.5)))
        assert set(res.targets_by_level) == {0.3, 0.5}
        assert (0.3, 0.5) in res.persistence
        assert 0.0 <= res.incubative_fraction <= 1.0

    def test_fig9(self):
        from repro.exp.fig9 import run_fig9_study

        base, hardened = run_fig9_study(
            MICRO.with_(eval_inputs=4, campaign_faults=20)
        )
        assert {r.app for r in base.results} == {"bfs", "kmeans"}
        assert len(hardened.results) == len(base.results)

    def test_overhead(self):
        from repro.exp.overhead import render_overhead, run_overhead_study, summarize_overhead

        base, hardened = run_overhead_study(MICRO)
        rows = summarize_overhead(base) + summarize_overhead(hardened)
        assert rows
        for r in rows:
            assert 0.0 <= r.mean_actual <= r.target_level + 1e-9
        assert "VIII-A" in render_overhead(rows)

    def test_mt_fft(self):
        from repro.exp.mt_fft import run_mt_fft_study

        rows = run_mt_fft_study(
            MICRO.with_(eval_inputs=2, campaign_faults=20),
            thread_counts=(1, 2),
        )
        assert [r.threads for r in rows] == [1, 2]
        for r in rows:
            assert 0.0 <= r.sid_loss <= 1.0
            assert 0.0 <= r.minpsid_loss <= 1.0

    def test_table1(self):
        from repro.exp.report import render_table1

        out = render_table1()
        assert "Table I" in out
        for name in ("xsbench", "hpccg", "fft", "kmeans"):
            assert name in out

    def test_comparison_rendering(self):
        from repro.exp.fig2 import run_fig2_study
        from repro.exp.fig6 import run_fig6_study
        from repro.exp.report import render_comparison

        base = run_fig2_study(MICRO)
        hard = run_fig6_study(MICRO)
        out = render_comparison(base, hard, "cmp")
        assert "pathfinder" in out
