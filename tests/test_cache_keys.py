"""Cache-key correctness: canonical hashing and key sensitivity.

The cache is only safe if the key changes whenever anything the outcome
depends on changes — program text, input payload, fault-model tolerances,
trial plan, seeds — and *only* then (dict order, list-vs-tuple spelling,
worker counts, and checkpoint schedules must not perturb it).
"""

from __future__ import annotations

import pytest

from repro.cache.keys import per_instruction_key, whole_program_key
from repro.ir.printer import print_module
from repro.util.digest import canonical_bytes, stable_digest

from tests.conftest import build_branchy_module, build_sum_squares_module


class TestCanonicalBytes:
    def test_dict_order_is_canonicalized(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_list_and_tuple_encode_identically(self):
        assert canonical_bytes([1, 2.5, "x"]) == canonical_bytes((1, 2.5, "x"))

    def test_type_tags_prevent_cross_type_collisions(self):
        digests = {stable_digest(v) for v in (1, 1.0, True, "1", [1], None)}
        assert len(digests) == 6

    def test_floats_hash_bit_exactly(self):
        assert stable_digest(0.0) != stable_digest(-0.0)
        assert stable_digest(float("nan")) == stable_digest(float("nan"))
        assert stable_digest(float("inf")) != stable_digest(float("-inf"))

    def test_nested_payloads_and_bool_int_split(self):
        a = {"args": [1, 2.0], "bindings": {"g": [0.5, True]}}
        b = {"bindings": {"g": [0.5, True]}, "args": [1, 2.0]}
        assert stable_digest(a) == stable_digest(b)
        assert stable_digest({"g": [0.5, True]}) != stable_digest({"g": [0.5, 1]})

    def test_unsupported_types_raise(self):
        with pytest.raises(TypeError):
            canonical_bytes(object())

    def test_encoding_is_stable_across_calls(self):
        payload = {"module": "text", "seed": 7, "tol": [0.0, 1e-9]}
        assert canonical_bytes(payload) == canonical_bytes(payload)


BASE = dict(
    args=[8], bindings={"data": [float(i) for i in range(32)]},
    rel_tol=0.0, abs_tol=0.0,
)


class TestWholeProgramKey:
    def setup_method(self):
        self.text = print_module(build_sum_squares_module())

    def key(self, text=None, n_faults=40, seed=7, **overrides):
        params = {**BASE, **overrides}
        return whole_program_key(
            text if text is not None else self.text,
            params["args"], params["bindings"],
            params["rel_tol"], params["abs_tol"], n_faults, seed,
        )

    def test_identical_inputs_produce_identical_keys(self):
        assert self.key() == self.key()

    def test_one_changed_instruction_changes_the_key(self):
        # A structurally different kernel: same inputs, different IR text.
        other = print_module(build_branchy_module())
        assert other != self.text
        assert self.key() != self.key(text=other)

    def test_each_fault_model_field_changes_the_key(self):
        base = self.key()
        assert base != self.key(rel_tol=1e-9)
        assert base != self.key(abs_tol=1e-12)

    def test_trial_plan_changes_the_key(self):
        base = self.key()
        assert base != self.key(n_faults=41)
        assert base != self.key(seed=8)

    def test_input_payload_changes_the_key(self):
        base = self.key()
        assert base != self.key(args=[9])
        bindings = {"data": [float(i) for i in range(32)]}
        bindings["data"][0] = -0.0  # bit-level input change
        assert base != self.key(bindings=bindings)

    def test_args_spelling_does_not_change_the_key(self):
        assert self.key(args=[8]) == self.key(args=(8,))


class TestPerInstructionKey:
    def setup_method(self):
        self.text = print_module(build_sum_squares_module())

    def key(self, trials=4, seed=7, targets=(3, 5), **overrides):
        params = {**BASE, **overrides}
        return per_instruction_key(
            self.text, params["args"], params["bindings"],
            params["rel_tol"], params["abs_tol"], trials, seed, targets,
        )

    def test_trials_seed_and_targets_are_in_the_key(self):
        base = self.key()
        assert base != self.key(trials=5)
        assert base != self.key(seed=8)
        assert base != self.key(targets=(3,))

    def test_target_order_is_canonicalized(self):
        # Each iid samples from its own seeded child stream, so sweep order
        # cannot affect outcomes — reordered targets must share a key.
        assert self.key(targets=(5, 3)) == self.key(targets=(3, 5))

    def test_per_instruction_never_collides_with_whole_program(self):
        wp = whole_program_key(
            self.text, BASE["args"], BASE["bindings"], 0.0, 0.0, 4, 7
        )
        assert wp != self.key(trials=4, seed=7)
