"""Guest hotspot profiler: per-function cycle attribution, call-path folded
stacks, and the batch engine's per-site divergence accounting."""

from __future__ import annotations

import pytest

from repro.obs.core import session
from repro.obs.hotspot import folded_stacks, profile_fields, render_hotspots
from repro.obs.sink import MemorySink
from repro.vm.profiler import profile_run


@pytest.fixture(scope="module")
def profiled_records():
    from tests.conftest import cached_app

    app = cached_app("fft")
    a, b = app.encode(app.reference_input)
    sink = MemorySink()
    with session(sink=sink):
        prof = profile_run(app.program, args=a, bindings=b)
    return prof, sink.records


class TestProfileEnrichment:
    def test_fn_cycles_partition_total(self, profiled_records):
        prof, _ = profiled_records
        assert sum(prof.fn_cycles.values()) == prof.total_cycles
        assert len(prof.fn_cycles) > 1  # fft is multi-function

    def test_call_paths_rooted_at_main(self, profiled_records):
        prof, _ = profiled_records
        assert prof.call_paths
        assert all(path[0] == "main" for path in prof.call_paths)
        # Entry counts of single-frame paths: main entered exactly once.
        assert prof.call_paths.get(("main",)) == 1

    def test_vm_profile_event_carries_hotspot_fields(self, profiled_records):
        _, records = profiled_records
        fields = profile_fields(records)
        assert len(fields) == 1
        f = fields[0]
        assert f["functions"] and f["call_paths"]
        assert f["top_instructions"]
        top = f["top_instructions"][0]
        assert {"iid", "opcode", "count", "cycles"} <= set(top)
        # Descending by cycles.
        cycles = [e["cycles"] for e in f["top_instructions"]]
        assert cycles == sorted(cycles, reverse=True)

    def test_profiling_unchanged_without_telemetry(self, profiled_records):
        from tests.conftest import cached_app

        prof, _ = profiled_records
        app = cached_app("fft")
        a, b = app.encode(app.reference_input)
        bare = profile_run(app.program, args=a, bindings=b)
        assert bare.fn_cycles == prof.fn_cycles
        assert bare.call_paths == prof.call_paths


class TestFoldedStacks:
    def test_weights_conserve_function_cycles(self, profiled_records):
        prof, records = profiled_records
        lines = folded_stacks(records)
        assert lines
        total = 0
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            frames = stack.split(";")
            assert frames[0] == "fft"  # module prefix
            total += int(weight)
        # Distribution is proportional (rounded), so the folded total must
        # sit within a frame of the measured total.
        assert abs(total - prof.total_cycles) <= len(lines)

    def test_multi_frame_paths_present(self, profiled_records):
        _, records = profiled_records
        assert any(
            line.count(";") >= 2 for line in folded_stacks(records)
        ), "fft must produce nested call paths (main;...;leaf)"


class TestHotspotReport:
    def test_tables_render(self, profiled_records):
        _, records = profiled_records
        text = render_hotspots(records)
        assert "Guest hotspots" in text
        assert "Hottest instructions" in text
        assert "instruction mix" in text

    def test_empty_trace_message(self):
        text = render_hotspots([])
        assert "no vm.profile" in text

    def test_batch_site_table_from_counters(self, profiled_records):
        _, records = profiled_records
        summary = {
            "ts": 0.0, "kind": "summary", "name": "trace.summary",
            "run": records[0]["run"], "campaign": None, "trial": None,
            "fields": {"counters": {
                "batch.detach_site.f:loop": 5,
                "batch.reconverge_site.f:loop": 4,
                "batch.lockstep_steps": 900,
                "batch.scalar_steps": 100,
            }},
        }
        text = render_hotspots(records + [summary])
        assert "divergence sites" in text
        assert "f:loop" in text
        assert "90.0%" in text  # lockstep occupancy

    def test_cli_flame_subcommand(self, profiled_records, tmp_path, capsys):
        import json

        from repro.cli import main

        _, records = profiled_records
        path = tmp_path / "t.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        assert main(["obs", "flame", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.strip()
        assert all(
            line.rsplit(" ", 1)[1].isdigit()
            for line in out.strip().splitlines()
        )
        assert main(["obs", "hotspot", str(path)]) == 0
        assert "Guest hotspots" in capsys.readouterr().out
