"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv) -> tuple[int, str]:
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestCli:
    def test_apps_lists_table1(self):
        code, out = run_cli("apps")
        assert code == 0
        for name in ("xsbench", "kmeans", "needle"):
            assert name in out

    def test_run_golden(self):
        code, out = run_cli("run", "pathfinder")
        assert code == 0
        assert "dynamic instructions" in out

    def test_ir_prints_module(self):
        code, out = run_cli("ir", "knn")
        assert code == 0
        assert out.startswith("module knn")
        assert "func @main" in out

    def test_inject_reports_ci(self):
        code, out = run_cli("inject", "pathfinder", "--faults", "40")
        assert code == 0
        assert "SDC probability" in out and "CI" in out

    def test_inject_checkpointed_matches_cold(self):
        _, cold = run_cli("inject", "pathfinder", "--faults", "40")
        _, auto = run_cli(
            "inject", "pathfinder", "--faults", "40",
            "--checkpoint-interval", "auto",
        )
        _, fixed = run_cli(
            "inject", "pathfinder", "--faults", "40",
            "--checkpoint-interval", "512",
        )
        assert cold == auto == fixed

    def test_bad_checkpoint_interval_rejected(self):
        for bad in ("soon", "0", "-8"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["inject", "pathfinder", "--checkpoint-interval", bad]
                )

    def test_protect_sid(self):
        code, out = run_cli(
            "protect", "pathfinder", "--method", "sid",
            "--level", "0.4", "--trials", "3",
        )
        assert code == 0
        assert "classic SID" in out and "expected SDC coverage" in out

    def test_protect_minpsid_with_eval(self):
        code, out = run_cli(
            "protect", "pathfinder", "--method", "minpsid",
            "--trials", "2", "--search-inputs", "1",
            "--eval-inputs", "2", "--faults", "30",
        )
        assert code == 0
        assert "MINPSID" in out
        assert "incubative found" in out
        assert "measured coverage" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSupervisorFlags:
    def test_flags_parse_on_campaign_commands(self):
        for cmd in (["inject", "pathfinder"], ["protect", "pathfinder"]):
            args = build_parser().parse_args(
                cmd + ["--max-retries", "5", "--task-timeout", "1.5"]
            )
            assert args.max_retries == 5
            assert args.task_timeout == 1.5

    def test_chaos_campaign_matches_serial(self, monkeypatch):
        _, serial = run_cli("inject", "pathfinder", "--faults", "48",
                            "--seed", "31")
        monkeypatch.setenv("REPRO_CHAOS", "crash@1")
        code, chaos = run_cli(
            "inject", "pathfinder", "--faults", "48", "--seed", "31",
            "--workers", "2", "--max-retries", "3",
        )
        assert code == 0
        assert chaos == serial

    def test_harness_failure_exits_3_with_summary(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CHAOS", "exc@0#*")
        code, _ = run_cli(
            "inject", "pathfinder", "--faults", "48", "--seed", "31",
            "--workers", "2", "--max-retries", "1",
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "harness failure" in err
        assert "WorkerError" in err
        assert "Traceback" not in err


class TestFleetCli:
    ARGS = ("--hosts", "24", "--defective", "2", "--rounds", "8",
            "--seed", "3", "--apps", "kmeans,fft", "--workers", "0")

    def test_fleet_run_renders_summary(self, tmp_path):
        trace = tmp_path / "fleet.jsonl"
        code, out = run_cli("fleet", "run", *self.ARGS,
                            "--trace", str(trace))
        assert code == 0
        assert "Fleet summary" in out
        assert "Defective hosts" in out
        # The trace feeds the obs-side report.
        code, view = run_cli("obs", "fleet", str(trace))
        assert code == 0
        assert "escape rate" in view and "fleet.jobs" in view

    def test_fleet_run_policy_flag(self):
        code, out = run_cli("fleet", "run", *self.ARGS,
                            "--policy", "paranoid,test_depth=64")
        assert code == 0
        assert "test_every=1" in out and "test_depth=64" in out

    def test_fleet_sweep_check_monotone(self):
        code, out = run_cli("fleet", "sweep", *self.ARGS,
                            "--check-monotone")
        assert code == 0
        assert "paranoid" in out
        assert "monotone" in out

    def test_bad_policy_is_a_config_error(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_cli("fleet", "run", *self.ARGS, "--policy", "bogus")
