"""Cross-cutting properties: duplication on all apps, outcome bookkeeping,
error taxonomy, and the public API surface."""

import pytest

from repro.errors import (
    ArithmeticTrap,
    ConfigError,
    DetectedError,
    HangTimeout,
    IRError,
    MemoryFault,
    ParseError,
    ReproError,
    StackOverflow,
    Trap,
    VerificationError,
)
from repro.fi.faultmodel import injectable_iids
from repro.sid.duplication import duplicate_instructions
from repro.vm.interpreter import Program
from repro.vm.profiler import profile_run


class TestErrorTaxonomy:
    def test_traps_are_traps(self):
        for exc in (MemoryFault, ArithmeticTrap, HangTimeout, DetectedError,
                    StackOverflow):
            assert issubclass(exc, Trap)

    def test_toolchain_errors_are_not_traps(self):
        for exc in (IRError, VerificationError, ParseError, ConfigError):
            assert issubclass(exc, ReproError)
            assert not issubclass(exc, Trap)

    def test_detected_error_payload(self):
        e = DetectedError("chk.5", 1.0, 2.0)
        assert e.check_name == "chk.5" and e.lhs == 1.0 and e.rhs == 2.0


class TestDuplicationOnAllApps:
    """The duplication pass must preserve golden behaviour on every
    benchmark — the strongest end-to-end check of the transformation."""

    def test_protect_quarter_of_instructions(self, each_app):
        app = each_app
        inj = injectable_iids(app.module)
        selected = inj[:: max(1, len(inj) // 20)][:25]
        prot = duplicate_instructions(app.module, selected)
        args, bindings = app.encode(app.reference_input)
        golden = app.program.run(args=args, bindings=bindings)
        run = Program(prot.module).run(args=args, bindings=bindings)
        assert run.output == golden.output
        # Protection adds dynamic work, never removes it.
        assert run.steps >= golden.steps

    def test_protect_everything(self, each_app):
        """Full duplication (Fig. 1b) also preserves behaviour."""
        app = each_app
        prot = duplicate_instructions(app.module, injectable_iids(app.module))
        args, bindings = app.encode(app.reference_input)
        golden = app.program.run(args=args, bindings=bindings)
        run = Program(prot.module).run(args=args, bindings=bindings)
        assert run.output == golden.output


class TestProfilesOnApps:
    def test_profile_consistency(self, each_app):
        app = each_app
        args, bindings = app.encode(app.reference_input)
        prof = profile_run(app.program, args=args, bindings=bindings)
        # Terminator counts define block weights; entry executes >= once.
        entry = app.module.functions["main"].entry
        term_iid = entry.terminator.iid
        assert prof.instr_counts[term_iid] >= 1
        # Steps accounting matches the per-instruction counts.
        assert prof.steps == sum(prof.instr_counts)


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__

    def test_subpackage_exports(self):
        # NB: use importlib — `repro.minpsid` the *attribute* is the pipeline
        # function (it shadows the submodule on the parent package), so
        # attribute-style import would not reach the module object.
        import importlib

        for modname in (
            "repro.exp", "repro.fi", "repro.ir", "repro.minpsid",
            "repro.sid", "repro.vm", "repro.apps", "repro.util",
        ):
            mod = importlib.import_module(modname)
            for name in mod.__all__:
                assert getattr(mod, name) is not None, f"{modname}.{name}"
