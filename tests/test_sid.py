"""Tests for the SID baseline: profiles, knapsack, selection, duplication."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DetectedError
from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.sid.coverage import coverage_loss, expected_coverage, measured_coverage
from repro.sid.duplication import duplicate_instructions
from repro.sid.knapsack import dp_knapsack, greedy_knapsack, knapsack_select
from repro.sid.pipeline import SIDConfig, classic_sid
from repro.sid.profiles import build_cost_benefit_profile
from repro.sid.selection import select_instructions
from repro.vm.interpreter import FaultSpec, Program
from repro.vm.profiler import profile_run
from tests.conftest import build_sum_squares_module


@pytest.fixture(scope="module")
def sumsq_profile():
    m = build_sum_squares_module()
    p = Program(m)
    data = {"data": [float(i % 5) + 0.5 for i in range(32)]}
    dyn = profile_run(p, args=[16], bindings=data)
    fi = run_per_instruction_campaign(
        p, 6, seed=42, args=[16], bindings=data, profile=dyn
    )
    return m, p, data, build_cost_benefit_profile(m, dyn, fi)


class TestProfiles:
    def test_benefit_is_prob_times_cost(self, sumsq_profile):
        _, _, _, prof = sumsq_profile
        for iid in prof.iids:
            assert prof.benefit[iid] == pytest.approx(
                prof.sdc_prob[iid] * prof.cost[iid]
            )

    def test_costs_are_fractions(self, sumsq_profile):
        _, _, _, prof = sumsq_profile
        assert all(0.0 <= prof.cost[iid] <= 1.0 for iid in prof.iids)

    def test_with_benefits_copy_semantics(self, sumsq_profile):
        _, _, _, prof = sumsq_profile
        target = prof.iids[0]
        updated = prof.with_benefits({target: 123.0})
        assert updated.benefit[target] == 123.0
        assert prof.benefit[target] != 123.0

    def test_sdc_mass_nonnegative(self, sumsq_profile):
        _, _, _, prof = sumsq_profile
        assert prof.total_sdc_mass() >= 0.0


class TestKnapsack:
    def test_greedy_respects_budget(self):
        items = [(0, 5.0, 10.0), (1, 5.0, 9.0), (2, 5.0, 8.0)]
        chosen = greedy_knapsack(items, 10.0)
        assert chosen == [0, 1]

    def test_greedy_takes_free_items(self):
        items = [(0, 0.0, 1.0), (1, 100.0, 5.0)]
        assert greedy_knapsack(items, 1.0) == [0]

    def test_greedy_skips_worthless(self):
        items = [(0, 1.0, 0.0), (1, 1.0, 1.0)]
        assert greedy_knapsack(items, 10.0) == [1]

    def test_dp_optimal_where_greedy_fails(self):
        # Greedy takes the densest item (0: 2.0/unit) which blocks the
        # heavier but more valuable item 1; the DP finds the optimum.
        items = [(0, 1, 2.0), (1, 3, 5.0)]
        assert dp_knapsack(items, 3) == [1]
        assert greedy_knapsack([(k, float(w), v) for k, w, v in items], 3.0) == [0]

    def test_dp_guard(self):
        with pytest.raises(ConfigError):
            dp_knapsack([(i, 10**6, 1.0) for i in range(100)], 10**6)

    def test_greedy_tiebreak_is_deterministic(self):
        """Equal-density items rank by iid, whatever the input order."""
        items = [(7, 2.0, 4.0), (3, 2.0, 4.0), (5, 2.0, 4.0), (1, 2.0, 4.0)]
        budget = 4.0  # room for exactly two of the four
        expected = greedy_knapsack(sorted(items), budget)
        assert expected == [1, 3]  # lowest iids win the slack
        for shuffled in (items, list(reversed(items)), items[2:] + items[:2]):
            assert greedy_knapsack(shuffled, budget) == expected

    def test_greedy_tiebreak_density_before_iid(self):
        # Denser item 9 is bought first despite its higher iid, leaving
        # slack for only one of the equal-density pair — the lower iid.
        items = [(9, 1.0, 3.0), (1, 2.0, 4.0), (2, 2.0, 4.0)]
        assert greedy_knapsack(items, 3.0) == [1, 9]

    def test_knapsack_select_methods_agree_when_easy(self):
        weights = {i: 1.0 for i in range(10)}
        values = {i: float(i) for i in range(10)}
        g = knapsack_select(weights, values, 3.0, method="greedy")
        d = knapsack_select(weights, values, 3, method="dp")
        assert set(g) == set(d) == {7, 8, 9}

    def test_unknown_method(self):
        with pytest.raises(ConfigError):
            knapsack_select({}, {}, 1.0, method="magic")

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),
                st.floats(min_value=0.0, max_value=10.0),
            ),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_dp_never_exceeds_capacity_and_beats_greedy(self, raw, cap):
        items = [(k, w, v) for k, (w, v) in enumerate(raw)]
        chosen_dp = dp_knapsack(items, cap)
        weight = sum(items[k][1] for k in chosen_dp)
        assert weight <= cap
        value_dp = sum(items[k][2] for k in chosen_dp)
        chosen_g = greedy_knapsack([(k, float(w), v) for k, w, v in items], cap)
        value_g = sum(items[k][2] for k in chosen_g)
        assert value_dp >= value_g - 1e-9


class TestSelection:
    def test_budget_respected(self, sumsq_profile):
        _, _, _, prof = sumsq_profile
        sel = select_instructions(prof, 0.5)
        assert sel.used_budget <= 0.5 + 1e-9

    def test_expected_coverage_monotone_in_level(self, sumsq_profile):
        _, _, _, prof = sumsq_profile
        covs = [
            select_instructions(prof, lvl).expected_coverage
            for lvl in (0.1, 0.3, 0.5, 0.9)
        ]
        assert covs == sorted(covs)

    def test_full_budget_covers_everything(self, sumsq_profile):
        _, _, _, prof = sumsq_profile
        sel = select_instructions(prof, 1.0)
        assert sel.expected_coverage == pytest.approx(1.0)

    def test_bad_level(self, sumsq_profile):
        _, _, _, prof = sumsq_profile
        with pytest.raises(ConfigError):
            select_instructions(prof, 0.0)
        with pytest.raises(ConfigError):
            select_instructions(prof, 1.5)


class TestDuplication:
    def test_golden_behaviour_preserved(self, sumsq_profile):
        m, p, data, prof = sumsq_profile
        sel = select_instructions(prof, 0.5)
        prot = duplicate_instructions(m, sel.selected)
        golden = p.run(args=[16], bindings=data)
        protected_run = Program(prot.module).run(args=[16], bindings=data)
        assert protected_run.output == golden.output

    def test_dup_and_check_inserted(self, sumsq_profile):
        m, _, _, prof = sumsq_profile
        sel = select_instructions(prof, 0.5)
        prot = duplicate_instructions(m, sel.selected)
        assert prot.checks == len(sel.selected)
        dups = [
            i for i in prot.module.instructions()
            if i.origin is not None and i.opcode != "check"
        ]
        assert len(dups) == len(sel.selected)

    def test_checks_before_sync_points(self, sumsq_profile):
        """Every check precedes the next sync point after its duplicate."""
        m, _, _, prof = sumsq_profile
        sel = select_instructions(prof, 0.5)
        prot = duplicate_instructions(m, sel.selected)
        for fn in prot.module.functions.values():
            for blk in fn.blocks.values():
                pending = set()
                for instr in blk.instructions:
                    if instr.opcode == "check":
                        pending.discard(instr.origin)
                    elif instr.is_sync_point:
                        assert not pending, (
                            f"unchecked duplicates {pending} at sync point "
                            f"{instr.opcode} in {blk.name}"
                        )
                    elif instr.origin is not None:
                        pending.add(instr.origin)

    def test_fault_on_protected_instruction_detected(self, sumsq_profile):
        m, _, data, prof = sumsq_profile
        fmul = [i.iid for i in m.instructions() if i.opcode == "fmul"]
        prot = duplicate_instructions(m, fmul)
        pp = Program(prot.module)
        new_iid = prot.iid_map[fmul[0]]
        with pytest.raises(DetectedError):
            pp.run(args=[16], bindings=data, fault=FaultSpec(new_iid, 3, 60))

    def test_fault_on_duplicate_also_detected(self, sumsq_profile):
        m, _, data, prof = sumsq_profile
        fmul = [i.iid for i in m.instructions() if i.opcode == "fmul"]
        prot = duplicate_instructions(m, fmul)
        pp = Program(prot.module)
        dup_iid = prot.dup_map[fmul[0]]
        with pytest.raises(DetectedError):
            pp.run(args=[16], bindings=data, fault=FaultSpec(dup_iid, 3, 60))

    def test_immediate_placement(self, sumsq_profile):
        m, _, data, prof = sumsq_profile
        fmul = [i.iid for i in m.instructions() if i.opcode == "fmul"]
        prot = duplicate_instructions(m, fmul, check_placement="immediate")
        run = Program(prot.module).run(args=[16], bindings=data)
        assert run.output  # behaviour preserved

    def test_immediate_placement_check_adjacent(self, sumsq_profile):
        """The ablation's check follows its duplicate with nothing between."""
        m, _, _, prof = sumsq_profile
        fmul = [i.iid for i in m.instructions() if i.opcode == "fmul"]
        prot = duplicate_instructions(m, fmul, check_placement="immediate")
        for fn in prot.module.functions.values():
            for blk in fn.blocks.values():
                seq = blk.instructions
                for k, instr in enumerate(seq):
                    if instr.origin in fmul and instr.opcode != "check":
                        assert seq[k + 1].opcode == "check"
                        assert seq[k + 1].origin == instr.origin

    def test_duplication_inside_loop_body(self, sumsq_profile):
        """In-loop duplicates re-execute per iteration and stay checked."""
        m, p, data, prof = sumsq_profile
        fmul = [i.iid for i in m.instructions() if i.opcode == "fmul"]
        loop_blocks = {
            blk.name
            for fn in m.functions.values()
            for blk in fn.blocks.values()
            for i in blk.instructions
            if i.iid in fmul
        }
        prot = duplicate_instructions(m, fmul)
        placed = {
            blk.name
            for fn in prot.module.functions.values()
            for blk in fn.blocks.values()
            for i in blk.instructions
            if i.origin in fmul
        }
        assert placed == loop_blocks  # pair stays in the loop body block
        golden = p.run(args=[16], bindings=data)
        run = Program(prot.module).run(args=[16], bindings=data)
        assert run.output == golden.output
        # One dynamic check per loop iteration, not one per program.
        from repro.vm.profiler import profile_run as _profile
        counts = _profile(
            Program(prot.module), args=[16], bindings=data
        ).instr_counts
        chk = [
            i.iid for i in prot.module.instructions()
            if i.opcode == "check" and i.origin == fmul[0]
        ]
        assert counts[chk[0]] == 16

    def test_store_placement_checks_only_before_stores(self, sumsq_profile):
        m, p, data, prof = sumsq_profile
        fmul = [i.iid for i in m.instructions() if i.opcode == "fmul"]
        prot = duplicate_instructions(m, fmul, check_placement="store")
        for fn in prot.module.functions.values():
            for blk in fn.blocks.values():
                seq = blk.instructions
                for k, instr in enumerate(seq):
                    if instr.opcode == "check":
                        assert seq[k + 1].opcode == "store"
        run = Program(prot.module).run(args=[16], bindings=data)
        assert run.output == p.run(args=[16], bindings=data).output

    def test_origin_mapping(self, sumsq_profile):
        m, _, _, prof = sumsq_profile
        sel = select_instructions(prof, 0.3)
        prot = duplicate_instructions(m, sel.selected)
        for old, new in prot.iid_map.items():
            assert prot.origin_of(new) == old
        for old, dup in prot.dup_map.items():
            assert prot.origin_of(dup) == old

    def test_cannot_duplicate_void(self, sumsq_profile):
        m, _, _, _ = sumsq_profile
        store = [i.iid for i in m.instructions() if i.opcode == "store"][0]
        with pytest.raises(ConfigError):
            duplicate_instructions(m, [store])

    def test_original_module_untouched(self, sumsq_profile):
        m, _, _, prof = sumsq_profile
        before = m.instruction_count()
        duplicate_instructions(m, prof.iids[:3])
        assert m.instruction_count() == before


class TestCoverage:
    def test_measured_coverage(self):
        assert measured_coverage(0.4, 0.1) == pytest.approx(0.75)
        assert measured_coverage(0.4, 0.0) == 1.0
        assert measured_coverage(0.0, 0.1) is None

    def test_measured_coverage_clamped(self):
        assert measured_coverage(0.1, 0.5) == 0.0

    def test_coverage_loss(self):
        assert coverage_loss(0.9, 0.5) == pytest.approx(0.4)
        assert coverage_loss(0.9, 0.95) == 0.0
        assert coverage_loss(0.9, None) == 0.0

    def test_protection_reduces_sdc_probability(self, sumsq_profile):
        m, p, data, prof = sumsq_profile
        sel = select_instructions(prof, 0.7)
        prot = duplicate_instructions(m, sel.selected)
        pu = run_campaign(p, 150, seed=9, args=[16], bindings=data).sdc_probability
        pp = run_campaign(
            Program(prot.module), 150, seed=10, args=[16], bindings=data
        ).sdc_probability
        assert pp < pu


class TestPipeline:
    def test_classic_sid_end_to_end(self, sumsq_profile):
        m, _, data, _ = sumsq_profile
        res = classic_sid(
            m, [16], data, SIDConfig(protection_level=0.5, per_instruction_trials=4)
        )
        assert 0.0 <= res.expected_coverage <= 1.0
        assert res.protected.checks > 0
        assert res.selection.used_budget <= 0.5 + 1e-9

    def test_pipeline_deterministic(self, sumsq_profile):
        m, _, data, _ = sumsq_profile
        cfg = SIDConfig(protection_level=0.4, per_instruction_trials=4, seed=77)
        a = classic_sid(m, [16], data, cfg)
        b = classic_sid(m, [16], data, cfg)
        assert a.selection.selected == b.selection.selected
        assert a.expected_coverage == b.expected_coverage
