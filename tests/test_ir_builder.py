"""Tests for the Builder API and its structured control-flow helpers."""

import pytest

from repro.errors import IRError
from repro.ir import F64, I1, I32, I64, Builder, Module, VOID
from repro.vm.interpreter import Program


def fresh(name="t", args=(("n", I64),), ret=VOID):
    m = Module(name)
    b = Builder.new_function(m, "main", list(args), ret)
    return m, b


class TestTypeChecking:
    def test_binop_type_mismatch(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.add(b.i64(1), b.const(I32, 1))

    def test_float_op_on_ints(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.fadd(b.i64(1), b.i64(2))

    def test_icmp_bad_predicate(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.icmp("lt", b.i64(1), b.i64(2))

    def test_fcmp_on_ints(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.fcmp("olt", b.i64(1), b.i64(2))

    def test_select_cond_must_be_i1(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.select(b.i64(1), b.f64(1.0), b.f64(2.0))

    def test_condbr_cond_must_be_i1(self):
        m, b = fresh()
        t = b.new_block("t")
        with pytest.raises(IRError):
            b.condbr(b.i64(1), t, t)

    def test_load_requires_pointer(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.load(b.i64(0), I64)

    def test_fmath_unknown_fn(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.fmath("tan", b.f64(1.0))

    def test_alloca_bad_count(self):
        _, b = fresh()
        with pytest.raises(IRError):
            b.alloca(I64, 0)


class TestStructuredHelpers:
    def run_main(self, m, args):
        m.finalize()
        return Program(m).run(args=args)

    def test_for_loop_counts(self):
        m, b = fresh()
        total = b.local(I64, b.i64(0))
        with b.for_loop(b.i64(0), b.function.arg("n")) as i:
            b.set(total, b.add(b.get(total, I64), i))
        b.emit_output(b.get(total, I64))
        b.ret()
        assert self.run_main(m, [10]).output == [45]

    def test_for_loop_negative_step(self):
        m, b = fresh()
        out = b.local(I64, b.i64(0))
        with b.for_loop(b.function.arg("n"), b.i64(0), step=-1) as i:
            b.set(out, b.add(b.get(out, I64), i))
        b.emit_output(b.get(out, I64))
        b.ret()
        # 5 + 4 + 3 + 2 + 1 = 15
        assert self.run_main(m, [5]).output == [15]

    def test_for_loop_zero_step_rejected(self):
        _, b = fresh()
        with pytest.raises(IRError):
            with b.for_loop(b.i64(0), b.i64(5), step=0):
                pass

    def test_for_loop_empty_range(self):
        m, b = fresh()
        with b.for_loop(b.i64(5), b.i64(5)) as _:
            b.emit_output(b.i64(99))
        b.emit_output(b.i64(1))
        b.ret()
        assert self.run_main(m, [0]).output == [1]

    def test_nested_loops(self):
        m, b = fresh()
        total = b.local(I64, b.i64(0))
        with b.for_loop(b.i64(0), b.function.arg("n")) as i:
            with b.for_loop(b.i64(0), b.function.arg("n")) as j:
                b.set(total, b.add(b.get(total, I64), b.mul(i, j)))
        b.emit_output(b.get(total, I64))
        b.ret()
        n = 4
        expect = sum(i * j for i in range(n) for j in range(n))
        assert self.run_main(m, [n]).output == [expect]

    def test_while_loop(self):
        m, b = fresh()
        x = b.local(I64, b.function.arg("n"))
        steps = b.local(I64, b.i64(0))

        def cond():
            return b.icmp("sgt", b.get(x, I64), b.i64(1))

        with b.while_loop(cond):
            cur = b.get(x, I64)
            even = b.icmp("eq", b.and_(cur, b.i64(1)), b.i64(0))
            with b.if_then_else(even) as otherwise:
                b.set(x, b.sdiv(cur, b.i64(2)))
                otherwise()
                b.set(x, b.add(b.mul(cur, b.i64(3)), b.i64(1)))
            b.set(steps, b.add(b.get(steps, I64), b.i64(1)))
        b.emit_output(b.get(steps, I64))
        b.ret()
        # Collatz(6): 6→3→10→5→16→8→4→2→1 = 8 steps
        assert self.run_main(m, [6]).output == [8]

    def test_if_then(self):
        m, b = fresh()
        out = b.local(I64, b.i64(0))
        c = b.icmp("sgt", b.function.arg("n"), b.i64(5))
        with b.if_then(c):
            b.set(out, b.i64(1))
        b.emit_output(b.get(out, I64))
        b.ret()
        assert self.run_main(m, [10]).output == [1]

    def test_if_then_else_requires_otherwise(self):
        _, b = fresh()
        with pytest.raises(IRError):
            with b.if_then_else(b.true()) as otherwise:
                pass  # never calling otherwise() is a builder bug

    def test_if_then_else_otherwise_once(self):
        _, b = fresh()
        with pytest.raises(IRError):
            with b.if_then_else(b.true()) as otherwise:
                otherwise()
                otherwise()

    def test_unique_block_names(self):
        m, b = fresh()
        b1 = b.new_block("x")
        b2 = b.new_block("x")
        assert b1.name != b2.name


class TestFunctions:
    def test_call_between_functions(self):
        m = Module("m")
        bd = Builder.new_function(m, "double", [("x", I64)], I64)
        bd.ret(bd.mul(bd.function.arg("x"), bd.i64(2)))
        b = Builder.new_function(m, "main", [("n", I64)], VOID)
        r = b.call("double", [b.function.arg("n")], I64)
        b.emit_output(r)
        b.ret()
        m.finalize()
        assert Program(m).run(args=[21]).output == [42]

    def test_recursion(self):
        m = Module("m")
        bf = Builder.new_function(m, "fact", [("n", I64)], I64)
        narg = bf.function.arg("n")
        base = bf.icmp("sle", narg, bf.i64(1))
        with bf.if_then(base):
            bf.ret(bf.i64(1))
        rec = bf.call("fact", [bf.sub(narg, bf.i64(1))], I64)
        bf.ret(bf.mul(narg, rec))
        b = Builder.new_function(m, "main", [("n", I64)], VOID)
        b.emit_output(b.call("fact", [b.function.arg("n")], I64))
        b.ret()
        m.finalize()
        assert Program(m).run(args=[6]).output == [720]
