"""Span-graph tracing: nesting, cross-process shipping, and the determinism
contract — span trees are structurally identical across worker counts and
engines, and campaigns stay bit-identical with spans on or off."""

from __future__ import annotations

import pytest

from repro.fi.campaign import run_campaign
from repro.obs.core import install_worker, session
from repro.obs.schema import lint_records
from repro.obs.sink import MemorySink
from repro.obs.spans import (
    span,
    span_records,
    span_tree,
    structural_signature,
)

FAULTS = 64
SEED = 2022


@pytest.fixture(autouse=True)
def _fast_heartbeats(monkeypatch):
    monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0")


def _campaign(app, workers, **kw):
    a, b = app.encode(app.reference_input)
    return run_campaign(
        app.program, FAULTS, SEED, args=a, bindings=b,
        rel_tol=app.rel_tol, abs_tol=app.abs_tol, workers=workers,
        cache=False, **kw
    )


class TestSpanContextManager:
    def test_noop_without_telemetry(self):
        with span("outer") as sp:
            assert sp.span_id is None  # whole span is free when untraced

    def test_nesting_sets_parent(self):
        sink = MemorySink()
        with session(sink=sink):
            with span("outer") as outer:
                with span("inner"):
                    pass
        spans = span_records(sink.records)
        assert [r["name"] for r in spans] == ["inner", "outer"]  # exit order
        inner, outer_rec = spans
        assert inner["fields"]["parent_id"] == outer.span_id
        assert outer_rec["fields"]["parent_id"] is None
        assert outer_rec["fields"]["seconds"] >= inner["fields"]["seconds"]

    def test_attributes_added_until_exit(self):
        sink = MemorySink()
        with session(sink=sink):
            with span("campaign", {"label": "x"}) as sp:
                sp.fields["trials"] = 7
        rec = span_records(sink.records)[0]
        assert rec["fields"]["label"] == "x"
        assert rec["fields"]["trials"] == 7

    def test_attributes_cannot_shadow_identity(self):
        sink = MemorySink()
        with session(sink=sink):
            with span("s") as sp:
                sp.fields["span_id"] = "forged"
        rec = span_records(sink.records)[0]
        assert rec["fields"]["span_id"] == sp.span_id != "forged"

    def test_emitted_on_exception(self):
        sink = MemorySink()
        with session(sink=sink):
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        assert [r["name"] for r in span_records(sink.records)] == ["doomed"]

    def test_span_records_lint_clean(self):
        sink = MemorySink()
        with session(sink=sink):
            with span("a", infra=True):
                with span("b", {"trials": 3}):
                    pass
        assert lint_records(sink.records) == []


class TestWorkerSpanShipping:
    def test_worker_buffers_and_drains(self):
        from repro.obs.core import _install

        t = install_worker(span_root="s1")
        try:
            with span("chunk", infra=True):
                with span("trial", infra=True):
                    pass
            shipped = t.drain_spans()
        finally:
            _install(None)
        assert [r["name"] for r in shipped] == ["trial", "chunk"]
        chunk = shipped[1]
        assert chunk["fields"]["parent_id"] == "s1"  # seeded campaign root
        assert all(
            r["fields"]["span_id"].startswith(f"w{t.pid}-") for r in shipped
        )
        assert t.drain_spans() == []  # drained means drained

    def test_parallel_campaign_ships_worker_subtrees(self, pathfinder_app):
        sink = MemorySink()
        with session(sink=sink):
            _campaign(pathfinder_app, workers=2)
        recs = sink.records
        assert lint_records(recs) == []
        worker_spans = [
            r for r in span_records(recs)
            if r["fields"]["span_id"].startswith("w")
        ]
        assert worker_spans, "worker span subtrees must ship home"
        # Shipped records are re-homed under the parent's run id.
        assert {r["run"] for r in recs} == {recs[0]["run"]}
        # Every worker chunk parents under the (parent-side) campaign span.
        roots, nodes = span_tree(recs)
        campaign = [
            n for n in nodes.values() if n["record"]["name"] == "campaign"
        ]
        assert len(campaign) == 1
        chunk_parents = {
            r["fields"]["parent_id"]
            for r in worker_spans if r["name"] == "chunk"
        }
        assert chunk_parents == {
            campaign[0]["record"]["fields"]["span_id"]
        }


class TestSpanTreeDeterminism:
    """The acceptance criterion: structurally identical span trees across
    REPRO_WORKERS=0/2 and --engine=scalar/batch; bit-identical outcomes."""

    def _traced(self, app, workers, engine):
        sink = MemorySink()
        with session(sink=sink):
            camp = _campaign(app, workers=workers, engine=engine)
        assert lint_records(sink.records) == []
        return camp, sink.records

    def test_signature_stable_across_workers_and_engines(
        self, pathfinder_app
    ):
        bare = _campaign(pathfinder_app, workers=0)
        sigs, variants = set(), []
        for workers in (0, 2):
            for engine in ("scalar", "batch"):
                camp, recs = self._traced(pathfinder_app, workers, engine)
                assert camp.per_fault == bare.per_fault, (workers, engine)
                sigs.add(structural_signature(recs))
                variants.append((workers, engine))
        assert len(sigs) == 1, f"signature diverged across {variants}"
        (sig,) = sigs
        # The workload shape itself: one campaign span with its attributes.
        assert sig == (
            ("campaign", (("label", "fi.whole-program"),
                          ("trials", FAULTS)), ()),
        )

    def test_infra_spans_exist_but_are_pruned(self, pathfinder_app):
        _, recs = self._traced(pathfinder_app, workers=0, engine="scalar")
        infra = [
            r for r in span_records(recs) if r["fields"].get("infra")
        ]
        assert infra, "scalar campaigns must emit trial/chunk infra spans"
        assert {"chunk", "trial", "vm.run"} <= {r["name"] for r in infra}
        full = structural_signature(recs, include_infra=True)
        pruned = structural_signature(recs)
        assert full != pruned  # infra spans really were in the tree


class TestSpanTreeHelpers:
    def test_orphans_become_roots(self):
        sink = MemorySink()
        with session(sink=sink):
            with span("parent"):
                with span("child"):
                    pass
        recs = sink.records
        # Drop the parent (as a truncated trace would): child must still
        # materialize, as a root.
        truncated = [
            r for r in recs
            if not (r.get("kind") == "span" and r["name"] == "parent")
        ]
        roots, _ = span_tree(truncated)
        assert [n["record"]["name"] for n in roots] == ["child"]

    def test_lint_flags_broken_span_trees(self):
        sink = MemorySink()
        with session(sink=sink):
            with span("a"):
                pass
        recs = [dict(r, fields=dict(r["fields"])) for r in sink.records]
        for r in recs:
            if r.get("kind") == "span":
                r["fields"]["parent_id"] = "sX"  # dangling parent
        errs = lint_records(recs)
        assert any("parent" in e for e in errs)
