"""Unit tests for the static error-propagation analysis (``repro.analysis``)."""

import pytest

from repro.analysis.dataflow import (
    build_def_use,
    dominator_tree,
    loop_depth,
)
from repro.analysis.masking import DEFAULT_MASKING, MaskingModel
from repro.analysis.model import (
    density_ranked,
    model_verify_set,
    predict_sdc_probabilities,
    predicted_whole_program_sdc,
)
from repro.analysis.summaries import module_summaries, summarize_function
from repro.analysis.validate import spearman, top_k_overlap, validate_model
from repro.cache.active import cache_scope
from repro.fi.faultmodel import injectable_iids
from repro.ir.parser import parse_module
from repro.obs import MemorySink, session
from repro.vm.profiler import profile_run

LOOP = """
module loop

func @main(%n: i64) -> void {
entry:
  %i.slot.0 = alloca i64 x 1
  store i64 0, ptr %i.slot.0
  br head
head:
  %i.1 = load i64 ptr %i.slot.0
  %cmp.2 = icmp slt i64 %i.1, i64 %n
  condbr i1 %cmp.2, body, done
body:
  %dbl.3 = mul i64 %i.1, i64 2
  emit i64 %dbl.3
  %next.4 = add i64 %i.1, i64 1
  store i64 %next.4, ptr %i.slot.0
  br head
done:
  ret
}
"""


@pytest.fixture()
def loop_module():
    return parse_module(LOOP)


class TestDataflow:
    def test_def_use_edges(self, loop_module):
        fn = loop_module.functions["main"]
        graph = build_def_use(loop_module)
        by_name = {i.name: i for i in fn.instructions() if i.name}
        # %i.1 is consumed by the compare, the multiply, and the add.
        users = {u.user.name for u in graph.uses_of(by_name["i.1"].iid)}
        assert {"cmp.2", "dbl.3", "next.4"} <= users

    def test_dominator_tree(self, loop_module):
        fn = loop_module.functions["main"]
        idom = dominator_tree(fn)
        assert idom["head"] == "entry"
        assert idom["body"] == "head"
        assert idom["done"] == "head"

    def test_loop_depth(self, loop_module):
        fn = loop_module.functions["main"]
        depth = loop_depth(fn)
        assert depth["entry"] == 0
        assert depth["head"] == 1
        assert depth["body"] == 1
        assert depth["done"] == 0


class TestMasking:
    def test_bit_observability_integer_is_full(self, loop_module):
        instr = next(
            i for i in loop_module.instructions() if i.opcode == "mul"
        )
        assert DEFAULT_MASKING.bit_observability(instr, rel_tol=0.0) == 1.0

    def test_tolerance_hides_low_mantissa_bits(self):
        mod = parse_module(
            "module t\n\nfunc @main(%x: f64) -> void {\nentry:\n"
            "  %y.0 = fadd f64 %x, f64 %x\n  emit f64 %y.0\n  ret\n}\n"
        )
        instr = next(i for i in mod.instructions() if i.opcode == "fadd")
        full = DEFAULT_MASKING.bit_observability(instr, rel_tol=0.0)
        loose = DEFAULT_MASKING.bit_observability(instr, rel_tol=1e-3)
        assert 0.0 < loose < full <= 1.0

    def test_fingerprint_tracks_constants(self):
        a = MaskingModel()
        b = MaskingModel(cmp_equality=0.999)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == MaskingModel().fingerprint()


class TestSummaries:
    def test_emit_feeds_the_sink_channel(self, loop_module):
        fn = loop_module.functions["main"]
        summary = summarize_function(fn, DEFAULT_MASKING, cache=False)
        instrs = list(fn.instructions())
        mul_idx = next(
            k for k, i in enumerate(instrs) if i.opcode == "mul"
        )
        assert summary.instr[mul_idx].sink > 0.5  # emitted directly

    def test_section_summaries_are_cached_per_function(
        self, loop_module, tmp_path
    ):
        sink = MemorySink()
        with cache_scope(tmp_path / "store"), session(sink=sink):
            module_summaries(loop_module, DEFAULT_MASKING)
            module_summaries(loop_module, DEFAULT_MASKING)
        counters = sink.records[-1]["fields"]["counters"]
        assert counters["model.summary_misses"] == 1
        assert counters["model.summary_hits"] == 1

    def test_masking_change_invalidates_the_summary_cache(
        self, loop_module, tmp_path
    ):
        sink = MemorySink()
        with cache_scope(tmp_path / "store"), session(sink=sink):
            module_summaries(loop_module, DEFAULT_MASKING)
            module_summaries(loop_module, MaskingModel(cmp_equality=0.999))
        counters = sink.records[-1]["fields"]["counters"]
        assert counters["model.summary_misses"] == 2
        assert counters.get("model.summary_hits", 0) == 0


class TestModel:
    def test_predictions_cover_executed_instructions(self, loop_module):
        from repro.vm.interpreter import Program

        program = Program(loop_module)
        dyn = profile_run(program, args=[4])
        predicted = predict_sdc_probabilities(loop_module, dyn)
        assert set(predicted.sdc_prob) == set(injectable_iids(loop_module))
        executed = [
            iid for iid in predicted.sdc_prob if dyn.instr_counts[iid] > 0
        ]
        assert any(predicted.sdc_prob[iid] > 0 for iid in executed)
        assert all(
            predicted.sdc_prob[iid] == 0.0
            for iid in predicted.sdc_prob
            if dyn.instr_counts[iid] == 0
        )
        assert 0.0 <= predicted_whole_program_sdc(predicted) <= 1.0

    def test_emitted_value_ranks_above_dead_arithmetic(self, loop_module):
        from repro.vm.interpreter import Program

        program = Program(loop_module)
        dyn = profile_run(program, args=[4])
        predicted = predict_sdc_probabilities(loop_module, dyn)
        instrs = {i.iid: i for i in loop_module.instructions()}
        mul = next(
            iid for iid, i in instrs.items() if i.opcode == "mul"
        )
        cmp = next(
            iid for iid, i in instrs.items() if i.opcode == "icmp"
        )
        # The multiply is emitted verbatim; the compare only steers an
        # already-converging loop exit.
        assert predicted.sdc_prob[mul] > 0.5
        assert predicted.sdc_prob[mul] >= predicted.sdc_prob[cmp] * 0.5

    def test_verify_set_is_a_band_around_the_cut(self, loop_module):
        from repro.vm.interpreter import Program

        program = Program(loop_module)
        dyn = profile_run(program, args=[4])
        predicted = predict_sdc_probabilities(loop_module, dyn)
        cycles = {
            iid: dyn.instr_cycles[iid] for iid in injectable_iids(loop_module)
        }
        ranked = density_ranked(predicted, cycles, dyn.total_cycles)
        band = model_verify_set(
            predicted, cycles, dyn.total_cycles, 0.5, verify_margin=0.3
        )
        assert band
        assert set(band) <= set(ranked)
        positions = sorted(ranked.index(iid) for iid in band)
        # Contiguous slice of the density ranking.
        assert positions == list(
            range(positions[0], positions[0] + len(positions))
        )


class TestValidate:
    def test_spearman_perfect_and_inverted(self):
        xs = [0.1, 0.4, 0.9, 0.2]
        assert spearman(xs, xs) == pytest.approx(1.0)
        assert spearman(xs, [-v for v in xs]) == pytest.approx(-1.0)

    def test_spearman_handles_ties_and_degenerates(self):
        assert spearman([1.0, 1.0], [0.3, 0.9]) == 0.0
        assert spearman([], []) == 0.0
        with pytest.raises(ValueError):
            spearman([1.0], [1.0, 2.0])

    def test_top_k_overlap(self):
        pred = {1: 0.9, 2: 0.8, 3: 0.1, 4: 0.0}
        meas = {1: 0.7, 2: 0.1, 3: 0.8, 4: 0.0}
        assert top_k_overlap(pred, meas, 2) == pytest.approx(0.5)

    def test_validate_model_end_to_end(self, pathfinder_app):
        from repro.fi.campaign import run_per_instruction_campaign

        app = pathfinder_app
        a, b = app.encode(app.reference_input)
        dyn = profile_run(app.program, args=a, bindings=b)
        fi = run_per_instruction_campaign(
            app.program, 4, seed=7, args=a, bindings=b,
            rel_tol=app.rel_tol, abs_tol=app.abs_tol, profile=dyn,
        )
        predicted = predict_sdc_probabilities(
            app.module, dyn, rel_tol=app.rel_tol
        )
        v = validate_model(predicted, fi, app=app.name)
        assert v.app == app.name
        assert v.n_instructions > 0
        assert -1.0 <= v.spearman <= 1.0
        assert 0.0 <= v.top_k_overlap <= 1.0
        assert v.mean_abs_error >= 0.0
        # The model must beat random ranking comfortably on this app.
        assert v.spearman > 0.3
        payload = v.to_dict()
        assert payload["spearman"] == v.spearman
