"""Generic contract tests every benchmark app must satisfy."""

import pytest

from repro.apps import all_app_names, get_app
from repro.apps.registry import app_table
from repro.errors import ConfigError
from repro.util.rng import RngStream


class TestRegistry:
    def test_eleven_benchmarks(self):
        assert len(all_app_names()) == 11

    def test_table_one_order(self):
        assert all_app_names()[:3] == ["xsbench", "hpccg", "fft"]

    def test_unknown_app(self):
        with pytest.raises(ConfigError):
            get_app("doom")

    def test_app_table_rows(self):
        rows = app_table()
        assert len(rows) == 11
        for name, suite, desc in rows:
            assert name and suite and desc

    def test_suites_match_paper(self):
        suites = {name: suite for name, suite, _ in app_table()}
        assert suites["xsbench"] == "CESAR"
        assert suites["hpccg"] == "Mantevo"
        assert suites["fft"] == "SPLASH-2"
        assert suites["kmeans"] == "Rodinia"


class TestAppContract:
    def test_reference_input_in_domain(self, each_app):
        validated = each_app.input_spec.validate(each_app.reference_input)
        assert validated == each_app.reference_input

    def test_reference_run_clean(self, each_app):
        r = each_app.run_reference()
        assert r.output, f"{each_app.name} emitted nothing"
        for v in r.output:
            if isinstance(v, float):
                assert v == v, f"{each_app.name} emitted NaN in golden output"
                assert abs(v) != float("inf")

    def test_reference_run_deterministic(self, each_app):
        a = each_app.run_reference()
        b = each_app.run_reference()
        assert a.output == b.output and a.steps == b.steps

    def test_encode_deterministic(self, each_app):
        rng = RngStream(3, each_app.name)
        inp = each_app.random_input(rng)
        a = each_app.encode(inp)
        b = each_app.encode(inp)
        assert a == b

    def test_random_inputs_run_clean(self, each_app):
        rng = RngStream(17, each_app.name)
        for t in range(6):
            inp = each_app.random_input(rng.child(t))
            args, bindings = each_app.encode(inp)
            r = each_app.program.run(args=args, bindings=bindings)
            assert r.output

    def test_different_inputs_different_outputs(self, each_app):
        """The generator must actually vary behaviour across inputs."""
        rng = RngStream(29, each_app.name)
        outs = set()
        for t in range(4):
            inp = each_app.random_input(rng.child(t))
            args, bindings = each_app.encode(inp)
            outs.add(tuple(each_app.program.run(args=args, bindings=bindings).output))
        assert len(outs) > 1

    def test_inputs_change_execution_paths(self, each_app):
        """Different inputs must exercise different dynamic paths (the
        property MINPSID's weighted-CFG fitness relies on)."""
        import numpy as np

        from repro.minpsid.wcfg import indexed_cfg_list
        from repro.vm.profiler import profile_run

        rng = RngStream(31, each_app.name)
        lists = []
        for t in range(3):
            inp = each_app.random_input(rng.child(t))
            args, bindings = each_app.encode(inp)
            prof = profile_run(each_app.program, args=args, bindings=bindings)
            lists.append(indexed_cfg_list(each_app.program, prof))
        assert any(
            not np.array_equal(lists[0], other) for other in lists[1:]
        ), f"{each_app.name}: all inputs follow identical paths"

    def test_module_size_reasonable(self, each_app):
        n = each_app.module.instruction_count()
        assert 40 <= n <= 400, f"{each_app.name} has {n} instructions"

    def test_reference_steps_bounded(self, each_app):
        r = each_app.run_reference()
        assert 500 <= r.steps <= 200_000, (
            f"{each_app.name}: {r.steps} dynamic instructions on the "
            "reference input — outside the tractable FI range"
        )

    def test_mutation_respects_domain(self, each_app):
        rng = RngStream(37, each_app.name)
        inp = each_app.reference_input
        for t in range(10):
            inp = each_app.input_spec.mutate(inp, rng.child(t))
            assert each_app.input_spec.validate(inp) == inp
