"""The user-facing surfaces: CLI flags, heartbeats, and the trace report."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.obs.report import load_trace, perf_references_table, render_report
from repro.util.benchmeta import bench_record, reference_status


@pytest.fixture(autouse=True)
def _fast_heartbeats(monkeypatch):
    monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0")


def run_cli(*argv) -> tuple[int, str]:
    buf = io.StringIO()
    code = main(list(argv), out=buf)
    return code, buf.getvalue()


class TestCliObservabilityFlags:
    def test_fi_alias_matches_inject(self):
        _, via_inject = run_cli("inject", "pathfinder", "--faults", "40")
        _, via_fi = run_cli("fi", "pathfinder", "--faults", "40")
        assert via_fi == via_inject

    def test_trace_flag_writes_valid_trace(self, tmp_path):
        path = tmp_path / "out.jsonl"
        code, out = run_cli(
            "fi", "pathfinder", "--faults", "40", "--trace", str(path)
        )
        assert code == 0
        records = load_trace(path)
        assert records[0]["name"] == "trace.meta"
        assert records[-1]["name"] == "trace.summary"
        assert "SDC probability" in out  # stdout output unaffected

    def test_progress_heartbeats_on_stderr_with_eta(self, capsys, tmp_path):
        code, out = run_cli(
            "fi", "pathfinder", "--faults", "40", "--progress",
            "--trace", str(tmp_path / "o.jsonl"),
        )
        assert code == 0
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.startswith("[repro] ")]
        assert len(lines) >= 2  # opening heartbeat + closing line at least
        assert any("eta" in l for l in lines)
        assert any("done in" in l for l in lines)
        # heartbeats never leak onto stdout
        assert "[repro]" not in out

    def test_verbose_diagnostics_on_stderr(self, capsys):
        _, out = run_cli("fi", "pathfinder", "--faults", "40", "-v")
        err = capsys.readouterr().err
        assert "INFO" in err and "campaign:" in err
        assert "INFO" not in out

    def test_quiet_by_default(self, capsys):
        run_cli("fi", "pathfinder", "--faults", "40")
        assert "INFO" not in capsys.readouterr().err

    def test_log_level_overrides_verbose(self, capsys):
        run_cli("fi", "pathfinder", "--faults", "40", "-v",
                "--log-level", "error")
        assert "INFO" not in capsys.readouterr().err


class TestObsReport:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "run.jsonl"
        code, _ = run_cli(
            "protect", "pathfinder", "--method", "minpsid",
            "--trials", "4", "--search-inputs", "2",
            "--trace", str(path),
        )
        assert code == 0
        return path

    def test_report_renders_phase_breakdown(self, trace_path):
        text = render_report(trace_path)
        assert "Phase breakdown" in text
        for phase in ("per_inst_fi_ref", "search_engine", "selection"):
            assert phase in text
        assert "100.0%" in text  # the total row

    def test_report_renders_campaign_table(self, trace_path):
        text = render_report(trace_path)
        assert "FI campaigns" in text
        assert "fi.per-instruction" in text
        assert "Trials/s" in text

    def test_report_renders_counters(self, trace_path):
        text = render_report(trace_path)
        assert "Final counters" in text
        assert "fi.trials" in text and "vm.runs" in text

    def test_obs_report_subcommand(self, trace_path):
        code, out = run_cli("obs", "report", str(trace_path))
        assert code == 0
        assert "Phase breakdown" in out and "FI campaigns" in out

    def test_report_on_fi_trace_has_ga_and_search_events(self, trace_path):
        names = {r["name"] for r in load_trace(trace_path)}
        assert "ga.generation" in names or "ga.search" in names
        assert "search.round" in names
        assert "sid.selection" in names

    def test_load_trace_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ts": 1}\nnot json\n')
        with pytest.raises(ValueError):
            load_trace(bad)

    def test_report_tolerates_partial_trace(self, trace_path, tmp_path):
        # A crashed run leaves no trailing summary; the report must still
        # render (with a lint warning) rather than refuse.
        lines = trace_path.read_text().splitlines()
        partial = tmp_path / "partial.jsonl"
        partial.write_text("\n".join(lines[:-1]) + "\n")
        text = render_report(partial)
        assert "Phase breakdown" in text

    def test_load_trace_rejects_torn_tail_by_default(self, trace_path, tmp_path):
        text = trace_path.read_text()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(text[: len(text) - 20])  # chop the final line mid-JSON
        with pytest.raises(ValueError):
            load_trace(torn)  # the strict mode trace_lint relies on

    def test_load_trace_drops_torn_tail_when_tolerated(
        self, trace_path, tmp_path
    ):
        full = load_trace(trace_path)
        text = trace_path.read_text()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(text[: len(text) - 20])
        warnings: list[str] = []
        records = load_trace(torn, tolerate_torn_tail=True, warnings=warnings)
        assert records == full[:-1]  # only the torn final line was dropped
        assert len(warnings) == 1
        assert "torn final line" in warnings[0]

    def test_torn_tail_never_hides_mid_file_garbage(self, trace_path, tmp_path):
        lines = trace_path.read_text().splitlines()
        lines[1] = lines[1][:-15]  # corrupt an interior line
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError):
            load_trace(bad, tolerate_torn_tail=True)

    def test_report_renders_torn_trace_with_warning(
        self, trace_path, tmp_path
    ):
        text = trace_path.read_text()
        torn = tmp_path / "torn.jsonl"
        torn.write_text(text[: len(text) - 20])
        report = render_report(torn)
        assert "WARNING" in report and "torn final line" in report
        assert "Phase breakdown" in report

    def test_report_renders_span_rollup(self, trace_path):
        text = render_report(trace_path)
        assert "Span" in text
        assert "campaign" in text


class TestPerfReferences:
    """BENCH_*.json records checked against their declared tolerance bands."""

    def _write(self, path, payload, references=None):
        path.write_text(json.dumps(bench_record(payload, references)))

    def test_reference_status_bands(self):
        rec = bench_record(
            {"needle": {"speedup": 21.0}, "ratio": 0.5},
            references={
                "needle.speedup": [20.0, -0.25, None],  # >= 15: ok
                "ratio": [1.0, -0.2, 0.2],  # 0.8..1.2: fails at 0.5
                "missing.key": [1.0, None, None],
                "needle": [3.0, None, None],  # non-numeric measurement
            },
        )
        by_key = {row[0]: row for row in reference_status(rec)}
        assert by_key["needle.speedup"][-1] is True
        assert by_key["ratio"][-1] is False
        assert by_key["missing.key"][1] is None  # measured absent -> fail
        assert by_key["missing.key"][-1] is False
        assert by_key["needle"][-1] is False

    def test_reference_status_malformed_spec_never_raises(self):
        rec = {"data": {"x": 1.0}, "references": {"x": "not-a-band"}}
        (row,) = reference_status(rec)
        assert row[-1] is False
        assert reference_status({"data": {}}) == []
        assert reference_status({"references": {"x": [1, None, None]}}) == []

    def test_table_flags_out_of_band_keys(self, tmp_path):
        self._write(
            tmp_path / "BENCH_good.json", {"speedup": 25.0},
            references={"speedup": [20.0, -0.25, None]},
        )
        self._write(
            tmp_path / "BENCH_slow.json", {"speedup": 3.0},
            references={"speedup": [20.0, -0.25, None]},
        )
        text = perf_references_table(tmp_path)
        assert "BENCH_good.json" in text and "ok" in text
        assert "BENCH_slow.json" in text and "FAIL" in text

    def test_table_tolerates_legacy_and_broken_records(self, tmp_path):
        # Pre-envelope flat record: present but nothing to check.
        (tmp_path / "BENCH_flat.json").write_text('{"speedup": 2.0}')
        (tmp_path / "BENCH_bad.json").write_text("{corrupt")
        text = perf_references_table(tmp_path)
        assert "(no references)" in text
        assert "(unreadable)" in text

    def test_table_absent_without_records(self, tmp_path):
        assert perf_references_table(tmp_path) is None
        assert perf_references_table(tmp_path / "missing") is None

    def test_report_appends_bench_section(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        code, _ = run_cli(
            "fi", "pathfinder", "--faults", "40", "--trace", str(trace)
        )
        assert code == 0
        bench = tmp_path / "out"
        bench.mkdir()
        self._write(
            bench / "BENCH_x.json", {"speedup": 25.0},
            references={"speedup": [20.0, -0.25, None]},
        )
        code, out = run_cli(
            "obs", "report", str(trace), "--bench-dir", str(bench)
        )
        assert code == 0
        assert "Perf references" in out and "BENCH_x.json" in out
        # A missing directory just omits the section.
        code, out = run_cli(
            "obs", "report", str(trace), "--bench-dir", str(tmp_path / "no")
        )
        assert code == 0
        assert "Perf references" not in out


class TestFabricHealthTable:
    """Per-adapter columns in the "Fabric health" report section."""

    @staticmethod
    def _render(counters):
        from repro.obs.report import _fabric_table

        return _fabric_table(
            [{"kind": "summary", "fields": {"counters": counters}}]
        )

    def test_absent_without_fabric_counters(self):
        assert self._render({"cache.hit": 3}) is None

    def test_totals_only_when_counters_are_unlabelled(self):
        text = self._render({"fabric.adapters_connected": 2})
        assert "Fabric health" in text
        assert "Adapter" not in text

    def test_per_adapter_rows_from_labelled_counters(self):
        text = self._render({
            "fabric.adapters_connected": 2,
            "fabric.chunks.pid100": 7,
            "fabric.chunks.pid200": 5,
            "fabric.retries.pid200": 1,
            "fabric.disconnects": 1,
            "fabric.disconnects.pid200": 1,
        })
        assert "Fabric health" in text
        lines = [l for l in text.splitlines() if "pid" in l]
        assert len(lines) == 2
        assert "pid100" in lines[0] and "7" in lines[0]
        assert "pid200" in lines[1]
        for cell in ("5", "1"):
            assert cell in lines[1]
        # An adapter seen only through a retry still gets a row.
        text = self._render({"fabric.retries.pid300": 2})
        assert "pid300" in text
