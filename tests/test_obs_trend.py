"""Perf-trend observatory: sparkline series over the bench history, with
regression detection against declared reference bands and the rolling
baseline — and a nonzero CLI exit when anything regressed."""

from __future__ import annotations

import json

import pytest

from repro.obs.trend import (
    key_series,
    load_history,
    render_trend,
    sparkline,
    trend_rows,
)
from repro.util.benchmeta import append_history, bench_record, write_bench


def _series(tmp_path, name, values, references=None, key="trials_per_s"):
    for i, v in enumerate(values):
        append_history(
            name,
            bench_record({key: v}, references=references),
            tmp_path,
            sha=f"sha{i}",
            ts=1000.0 + i,
        )


class TestHistoryStore:
    def test_append_and_load_round_trip(self, tmp_path):
        _series(tmp_path, "fi", [1.0, 2.0])
        series = load_history(tmp_path)
        assert list(series) == ["fi"]
        assert key_series(series["fi"], "trials_per_s") == [1.0, 2.0]
        assert [e["sha"] for e in series["fi"]] == ["sha0", "sha1"]

    def test_unconfigured_history_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        assert append_history("fi", bench_record({"x": 1})) is None

    def test_write_bench_appends_when_env_set(self, tmp_path, monkeypatch):
        hist = tmp_path / "hist"
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(hist))
        out = tmp_path / "out"
        path = write_bench("fi", bench_record({"x": 1.0}), out)
        assert json.loads(path.read_text())["data"] == {"x": 1.0}
        assert (hist / "fi.jsonl").exists()

    def test_torn_history_lines_are_skipped(self, tmp_path):
        _series(tmp_path, "fi", [1.0, 2.0])
        with (tmp_path / "fi.jsonl").open("a") as f:
            f.write('{"name": "fi", "ts": 3000.0, "rec')  # torn append
        series = load_history(tmp_path)
        assert key_series(series["fi"], "trials_per_s") == [1.0, 2.0]


class TestSparkline:
    def test_min_max_normalized(self):
        line = sparkline([0.0, 1.0, 0.5])
        assert len(line) == 3
        assert line[0] == "▁" and line[1] == "█"

    def test_flat_series(self):
        assert sparkline([3.0, 3.0]) == "▁▁"
        assert sparkline([]) == ""


class TestRegressionDetection:
    REFS = {"trials_per_s": [20.0, -0.25, None]}  # higher is better

    def test_steady_series_is_ok(self, tmp_path):
        _series(tmp_path, "fi", [20.0, 20.5, 19.8, 20.2], self.REFS)
        rows = trend_rows(load_history(tmp_path))
        assert [r["status"] for r in rows] == ["ok"]

    def test_band_regression_flagged(self, tmp_path):
        # The latest run falls below the declared reference band.
        _series(tmp_path, "fi", [20.0, 20.5, 19.8, 12.0], self.REFS)
        rows = trend_rows(load_history(tmp_path))
        assert rows[0]["status"] == "REGRESSION(band)"

    def test_trend_regression_without_band(self, tmp_path):
        # No declared references: the rolling baseline still catches a
        # clearly-out-of-family drop (default tolerance 25%).
        _series(tmp_path, "fi", [20.0, 20.2, 19.9, 20.1, 10.0])
        rows = trend_rows(load_history(tmp_path))
        assert rows[0]["status"] == "REGRESSION(trend)"

    def test_improvement_is_not_a_regression(self, tmp_path):
        _series(tmp_path, "fi", [20.0, 20.1, 19.9, 35.0], self.REFS)
        rows = trend_rows(load_history(tmp_path))
        assert rows[0]["status"] == "ok"

    def test_single_run_is_new(self, tmp_path):
        _series(tmp_path, "fi", [20.0], self.REFS)
        rows = trend_rows(load_history(tmp_path))
        assert rows[0]["status"] == "new"

    def test_lower_is_better_direction(self, tmp_path):
        # An upper-only band (latency-style): rising values regress.
        refs = {"seconds": [1.0, None, 0.2]}
        _series(tmp_path, "lat", [1.0, 1.01, 0.99, 1.9], refs, key="seconds")
        rows = trend_rows(load_history(tmp_path))
        assert rows[0]["status"].startswith("REGRESSION")
        # ...and falling values do not.
        _series(tmp_path, "lat2", [1.0, 1.01, 0.99, 0.4], refs, key="seconds")
        rows = [
            r for r in trend_rows(load_history(tmp_path))
            if r["bench"] == "lat2"
        ]
        assert rows[0]["status"] == "ok"


class TestRenderAndCli:
    def test_render_counts_regressions(self, tmp_path):
        _series(
            tmp_path, "fi", [20.0, 20.5, 19.8, 12.0],
            {"trials_per_s": [20.0, -0.25, None]},
        )
        text, regressions = render_trend(tmp_path)
        assert regressions == 1
        assert "REGRESSION(band)" in text
        assert "▁" in text or "█" in text  # sparkline rendered

    def test_render_empty_directory(self, tmp_path):
        text, regressions = render_trend(tmp_path / "nope")
        assert regressions == 0
        assert "no bench history" in text

    def test_cli_exits_nonzero_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        _series(
            tmp_path, "fi", [20.0, 20.5, 19.8, 12.0],
            {"trials_per_s": [20.0, -0.25, None]},
        )
        assert main(["obs", "trend", str(tmp_path)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_cli_exits_zero_when_healthy(self, tmp_path, capsys):
        from repro.cli import main

        _series(
            tmp_path, "fi", [20.0, 20.5, 19.8, 20.1],
            {"trials_per_s": [20.0, -0.25, None]},
        )
        assert main(["obs", "trend", str(tmp_path)]) == 0

    def test_cli_requires_a_directory(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        assert main(["obs", "trend"]) == 2
        assert "REPRO_BENCH_HISTORY" in capsys.readouterr().err
