"""Fabric wire protocol: frames, message registry, handshake, spec lint.

Covers the layers below chunk dispatch — the frame codec's corruption
detection (truncation, CRC, magic, oversize), the message registry's
invariants, the version-negotiation handshake on both the happy and the
mismatch path, and the ``docs/FABRIC.md`` drift gate that keeps the
written spec honest.
"""

from __future__ import annotations

import importlib.util
import threading
from pathlib import Path

import pytest

from repro.errors import (
    ConnectionClosed,
    FrameError,
    HandshakeError,
    ProtocolError,
)
from repro.fabric.frames import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
)
from repro.fabric.protocol import (
    BY_OPCODE,
    MESSAGES,
    OPCODES,
    SUPPORTED_VERSIONS,
    decode_message,
    encode_message,
    handshake_accept,
    handshake_connect,
    hello_body,
    negotiate,
)
from repro.fabric.transport import inproc_pair

REPO = Path(__file__).resolve().parent.parent


class TestFrameCodec:
    def test_roundtrip(self):
        payload = b"x" * 1000
        data = encode_frame(0x11, payload)
        assert data[:4] == MAGIC and len(data) == HEADER_SIZE + 1000
        dec = FrameDecoder()
        dec.feed(data)
        frame = dec.next_frame()
        assert frame.version == PROTOCOL_VERSION
        assert frame.opcode == 0x11
        assert frame.payload == payload
        assert dec.at_boundary()

    def test_incremental_feed_one_byte_at_a_time(self):
        data = encode_frame(0x12, b"hello fabric")
        dec = FrameDecoder()
        for i, byte in enumerate(data):
            assert dec.next_frame() is None or i == len(data)
            dec.feed(bytes([byte]))
        frame = dec.next_frame()
        assert frame.payload == b"hello fabric"

    def test_two_frames_in_one_buffer(self):
        dec = FrameDecoder()
        dec.feed(encode_frame(0x01, b"a") + encode_frame(0x02, b"bb"))
        frames = list(dec.frames())
        assert [(f.opcode, f.payload) for f in frames] == [
            (0x01, b"a"), (0x02, b"bb"),
        ]

    def test_truncated_frame_is_not_a_boundary(self):
        data = encode_frame(0x11, b"truncate me")
        dec = FrameDecoder()
        dec.feed(data[:-3])
        assert dec.next_frame() is None  # waiting, not crashing
        assert not dec.at_boundary()
        assert dec.pending_bytes() == len(data) - 3

    def test_crc_corruption_is_loud(self):
        data = bytearray(encode_frame(0x11, b"payload under test"))
        data[HEADER_SIZE + 4] ^= 0x40  # flip one payload bit
        dec = FrameDecoder()
        dec.feed(bytes(data))
        with pytest.raises(FrameError, match="CRC mismatch"):
            dec.next_frame()

    def test_header_corruption_bad_magic(self):
        data = bytearray(encode_frame(0x11, b"zz"))
        data[0] ^= 0xFF
        dec = FrameDecoder()
        dec.feed(bytes(data))
        with pytest.raises(FrameError, match="magic"):
            dec.next_frame()

    def test_oversize_declared_length_rejected(self):
        dec = FrameDecoder(max_payload=64)
        dec.feed(encode_frame(0x11, b"y" * 65))
        with pytest.raises(FrameError, match="cap"):
            dec.next_frame()
        with pytest.raises(FrameError, match="cap"):
            encode_frame(0x11, b"y" * (MAX_PAYLOAD_BYTES + 1))


class TestMessageRegistry:
    def test_names_and_opcodes_unique(self):
        assert len({m.name for m in MESSAGES}) == len(MESSAGES)
        assert len({m.opcode for m in MESSAGES}) == len(MESSAGES)
        assert OPCODES["CHUNK"] == 0x11 and BY_OPCODE[0x11].name == "CHUNK"

    def test_directions_are_from_the_documented_vocabulary(self):
        allowed = {
            "both", "harness->adapter", "adapter->harness",
            "client->serve", "serve->client",
        }
        assert {m.direction for m in MESSAGES} <= allowed

    def test_message_roundtrip(self):
        body = {"id": 7, "payload": [1, 2.5, "three"]}
        dec = FrameDecoder()
        dec.feed(encode_message("CHUNK", body))
        name, got = decode_message(dec.next_frame())
        assert (name, got) == ("CHUNK", body)

    def test_unknown_name_and_opcode_raise(self):
        with pytest.raises(ProtocolError, match="unknown message"):
            encode_message("NOPE", {})
        dec = FrameDecoder()
        dec.feed(encode_frame(0xEE, b""))
        with pytest.raises(ProtocolError, match="unknown opcode"):
            decode_message(dec.next_frame())

    def test_undecodable_payload_is_a_frame_error(self):
        dec = FrameDecoder()
        dec.feed(encode_frame(OPCODES["RESULT"], b"\x80not a pickle"))
        with pytest.raises(FrameError, match="undecodable RESULT"):
            decode_message(dec.next_frame())


class TestHandshake:
    def test_negotiate_picks_highest_common(self):
        assert negotiate({"versions": list(SUPPORTED_VERSIONS) + [99]}) == max(
            SUPPORTED_VERSIONS
        )

    @pytest.mark.parametrize("hello", [
        None, {}, {"versions": "1"}, {"versions": [99, 100]},
    ])
    def test_negotiate_rejects(self, hello):
        with pytest.raises(HandshakeError):
            negotiate(hello)

    def test_happy_path_over_inproc(self):
        near, far = inproc_pair()
        result = {}

        def accept():
            result["version"] = handshake_accept(far)

        t = threading.Thread(target=accept, daemon=True)
        t.start()
        welcome = handshake_connect(near)
        t.join(timeout=5)
        assert result["version"] == max(SUPPORTED_VERSIONS)
        assert welcome["version"] == result["version"]
        assert welcome["role"] == "adapter"

    def test_version_mismatch_rejected_at_handshake(self):
        near, far = inproc_pair()
        errors = []

        def accept():
            try:
                handshake_accept(far)
            except HandshakeError as e:
                errors.append(e)

        t = threading.Thread(target=accept, daemon=True)
        t.start()
        # A peer from the future: speaks only protocol version 999.
        near.send_bytes(
            encode_message("HELLO", dict(hello_body("harness"), versions=[999]))
        )
        name, body = decode_message(near.recv_frame(timeout=5))
        t.join(timeout=5)
        assert name == "ERROR"
        assert body["code"] == "version-mismatch"
        assert body["supported"] == list(SUPPORTED_VERSIONS)
        assert errors and "no common protocol version" in str(errors[0])

    def test_non_hello_opening_is_rejected(self):
        near, far = inproc_pair()
        t = threading.Thread(
            target=lambda: pytest.raises(HandshakeError, handshake_accept, far),
            daemon=True,
        )
        t.start()
        near.send_bytes(encode_message("PING", b"tok"))
        name, body = decode_message(near.recv_frame(timeout=5))
        t.join(timeout=5)
        assert name == "ERROR" and body["code"] == "protocol"


class TestInprocTransportSemantics:
    def test_clean_close_vs_truncation(self):
        near, far = inproc_pair()
        near.close()
        with pytest.raises(ConnectionClosed):
            far.recv_frame(timeout=1)

    def test_mid_frame_close_is_a_frame_error(self):
        near, far = inproc_pair()
        near.send_bytes(encode_frame(0x11, b"cut off")[:-2])
        near.close()
        with pytest.raises(FrameError, match="mid-frame"):
            far.recv_frame(timeout=1)


def _load_doc_lint():
    spec = importlib.util.spec_from_file_location(
        "doc_lint", REPO / "scripts" / "doc_lint.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestSpecDriftGate:
    def test_fabric_spec_matches_registry(self):
        assert _load_doc_lint().lint_fabric_spec() == []

    def test_parser_sees_every_registered_message(self):
        doc_lint = _load_doc_lint()
        text = (REPO / "docs" / "FABRIC.md").read_text()
        rows = doc_lint._spec_table_rows(text)
        assert rows == [(m.name, m.opcode, m.direction) for m in MESSAGES]

    def test_gate_trips_on_a_tampered_table(self):
        doc_lint = _load_doc_lint()
        text = (REPO / "docs" / "FABRIC.md").read_text()
        rows = doc_lint._spec_table_rows(
            text.replace("| CHUNK       | 0x11", "| CHUNK       | 0x77")
        )
        assert ("CHUNK", 0x77, "harness->adapter") in rows
        assert rows != [(m.name, m.opcode, m.direction) for m in MESSAGES]

    def test_gate_trips_on_missing_markers(self):
        doc_lint = _load_doc_lint()
        assert doc_lint._spec_table_rows("no markers here") is None
