"""The sticky defective-host fault model (:mod:`repro.fi.hostfault`).

The contract under test is the Meta "SDCs at Scale" physics: a permanent
signature is data-dependent but deterministic, so SID duplication on the
defective unit corrupts both copies identically and can never yield
DETECTED; an intermittent signature draws independently per execution, so
duplication can trip. Everything replays bit-identically from seeds.
"""

from __future__ import annotations

import pytest

from repro.apps.registry import get_app
from repro.errors import ConfigError, Trap
from repro.fi.hostfault import MODES, HostFaultModel, sample_host_fault
from repro.fi.outcome import Outcome, classify_run
from repro.util.rng import RngStream


@pytest.fixture(scope="module")
def kmeans():
    app = get_app("kmeans")
    args, bindings = app.encode(app.reference_input)
    golden = app.program.run(args=args, bindings=bindings)
    return app, args, bindings, golden


def _run_sticky(kmeans, sticky):
    app, args, bindings, golden = kmeans
    trap = None
    output = None
    try:
        result = app.program.run(
            args=args, bindings=bindings, sticky=sticky,
            step_limit=golden.steps * 8 + 10_000,
        )
        output = result.output
    except Trap as t:
        trap = t
    return classify_run(golden.output, output, trap, app.rel_tol, app.abs_tol)


class TestModel:
    def test_modes(self):
        assert MODES == ("permanent", "intermittent")

    @pytest.mark.parametrize("kw", [
        {"mode": "flaky"}, {"bit": -1}, {"fire_rate": 0.0},
        {"fire_rate": 1.5}, {"pattern_bits": 0}, {"pattern_bits": 17},
    ])
    def test_validation(self, kw):
        base = dict(opcode="fmul", bit=3, mode="permanent", seed=7)
        base.update(kw)
        with pytest.raises(ConfigError):
            HostFaultModel(**base)

    def test_permanent_fires_on_exact_pattern_fraction(self):
        m = HostFaultModel(opcode="fmul", bit=3, mode="permanent", seed=7,
                           pattern_bits=4)
        hits = sum(m.fires_on(v) for v in range(256))
        assert hits == 256 // 16  # 2**-pattern_bits of value space
        assert m.fires_on(m.pattern)

    def test_in_field_probe_replays_from_seed(self):
        m = HostFaultModel(opcode="fmul", bit=3, mode="permanent", seed=7,
                           pattern_bits=3)
        a = m.in_field_probe(RngStream(11, "t"), 64)
        b = m.in_field_probe(RngStream(11, "t"), 64)
        assert a == b
        assert m.in_field_probe(RngStream(11, "t"), 0) is False

    def test_deep_probe_catches_what_shallow_misses(self):
        # pattern_bits=16 fires on 2**-16 of value space: depth 1 almost
        # never catches it, depth large enough eventually does.
        m = HostFaultModel(opcode="fmul", bit=3, mode="permanent", seed=5,
                           pattern_bits=16)
        caught = any(
            m.in_field_probe(RngStream(5, "probe", i), 4096)
            for i in range(64)
        )
        assert caught

    def test_sample_host_fault_is_deterministic_and_valid(self):
        pool = {"fmul", "add", "mul"}
        a = sample_host_fault(RngStream(3, "s"), pool)
        b = sample_host_fault(RngStream(3, "s"), pool)
        assert a == b
        assert a.opcode in pool
        assert a.mode in MODES
        assert 0 <= a.bit <= 63
        assert sample_host_fault(RngStream(3, "s"), pool,
                                 intermittent_share=0.0).mode == "permanent"
        assert sample_host_fault(RngStream(3, "s"), pool,
                                 intermittent_share=1.0).mode == "intermittent"


class TestBinding:
    def test_bind_resolves_opcode_iids(self, kmeans):
        app, *_ = kmeans
        m = HostFaultModel(opcode="fmul", bit=3, mode="permanent", seed=7)
        bound = m.bind(app.program)
        assert bound.iids
        for iid, (kind, width, bit) in bound.info.items():
            assert bit == 3 % width
        missing = HostFaultModel(opcode="nosuchop", bit=0,
                                 mode="permanent", seed=7).bind(app.program)
        assert not missing.iids

    def test_protected_intersects_matching_iids(self, kmeans):
        app, *_ = kmeans
        m = HostFaultModel(opcode="fmul", bit=3, mode="permanent", seed=7)
        bound = m.bind(app.program, protected=(-1, *list(m.bind(app.program).iids)[:2]))
        assert -1 not in bound.protected
        assert bound.protected <= bound.iids


class TestStickyRuns:
    def test_permanent_run_replays_bit_identically(self, kmeans):
        app, *_ = kmeans
        m = HostFaultModel(opcode="fmul", bit=11, mode="permanent", seed=42,
                           pattern_bits=3)
        bound = m.bind(app.program)
        a, b = bound.start_run(), bound.start_run()
        oa, ob = _run_sticky(kmeans, a), _run_sticky(kmeans, b)
        assert oa == ob
        assert (a.visits, a.corrupted) == (b.visits, b.corrupted)
        assert a.visits > 0

    def test_permanent_protected_never_detects(self, kmeans):
        # The paper's escape mode: both SID copies corrupt identically,
        # so full protection of the defective opcode still yields SDC,
        # CRASH, or BENIGN — never DETECTED.
        app, *_ = kmeans
        m = HostFaultModel(opcode="fmul", bit=11, mode="permanent", seed=42,
                           pattern_bits=3)
        bound = m.bind(app.program)
        prot = m.bind(app.program, protected=bound.iids)
        run = prot.start_run()
        outcome = _run_sticky(kmeans, run)
        assert run.detected == 0
        assert outcome != Outcome.DETECTED
        assert run.corrupted > 0  # the defect did fire — silently

    def test_intermittent_protected_is_detectable(self, kmeans):
        app, *_ = kmeans
        m = HostFaultModel(opcode="fmul", bit=11, mode="intermittent",
                           seed=42, fire_rate=0.3)
        bound = m.bind(app.program, protected=m.bind(app.program).iids)
        run = bound.start_run()
        outcome = _run_sticky(kmeans, run)
        assert outcome == Outcome.DETECTED
        assert run.detected == 1  # raised on the first dup mismatch

    def test_salt_decorrelates_intermittent_draws(self, kmeans):
        app, *_ = kmeans
        m = HostFaultModel(opcode="fmul", bit=11, mode="intermittent",
                           seed=42, fire_rate=0.3)
        bound = m.bind(app.program)
        assert bound.start_run(0)._lcg != bound.start_run(1)._lcg
        a, b = bound.start_run(5), bound.start_run(5)
        _run_sticky(kmeans, a), _run_sticky(kmeans, b)
        assert (a.visits, a.corrupted) == (b.visits, b.corrupted)

    def test_permanent_ignores_salt(self, kmeans):
        app, *_ = kmeans
        m = HostFaultModel(opcode="fmul", bit=11, mode="permanent", seed=42,
                           pattern_bits=3)
        bound = m.bind(app.program)
        a, b = bound.start_run(0), bound.start_run(99)
        _run_sticky(kmeans, a), _run_sticky(kmeans, b)
        assert (a.visits, a.corrupted) == (b.visits, b.corrupted)
