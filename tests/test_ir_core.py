"""Tests for IR types, values, instructions, blocks, functions, modules."""

import copy

import pytest

from repro.errors import IRError
from repro.ir import (
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    PTR,
    VOID,
    BasicBlock,
    Constant,
    Function,
    GlobalArray,
    Instruction,
    Module,
)
from repro.ir.types import type_from_name


class TestTypes:
    def test_singletons_by_name(self):
        assert type_from_name("i64") is I64
        assert type_from_name("f32") is F32

    def test_unknown_type(self):
        with pytest.raises(IRError):
            type_from_name("i128")

    def test_kind_predicates(self):
        assert I32.is_int and not I32.is_float
        assert F64.is_float and not F64.is_int
        assert PTR.is_ptr and VOID.is_void

    def test_masks(self):
        assert I8.mask == 0xFF
        assert I1.mask == 1
        assert F64.mask == 0

    def test_deepcopy_preserves_identity(self):
        assert copy.deepcopy(I64) is I64
        assert copy.copy(F32) is F32


class TestConstants:
    def test_int_constant_masked(self):
        assert Constant(I8, 300).value == 300 & 0xFF
        assert Constant(I8, -1).value == 0xFF

    def test_float_constant(self):
        assert Constant(F64, 1).value == 1.0
        assert isinstance(Constant(F64, 1).value, float)

    def test_void_constant_rejected(self):
        with pytest.raises(IRError):
            Constant(VOID, 0)


class TestGlobals:
    def test_basic(self):
        g = GlobalArray("g", F64, 4, init=[1.0, 2.0])
        assert g.type is PTR and g.size == 4

    def test_bad_size(self):
        with pytest.raises(IRError):
            GlobalArray("g", F64, 0)

    def test_init_too_long(self):
        with pytest.raises(IRError):
            GlobalArray("g", I64, 2, init=[1, 2, 3])

    def test_void_elems_rejected(self):
        with pytest.raises(IRError):
            GlobalArray("g", VOID, 4)


class TestInstructions:
    def test_unknown_opcode(self):
        with pytest.raises(IRError):
            Instruction("frobnicate", I64)

    def test_produces_value(self):
        a = Constant(I64, 1)
        add = Instruction("add", I64, [a, a], name="x")
        st = Instruction("store", VOID, [a, Constant(PTR, 0)])
        assert add.produces_value and not st.produces_value

    def test_terminator_and_sync(self):
        br = Instruction("br", VOID, [], attrs={"target": "x"})
        assert br.is_terminator and br.is_sync_point
        ld = Instruction("load", I64, [Constant(PTR, 0)], name="l")
        assert not ld.is_terminator and not ld.is_sync_point

    def test_clone_is_fresh(self):
        a = Constant(I64, 1)
        add = Instruction("add", I64, [a, a], name="x")
        add.iid = 42
        c = add.clone()
        assert c.iid == -1 and c.name is None and c.operands == add.operands

    def test_replace_operand(self):
        a, b = Constant(I64, 1), Constant(I64, 2)
        add = Instruction("add", I64, [a, a], name="x")
        assert add.replace_operand(a, b) == 2
        assert add.operands == [b, b]


class TestBasicBlock:
    def test_append_after_terminator_rejected(self):
        blk = BasicBlock("b")
        blk.append(Instruction("ret", VOID, []))
        with pytest.raises(IRError):
            blk.append(Instruction("ret", VOID, []))

    def test_successors(self):
        blk = BasicBlock("b")
        blk.append(
            Instruction(
                "condbr", VOID, [Constant(I1, 1)],
                attrs={"iftrue": "t", "iffalse": "f"},
            )
        )
        assert blk.successors() == ("t", "f")

    def test_ret_has_no_successors(self):
        blk = BasicBlock("b")
        blk.append(Instruction("ret", VOID, []))
        assert blk.successors() == ()

    def test_open_block(self):
        blk = BasicBlock("b")
        assert not blk.is_terminated and blk.successors() == ()


class TestModule:
    def test_duplicate_global(self):
        m = Module("m")
        m.add_global("g", I64, 4)
        with pytest.raises(IRError):
            m.add_global("g", I64, 4)

    def test_duplicate_function(self):
        m = Module("m")
        m.add_function(Function("f", [], VOID))
        with pytest.raises(IRError):
            m.add_function(Function("f", [], VOID))

    def test_unknown_lookups(self):
        m = Module("m")
        with pytest.raises(IRError):
            m.get_function("nope")
        with pytest.raises(IRError):
            m.get_global("nope")

    def test_finalize_assigns_dense_iids(self, sumsq_module):
        iids = [i.iid for i in sumsq_module.instructions()]
        assert iids == list(range(len(iids)))

    def test_instruction_lookup(self, sumsq_module):
        for i in sumsq_module.instructions():
            assert sumsq_module.instruction(i.iid) is i

    def test_clone_is_independent(self, sumsq_module):
        clone = sumsq_module.clone()
        assert clone is not sumsq_module
        assert clone.instruction_count() == sumsq_module.instruction_count()
        # mutating the clone leaves the original untouched
        del clone.functions["main"]
        assert "main" in sumsq_module.functions

    def test_value_producing_iids_subset(self, sumsq_module):
        vps = set(sumsq_module.value_producing_iids())
        for i in sumsq_module.instructions():
            assert (i.iid in vps) == i.produces_value
