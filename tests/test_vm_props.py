"""Property-based tests: interpreter arithmetic vs reference semantics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import F64, I64, Builder, Module, VOID
from repro.util.bitops import to_signed, to_unsigned
from repro.vm.interpreter import Program


def run_binop(opcode, a, b, type_=I64):
    m = Module("prop")
    bb = Builder.new_function(m, "main", [], VOID)
    bb.emit_output(bb.binop(opcode, bb.const(type_, a), bb.const(type_, b)))
    bb.ret()
    m.finalize()
    return Program(m).run().output[0]


i64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestIntSemantics:
    @given(i64s, i64s)
    @settings(max_examples=40, deadline=None)
    def test_add_matches_twos_complement(self, a, b):
        assert run_binop("add", a, b) == to_signed(
            to_unsigned(a + b, 64), 64
        )

    @given(i64s, i64s)
    @settings(max_examples=40, deadline=None)
    def test_mul_matches(self, a, b):
        assert run_binop("mul", a, b) == to_signed(to_unsigned(a * b, 64), 64)

    @given(i64s, i64s.filter(lambda x: x != 0))
    @settings(max_examples=40, deadline=None)
    def test_sdiv_truncation(self, a, b):
        # C-style truncation toward zero, modulo 64-bit wrap of INT_MIN/-1.
        expect = to_signed(to_unsigned(int(math.trunc(a / b)) if abs(a) < 2**52 and abs(b) < 2**52 else abs(a) // abs(b) * (-1 if (a < 0) != (b < 0) else 1), 64), 64)
        assert run_binop("sdiv", a, b) == expect

    @given(i64s, i64s.filter(lambda x: x != 0))
    @settings(max_examples=40, deadline=None)
    def test_sdiv_srem_identity(self, a, b):
        """a == b * (a sdiv b) + (a srem b) in two's-complement arithmetic."""
        q = run_binop("sdiv", a, b)
        r = run_binop("srem", a, b)
        lhs = to_unsigned(a, 64)
        rhs = to_unsigned(b * q + r, 64)
        assert lhs == rhs

    @given(i64s, st.integers(min_value=0, max_value=70))
    @settings(max_examples=40, deadline=None)
    def test_shl_matches(self, a, s):
        expect = 0 if s >= 64 else to_signed(to_unsigned(a << s, 64), 64)
        assert run_binop("shl", a, s) == expect

    @given(i64s, i64s)
    @settings(max_examples=30, deadline=None)
    def test_xor_involution(self, a, b):
        x = run_binop("xor", a, b)
        assert run_binop("xor", x, b) == a


class TestFloatSemantics:
    @given(floats, floats)
    @settings(max_examples=40, deadline=None)
    def test_fadd_matches_python(self, a, b):
        got = run_binop("fadd", a, b, F64)
        expect = a + b
        assert got == expect or (math.isnan(got) and math.isnan(expect))

    @given(floats, floats.filter(lambda x: x != 0.0))
    @settings(max_examples=40, deadline=None)
    def test_fdiv_matches_python(self, a, b):
        got = run_binop("fdiv", a, b, F64)
        expect = a / b
        assert got == expect or (math.isnan(got) and math.isnan(expect))

    @given(floats)
    @settings(max_examples=30, deadline=None)
    def test_sqrt_square_nonnegative(self, x):
        m = Module("p")
        b = Builder.new_function(m, "main", [], VOID)
        sq = b.fmul(b.f64(x), b.f64(x))
        b.emit_output(b.fmath("sqrt", sq))
        b.ret()
        m.finalize()
        out = Program(m).run().output[0]
        assert out >= 0.0 or math.isnan(out) is False


class TestDeterminism:
    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_program_runs_bit_reproducible(self, n, seed):
        """Same module + same input -> byte-identical output, twice."""
        from repro.util.rng import RngStream

        m = Module("det")
        g = m.add_global("d", F64, 32)
        b = Builder.new_function(m, "main", [("n", I64)], VOID)
        acc = b.local(F64, b.f64(0.0))
        with b.for_loop(b.i64(0), b.function.arg("n")) as i:
            x = b.load(b.gep(g, i), F64)
            b.set(acc, b.fadd(b.get(acc, F64), b.fmath("sin", x)))
        b.emit_output(b.get(acc, F64))
        b.ret()
        m.finalize()
        rng = RngStream(seed)
        data = [rng.uniform(-10, 10) for _ in range(n)]
        p = Program(m)
        r1 = p.run(args=[n], bindings={"d": data})
        r2 = p.run(args=[n], bindings={"d": data})
        assert r1.output == r2.output and r1.steps == r2.steps
