"""Unit tests of the telemetry core: metrics, records, sinks, timers, logs."""

from __future__ import annotations

import io
import json
import logging
import time

import pytest

from repro.obs.core import Telemetry, current, install_worker, session
from repro.obs.events import RECORD_KEYS, SCHEMA_VERSION, jsonable, make_record
from repro.obs.log import configure_logging, get_logger, resolve_level
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.schema import lint_records, validate_record
from repro.obs.sink import JsonlTraceSink, MemorySink, NullSink
from repro.obs.timers import PhaseTimer, Stopwatch


class TestMetricsRegistry:
    def test_counters_add(self):
        m = MetricsRegistry()
        m.count("a")
        m.count("a", 4)
        assert m.counters == {"a": 5}

    def test_gauge_last_write_wins(self):
        m = MetricsRegistry()
        m.gauge("g", 1.0)
        m.gauge("g", 7.5)
        assert m.gauges == {"g": 7.5}

    def test_histogram_summary(self):
        m = MetricsRegistry()
        for v in (2.0, 8.0, 5.0):
            m.observe("h", v)
        h = m.histograms()["h"]
        assert h == {"count": 3, "sum": 15.0, "min": 2.0, "max": 8.0, "mean": 5.0}

    def test_drain_resets(self):
        m = MetricsRegistry()
        m.count("a", 3)
        m.observe("h", 1.0)
        delta = m.drain()
        assert delta["counters"] == {"a": 3}
        assert m.counters == {} and m.snapshot()["histograms"] == {}

    def test_merge_is_order_independent(self):
        deltas = []
        for vals in ((1.0, 9.0), (4.0,), (0.5, 2.0)):
            w = MetricsRegistry()
            w.count("n", len(vals))
            for v in vals:
                w.observe("h", v)
            deltas.append(w.drain())
        a, b = MetricsRegistry(), MetricsRegistry()
        for d in deltas:
            a.merge(d)
        for d in reversed(deltas):
            b.merge(d)
        assert a.snapshot() == b.snapshot()
        assert a.counters["n"] == 5
        assert a.histograms()["h"]["min"] == 0.5
        assert a.histograms()["h"]["max"] == 9.0


class TestRecordsAndSchema:
    def test_record_shape(self):
        r = make_record(1.0, "event", "x", "r1", fields={"k": 1})
        assert tuple(r.keys()) == RECORD_KEYS
        assert validate_record(r) == []

    def test_jsonable_normalizes_containers(self):
        assert jsonable({3, 1, 2}) == [1, 2, 3]
        assert jsonable((1, 2)) == [1, 2]
        assert jsonable({"k": {2, 1}}) == {"k": [1, 2]}

    def test_validate_rejects_bad_records(self):
        assert validate_record([]) != []
        assert validate_record({"ts": 0}) != []
        bad = make_record(1.0, "event", "x", "r1")
        bad["kind"] = "bogus"
        assert any("kind" in p for p in validate_record(bad))

    def test_lint_requires_meta_and_summary(self):
        recs = [
            make_record(1.0, "meta", "trace.meta", "r1",
                        fields={"schema": SCHEMA_VERSION}),
            make_record(2.0, "event", "e", "r1"),
            make_record(3.0, "summary", "trace.summary", "r1"),
        ]
        assert lint_records(recs) == []
        assert lint_records(recs[1:]) != []  # no leading meta
        assert lint_records(recs[:-1]) != []  # no trailing summary
        assert lint_records(recs[:-1], require_summary=False) == []

    def test_lint_flags_mixed_run_ids(self):
        recs = [
            make_record(1.0, "meta", "trace.meta", "r1",
                        fields={"schema": SCHEMA_VERSION}),
            make_record(2.0, "event", "e", "r2"),
            make_record(3.0, "summary", "trace.summary", "r1"),
        ]
        assert any("run" in p for p in lint_records(recs))


class TestSinks:
    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.write(make_record(1.0, "event", "x", "r1", fields={"a": [1, 2]}))
        sink.close()
        sink.close()  # idempotent
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["fields"] == {"a": [1, 2]}

    def test_jsonl_sink_write_after_close(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write(make_record(1.0, "event", "x", "r1"))

    def test_null_sink_discards(self):
        sink = NullSink()
        sink.write(make_record(1.0, "event", "x", "r1"))
        sink.close()


class TestTelemetryContext:
    def test_session_installs_and_restores(self):
        assert current() is None
        with session(sink=MemorySink()) as t:
            assert current() is t
        assert current() is None

    def test_session_trace_has_meta_and_summary(self):
        sink = MemorySink()
        with session(sink=sink) as t:
            t.count("x", 2)
            t.emit("e", {"v": 1})
        names = [r["name"] for r in sink.records]
        assert names[0] == "trace.meta" and names[-1] == "trace.summary"
        assert sink.records[-1]["fields"]["counters"] == {"x": 2}
        assert lint_records(sink.records) == []

    def test_sessions_shadow(self):
        with session(sink=MemorySink()) as outer:
            with session(sink=MemorySink()) as inner:
                assert current() is inner
            assert current() is outer

    def test_campaign_ids_are_sequential(self):
        t = Telemetry(sink=NullSink())
        assert [t.new_campaign() for _ in range(3)] == ["c001", "c002", "c003"]

    def test_install_worker_is_metrics_only(self):
        with session(sink=MemorySink()):
            w = install_worker()
            try:
                assert current() is w and w.is_worker
                w.count("n", 2)
                assert w.metrics.drain()["counters"] == {"n": 2}
            finally:
                # restore the outer session's context for the assertion above
                pass

    def test_progress_off_by_default(self):
        with session(sink=MemorySink()) as t:
            assert t.progress_for("x", 10) is None


class TestPhaseTimer:
    def test_reentrant_same_name_counts_once(self):
        sw = PhaseTimer()
        t0 = time.perf_counter()
        with sw.phase("a"):
            time.sleep(0.01)
            with sw.phase("a"):
                time.sleep(0.01)
            time.sleep(0.005)
        wall = time.perf_counter() - t0
        # Exclusive semantics: the re-entered frame suspends the outer one,
        # so the total is the wall time, not wall + inner (the old bug).
        assert sw.totals["a"] <= wall + 1e-3
        assert sw.totals["a"] >= 0.02

    def test_nested_phases_split_the_wall_clock(self):
        sw = PhaseTimer()
        t0 = time.perf_counter()
        with sw.phase("outer"):
            time.sleep(0.01)
            with sw.phase("inner"):
                time.sleep(0.01)
            time.sleep(0.01)
        wall = time.perf_counter() - t0
        assert sw.totals["inner"] >= 0.01
        assert sw.totals["outer"] >= 0.02
        assert sw.total() <= wall + 1e-3  # no overlap inflation

    def test_sequential_phases_accumulate(self):
        sw = Stopwatch()
        with sw.phase("a"):
            time.sleep(0.005)
        with sw.phase("a"):
            time.sleep(0.005)
        assert sw.totals["a"] >= 0.01

    def test_exception_unwinds_cleanly(self):
        sw = PhaseTimer()
        with pytest.raises(ValueError):
            with sw.phase("outer"):
                with sw.phase("inner"):
                    raise ValueError
        assert set(sw.totals) == {"outer", "inner"}
        assert sw._stack == []

    def test_phase_records_emitted_to_trace(self):
        sink = MemorySink()
        with session(sink=sink):
            sw = PhaseTimer()
            with sw.phase("p"):
                pass
        phases = [r for r in sink.records if r["kind"] == "phase"]
        assert len(phases) == 1 and phases[0]["name"] == "p"

    def test_util_timing_alias(self):
        from repro.util.timing import Stopwatch as Legacy

        assert Legacy is PhaseTimer


class TestProgressReporter:
    def test_emits_first_and_final_heartbeat(self):
        buf = io.StringIO()
        rep = ProgressReporter("camp", 4, interval=0.0, stream=buf)
        for _ in range(4):
            rep.update(1)
        rep.finish()
        lines = buf.getvalue().splitlines()
        assert lines[0].startswith("[repro] camp: 0/4")
        assert "eta" in lines[0]
        assert "done in" in lines[-1] and "4/4" in lines[-1]

    def test_interval_throttles(self):
        buf = io.StringIO()
        rep = ProgressReporter("camp", 100, interval=3600.0, stream=buf)
        for _ in range(100):
            rep.update(1)
        rep.finish()
        # first line + final line only: everything in between is throttled
        assert len(buf.getvalue().splitlines()) == 2

    def test_context_manager_finishes_on_exception(self):
        buf = io.StringIO()
        with pytest.raises(RuntimeError):
            with ProgressReporter("camp", 4, interval=0.0, stream=buf) as rep:
                rep.update(2)
                raise RuntimeError("campaign died")
        assert rep.finished
        assert "done in" in buf.getvalue().splitlines()[-1]

    def test_finish_is_idempotent(self):
        buf = io.StringIO()
        with ProgressReporter("camp", 1, interval=0.0, stream=buf) as rep:
            rep.update(1)
            rep.finish()
        n = len(buf.getvalue().splitlines())
        rep.finish()
        assert len(buf.getvalue().splitlines()) == n

    def test_progress_scope_wraps_none(self):
        from repro.obs.progress import progress_scope

        with progress_scope(None) as rep:
            assert rep is None  # progress off: scope is inert

    def test_progress_scope_finishes_reporter(self):
        from repro.obs.progress import progress_scope

        buf = io.StringIO()
        with pytest.raises(ValueError):
            with progress_scope(
                ProgressReporter("camp", 2, interval=0.0, stream=buf)
            ) as rep:
                raise ValueError
        assert rep.finished

    def test_renderer_replaces_line_printing(self):
        buf = io.StringIO()
        calls = []
        rep = ProgressReporter(
            "camp", 2, interval=0.0, stream=buf,
            renderer=lambda r, now, final: calls.append((r.done, final)),
        )
        rep.update(2)
        rep.finish()
        assert buf.getvalue() == ""  # nothing printed directly
        assert calls[0] == (0, False) and calls[-1] == (2, True)


class TestDashboard:
    def _telemetry_with_metrics(self):
        t = Telemetry(sink=NullSink())
        t.count("fi.trials", 10)
        t.count("cache.hit", 3)
        t.count("cache.miss", 1)
        return t

    def test_renders_in_place_on_ansi_stream(self):
        from repro.obs.dashboard import Dashboard
        from repro.obs.progress import ProgressReporter

        buf = io.StringIO()
        dash = Dashboard(stream=buf, ansi=True)
        t = self._telemetry_with_metrics()
        rep = ProgressReporter("camp", 10, interval=0.0, stream=buf,
                               renderer=lambda r, now, final: None)
        rep.done = 5
        dash.render(t, rep)
        first = buf.getvalue()
        assert "camp" in first and "5/10" in first
        dash.render(t, rep, final=True)
        assert "\x1b[" in buf.getvalue()  # repaint moved the cursor

    def test_appends_blocks_without_ansi(self):
        from repro.obs.dashboard import Dashboard
        from repro.obs.progress import ProgressReporter

        buf = io.StringIO()
        dash = Dashboard(stream=buf, ansi=False)
        t = self._telemetry_with_metrics()
        rep = ProgressReporter("camp", 10, interval=0.0, stream=buf,
                               renderer=lambda r, now, final: None)
        dash.render(t, rep)
        dash.render(t, rep, final=True)
        text = buf.getvalue()
        assert "\x1b[" not in text
        assert "cache" in text  # hit-rate line present (lookups > 0)

    def test_session_dashboard_drives_progress(self):
        from repro.obs.dashboard import Dashboard

        buf = io.StringIO()
        dash = Dashboard(stream=buf, ansi=False)
        with session(sink=MemorySink(), dashboard=dash,
                     progress_interval=0.0) as t:
            assert t.progress  # --dashboard implies progress
            rep = t.progress_for("camp", 2)
            rep.update(2)
            rep.finish()
        assert "camp" in buf.getvalue()


class TestLogging:
    def test_resolve_level_precedence(self):
        assert resolve_level(0, None) == logging.WARNING
        assert resolve_level(1, None) == logging.INFO
        assert resolve_level(2, None) == logging.DEBUG
        assert resolve_level(2, "error") == logging.ERROR  # explicit wins

    def test_configure_routes_to_stream(self):
        buf = io.StringIO()
        configure_logging(verbose=1, stream=buf)
        try:
            get_logger("unit").info("hello %d", 7)
        finally:
            configure_logging(verbose=0, stream=io.StringIO())
        assert "hello 7" in buf.getvalue()
        assert "[repro]" in buf.getvalue()
