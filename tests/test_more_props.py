"""Additional property-based tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exp.candlestick import Candlestick
from repro.fi.stats import wilson_interval
from repro.minpsid.incubative import IncubativeConfig, find_incubative_pairwise
from repro.minpsid.wcfg import fitness_score
from repro.sid.knapsack import greedy_knapsack


class TestCandlestickProps:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_ordering_invariant(self, values):
        c = Candlestick.from_values(values)
        assert c.lo <= c.q1 <= c.median <= c.q3 <= c.hi
        assert c.lo == min(values) and c.hi == max(values)
        assert c.n == len(values)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_permutation_invariant(self, values):
        import random

        shuffled = list(values)
        random.Random(0).shuffle(shuffled)
        assert Candlestick.from_values(values) == Candlestick.from_values(shuffled)


class TestWilsonProps:
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_contains_point_estimate(self, k, n):
        k = min(k, n)
        lo, hi = wilson_interval(k, n)
        assert 0.0 <= lo <= k / n <= hi <= 1.0

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_narrows_with_trials(self, k):
        lo1, hi1 = wilson_interval(k, 2 * k)
        lo2, hi2 = wilson_interval(10 * k, 20 * k)
        assert (hi2 - lo2) <= (hi1 - lo1) + 1e-12


class TestGreedyKnapsackProps:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0),
                st.floats(min_value=0.0, max_value=5.0),
            ),
            min_size=1,
            max_size=20,
        ),
        st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_budget_never_exceeded(self, raw, cap):
        items = [(k, w, v) for k, (w, v) in enumerate(raw)]
        chosen = greedy_knapsack(items, cap)
        assert sum(raw[k][0] for k in chosen) <= cap + 1e-9
        assert len(set(chosen)) == len(chosen)  # no duplicates

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0),
                st.floats(min_value=0.01, max_value=5.0),
            ),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_capacity(self, raw):
        items = [(k, w, v) for k, (w, v) in enumerate(raw)]
        total_w = sum(w for w, _ in raw)
        # A hair above the exact total guards float summation-order noise.
        small = set(greedy_knapsack(items, total_w / 4))
        large = set(greedy_knapsack(items, total_w * (1 + 1e-9)))
        # Greedy fills by a fixed density order, so a bigger budget keeps
        # everything the smaller budget chose.
        assert small <= large
        # Full capacity takes every positive-value item.
        assert large == {k for k, _, v in items if v > 0}


class TestFitnessProps:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=16),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_nonnegative_and_zero_on_self(self, vec, copies):
        cand = np.asarray(vec)
        history = [cand.copy() for _ in range(copies)]
        assert fitness_score(cand, history) == 0.0
        shifted = cand + 1.0
        assert fitness_score(shifted, history) > 0.0

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_scales_with_distance(self, vec):
        cand = np.asarray(vec)
        near = fitness_score(cand + 1.0, [cand])
        far = fitness_score(cand + 10.0, [cand])
        assert far > near


class TestIncubativeProps:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=0.0, max_value=1.0),
            min_size=5,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_self_pair_is_empty(self, benefits):
        """No instruction is incubative relative to the same input."""
        assert find_incubative_pairwise(benefits, benefits) == set()

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            st.floats(min_value=0.0, max_value=1.0),
            min_size=5,
            max_size=20,
        ),
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            st.floats(min_value=0.0, max_value=1.0),
            min_size=5,
            max_size=20,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_members_satisfy_definition(self, a, b):
        cfg = IncubativeConfig()
        from repro.minpsid.incubative import benefit_thresholds

        v_low_a, _ = benefit_thresholds(a, cfg)
        _, v_high_b = benefit_thresholds(b, cfg)
        for iid in find_incubative_pairwise(a, b, cfg):
            assert a[iid] <= v_low_a
            assert b.get(iid, 0.0) > v_high_b
