"""Printer/parser round-trip tests."""

import pytest

from repro.errors import ParseError
from repro.ir import parse_module, print_module
from repro.ir.printer import format_instruction
from repro.sid.duplication import duplicate_instructions
from repro.vm.interpreter import Program
from tests.conftest import build_branchy_module, build_sum_squares_module


class TestRoundTrip:
    def assert_roundtrip(self, module, args, bindings=None):
        text = print_module(module)
        reparsed = parse_module(text)
        r1 = Program(module).run(args=args, bindings=bindings)
        r2 = Program(reparsed).run(args=args, bindings=bindings)
        assert r1.output == r2.output
        # And the text itself is a fixed point.
        assert print_module(reparsed) == text

    def test_sumsq(self):
        m = build_sum_squares_module()
        self.assert_roundtrip(m, [8], {"data": [1.0] * 8})

    def test_branchy(self):
        m = build_branchy_module()
        self.assert_roundtrip(
            m, [8, 0.5], {"data": [0.1 * i for i in range(8)]}
        )

    def test_all_apps_roundtrip(self, each_app):
        args, bindings = each_app.encode(each_app.reference_input)
        self.assert_roundtrip(each_app.module, args, bindings)

    def test_protected_module_roundtrip(self):
        m = build_sum_squares_module()
        selected = [i.iid for i in m.instructions() if i.opcode == "fmul"]
        prot = duplicate_instructions(m, selected)
        text = print_module(prot.module)
        assert "dup-of" in text
        reparsed = parse_module(text)
        data = {"data": [2.0] * 8}
        r1 = Program(prot.module).run(args=[8], bindings=data)
        r2 = Program(reparsed).run(args=[8], bindings=data)
        assert r1.output == r2.output
        # Provenance comments survive the round trip.
        origins = [i.origin for i in reparsed.instructions() if i.origin is not None]
        assert origins


class TestParserErrors:
    def test_missing_module_header(self):
        with pytest.raises(ParseError):
            parse_module("func @main() -> void {\nentry:\n  ret\n}\n")

    def test_bad_global(self):
        with pytest.raises(ParseError):
            parse_module("module m\nglobal @g f64[4]\n")

    def test_undefined_register(self):
        text = (
            "module m\n"
            "func @main() -> void {\n"
            "entry:\n"
            "  %x = add i64 %ghost, i64 1\n"
            "  ret\n"
            "}\n"
        )
        with pytest.raises(ParseError, match="undefined register"):
            parse_module(text)

    def test_register_redefined(self):
        text = (
            "module m\n"
            "func @main() -> void {\n"
            "entry:\n"
            "  %x = add i64 1, i64 1\n"
            "  %x = add i64 2, i64 2\n"
            "  ret\n"
            "}\n"
        )
        with pytest.raises(ParseError, match="redefined"):
            parse_module(text)

    def test_missing_close_brace(self):
        with pytest.raises(ParseError, match="missing closing"):
            parse_module("module m\nfunc @main() -> void {\nentry:\n  ret\n")

    def test_unknown_instruction(self):
        text = "module m\nfunc @main() -> void {\nentry:\n  zorble i64 1\n}\n"
        with pytest.raises(ParseError):
            parse_module(text)


class TestPrinter:
    def test_format_instruction_shapes(self, sumsq_module):
        seen = set()
        for instr in sumsq_module.instructions():
            text = format_instruction(instr)
            assert text
            seen.add(instr.opcode)
        assert {"load", "fmul", "fadd", "store", "br", "condbr", "ret"} <= seen

    def test_phi_printing(self):
        text = (
            "module m\n"
            "func @main() -> void {\n"
            "entry:\n"
            "  br loop\n"
            "loop:\n"
            "  %p = phi i64 [entry: i64 0], [loop: i64 %p2]\n"
            "  %p2 = add i64 %p, i64 1\n"
            "  %c = icmp slt i64 %p2, i64 5\n"
            "  condbr i1 %c, loop, done\n"
            "done:\n"
            "  emit i64 %p\n"
            "  ret\n"
            "}\n"
        )
        m = parse_module(text)
        out = Program(m).run()
        assert out.output == [4]
        assert print_module(parse_module(print_module(m))) == print_module(m)
