"""Campaign-level batch engine: equivalence, resolution, cache independence.

The ``--engine`` knob is an execution strategy, not an experiment parameter:
a batch campaign must return byte-identical results to a scalar one (same
per-fault outcome list, same counts), hit the same cache entries, and never
leak into a cache key. Engine selection resolves explicit argument >
``engine_scope`` > environment > default, with configuration errors raised
at resolution time rather than mid-campaign.
"""

from __future__ import annotations

import pytest

from repro.cache import CampaignCache
from repro.errors import ConfigError
from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.obs.core import session
from repro.obs.sink import MemorySink
from repro.vm.batch import (
    BATCH_SIZE_ENV,
    DEFAULT_BATCH_SIZE,
    ENGINE_ENV,
    engine_scope,
    resolve_batch_size,
    resolve_engine,
)

ARGS = [32]


def _campaign(sumsq_program, sumsq_data, **kw):
    return run_campaign(
        sumsq_program, 48, seed=11, args=ARGS, bindings=sumsq_data, **kw
    )


def test_whole_program_campaign_engine_equivalence(sumsq_program, sumsq_data):
    """Batch campaigns are bit-identical to scalar, cold and checkpointed,
    serial and pooled, whatever the chunking."""
    scalar = _campaign(sumsq_program, sumsq_data, engine="scalar")
    for kw in (
        {"engine": "batch"},
        {"engine": "batch", "batch_size": 7},
        {"engine": "batch", "checkpoint_interval": "auto"},
        {"engine": "batch", "batch_size": 8, "workers": 2},
    ):
        batch = _campaign(sumsq_program, sumsq_data, **kw)
        assert batch.per_fault == scalar.per_fault, kw
        assert batch.counts.counts == scalar.counts.counts, kw


def test_per_instruction_campaign_engine_equivalence(
    sumsq_program, sumsq_data
):
    scalar = run_per_instruction_campaign(
        sumsq_program, 3, seed=5, args=ARGS, bindings=sumsq_data,
        engine="scalar",
    )
    batch = run_per_instruction_campaign(
        sumsq_program, 3, seed=5, args=ARGS, bindings=sumsq_data,
        engine="batch", batch_size=16,
    )
    assert {iid: c.counts for iid, c in batch.per_iid.items()} == {
        iid: c.counts for iid, c in scalar.per_iid.items()
    }


def test_engine_never_enters_cache_keys(sumsq_program, sumsq_data, tmp_path):
    """A batch campaign replays a scalar campaign's cache entry verbatim:
    the key covers the experiment, not the executor."""
    cache = CampaignCache(tmp_path / "store")
    sink = MemorySink()
    with session(sink=sink) as t:
        scalar = _campaign(sumsq_program, sumsq_data, cache=cache)
        assert t.metrics.counters.get("cache.miss", 0) == 1
        batch = _campaign(
            sumsq_program, sumsq_data, cache=cache, engine="batch"
        )
        assert t.metrics.counters.get("cache.hit", 0) == 1
        assert t.metrics.counters.get("cache.miss", 0) == 1
    assert batch.per_fault == scalar.per_fault
    assert cache.stats().entries == 1


def test_engine_resolution_precedence(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    monkeypatch.delenv(BATCH_SIZE_ENV, raising=False)
    assert resolve_engine() == "scalar"
    assert resolve_batch_size() == DEFAULT_BATCH_SIZE

    monkeypatch.setenv(ENGINE_ENV, "batch")
    monkeypatch.setenv(BATCH_SIZE_ENV, "64")
    assert resolve_engine() == "batch"
    assert resolve_batch_size() == 64

    with engine_scope("scalar", 16):
        assert resolve_engine() == "scalar"  # scope beats env
        assert resolve_batch_size() == 16
        with engine_scope(None, None):  # no-op overlay defers outward
            assert resolve_engine() == "scalar"
            assert resolve_batch_size() == 16
        with engine_scope("batch"):  # inner scope beats outer
            assert resolve_engine() == "batch"
            assert resolve_batch_size() == 16  # size still from outer
        assert resolve_engine("batch") == "batch"  # explicit beats scope
        assert resolve_batch_size(4) == 4
    assert resolve_engine() == "batch"  # env visible again


def test_engine_config_errors(monkeypatch):
    monkeypatch.delenv(ENGINE_ENV, raising=False)
    monkeypatch.delenv(BATCH_SIZE_ENV, raising=False)
    with pytest.raises(ConfigError, match="unknown engine"):
        resolve_engine("simd")
    with pytest.raises(ConfigError, match="unknown engine"):
        with engine_scope("simd"):
            pass
    with pytest.raises(ConfigError, match="batch size"):
        resolve_batch_size(0)
    with pytest.raises(ConfigError, match="batch size"):
        with engine_scope(batch_size=-3):
            pass
    monkeypatch.setenv(ENGINE_ENV, "vector")
    with pytest.raises(ConfigError, match="unknown engine"):
        resolve_engine()
    monkeypatch.delenv(ENGINE_ENV)
    monkeypatch.setenv(BATCH_SIZE_ENV, "lots")
    with pytest.raises(ConfigError, match="must be an integer"):
        resolve_batch_size()


def test_campaign_rejects_unknown_engine(sumsq_program, sumsq_data):
    with pytest.raises(ConfigError, match="unknown engine"):
        _campaign(sumsq_program, sumsq_data, engine="simd")


def test_batch_counters_flow_to_trace(sumsq_program, sumsq_data):
    """The batch path reports its own obs counters; the scalar path none."""
    sink = MemorySink()
    with session(sink=sink) as t:
        _campaign(sumsq_program, sumsq_data, engine="batch", batch_size=16)
        counters = dict(t.metrics.counters)
    assert counters.get("batch.trials", 0) == 48
    assert counters.get("batch.batches", 0) == 3
    assert counters.get("batch.lockstep_steps", 0) > 0
    sink = MemorySink()
    with session(sink=sink) as t:
        _campaign(sumsq_program, sumsq_data, engine="scalar")
        counters = dict(t.metrics.counters)
    assert counters.get("batch.trials", 0) == 0
