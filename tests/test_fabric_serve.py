"""The campaign service: ``repro serve`` / ``repro submit``.

Exercises the service end to end over TCP loopback: SUBMIT streams
PROGRESS records and a DONE body, a repeated identical request answers
from the content-addressed cache with zero trials dispatched, campaign
failures come back structured, and handshake-version skew is rejected
before any request is read.
"""

from __future__ import annotations

import io
import re
import threading

import pytest

from repro.errors import HandshakeError
from repro.fabric.frames import FrameDecoder
from repro.fabric.protocol import (
    decode_message,
    encode_message,
    hello_body,
)
from repro.fabric.serve import run_serve, submit
from repro.fabric.transport import connect_tcp
from repro.fi.campaign import run_campaign

from tests.conftest import cached_app

FAULTS = 30
SEED = 5


class _ReadyPipe(io.TextIOBase):
    """Captures the server's LISTENING ready line and signals the port."""

    def __init__(self):
        self.event = threading.Event()
        self.addr = None

    def write(self, text):
        m = re.search(r"REPRO-SERVE LISTENING (\S+):(\d+)", text)
        if m:
            self.addr = (m.group(1), int(m.group(2)))
            self.event.set()
        return len(text)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """A serve loop on a free loopback port with a module-scoped cache."""
    cache = tmp_path_factory.mktemp("serve-cache")
    ready = _ReadyPipe()
    thread = threading.Thread(
        target=run_serve,
        args=("127.0.0.1", 0),
        kwargs={"cache": str(cache), "ready_stream": ready},
        daemon=True,
    )
    thread.start()
    assert ready.event.wait(timeout=20), "serve never announced its port"
    return ready.addr


def _request(**extra):
    app = cached_app("needle")
    req = {
        "app": "needle", "n_faults": FAULTS, "seed": SEED,
        "rel_tol": app.rel_tol, "abs_tol": app.abs_tol,
    }
    req.update(extra)
    return req


class TestSubmit:
    def test_first_submit_runs_and_streams_progress(self, server):
        host, port = server
        records = []
        outcome = submit(
            host, port, _request(), on_progress=records.append, timeout=60
        )
        assert outcome["ok"] is True
        assert outcome["app"] == "needle"
        assert outcome["trials"] == FAULTS
        assert outcome["dispatched"] == FAULTS
        assert outcome["cached"] is False
        # The PROGRESS stream is real obs telemetry, not a placeholder.
        kinds = {r.get("kind") for r in records if isinstance(r, dict)}
        assert "span" in kinds or "event" in kinds

    def test_repeat_submit_answers_from_cache_zero_dispatch(self, server):
        host, port = server
        first = submit(host, port, _request(), timeout=60)
        again = submit(host, port, _request(), timeout=60)
        assert again["dispatched"] == 0
        assert again["cached"] is True
        assert again["counts"] == first["counts"]
        assert again["sdc_probability"] == first["sdc_probability"]

    def test_outcome_matches_a_local_campaign(self, server):
        host, port = server
        app = cached_app("needle")
        a, b = app.encode(app.reference_input)
        local = run_campaign(
            app.program, FAULTS, SEED, args=a, bindings=b,
            rel_tol=app.rel_tol, abs_tol=app.abs_tol,
        )
        remote = submit(host, port, _request(), timeout=60)
        assert remote["sdc_probability"] == local.sdc_probability
        assert remote["counts"] == {
            o.value: n for o, n in local.counts.counts.items() if n
        }

    def test_explicit_input_record(self, server):
        host, port = server
        app = cached_app("needle")
        inp = dict(app.reference_input)
        outcome = submit(host, port, _request(input=inp), timeout=60)
        assert outcome["ok"] is True and outcome["trials"] == FAULTS

    def test_bad_request_fails_structured_not_fatal(self, server):
        host, port = server
        outcome = submit(
            host, port, {"app": "no-such-benchmark"}, timeout=60
        )
        assert outcome["ok"] is False
        assert "no-such-benchmark" in outcome["error"]
        # The server survives: the next submit still works.
        assert submit(host, port, _request(), timeout=60)["ok"] is True

    def test_multiple_submits_on_one_connection(self, server):
        """The session loop serves sequential SUBMITs until BYE/close."""
        host, port = server
        transport = connect_tcp(host, port, timeout=20)
        try:
            transport.send_bytes(
                encode_message("HELLO", hello_body("client"))
            )
            name, _ = decode_message(transport.recv_frame(timeout=20))
            assert name == "WELCOME"
            for _ in range(2):
                transport.send_bytes(encode_message("SUBMIT", _request()))
                while True:
                    name, body = decode_message(
                        transport.recv_frame(timeout=60)
                    )
                    if name == "DONE":
                        assert body["ok"] is True
                        break
                    assert name == "PROGRESS"
        finally:
            transport.close()


class TestServeHandshake:
    def test_version_mismatch_rejected(self, server):
        host, port = server
        transport = connect_tcp(host, port, timeout=20)
        try:
            transport.send_bytes(encode_message(
                "HELLO", dict(hello_body("client"), versions=[999])
            ))
            name, body = decode_message(transport.recv_frame(timeout=20))
            assert name == "ERROR"
            assert body["code"] == "version-mismatch"
        finally:
            transport.close()

    def test_client_raises_handshake_error_on_rejection(
        self, server, monkeypatch
    ):
        host, port = server
        import repro.fabric.serve as serve_mod

        monkeypatch.setattr(
            serve_mod, "hello_body",
            lambda role: dict(role=role, versions=[999]),
        )
        with pytest.raises(HandshakeError, match="version-mismatch"):
            submit(host, port, _request(), timeout=20)

    def test_submit_before_hello_is_a_protocol_error(self, server):
        host, port = server
        transport = connect_tcp(host, port, timeout=20)
        try:
            transport.send_bytes(encode_message("SUBMIT", _request()))
            name, body = decode_message(transport.recv_frame(timeout=20))
            assert name == "ERROR" and body["code"] == "protocol"
        finally:
            transport.close()

    def test_decoder_survives_frame_split_across_tcp_reads(self, server):
        """Sanity: the server's incremental decoder reassembles a HELLO
        deliberately dribbled one byte at a time."""
        host, port = server
        transport = connect_tcp(host, port, timeout=20)
        try:
            data = encode_message("HELLO", hello_body("client"))
            for i in range(0, len(data), 7):
                transport._sock.sendall(data[i:i + 7])
            name, _ = decode_message(transport.recv_frame(timeout=20))
            assert name == "WELCOME"
        finally:
            transport.close()

    def test_decoder_is_importable_for_clients(self):
        # submit() builds on the same FrameDecoder the server uses.
        assert FrameDecoder().at_boundary()


class TestCleanShutdown:
    """SIGTERM/SIGINT end ``repro serve`` cleanly (no asyncio traceback):
    the listener closes, open connections get a ``BYE``, and the process
    exits 0 so a ``--trace`` obs session can flush."""

    @pytest.mark.parametrize("sig", ["SIGTERM", "SIGINT"])
    def test_signal_closes_listener_and_byes_clients(self, sig):
        import signal
        import subprocess
        import sys

        from repro.fabric.transport import _adapter_env

        proc = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.fabric.serve import run_serve\n"
             "run_serve('127.0.0.1', 0)\n"
             "print('SERVE-RETURNED', flush=True)\n"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=_adapter_env(), text=True,
        )
        try:
            line = proc.stdout.readline()
            m = re.search(r"REPRO-SERVE LISTENING (\S+):(\d+)", line)
            assert m, f"no ready line: {line!r}"
            transport = connect_tcp(m.group(1), int(m.group(2)), timeout=20)
            try:
                transport.send_bytes(
                    encode_message("HELLO", hello_body("client"))
                )
                name, _ = decode_message(transport.recv_frame(timeout=20))
                assert name == "WELCOME"
                proc.send_signal(getattr(signal, sig))
                name, _ = decode_message(transport.recv_frame(timeout=20))
                assert name == "BYE"
            finally:
                transport.close()
            out, err = proc.communicate(timeout=20)
            assert proc.returncode == 0, err
            assert "SERVE-RETURNED" in out  # run_serve returned, not died
            assert "Traceback" not in err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
