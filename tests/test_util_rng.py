"""Tests for deterministic RNG streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_path_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", 1) != derive_seed(1, "a", 2)

    def test_master_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64bit_range(self):
        s = derive_seed(123456789, "campaign", 42)
        assert 0 <= s < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_always_valid(self, master, label):
        assert 0 <= derive_seed(master, label) < 2**64


class TestRngStream:
    def test_reproducible_sequences(self):
        a = RngStream(7)
        b = RngStream(7)
        assert [a.randint(0, 100) for _ in range(10)] == [
            b.randint(0, 100) for _ in range(10)
        ]

    def test_children_independent_of_draw_order(self):
        parent = RngStream(7)
        c1_first = parent.child("x").randint(0, 10**9)
        parent2 = RngStream(7)
        parent2.randint(0, 100)  # consume parent state
        c1_second = parent2.child("x").randint(0, 10**9)
        assert c1_first == c1_second  # children derive from seed, not state

    def test_distinct_children(self):
        parent = RngStream(7)
        assert parent.child("a").seed != parent.child("b").seed

    def test_numpy_stream_matches_seed(self):
        a = RngStream(99)
        b = RngStream(99)
        assert a.np.integers(0, 1000) == b.np.integers(0, 1000)

    def test_uniform_bounds(self):
        r = RngStream(5)
        for _ in range(100):
            assert 0.0 <= r.uniform(0.0, 1.0) <= 1.0

    def test_sample_distinct(self):
        r = RngStream(5)
        s = r.sample(range(50), 10)
        assert len(set(s)) == 10

    def test_shuffle_permutation(self):
        r = RngStream(5)
        xs = list(range(20))
        ys = list(xs)
        r.shuffle(ys)
        assert sorted(ys) == xs
