"""End-to-end cache behaviour at the campaign entry points.

The bar: a warm re-run returns *bit-identical* results while dispatching
zero campaigns; any cache failure (corruption, races, opt-out) degrades to
the exact cold-path numbers. Re-uses the determinism invariant from
``test_fi_checkpoint.py`` — a serially-filled entry must serve pooled and
checkpoint-resumed callers, because the key deliberately excludes ``workers``
and checkpoint settings.
"""

from __future__ import annotations

from repro.cache.active import cache_scope
from repro.cache.store import CampaignCache
from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.obs.core import session
from repro.obs.sink import MemorySink


def _kwargs(app):
    args, bindings = app.encode(app.reference_input)
    return dict(
        args=args, bindings=bindings, rel_tol=app.rel_tol, abs_tol=app.abs_tol
    )


def assert_same_campaign(a, b):
    assert a.per_fault == b.per_fault
    assert a.counts == b.counts
    assert a.trials == b.trials


def assert_same_per_instruction(a, b):
    assert a.per_iid == b.per_iid
    assert a.trials_per_instruction == b.trials_per_instruction


class TestWholeProgramCaching:
    def test_warm_run_is_bit_identical_and_injects_nothing(
        self, pathfinder_app, tmp_path
    ):
        kw = _kwargs(pathfinder_app)
        store = CampaignCache(tmp_path)
        cold = run_campaign(
            pathfinder_app.program, 30, seed=11, cache=store, **kw
        )
        with session(sink=MemorySink()) as t:
            warm = run_campaign(
                pathfinder_app.program, 30, seed=11, cache=store, **kw
            )
        assert_same_campaign(cold, warm)
        counters = t.metrics.counters
        assert counters.get("cache.hit") == 1
        assert counters.get("fi.campaigns", 0) == 0
        assert counters.get("fi.trials", 0) == 0

    def test_hit_emits_a_cache_event_with_the_key(
        self, pathfinder_app, tmp_path
    ):
        kw = _kwargs(pathfinder_app)
        store = CampaignCache(tmp_path)
        run_campaign(pathfinder_app.program, 20, seed=3, cache=store, **kw)
        sink = MemorySink()
        with session(sink=sink):
            run_campaign(pathfinder_app.program, 20, seed=3, cache=store, **kw)
        hits = [r for r in sink.records if r.get("name") == "cache.hit"]
        assert len(hits) == 1
        assert hits[0]["fields"]["label"] == "fi.whole-program"
        assert hits[0]["fields"]["trials"] == 20
        assert store.path_for(hits[0]["fields"]["key"]).exists()

    def test_serial_entry_serves_pooled_and_checkpointed_callers(
        self, pathfinder_app, tmp_path
    ):
        kw = _kwargs(pathfinder_app)
        store = CampaignCache(tmp_path)
        cold = run_campaign(
            pathfinder_app.program, 30, seed=11, workers=0, cache=store, **kw
        )
        assert store.stats().entries == 1
        with session(sink=MemorySink()) as t:
            pooled = run_campaign(
                pathfinder_app.program, 30, seed=11, workers=2,
                cache=store, **kw,
            )
            ckpt = run_campaign(
                pathfinder_app.program, 30, seed=11,
                checkpoint_interval="auto", cache=store, **kw,
            )
        assert t.metrics.counters.get("cache.hit") == 2
        assert store.stats().entries == 1  # same key: nothing re-written
        assert_same_campaign(cold, pooled)
        assert_same_campaign(cold, ckpt)

    def test_different_program_or_plan_misses(
        self, pathfinder_app, fft_app, tmp_path
    ):
        store = CampaignCache(tmp_path)
        run_campaign(
            pathfinder_app.program, 20, seed=3, cache=store,
            **_kwargs(pathfinder_app),
        )
        with session(sink=MemorySink()) as t:
            run_campaign(
                fft_app.program, 20, seed=3, cache=store, **_kwargs(fft_app)
            )
            run_campaign(
                pathfinder_app.program, 20, seed=4, cache=store,
                **_kwargs(pathfinder_app),
            )
        assert t.metrics.counters.get("cache.hit", 0) == 0
        assert t.metrics.counters.get("cache.miss") == 2
        assert store.stats().entries == 3

    def test_corrupted_entry_degrades_to_an_identical_recompute(
        self, pathfinder_app, tmp_path
    ):
        kw = _kwargs(pathfinder_app)
        store = CampaignCache(tmp_path)
        cold = run_campaign(
            pathfinder_app.program, 24, seed=9, cache=store, **kw
        )
        [entry] = store._entries()
        entry.write_text(entry.read_text()[:40])  # truncate in place
        with session(sink=MemorySink()) as t:
            recomputed = run_campaign(
                pathfinder_app.program, 24, seed=9, cache=store, **kw
            )
        assert_same_campaign(cold, recomputed)
        counters = t.metrics.counters
        assert counters.get("cache.corrupt") == 1
        assert counters.get("fi.campaigns") == 1  # really re-ran
        assert counters.get("cache.write") == 1  # and healed the entry
        with session(sink=MemorySink()) as t2:
            run_campaign(pathfinder_app.program, 24, seed=9, cache=store, **kw)
        assert t2.metrics.counters.get("cache.hit") == 1


class TestPerInstructionCaching:
    def test_warm_run_is_bit_identical(self, pathfinder_app, tmp_path):
        kw = _kwargs(pathfinder_app)
        store = CampaignCache(tmp_path)
        cold = run_per_instruction_campaign(
            pathfinder_app.program, trials_per_instruction=3, seed=7,
            cache=store, **kw,
        )
        with session(sink=MemorySink()) as t:
            warm = run_per_instruction_campaign(
                pathfinder_app.program, trials_per_instruction=3, seed=7,
                cache=store, **kw,
            )
        assert_same_per_instruction(cold, warm)
        assert t.metrics.counters.get("cache.hit") == 1
        assert t.metrics.counters.get("fi.campaigns", 0) == 0

    def test_hit_recomputes_profile_only_when_caller_has_none(
        self, pathfinder_app, tmp_path
    ):
        kw = _kwargs(pathfinder_app)
        store = CampaignCache(tmp_path)
        cold = run_per_instruction_campaign(
            pathfinder_app.program, trials_per_instruction=2, seed=5,
            cache=store, **kw,
        )
        # Entries store outcomes only, not the profile — a profile-less hit
        # must rebuild an equivalent one from the (deterministic) golden run.
        warm = run_per_instruction_campaign(
            pathfinder_app.program, trials_per_instruction=2, seed=5,
            cache=store, **kw,
        )
        assert warm.profile.steps == cold.profile.steps
        assert warm.profile.output == cold.profile.output
        supplied = run_per_instruction_campaign(
            pathfinder_app.program, trials_per_instruction=2, seed=5,
            cache=store, profile=cold.profile, **kw,
        )
        assert supplied.profile is cold.profile
        assert_same_per_instruction(cold, supplied)

    def test_subset_sweep_has_its_own_key(self, pathfinder_app, tmp_path):
        from repro.fi.faultmodel import injectable_iids

        kw = _kwargs(pathfinder_app)
        store = CampaignCache(tmp_path)
        iids = injectable_iids(pathfinder_app.program.module)
        run_per_instruction_campaign(
            pathfinder_app.program, trials_per_instruction=2, seed=5,
            only_iids=iids[:4], cache=store, **kw,
        )
        with session(sink=MemorySink()) as t:
            full = run_per_instruction_campaign(
                pathfinder_app.program, trials_per_instruction=2, seed=5,
                cache=store, **kw,
            )
        assert t.metrics.counters.get("cache.hit", 0) == 0
        assert set(full.per_iid) == set(iids)


class TestAmbientScope:
    def test_scope_installs_cache_for_plain_calls(
        self, pathfinder_app, tmp_path
    ):
        kw = _kwargs(pathfinder_app)
        with cache_scope(str(tmp_path)) as store:
            cold = run_campaign(pathfinder_app.program, 20, seed=3, **kw)
            with session(sink=MemorySink()) as t:
                warm = run_campaign(pathfinder_app.program, 20, seed=3, **kw)
        assert store.stats().entries == 1
        assert t.metrics.counters.get("cache.hit") == 1
        assert_same_campaign(cold, warm)

    def test_env_var_activates_and_no_cache_scope_overrides(
        self, pathfinder_app, tmp_path, monkeypatch
    ):
        kw = _kwargs(pathfinder_app)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_campaign(pathfinder_app.program, 20, seed=3, **kw)
        store = CampaignCache(tmp_path)
        assert store.stats().entries == 1
        with cache_scope(False), session(sink=MemorySink()) as t:
            run_campaign(pathfinder_app.program, 20, seed=3, **kw)
        counters = t.metrics.counters
        assert counters.get("cache.hit", 0) == 0
        assert counters.get("cache.miss", 0) == 0
        assert counters.get("fi.campaigns") == 1

    def test_cache_false_opts_a_single_call_out(
        self, pathfinder_app, tmp_path
    ):
        kw = _kwargs(pathfinder_app)
        with cache_scope(str(tmp_path)) as store:
            run_campaign(
                pathfinder_app.program, 20, seed=3, cache=False, **kw
            )
            assert store.stats().entries == 0


class TestFailedCampaignsNeverPublish:
    """A campaign that died mid-flight must leave the store untouched.

    The supervisor raises before the write-back, so a harness failure can
    never persist a partial outcome set that later replays as truth.
    """

    def test_harness_failure_writes_nothing_then_clean_rerun_fills(
        self, pathfinder_app, tmp_path, monkeypatch
    ):
        import pytest

        from repro.errors import HarnessError

        kw = _kwargs(pathfinder_app)
        store = CampaignCache(tmp_path)
        monkeypatch.setenv("REPRO_CHAOS", "exc@0#*")
        with pytest.raises(HarnessError):
            run_campaign(
                pathfinder_app.program, 48, seed=31, workers=2,
                max_retries=1, cache=store, **kw,
            )
        assert store.stats().entries == 0

        monkeypatch.delenv("REPRO_CHAOS")
        serial = run_campaign(
            pathfinder_app.program, 48, seed=31, cache=store, **kw
        )
        assert store.stats().entries == 1
        with session(sink=MemorySink()) as t:
            warm = run_campaign(
                pathfinder_app.program, 48, seed=31, workers=2,
                cache=store, **kw,
            )
        assert t.metrics.counters.get("cache.hit") == 1
        assert_same_campaign(serial, warm)
