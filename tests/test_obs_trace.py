"""Telemetry must never perturb results: bit-identical outcomes with tracing
on/off, and deterministic counters whatever the worker count."""

from __future__ import annotations

import pytest

from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.obs.core import session
from repro.obs.schema import lint_records, lint_trace
from repro.obs.sink import MemorySink

FAULTS = 64
SEED = 2022


@pytest.fixture(autouse=True)
def _fast_heartbeats(monkeypatch):
    monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0")


def _campaign(app, workers, **kw):
    a, b = app.encode(app.reference_input)
    return run_campaign(
        app.program, FAULTS, SEED, args=a, bindings=b,
        rel_tol=app.rel_tol, abs_tol=app.abs_tol, workers=workers, **kw
    )


class TestTracingIsInert:
    """Same (program, input, seed) → same per_fault, traced or not."""

    def test_golden_run_identical(self, pathfinder_app):
        bare = pathfinder_app.run_reference()
        sink = MemorySink()
        with session(sink=sink):
            traced = pathfinder_app.run_reference()
        assert traced.steps == bare.steps
        assert traced.output == bare.output
        counters = sink.records[-1]["fields"]["counters"]
        assert counters["vm.runs"] == 1
        assert counters["vm.steps"] == bare.steps

    def test_serial_outcomes_identical(self, pathfinder_app):
        bare = _campaign(pathfinder_app, workers=0)
        sink = MemorySink()
        with session(sink=sink, progress=True, progress_stream=open("/dev/null", "w")):
            traced = _campaign(pathfinder_app, workers=0)
        assert traced.per_fault == bare.per_fault
        assert traced.counts.counts == bare.counts.counts
        assert lint_records(sink.records) == []

    def test_parallel_outcomes_identical(self, pathfinder_app):
        bare = _campaign(pathfinder_app, workers=2)
        sink = MemorySink()
        with session(sink=sink):
            traced = _campaign(pathfinder_app, workers=2)
        assert traced.per_fault == bare.per_fault
        assert lint_records(sink.records) == []
        batches = [r for r in sink.records if r["name"] == "campaign.batch"]
        assert len(batches) >= 2  # the pool path really ran, in batches

    def test_checkpointed_outcomes_identical(self, pathfinder_app):
        bare = _campaign(pathfinder_app, workers=0)
        with session(sink=MemorySink()):
            ckpt_serial = _campaign(
                pathfinder_app, workers=0, checkpoint_interval="auto"
            )
        with session(sink=MemorySink()):
            ckpt_parallel = _campaign(
                pathfinder_app, workers=2, checkpoint_interval="auto"
            )
        assert ckpt_serial.per_fault == bare.per_fault
        assert ckpt_parallel.per_fault == bare.per_fault

    def test_per_instruction_identical(self, pathfinder_app):
        app = pathfinder_app
        a, b = app.encode(app.reference_input)

        def run():
            return run_per_instruction_campaign(
                app.program, trials_per_instruction=2, seed=SEED,
                args=a, bindings=b, rel_tol=app.rel_tol, abs_tol=app.abs_tol,
                workers=0,
            )

        bare = run()
        with session(sink=MemorySink()):
            traced = run()
        assert {k: v.counts for k, v in traced.per_iid.items()} == {
            k: v.counts for k, v in bare.per_iid.items()
        }


class TestCounterDeterminism:
    """Deterministic counters are identical across REPRO_WORKERS settings."""

    def _counters(self, app, monkeypatch, n_workers: str) -> dict:
        monkeypatch.setenv("REPRO_WORKERS", n_workers)
        sink = MemorySink()
        with session(sink=sink):
            _campaign(app, workers=None)
        summary = sink.records[-1]
        assert summary["name"] == "trace.summary"
        return summary["fields"]["counters"]

    def test_counters_match_serial_vs_two_workers(
        self, pathfinder_app, monkeypatch
    ):
        serial = self._counters(pathfinder_app, monkeypatch, "0")
        parallel = self._counters(pathfinder_app, monkeypatch, "2")
        assert serial == parallel
        # and the deterministic quantities are actually in there
        for key in ("vm.runs", "vm.steps", "fi.trials", "fi.campaigns"):
            assert key in serial
        assert serial["fi.trials"] == FAULTS
        assert sum(
            v for k, v in serial.items() if k.startswith("fi.outcome.")
        ) == FAULTS

    def test_outcome_counters_match_campaign_result(self, pathfinder_app):
        sink = MemorySink()
        with session(sink=sink):
            camp = _campaign(pathfinder_app, workers=0)
        counters = sink.records[-1]["fields"]["counters"]
        for o, n in camp.counts.counts.items():
            key = f"fi.outcome.{o.value}"
            assert counters.get(key, 0) == n


class TestTraceSchemaStability:
    """Golden schema check: the JSONL file a session writes always lints."""

    def test_written_trace_lints_clean(self, pathfinder_app, tmp_path):
        path = tmp_path / "t.jsonl"
        with session(trace=str(path)):
            _campaign(pathfinder_app, workers=2, checkpoint_interval="auto")
        assert path.exists()
        assert lint_trace(path) == []

    def test_trace_record_names_are_stable(self, pathfinder_app, tmp_path):
        sink = MemorySink()
        with session(sink=sink):
            _campaign(pathfinder_app, workers=0)
        names = {r["name"] for r in sink.records}
        # The contract downstream tooling (obs report) depends on.
        assert {
            "trace.meta", "campaign.begin", "campaign.batch",
            "campaign.end", "trace.summary",
        } <= names
