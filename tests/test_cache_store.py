"""On-disk store behaviour: roundtrips, corruption tolerance, eviction,
concurrent writers, and the maintenance surface behind ``repro cache``.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor

from repro.cache.store import CampaignCache
from repro.obs.core import session
from repro.util.digest import stable_digest

PAYLOAD = {"kind": "whole-program", "trials": 3, "per_fault": [[1, "sdc"]]}


def key_for(i: int) -> str:
    return stable_digest({"entry": i})


def fill_entry(root: str, i: int) -> None:
    """Top-level worker so ProcessPoolExecutor can pickle it."""
    CampaignCache(root).put(key_for(i), PAYLOAD)


class TestRoundtrip:
    def test_put_then_get_returns_the_payload(self, tmp_path):
        store = CampaignCache(tmp_path)
        store.put(key_for(0), PAYLOAD)
        assert store.get(key_for(0)) == PAYLOAD

    def test_missing_key_is_a_miss(self, tmp_path):
        with session() as t:
            assert CampaignCache(tmp_path).get(key_for(0)) is None
        assert t.metrics.counters.get("cache.miss") == 1

    def test_hit_and_write_are_counted(self, tmp_path):
        store = CampaignCache(tmp_path)
        with session() as t:
            store.put(key_for(0), PAYLOAD)
            store.get(key_for(0))
        assert t.metrics.counters.get("cache.write") == 1
        assert t.metrics.counters.get("cache.hit") == 1


class TestCorruptionTolerance:
    def corrupt(self, tmp_path, mutate) -> CampaignCache:
        store = CampaignCache(tmp_path)
        store.put(key_for(0), PAYLOAD)
        path = store.path_for(key_for(0))
        mutate(path)
        return store

    def assert_degrades_to_miss(self, store):
        path = store.path_for(key_for(0))
        with session() as t:
            assert store.get(key_for(0)) is None
        assert t.metrics.counters.get("cache.corrupt") == 1
        assert t.metrics.counters.get("cache.miss") == 1
        assert not path.exists()  # quarantined, not left to fail again

    def test_truncated_entry(self, tmp_path):
        store = self.corrupt(
            tmp_path, lambda p: p.write_text(p.read_text()[: len(p.read_text()) // 2])
        )
        self.assert_degrades_to_miss(store)

    def test_garbage_bytes(self, tmp_path):
        store = self.corrupt(tmp_path, lambda p: p.write_bytes(b"\x00\xff not json"))
        self.assert_degrades_to_miss(store)

    def test_checksum_mismatch(self, tmp_path):
        def tamper(p):
            entry = json.loads(p.read_text())
            entry["payload"]["trials"] = 999  # bit-rot in the payload
            p.write_text(json.dumps(entry))

        self.assert_degrades_to_miss(self.corrupt(tmp_path, tamper))

    def test_entry_filed_under_the_wrong_key(self, tmp_path):
        store = CampaignCache(tmp_path)
        store.put(key_for(0), PAYLOAD)
        wrong = store.path_for(key_for(1))
        wrong.parent.mkdir(parents=True, exist_ok=True)
        os.replace(store.path_for(key_for(0)), wrong)
        with session() as t:
            assert store.get(key_for(1)) is None
        assert t.metrics.counters.get("cache.corrupt") == 1

    def test_wrong_schema_version(self, tmp_path):
        def downgrade(p):
            entry = json.loads(p.read_text())
            entry["schema"] = 0
            p.write_text(json.dumps(entry))

        self.assert_degrades_to_miss(self.corrupt(tmp_path, downgrade))

    def test_recompute_after_corruption_can_refill(self, tmp_path):
        store = self.corrupt(tmp_path, lambda p: p.write_text("{"))
        assert store.get(key_for(0)) is None
        store.put(key_for(0), PAYLOAD)
        assert store.get(key_for(0)) == PAYLOAD


class TestEviction:
    def test_prune_drops_least_recently_used_first(self, tmp_path):
        store = CampaignCache(tmp_path, max_bytes=None)
        store.max_bytes = None  # fill without triggering eviction
        for i in range(4):
            store.put(key_for(i), PAYLOAD)
        # Pin deterministic LRU clocks: entry 2 most recent, entry 0 oldest.
        for age, i in enumerate([0, 3, 1, 2]):
            os.utime(store.path_for(key_for(i)), (1000.0 + age, 1000.0 + age))
        size = store.path_for(key_for(0)).stat().st_size
        with session() as t:
            removed = store.prune(max_bytes=2 * size)
        assert removed == 2
        assert t.metrics.counters.get("cache.evicted") == 2
        assert not store.path_for(key_for(0)).exists()
        assert not store.path_for(key_for(3)).exists()
        assert store.get(key_for(1)) == PAYLOAD
        assert store.get(key_for(2)) == PAYLOAD

    def test_hits_refresh_the_lru_clock(self, tmp_path):
        store = CampaignCache(tmp_path)
        store.put(key_for(0), PAYLOAD)
        os.utime(store.path_for(key_for(0)), (1000.0, 1000.0))
        store.get(key_for(0))
        assert store.path_for(key_for(0)).stat().st_mtime > 1000.0

    def test_writes_auto_prune_under_the_cap(self, tmp_path):
        store = CampaignCache(tmp_path, max_bytes=1)  # cap below any entry
        for i in range(40):  # crosses the amortized-prune stride
            store.put(key_for(i), PAYLOAD)
        # Amortized pruning bounds growth to one stride of stale entries...
        assert store.stats().entries < 40
        # ...and an explicit prune enforces the cap exactly.
        store.prune()
        assert store.stats().entries == 0

    def test_no_cap_means_no_eviction(self, tmp_path):
        store = CampaignCache(tmp_path, max_bytes=0)
        for i in range(3):
            store.put(key_for(i), PAYLOAD)
        assert store.prune() == 0
        assert store.stats().entries == 3


class TestMaintenance:
    def test_stats_counts_entries_and_bytes(self, tmp_path):
        store = CampaignCache(tmp_path)
        assert store.stats().entries == 0
        store.put(key_for(0), PAYLOAD)
        store.put(key_for(1), PAYLOAD)
        st = store.stats()
        assert st.entries == 2
        assert st.bytes > 0
        assert str(tmp_path) in st.render()

    def test_verify_finds_and_deletes_damaged_entries(self, tmp_path):
        store = CampaignCache(tmp_path)
        store.put(key_for(0), PAYLOAD)
        store.put(key_for(1), PAYLOAD)
        store.path_for(key_for(1)).write_text("not json")
        assert store.verify() == [store.path_for(key_for(1))]
        assert store.verify(delete=True) == [store.path_for(key_for(1))]
        assert store.verify() == []
        assert store.get(key_for(0)) == PAYLOAD

    def test_clear_empties_the_store(self, tmp_path):
        store = CampaignCache(tmp_path)
        for i in range(3):
            store.put(key_for(i), PAYLOAD)
        assert store.clear() == 3
        assert store.stats().entries == 0


class TestConcurrentWriters:
    def test_racing_processes_leave_one_valid_entry(self, tmp_path):
        root = str(tmp_path)
        with ProcessPoolExecutor(max_workers=4) as pool:
            list(pool.map(fill_entry, [root] * 8, [0] * 8))
        store = CampaignCache(root)
        assert store.get(key_for(0)) == PAYLOAD
        assert store.verify() == []
        # No stray temp files left behind by the atomic-publish protocol.
        leftovers = [p for p in store.root.rglob("*.tmp")]
        assert leftovers == []

    def test_unwritable_store_degrades_silently(self, tmp_path, monkeypatch):
        # chmod tricks don't bind when the suite runs as root, so simulate
        # the full/read-only disk at the publish syscall instead.
        def refuse(*a, **kw):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.cache.store.os.replace", refuse)
        store = CampaignCache(tmp_path)
        with session() as t:
            store.put(key_for(0), PAYLOAD)  # must not raise
        assert t.metrics.counters.get("cache.write", 0) == 0
        assert store.get(key_for(0)) is None
