"""Integration tests: full pipelines at tiny scale."""

import pytest

from repro.apps import get_app
from repro.exp import TINY
from repro.exp.runner import duplication_fraction, generate_eval_inputs
from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.minpsid.ga import GAConfig
from repro.minpsid.pipeline import MINPSIDConfig, minpsid
from repro.minpsid.search import InputSearchConfig, run_input_search
from repro.sid.coverage import measured_coverage
from repro.sid.pipeline import SIDConfig, classic_sid
from repro.sid.profiles import build_cost_benefit_profile
from repro.vm.interpreter import Program
from repro.vm.profiler import profile_run
from tests.conftest import cached_app

TINY_SEARCH = InputSearchConfig(
    max_inputs=2,
    stall_limit=2,
    per_instruction_trials=2,
    ga=GAConfig(population_size=3, max_generations=2),
)


@pytest.fixture(scope="module")
def pathfinder_minpsid():
    app = cached_app("pathfinder")
    cfg = MINPSIDConfig(
        protection_level=0.5,
        per_instruction_trials=3,
        seed=99,
        search=TINY_SEARCH,
    )
    return app, minpsid(app, cfg)


class TestInputSearch:
    def _ref_benefits(self, app):
        args, bindings = app.encode(app.reference_input)
        prof = profile_run(app.program, args=args, bindings=bindings)
        fi = run_per_instruction_campaign(
            app.program, 3, seed=5, args=args, bindings=bindings, profile=prof
        )
        return build_cost_benefit_profile(app.module, prof, fi).benefit

    def test_ga_search_runs(self):
        app = cached_app("pathfinder")
        out = run_input_search(app, self._ref_benefits(app), seed=3, config=TINY_SEARCH)
        assert len(out.inputs) >= 2  # reference + at least one searched
        assert len(out.trace) == len(out.inputs)
        assert out.trace == sorted(out.trace)  # cumulative counts only grow

    def test_random_search_runs(self):
        app = cached_app("pathfinder")
        cfg = InputSearchConfig(
            max_inputs=2, stall_limit=2, per_instruction_trials=2, strategy="random"
        )
        out = run_input_search(app, self._ref_benefits(app), seed=3, config=cfg)
        assert len(out.inputs) >= 2

    def test_search_deterministic(self):
        app = cached_app("pathfinder")
        ref = self._ref_benefits(app)
        a = run_input_search(app, ref, seed=11, config=TINY_SEARCH)
        b = run_input_search(app, ref, seed=11, config=TINY_SEARCH)
        assert a.inputs == b.inputs
        assert a.incubative == b.incubative


class TestMinpsidPipeline:
    def test_produces_protected_module(self, pathfinder_minpsid):
        app, res = pathfinder_minpsid
        assert res.protected.checks == len(res.selection.selected)
        assert 0.0 <= res.expected_coverage <= 1.0

    def test_protected_behaviour_preserved(self, pathfinder_minpsid):
        app, res = pathfinder_minpsid
        args, bindings = app.encode(app.reference_input)
        golden = app.program.run(args=args, bindings=bindings)
        prot = Program(res.protected.module).run(args=args, bindings=bindings)
        assert prot.output == golden.output

    def test_stopwatch_has_paper_phases(self, pathfinder_minpsid):
        _, res = pathfinder_minpsid
        for phase in ("per_inst_fi_ref", "search_engine", "selection", "transform"):
            assert phase in res.stopwatch.totals

    def test_incubative_get_selected(self, pathfinder_minpsid):
        """Re-prioritized incubative instructions should tend to be picked."""
        _, res = pathfinder_minpsid
        if not res.incubative:
            pytest.skip("no incubative found at tiny scale")
        picked = set(res.selection.selected) & res.incubative
        # the re-prioritization exists precisely to pull these in
        assert picked or res.selection.used_budget >= 0.49

    def test_protection_actually_protects(self, pathfinder_minpsid):
        app, res = pathfinder_minpsid
        args, bindings = app.encode(app.reference_input)
        pu = run_campaign(
            app.program, 80, seed=1, args=args, bindings=bindings
        ).sdc_probability
        pp = run_campaign(
            Program(res.protected.module), 80, seed=2, args=args, bindings=bindings
        ).sdc_probability
        cov = measured_coverage(pu, pp)
        assert cov is None or cov > 0.3

    def test_ablation_no_reprioritization(self):
        app = cached_app("pathfinder")
        cfg = MINPSIDConfig(
            protection_level=0.5,
            per_instruction_trials=3,
            seed=99,
            search=TINY_SEARCH,
            apply_reprioritization=False,
        )
        res = minpsid(app, cfg)
        assert res.protected is not None

    def test_ablation_mean_rule(self):
        app = cached_app("pathfinder")
        cfg = MINPSIDConfig(
            protection_level=0.5,
            per_instruction_trials=3,
            seed=99,
            search=TINY_SEARCH,
            reprioritize_rule="mean",
        )
        res = minpsid(app, cfg)
        assert res.protected is not None


class TestEvalHelpers:
    def test_generate_eval_inputs(self):
        app = cached_app("knn")
        inputs = generate_eval_inputs(app, 4, seed=5)
        assert len(inputs) == 4
        assert all(app.input_spec.validate(i) == i for i in inputs)

    def test_eval_inputs_deterministic(self):
        app = cached_app("knn")
        assert generate_eval_inputs(app, 3, seed=5) == generate_eval_inputs(
            app, 3, seed=5
        )

    def test_duplication_fraction_tracks_level(self):
        app = cached_app("knn")
        args, bindings = app.encode(app.reference_input)
        fracs = {}
        for level in (0.3, 0.7):
            sid = classic_sid(
                app.module, args, bindings,
                SIDConfig(protection_level=level, per_instruction_trials=3),
            )
            prog = Program(sid.protected.module)
            fracs[level] = duplication_fraction(sid.protected, prog, args, bindings)
        assert 0.0 < fracs[0.3] <= 0.3 + 1e-9
        assert fracs[0.3] < fracs[0.7] <= 0.7 + 1e-9


class TestThreadedExecution:
    def test_threaded_fft_matches_serial(self):
        from repro.exp.mt_fft import ThreadedFftApp

        serial = cached_app("fft")
        inp = {"m": 4, "scale": 1.0, "waveform": "noise", "seed": 23}
        s_args, s_bind = serial.encode(inp)
        golden = serial.program.run(args=s_args, bindings=s_bind)
        for t in (1, 2, 4):
            mt = ThreadedFftApp(num_threads=t, m=4)
            args, bindings = mt.encode({k: v for k, v in inp.items() if k != "m"})
            r = mt.program.run(args=args, bindings=bindings)
            assert r.output == pytest.approx(golden.output)

    def test_partition_range(self):
        from repro.vm.threads import partition_range

        parts = partition_range(10, 4)
        assert parts == [(0, 3), (3, 6), (6, 8), (8, 10)]
        assert partition_range(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_thread_driver_rewrite(self):
        from repro.vm.threads import ThreadPhase, make_thread_driver

        app = cached_app("fft")
        driver = make_thread_driver(
            app.module, [ThreadPhase(worker="stage_worker", size=4, extra_args=(4,))], 2
        )
        assert "main" in driver.functions
        calls = [
            i for i in driver.functions["main"].instructions() if i.opcode == "call"
        ]
        assert len(calls) == 2  # one per thread


class TestDatasets:
    def test_graph_corpus(self):
        from repro.apps.datasets import konect_like_graphs

        corpus = konect_like_graphs(8, seed=1)
        assert len(corpus) == 8
        for ds in corpus:
            n = ds["n"]
            assert ds["row_off"][0] == 0
            assert ds["row_off"][-1] == len(ds["cols"])
            assert all(0 <= c < n for c in ds["cols"])

    def test_clustering_corpus(self):
        from repro.apps.datasets import kaggle_like_clusterings

        corpus = kaggle_like_clusterings(6, seed=1)
        assert len(corpus) == 6
        shapes = {ds["name"].split("-")[0] for ds in corpus}
        assert len(shapes) >= 4  # geometry actually varies

    def test_dataset_apps_run(self):
        from repro.apps.datasets import DatasetBfsApp, DatasetKmeansApp
        from repro.apps.datasets import kaggle_like_clusterings, konect_like_graphs

        bfs = DatasetBfsApp(konect_like_graphs(3, seed=2))
        km = DatasetKmeansApp(kaggle_like_clusterings(3, seed=2))
        for app in (bfs, km):
            for inp in app.dataset_inputs():
                args, bindings = app.encode(inp)
                r = app.program.run(args=args, bindings=bindings)
                assert r.output

    def test_dataset_app_shares_module(self):
        from repro.apps.datasets import DatasetBfsApp, konect_like_graphs
        from repro.ir.printer import print_module

        ds = DatasetBfsApp(konect_like_graphs(2, seed=3))
        assert print_module(ds.module) == print_module(cached_app("bfs").module)
