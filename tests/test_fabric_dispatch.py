"""Fabric chunk dispatch: bit-identical campaigns on every transport.

The contract under test is the cross-cutting invariant of the whole
stack: a campaign dispatched through ``repro.fabric`` adapters — in-proc,
over a socketpair to spawned subprocesses, or over TCP loopback —
produces byte-identical outcomes to a serial in-process run, at any
worker count, and adapter loss mid-chunk is recovered by the ordinary
supervisor retry machinery (docs/FABRIC.md).
"""

from __future__ import annotations

import re
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.fabric.harness import (
    ADDR_ENV,
    TRANSPORT_ENV,
    fabric_scope,
    resolve_fabric,
    resolve_transport,
)
from repro.fabric.transport import _adapter_env, adapter_command
from repro.fi.campaign import run_campaign
from repro.obs.core import session
from repro.obs.sink import MemorySink
from repro.util.supervisor import CHAOS_ENV, MAX_RETRIES_ENV

from tests.conftest import cached_app

FAULTS = 40
SEED = 7


def _kwargs(app):
    return dict(rel_tol=app.rel_tol, abs_tol=app.abs_tol)


@pytest.fixture(scope="module")
def needle():
    return cached_app("needle")


@pytest.fixture(scope="module")
def serial(needle):
    a, b = needle.encode(needle.reference_input)
    return run_campaign(
        needle.program, FAULTS, SEED, args=a, bindings=b, **_kwargs(needle)
    )


@pytest.fixture(scope="module")
def tcp_adapters():
    """Two standalone TCP adapters on loopback, reaped after the module."""
    procs, addrs = [], []
    for _ in range(2):
        proc = subprocess.Popen(
            adapter_command(["--listen", "127.0.0.1:0"]),
            stdout=subprocess.PIPE, env=_adapter_env(), text=True,
        )
        line = proc.stdout.readline()
        m = re.search(r"FABRIC-ADAPTER LISTENING (\S+)", line)
        assert m, f"no ready line from adapter: {line!r}"
        procs.append(proc)
        addrs.append(m.group(1))
    yield addrs
    for proc in procs:
        proc.kill()
        proc.wait(timeout=10)


class TestByteIdenticalAcrossTransports:
    @pytest.mark.parametrize("workers", [0, 2])
    @pytest.mark.parametrize("transport", ["inproc", "socketpair"])
    def test_local_transports(self, needle, serial, transport, workers):
        a, b = needle.encode(needle.reference_input)
        with fabric_scope(transport):
            got = run_campaign(
                needle.program, FAULTS, SEED, args=a, bindings=b,
                workers=workers, **_kwargs(needle),
            )
        assert got.per_fault == serial.per_fault
        assert got.counts == serial.counts

    @pytest.mark.parametrize("workers", [0, 2])
    def test_tcp_loopback(self, needle, serial, tcp_adapters, workers):
        a, b = needle.encode(needle.reference_input)
        with fabric_scope("tcp", ",".join(tcp_adapters)):
            got = run_campaign(
                needle.program, FAULTS, SEED, args=a, bindings=b,
                workers=workers, **_kwargs(needle),
            )
        assert got.per_fault == serial.per_fault
        assert got.counts == serial.counts

    def test_explicit_transport_argument_wins(self, needle, serial):
        a, b = needle.encode(needle.reference_input)
        got = run_campaign(
            needle.program, FAULTS, SEED, args=a, bindings=b,
            workers=2, transport="socketpair", **_kwargs(needle),
        )
        assert got.per_fault == serial.per_fault


class TestDisconnectRecovery:
    def test_adapter_death_mid_chunk_retries_on_survivor(
        self, needle, serial, monkeypatch
    ):
        """A chaos-crashed adapter subprocess drops its connection mid-chunk;
        the supervisor retries the chunk on a surviving adapter and the
        campaign stays byte-identical."""
        monkeypatch.setenv(CHAOS_ENV, "crash@1")
        monkeypatch.setenv(MAX_RETRIES_ENV, "3")
        a, b = needle.encode(needle.reference_input)
        with session(sink=MemorySink()) as t, fabric_scope("socketpair"):
            got = run_campaign(
                needle.program, FAULTS, SEED, args=a, bindings=b,
                workers=2, **_kwargs(needle),
            )
            counters = t.metrics.snapshot()["counters"]
        assert got.per_fault == serial.per_fault
        assert got.counts == serial.counts
        assert counters.get("fabric.disconnects", 0) >= 1
        assert counters.get("harness.retries", 0) >= 1
        # The lost connection was replaced: more handshakes than slots.
        assert counters["fabric.adapters_connected"] >= 3
        # The drop and the retry it caused are attributed to the specific
        # adapter that died (per-label counters feed the per-adapter
        # columns of the "Fabric health" report table).
        dropped = [k for k in counters if k.startswith("fabric.disconnects.")]
        assert dropped and all(counters[k] >= 1 for k in dropped)
        assert any(
            k.replace("disconnects", "retries") in counters for k in dropped
        )

    def test_chunks_are_attributed_per_adapter_label(self, needle):
        a, b = needle.encode(needle.reference_input)
        with session(sink=MemorySink()) as t, fabric_scope("inproc"):
            run_campaign(
                needle.program, 10, SEED, args=a, bindings=b,
                workers=2, **_kwargs(needle),
            )
            counters = t.metrics.snapshot()["counters"]
        assert counters.get("fabric.chunks.inproc", 0) >= 1

    def test_inproc_adapter_strips_chaos(self, needle, serial, monkeypatch):
        """The in-process adapter must never execute a chaos crash directive
        — it would take the host down — so the supervisor strips chaos for
        pools advertising ``supports_chaos = False``."""
        monkeypatch.setenv(CHAOS_ENV, "crash@1")
        a, b = needle.encode(needle.reference_input)
        with fabric_scope("inproc"):
            got = run_campaign(
                needle.program, FAULTS, SEED, args=a, bindings=b,
                workers=2, **_kwargs(needle),
            )
        assert got.per_fault == serial.per_fault


class TestTransportResolution:
    def test_precedence_explicit_over_scope_over_env(self, monkeypatch):
        monkeypatch.setenv(TRANSPORT_ENV, "socketpair")
        assert resolve_transport() == "socketpair"
        with fabric_scope("inproc"):
            assert resolve_transport() == "inproc"
            assert resolve_transport("local") == "local"
        monkeypatch.delenv(TRANSPORT_ENV)
        assert resolve_transport() == "local"

    def test_unknown_transport_is_a_config_error(self):
        with pytest.raises(ConfigError, match="transport"):
            resolve_transport("carrier-pigeon")

    def test_tcp_without_endpoints_is_a_config_error(self, monkeypatch):
        monkeypatch.delenv(ADDR_ENV, raising=False)
        with pytest.raises(ConfigError, match="endpoint"):
            resolve_fabric("tcp")

    def test_local_yields_no_pool_factory(self):
        kind, factory = resolve_fabric("local")
        assert kind == "local" and factory is None

    def test_fabric_counters_only_appear_on_fabric_runs(self, needle):
        a, b = needle.encode(needle.reference_input)
        with session(sink=MemorySink()) as t:
            run_campaign(
                needle.program, 10, SEED, args=a, bindings=b,
                workers=2, **_kwargs(needle),
            )
            counters = t.metrics.snapshot()["counters"]
        assert not any(k.startswith("fabric.") for k in counters)
