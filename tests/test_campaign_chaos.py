"""Chaos campaigns: the harness survives its own faults, bit-identically.

``REPRO_CHAOS`` plants deterministic worker crashes, hangs, and exceptions
inside the pooled campaign path (fault injection aimed at the fault
injector). The contract under test: every recovered campaign matches the
serial run byte for byte, exhausted recovery surfaces as a typed
:class:`~repro.errors.HarnessError` (never a partial result), and the
narrow ``except Trap`` of ``generate_eval_inputs`` rejects trapping inputs
without swallowing toolchain bugs.

Campaigns here use 48 faults with ``workers=2`` — enough sites to clear the
pooled path's serial guard (32) while keeping each test a few seconds.
"""

from __future__ import annotations

import pytest

from repro.errors import HarnessError, Trap, WorkerError
from repro.exp.runner import generate_eval_inputs
from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.util.supervisor import CHAOS_ENV, MAX_RETRIES_ENV, TASK_TIMEOUT_ENV

FAULTS = 48
SEED = 31


def _kwargs(app):
    args, bindings = app.encode(app.reference_input)
    return dict(
        args=args, bindings=bindings, rel_tol=app.rel_tol, abs_tol=app.abs_tol
    )


@pytest.fixture
def chaos_env(monkeypatch):
    """Install a chaos spec + fast retry policy; yields the setter."""

    def set_chaos(spec: str) -> None:
        monkeypatch.setenv(CHAOS_ENV, spec)

    monkeypatch.setenv(MAX_RETRIES_ENV, "3")
    monkeypatch.delenv(TASK_TIMEOUT_ENV, raising=False)
    return set_chaos


class TestChaosCampaignsAreBitIdentical:
    def test_worker_crash_mid_campaign(self, pathfinder_app, chaos_env):
        kw = _kwargs(pathfinder_app)
        serial = run_campaign(
            pathfinder_app.program, FAULTS, seed=SEED, **kw
        )
        chaos_env("crash@1")
        pooled = run_campaign(
            pathfinder_app.program, FAULTS, seed=SEED, workers=2, **kw
        )
        assert serial.per_fault == pooled.per_fault
        assert serial.counts == pooled.counts

    def test_crash_with_checkpoint_resume(self, pathfinder_app, chaos_env):
        kw = _kwargs(pathfinder_app)
        serial = run_campaign(
            pathfinder_app.program, FAULTS, seed=SEED,
            checkpoint_interval="auto", **kw,
        )
        chaos_env("crash@1")
        pooled = run_campaign(
            pathfinder_app.program, FAULTS, seed=SEED, workers=2,
            checkpoint_interval="auto", **kw,
        )
        assert serial.per_fault == pooled.per_fault

    def test_injected_exception_and_hang(self, pathfinder_app, chaos_env,
                                         monkeypatch):
        kw = _kwargs(pathfinder_app)
        serial = run_campaign(
            pathfinder_app.program, FAULTS, seed=SEED, **kw
        )
        chaos_env("exc@0,hang@3")
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "5")
        pooled = run_campaign(
            pathfinder_app.program, FAULTS, seed=SEED, workers=2, **kw
        )
        assert serial.per_fault == pooled.per_fault

    def test_per_instruction_campaign_survives_a_crash(
        self, pathfinder_app, chaos_env
    ):
        kw = _kwargs(pathfinder_app)
        serial = run_per_instruction_campaign(
            pathfinder_app.program, 2, seed=SEED, **kw
        )
        chaos_env("crash@2")
        pooled = run_per_instruction_campaign(
            pathfinder_app.program, 2, seed=SEED, workers=2, **kw
        )
        assert serial.per_iid == pooled.per_iid


class TestExhaustionIsTypedNotPartial:
    def test_unrecoverable_chunk_raises_harness_error(
        self, pathfinder_app, chaos_env
    ):
        chaos_env("exc@0#*")
        kw = _kwargs(pathfinder_app)
        with pytest.raises(HarnessError) as ei:
            run_campaign(
                pathfinder_app.program, FAULTS, seed=SEED, workers=2,
                max_retries=1, **kw,
            )
        # Typed, with a failure summary — not a raw worker traceback.
        assert isinstance(ei.value, WorkerError)
        assert "chunk 0" in str(ei.value)
        assert "attempt" in str(ei.value)


class TestGenerateEvalInputsRejection:
    class _TrappingApp:
        """Every run traps: the generator must reject all candidates."""

        name = "trapping"

        def __init__(self):
            self.program = self

        def random_input(self, rng):
            return object()

        def encode(self, inp):
            return [], {}

        def run(self, args, bindings):
            raise Trap("guest div-by-zero")

    class _ExplodingApp(_TrappingApp):
        """``encode`` has a host-side bug: it must propagate, not reject."""

        name = "exploding"

        def encode(self, inp):
            raise RuntimeError("toolchain bug, not a guest trap")

    def test_trapping_inputs_are_rejected_quietly(self):
        assert generate_eval_inputs(self._TrappingApp(), 1, seed=3) == []

    def test_host_side_bugs_propagate(self):
        with pytest.raises(RuntimeError, match="toolchain bug"):
            generate_eval_inputs(self._ExplodingApp(), 1, seed=3)

    def test_real_app_yields_requested_count(self, pathfinder_app):
        inputs = generate_eval_inputs(pathfinder_app, 3, seed=5)
        assert len(inputs) == 3
