"""Tests for the dynamic profiler and the cost model."""

import pytest

from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.profiler import profile_run


class TestCostModel:
    def test_covers_all_opcodes(self):
        from repro.ir.instructions import OPCODES

        for op in OPCODES:
            assert DEFAULT_COST_MODEL.cost_of(op) >= 0

    def test_missing_opcode_rejected(self):
        with pytest.raises(ValueError):
            CostModel({"add": 1})

    def test_overrides(self):
        cm = DEFAULT_COST_MODEL.with_overrides(fdiv=99)
        assert cm.cost_of("fdiv") == 99
        assert DEFAULT_COST_MODEL.cost_of("fdiv") != 99

    def test_relative_latencies_sane(self):
        """Divides cost more than multiplies cost more than adds."""
        c = DEFAULT_COST_MODEL
        assert c.cost_of("add") < c.cost_of("mul") < c.cost_of("sdiv")
        assert c.cost_of("fadd") < c.cost_of("fmul") < c.cost_of("fdiv")


class TestProfiler:
    def test_total_cycles_consistency(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        assert prof.total_cycles == sum(prof.instr_cycles)
        assert prof.steps > 0

    def test_cost_fraction_sums_to_one(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        total = sum(
            prof.cost_fraction(i.iid)
            for i in sumsq_program.module.instructions()
        )
        assert total == pytest.approx(1.0)

    def test_cycles_scale_with_input(self, sumsq_program, sumsq_data):
        small = profile_run(sumsq_program, args=[2], bindings=sumsq_data)
        big = profile_run(sumsq_program, args=[16], bindings=sumsq_data)
        assert big.total_cycles > small.total_cycles

    def test_executed_iids(self, branchy_program):
        # With all data below threshold, the "hot" arm never executes.
        prof = profile_run(
            branchy_program, args=[4, 100.0], bindings={"data": [1.0] * 4}
        )
        executed = set(prof.executed_iids())
        module = branchy_program.module
        hot_adds = [
            i.iid
            for i in module.instructions()
            if i.opcode == "add" and i.iid not in executed
        ]
        assert hot_adds, "the untaken branch should leave dead instructions"

    def test_output_captured(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        assert prof.output == sumsq_program.run(args=[8], bindings=sumsq_data).output

    def test_dynamic_value_instances(self, sumsq_program, sumsq_data):
        from repro.fi.faultmodel import injectable_iids

        prof = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        inj = injectable_iids(sumsq_program.module)
        assert prof.dynamic_value_instances(inj) > 0
