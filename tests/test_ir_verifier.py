"""Tests for the IR verifier."""

import pytest

from repro.errors import VerificationError
from repro.ir import (
    F64,
    I1,
    I32,
    I64,
    Builder,
    Constant,
    Function,
    Instruction,
    Module,
    VOID,
)
from repro.ir.verifier import verify_module


def minimal_module():
    m = Module("m")
    b = Builder.new_function(m, "main", [("n", I64)], VOID)
    b.ret()
    return m


class TestVerifier:
    def test_minimal_passes(self):
        verify_module(minimal_module())

    def test_missing_main(self):
        m = Module("m")
        f = Function("helper", [], VOID)
        m.add_function(f)
        f.add_block("entry").append(Instruction("ret", VOID, []))
        with pytest.raises(VerificationError):
            verify_module(m)

    def test_unterminated_block(self):
        m = Module("m")
        f = Function("main", [], VOID)
        m.add_function(f)
        f.add_block("entry")
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(m)

    def test_branch_to_unknown_block(self):
        m = Module("m")
        f = Function("main", [], VOID)
        m.add_function(f)
        f.add_block("entry").append(
            Instruction("br", VOID, [], attrs={"target": "nowhere"})
        )
        with pytest.raises(VerificationError, match="unknown block"):
            verify_module(m)

    def test_use_of_foreign_value(self):
        m = Module("m")
        b1 = Builder.new_function(m, "other", [("x", I64)], I64)
        v = b1.add(b1.function.arg("x"), b1.i64(1))
        b1.ret(v)
        b2 = Builder.new_function(m, "main", [], VOID)
        # Manually smuggle other-function value into main.
        bad = Instruction("add", I64, [v, Constant(I64, 1)], name="bad")
        b2.block.append(bad)
        b2.ret()
        with pytest.raises(VerificationError, match="not defined"):
            verify_module(m)

    def test_type_mismatch_handmade(self):
        m = Module("m")
        f = Function("main", [], VOID)
        m.add_function(f)
        blk = f.add_block("entry")
        bad = Instruction(
            "add", I64, [Constant(I64, 1), Constant(I32, 1)], name="bad"
        )
        blk.append(bad)
        blk.append(Instruction("ret", VOID, []))
        with pytest.raises(VerificationError, match="type mismatch"):
            verify_module(m)

    def test_call_arity_mismatch(self):
        m = Module("m")
        bh = Builder.new_function(m, "h", [("x", I64)], VOID)
        bh.ret()
        bm = Builder.new_function(m, "main", [], VOID)
        bm.block.append(
            Instruction("call", VOID, [], attrs={"callee": "h"})
        )
        bm.ret()
        with pytest.raises(VerificationError, match="expected 1 args"):
            verify_module(m)

    def test_call_unknown_function(self):
        m = Module("m")
        bm = Builder.new_function(m, "main", [], VOID)
        bm.block.append(Instruction("call", VOID, [], attrs={"callee": "ghost"}))
        bm.ret()
        with pytest.raises(VerificationError, match="unknown function"):
            verify_module(m)

    def test_ret_type_mismatch(self):
        m = Module("m")
        f = Function("main", [], I64)
        m.add_function(f)
        f.add_block("entry").append(Instruction("ret", VOID, []))
        with pytest.raises(VerificationError, match="ret"):
            verify_module(m)

    def test_phi_from_non_predecessor(self):
        m = Module("m")
        f = Function("main", [], VOID)
        m.add_function(f)
        e = f.add_block("entry")
        x = f.add_block("x")
        e.append(Instruction("br", VOID, [], attrs={"target": "x"}))
        phi = Instruction(
            "phi", I64, [Constant(I64, 1)],
            name="p", attrs={"incoming": [("x", Constant(I64, 1))]},
        )
        x.append(phi)
        x.append(Instruction("ret", VOID, []))
        with pytest.raises(VerificationError, match="non-predecessor"):
            verify_module(m)

    def test_invalid_cast(self):
        m = Module("m")
        f = Function("main", [], VOID)
        m.add_function(f)
        blk = f.add_block("entry")
        blk.append(
            Instruction("zext", I32, [Constant(I64, 1)], name="z")  # narrowing zext
        )
        blk.append(Instruction("ret", VOID, []))
        with pytest.raises(VerificationError, match="invalid cast"):
            verify_module(m)

    def test_terminator_mid_block(self):
        m = Module("m")
        f = Function("main", [], VOID)
        m.add_function(f)
        blk = f.add_block("entry")
        blk.instructions.append(Instruction("ret", VOID, []))  # bypass append()
        blk.instructions.append(Instruction("ret", VOID, []))
        with pytest.raises(VerificationError, match="not at end"):
            verify_module(m)

    def test_apps_verify(self, each_app):
        verify_module(each_app.module)
