"""Tests for the module-wide static CFG (``repro.ir.cfg``)."""

import pytest

from repro.apps import get_app
from repro.ir.cfg import build_cfg
from repro.ir.parser import parse_module

DIAMOND = """
module diamond

func @main(%n: i64) -> i64 {
entry:
  %c.0 = icmp sgt i64 %n, i64 0
  condbr i1 %c.0, then, els
then:
  br join
els:
  br join
join:
  ret i64 %n
}

func @helper(%x: i64) -> i64 {
entry:
  ret i64 %x
}
"""


@pytest.fixture()
def cfg():
    return build_cfg(parse_module(DIAMOND))


class TestIndexing:
    def test_stable_function_then_block_order(self, cfg):
        assert cfg.blocks == [
            ("main", "entry"),
            ("main", "then"),
            ("main", "els"),
            ("main", "join"),
            ("helper", "entry"),
        ]
        assert [cfg.index[b] for b in cfg.blocks] == list(range(5))
        assert cfg.num_blocks == 5

    def test_block_id_lookup(self, cfg):
        assert cfg.block_id("main", "join") == 3
        assert cfg.block_id("helper", "entry") == 4

    def test_entry_index_per_function(self, cfg):
        assert cfg.entry_index("main") == 0
        assert cfg.entry_index("helper") == 4

    def test_entry_index_unknown_function(self, cfg):
        with pytest.raises(KeyError):
            cfg.entry_index("nope")


class TestReachability:
    def test_reachable_from_entry_covers_the_function(self, cfg):
        assert cfg.reachable_from(0) == {0, 1, 2, 3}

    def test_reachable_from_inner_block(self, cfg):
        # A branch arm only reaches itself and the join block.
        assert cfg.reachable_from(1) == {1, 3}

    def test_reachability_stays_intra_function(self, cfg):
        # No edge crosses a function boundary: @helper is invisible
        # from @main and reaches only itself.
        assert 4 not in cfg.reachable_from(0)
        assert cfg.reachable_from(4) == {4}


class TestEdges:
    def test_edges_match_successor_lists(self, cfg):
        assert sorted(cfg.edges) == [(0, 1), (0, 2), (1, 3), (2, 3)]
        assert cfg.successors[0] == [1, 2]
        assert cfg.predecessors[3] == [1, 3 - 1]

    def test_to_networkx_preserves_every_node_and_edge(self, cfg):
        g = cfg.to_networkx()
        assert set(g.nodes) == set(range(cfg.num_blocks))
        assert sorted(g.edges) == sorted(set(cfg.edges))
        assert g.nodes[0] == {"function": "main", "block": "entry"}
        assert g.nodes[4] == {"function": "helper", "block": "entry"}

    def test_to_networkx_on_a_real_app(self):
        app = get_app("pathfinder")
        cfg = build_cfg(app.module)
        g = cfg.to_networkx()
        assert g.number_of_nodes() == cfg.num_blocks
        # The static edge list may repeat an edge (two condbr targets can
        # coincide); the graph export must cover exactly the distinct ones.
        assert sorted(g.edges) == sorted(set(cfg.edges))
        assert set(cfg.reachable_from(cfg.entry_index("main"))) <= set(
            g.nodes
        )
