"""Tests for the fault-injection layer: model, outcomes, campaigns, stats."""

import math

import pytest

from repro.errors import ConfigError, DetectedError, HangTimeout, MemoryFault
from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.fi.faultmodel import (
    injectable_iids,
    sample_fault_sites,
    sample_per_instruction_sites,
)
from repro.fi.injector import golden_run, inject_one
from repro.fi.outcome import Outcome, OutcomeCounts, classify_run, outputs_equal
from repro.fi.stats import (
    binomial_confidence_interval,
    required_trials,
    wilson_interval,
)
from repro.util.rng import RngStream
from repro.vm.profiler import profile_run


class TestOutputsEqual:
    def test_exact_ints(self):
        assert outputs_equal([1, 2], [1, 2])
        assert not outputs_equal([1, 2], [1, 3])

    def test_length_mismatch(self):
        assert not outputs_equal([1], [1, 2])

    def test_float_tolerance(self):
        assert outputs_equal([1.0], [1.0 + 1e-12], rel_tol=1e-9)
        assert not outputs_equal([1.0], [1.001], rel_tol=1e-9)

    def test_nan_is_corruption(self):
        assert not outputs_equal([1.0], [math.nan], rel_tol=1e-3)

    def test_nan_matches_nan(self):
        assert outputs_equal([math.nan], [math.nan])

    def test_inf_exact(self):
        assert outputs_equal([math.inf], [math.inf])
        assert not outputs_equal([math.inf], [-math.inf])


class TestClassify:
    def test_benign(self):
        assert classify_run([1.0], [1.0], None) is Outcome.BENIGN

    def test_sdc(self):
        assert classify_run([1.0], [2.0], None) is Outcome.SDC

    def test_crash(self):
        assert classify_run([1.0], None, MemoryFault("x")) is Outcome.CRASH

    def test_hang(self):
        assert classify_run([1.0], None, HangTimeout("x")) is Outcome.HANG

    def test_detected(self):
        assert (
            classify_run([1.0], None, DetectedError("c", 1, 2)) is Outcome.DETECTED
        )

    def test_programmer_errors_propagate(self):
        with pytest.raises(ValueError):
            classify_run([1.0], None, ValueError("bug"))


class TestOutcomeCounts:
    def test_probability(self):
        c = OutcomeCounts()
        c.record(Outcome.SDC)
        c.record(Outcome.BENIGN)
        c.record(Outcome.SDC)
        assert c.sdc_probability == pytest.approx(2 / 3)
        assert c.total == 3

    def test_empty(self):
        assert OutcomeCounts().sdc_probability == 0.0

    def test_merged(self):
        a, b = OutcomeCounts(), OutcomeCounts()
        a.record(Outcome.SDC)
        b.record(Outcome.CRASH)
        m = a.merged(b)
        assert m.total == 2 and m.counts[Outcome.SDC] == 1


class TestFaultModel:
    def test_injectable_excludes_control(self, sumsq_module):
        inj = set(injectable_iids(sumsq_module))
        for i in sumsq_module.instructions():
            if i.opcode in ("store", "br", "condbr", "ret", "emit", "alloca"):
                assert i.iid not in inj

    def test_whole_program_sampling(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        sites = sample_fault_sites(
            sumsq_program.module, prof, 50, RngStream(1)
        )
        assert len(sites) == 50
        counts = prof.instr_counts
        for s in sites:
            assert 1 <= s.instance <= counts[s.iid]
            width = sumsq_program.module.instruction(s.iid).type.width
            assert 0 <= s.bit < width

    def test_sampling_weighted_by_execution(self, sumsq_program, sumsq_data):
        """Hot loop instructions attract more faults than one-shot code."""
        prof = profile_run(sumsq_program, args=[16], bindings=sumsq_data)
        sites = sample_fault_sites(
            sumsq_program.module, prof, 400, RngStream(2)
        )
        loop_iids = {
            s.iid for s in sites
            if prof.instr_counts[s.iid] >= 16
        }
        assert len(loop_iids) > 0
        hot_fraction = sum(
            1 for s in sites if prof.instr_counts[s.iid] >= 16
        ) / len(sites)
        assert hot_fraction > 0.5

    def test_per_instruction_sampling(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        fmul = [
            i.iid for i in sumsq_program.module.instructions() if i.opcode == "fmul"
        ][0]
        sites = sample_per_instruction_sites(
            sumsq_program.module, prof, fmul, 20, RngStream(3)
        )
        assert len(sites) == 20
        assert all(s.iid == fmul for s in sites)

    def test_unexecuted_instruction_gives_no_sites(self, branchy_program):
        prof = profile_run(
            branchy_program, args=[4, 100.0], bindings={"data": [1.0] * 4}
        )
        module = branchy_program.module
        dead = [
            i.iid
            for i in module.instructions()
            if i.opcode == "add" and prof.instr_counts[i.iid] == 0
        ]
        assert dead
        sites = sample_per_instruction_sites(
            module, prof, dead[0], 10, RngStream(4)
        )
        assert sites == []

    def test_non_injectable_target_rejected(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        store = [
            i.iid for i in sumsq_program.module.instructions() if i.opcode == "store"
        ][0]
        with pytest.raises(ConfigError):
            sample_per_instruction_sites(
                sumsq_program.module, prof, store, 5, RngStream(5)
            )


class TestCampaigns:
    def test_campaign_outcome_totals(self, sumsq_program, sumsq_data):
        res = run_campaign(
            sumsq_program, 50, seed=11, args=[8], bindings=sumsq_data
        )
        assert res.trials == 50
        assert res.counts.total == 50
        assert len(res.per_fault) == 50

    def test_campaign_reproducible(self, sumsq_program, sumsq_data):
        a = run_campaign(sumsq_program, 40, seed=7, args=[8], bindings=sumsq_data)
        b = run_campaign(sumsq_program, 40, seed=7, args=[8], bindings=sumsq_data)
        assert a.per_fault == b.per_fault

    def test_campaign_seed_sensitivity(self, sumsq_program, sumsq_data):
        a = run_campaign(sumsq_program, 40, seed=7, args=[8], bindings=sumsq_data)
        b = run_campaign(sumsq_program, 40, seed=8, args=[8], bindings=sumsq_data)
        assert a.per_fault != b.per_fault

    def test_sdc_iids_subset_of_injectable(self, sumsq_program, sumsq_data):
        res = run_campaign(sumsq_program, 60, seed=1, args=[8], bindings=sumsq_data)
        assert res.sdc_iids() <= set(injectable_iids(sumsq_program.module))

    def test_per_instruction_campaign(self, sumsq_program, sumsq_data):
        res = run_per_instruction_campaign(
            sumsq_program, 5, seed=3, args=[8], bindings=sumsq_data
        )
        assert res.per_iid
        for iid, counts in res.per_iid.items():
            assert counts.total == 5
            assert 0.0 <= counts.sdc_probability <= 1.0

    def test_per_instruction_only_iids(self, sumsq_program, sumsq_data):
        fmul = [
            i.iid for i in sumsq_program.module.instructions() if i.opcode == "fmul"
        ]
        res = run_per_instruction_campaign(
            sumsq_program, 4, seed=3, args=[8], bindings=sumsq_data,
            only_iids=fmul,
        )
        assert set(res.per_iid) == set(fmul)

    def test_parallel_matches_serial(self, sumsq_program, sumsq_data):
        serial = run_campaign(
            sumsq_program, 64, seed=5, args=[8], bindings=sumsq_data, workers=0
        )
        parallel = run_campaign(
            sumsq_program, 64, seed=5, args=[8], bindings=sumsq_data, workers=2
        )
        assert serial.per_fault == parallel.per_fault


class TestStats:
    def test_wald_interval(self):
        lo, hi = binomial_confidence_interval(50, 100)
        assert lo < 0.5 < hi
        assert hi - lo < 0.25

    def test_wilson_behaved_at_extremes(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0 and 0.0 < hi < 0.15
        lo, hi = wilson_interval(50, 50)
        assert 0.85 < lo < 1.0 and hi == 1.0

    def test_zero_trials(self):
        assert binomial_confidence_interval(0, 0) == (0.0, 1.0)
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_paper_error_bar_range(self):
        """1000-fault campaigns give sub-3.1% half-widths (paper §III-A3)."""
        lo, hi = binomial_confidence_interval(500, 1000)
        assert (hi - lo) / 2 <= 0.031

    def test_required_trials(self):
        n = required_trials(0.031, 0.5)
        assert 900 <= n <= 1100

    def test_required_trials_validation(self):
        with pytest.raises(ValueError):
            required_trials(0.0)

    def test_unsupported_confidence(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=0.42)
