"""Checkpoint/restore + convergence: the FI-acceleration engine's VM half.

The load-bearing property is *bit-identity*: a resumed execution must be
indistinguishable from a cold run that reached the same point — same output,
same steps, same trap behavior — for golden and faulty runs alike.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import IRError
from repro.fi.faultmodel import sample_fault_sites
from repro.fi.injector import inject_one, inject_one_resumed
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID
from repro.util.rng import RngStream
from repro.vm.checkpoint import (
    CheckpointStore,
    auto_interval,
    record_checkpoints,
)
from repro.vm.interpreter import FaultSpec, Program
from repro.vm.profiler import profile_run


def build_callstack_module() -> Module:
    """main -> outer -> inner, with loops at every level.

    Exercises multi-frame snapshots: checkpoints land while two calls are
    suspended, so restore has to rebuild the Python call stack.
    """
    m = Module("callstack")
    g = m.add_global("data", F64, 16)

    b = Builder.new_function(m, "inner", [("j", I64)], F64)
    acc = b.local(F64, b.f64(0.0), hint="acc")
    with b.for_loop(b.i64(0), b.function.arg("j")) as k:
        x = b.load(b.gep(g, k), F64)
        b.set(acc, b.fadd(b.get(acc, F64), b.fmul(x, x)))
    b.ret(b.get(acc, F64))

    b = Builder.new_function(m, "outer", [("n", I64)], F64)
    tot = b.local(F64, b.f64(0.0), hint="tot")
    with b.for_loop(b.i64(1), b.function.arg("n")) as j:
        v = b.call("inner", [j], F64)
        b.set(tot, b.fadd(b.get(tot, F64), v))
    b.ret(b.get(tot, F64))

    b = Builder.new_function(m, "main", [("n", I64)], VOID)
    b.emit_output(b.call("outer", [b.function.arg("n")], F64))
    b.ret()
    return m.finalize()


@pytest.fixture(scope="module")
def callstack_program() -> Program:
    return Program(build_callstack_module())


CALLSTACK_DATA = {"data": [0.5 * i - 3.0 for i in range(16)]}


class TestRecord:
    def test_snapshot_spacing_and_counts(self, sumsq_program, sumsq_data):
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, interval=50
        )
        golden = sumsq_program.run(args=[24], bindings=sumsq_data)
        assert store.interval == 50
        assert store.golden_steps == golden.steps
        assert len(store) >= golden.steps // 50 - 1
        steps = [s.steps for s in store.snapshots]
        assert steps == sorted(steps)
        # Captures happen at the first block boundary past each threshold.
        for prev, cur in zip(steps, steps[1:]):
            assert cur - prev >= 50
        # Monotone per-instruction counts, consistent with the golden run.
        for prev, cur in zip(store.snapshots, store.snapshots[1:]):
            assert all(a <= b for a, b in zip(prev.instr_counts, cur.instr_counts))
            assert sum(cur.instr_counts) <= golden.steps

    def test_auto_interval_heuristic(self):
        assert auto_interval(10) == 256
        assert auto_interval(480_000) == 10_000

    def test_auto_interval_from_hint(self, sumsq_program, sumsq_data):
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, steps_hint=480_000
        )
        assert store.interval == 10_000

    def test_rejects_bad_interval(self, sumsq_program, sumsq_data):
        with pytest.raises(IRError):
            record_checkpoints(
                sumsq_program, args=[8], bindings=sumsq_data, interval=0
            )

    def test_snapshot_cycles_monotone(self, sumsq_program, sumsq_data):
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, interval=60
        )
        cycles = [s.cycles for s in store.snapshots]
        assert cycles == sorted(cycles)
        assert cycles[0] > 0


class TestGoldenReplay:
    def test_replay_from_every_snapshot(self, sumsq_program, sumsq_data):
        golden = sumsq_program.run(args=[24], bindings=sumsq_data)
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, interval=40
        )
        assert len(store) > 3
        for snap in store.snapshots:
            r = sumsq_program.resume(snap)
            assert r.output == golden.output
            assert r.steps == golden.steps

    def test_replay_through_call_stack(self, callstack_program):
        golden = callstack_program.run(args=[12], bindings=CALLSTACK_DATA)
        store = record_checkpoints(
            callstack_program, args=[12], bindings=CALLSTACK_DATA, interval=30
        )
        deep = [s for s in store.snapshots if len(s.frames) >= 3]
        assert deep, "no snapshot caught main->outer->inner suspended"
        for snap in store.snapshots:
            r = callstack_program.resume(snap)
            assert r.output == golden.output
            assert r.steps == golden.steps

    def test_snapshots_pickle_roundtrip(self, callstack_program):
        golden = callstack_program.run(args=[10], bindings=CALLSTACK_DATA)
        store = record_checkpoints(
            callstack_program, args=[10], bindings=CALLSTACK_DATA, interval=64
        )
        thawed: CheckpointStore = pickle.loads(pickle.dumps(store))
        assert len(thawed) == len(store)
        r = callstack_program.resume(thawed.snapshots[-1])
        assert r.output == golden.output and r.steps == golden.steps


class TestSnapshotLookup:
    def test_index_matches_linear_scan(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[24], bindings=sumsq_data)
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, interval=45
        )
        sites = sample_fault_sites(
            sumsq_program.module, prof, 80, RngStream(13)
        )
        for s in sites:
            expected = -1
            for k, snap in enumerate(store.snapshots):
                if snap.instr_counts[s.iid] < s.instance:
                    expected = k
            assert store.snapshot_index_for(s.iid, s.instance) == expected

    def test_resume_rejects_past_instance(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[24], bindings=sumsq_data)
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, interval=45
        )
        fmul = next(
            i.iid
            for i in sumsq_program.module.instructions()
            if i.opcode == "fmul"
        )
        assert prof.instr_counts[fmul] == 24
        last = store.snapshots[-1]
        done = last.instr_counts[fmul]
        assert done > 0
        with pytest.raises(IRError):
            sumsq_program.resume(last, fault=FaultSpec(fmul, done, 3))

    def test_convergence_tail_is_cached(self, sumsq_program, sumsq_data):
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, interval=45
        )
        assert store.convergence_from(0) is store.convergence_from(0)
        assert store.convergence_from(-1) == store.snapshots


class TestFaultyResume:
    @pytest.mark.parametrize("n_sites", [60])
    def test_cold_and_resumed_outcomes_identical(
        self, sumsq_program, sumsq_data, n_sites
    ):
        prof = profile_run(sumsq_program, args=[24], bindings=sumsq_data)
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, interval=40
        )
        sites = sample_fault_sites(
            sumsq_program.module, prof, n_sites, RngStream(21)
        )
        for s in sites:
            cold = inject_one(
                sumsq_program, s, prof.output, prof.steps,
                args=[24], bindings=sumsq_data,
            )
            warm = inject_one_resumed(
                sumsq_program, s, store, prof.output, prof.steps,
                args=[24], bindings=sumsq_data,
            )
            assert cold == warm, f"outcome diverged at {s}"

    def test_callstack_faults_identical(self, callstack_program):
        prof = profile_run(callstack_program, args=[12], bindings=CALLSTACK_DATA)
        store = record_checkpoints(
            callstack_program, args=[12], bindings=CALLSTACK_DATA, interval=30
        )
        sites = sample_fault_sites(
            callstack_program.module, prof, 60, RngStream(22)
        )
        for s in sites:
            cold = inject_one(
                callstack_program, s, prof.output, prof.steps,
                args=[12], bindings=CALLSTACK_DATA,
            )
            warm = inject_one_resumed(
                callstack_program, s, store, prof.output, prof.steps,
                args=[12], bindings=CALLSTACK_DATA,
            )
            assert cold == warm, f"outcome diverged at {s}"


class TestConvergence:
    def build_masked_module(self) -> Module:
        """Loop whose loaded value is logically masked (multiplied by 0)."""
        m = Module("masked")
        g = m.add_global("data", F64, 32)
        b = Builder.new_function(m, "main", [("n", I64)], VOID)
        acc = b.local(F64, b.f64(1.0), hint="acc")
        with b.for_loop(b.i64(0), b.function.arg("n")) as i:
            x = b.load(b.gep(g, i), F64)
            dead = b.fmul(x, b.f64(0.0))
            b.set(acc, b.fadd(b.get(acc, F64), dead))
        b.emit_output(b.get(acc, F64))
        b.ret()
        return m.finalize()

    def test_masked_fault_converges_early(self):
        prog = Program(self.build_masked_module())
        data = {"data": [1.0 + 0.25 * i for i in range(32)]}
        golden = prog.run(args=[32], bindings=data)
        store = record_checkpoints(
            prog, args=[32], bindings=data, interval=30
        )
        load_iid = next(
            i.iid for i in prog.module.instructions() if i.opcode == "load"
        )
        # Flip a low mantissa bit of a mid-loop load: the product with 0.0
        # is still 0.0, the corrupted slot dies, and the faulty state
        # re-joins the golden trajectory at the next snapshot boundary.
        fault = FaultSpec(load_iid, 16, 3)
        idx = store.snapshot_index_for(load_iid, 16)
        assert idx >= 0
        r = prog.resume(
            store.snapshots[idx],
            fault=fault,
            convergence=store.convergence_from(idx),
        )
        assert r.fault_fired
        assert r.converged
        assert r.steps < golden.steps
        spliced = r.output + golden.output[r.converged_output_len:]
        assert spliced == golden.output

    def test_convergence_never_changes_outcome(self, sumsq_program, sumsq_data):
        """SDC faults must not be misreported as converged-benign."""
        prof = profile_run(sumsq_program, args=[24], bindings=sumsq_data)
        store = record_checkpoints(
            sumsq_program, args=[24], bindings=sumsq_data, interval=40
        )
        fmul = next(
            i.iid
            for i in sumsq_program.module.instructions()
            if i.opcode == "fmul"
        )
        # A high-exponent-bit flip in the accumulator chain is a real SDC.
        fault_site = sample_fault_sites(
            sumsq_program.module, prof, 1, RngStream(1)
        )[0]
        cold = inject_one(
            sumsq_program,
            fault_site,
            prof.output,
            prof.steps,
            args=[24],
            bindings=sumsq_data,
        )
        warm = inject_one_resumed(
            sumsq_program,
            fault_site,
            store,
            prof.output,
            prof.steps,
            args=[24],
            bindings=sumsq_data,
        )
        assert cold == warm
        assert fmul  # exercised module stays referenced
