"""Determinism and merge invariants of the model-guided (hybrid) campaign.

The hybrid campaign must behave like every other campaign path: bit-identical
results across worker counts and across warm/cold cache states, because its
verify set is a pure function of (module, golden profile, masking constants)
and its FI subset rides the ordinary per-instruction machinery.
"""

import pytest

from repro.analysis.model import model_verify_set, predict_sdc_probabilities
from repro.cache.active import cache_scope
from repro.fi.campaign import run_model_guided_campaign
from repro.fi.faultmodel import injectable_iids
from repro.sid.profiles import build_profile_from_source
from repro.vm.profiler import profile_run

TRIALS = 4
SEED = 99


def _hybrid(app, workers=0, cache=None):
    a, b = app.encode(app.reference_input)
    return run_model_guided_campaign(
        app.program,
        TRIALS,
        SEED,
        args=a,
        bindings=b,
        rel_tol=app.rel_tol,
        abs_tol=app.abs_tol,
        workers=workers,
        cache=cache,
        protection_levels=(0.5,),
    )


class TestHybridResult:
    def test_provenance_covers_every_instruction(self, pathfinder_app):
        res = _hybrid(pathfinder_app)
        assert set(res.provenance) == set(res.sdc_prob)
        assert set(res.provenance.values()) <= {"fi", "model"}
        assert any(v == "fi" for v in res.provenance.values())
        assert any(v == "model" for v in res.provenance.values())

    def test_verified_band_carries_fi_probabilities(self, pathfinder_app):
        app = pathfinder_app
        a, b = app.encode(app.reference_input)
        dyn = profile_run(app.program, args=a, bindings=b)
        predicted = predict_sdc_probabilities(
            app.module, dyn, rel_tol=app.rel_tol
        )
        cycles = {
            iid: dyn.instr_cycles[iid] for iid in injectable_iids(app.module)
        }
        band = model_verify_set(
            predicted, cycles, dyn.total_cycles, 0.5, verify_margin=0.3
        )
        res = _hybrid(pathfinder_app)
        assert band, "verify band must not be empty"
        # Everything in the band is FI-measured (margins may widen it).
        assert all(res.provenance[iid] == "fi" for iid in band)

    def test_trials_accounting(self, pathfinder_app):
        res = _hybrid(pathfinder_app)
        verified = sum(1 for v in res.provenance.values() if v == "fi")
        executed = len(
            [iid for iid, v in res.provenance.items() if v in ("fi", "model")]
        )
        assert res.fi_trials == verified * TRIALS
        assert res.full_sweep_trials >= res.fi_trials
        assert res.trials_saved_factor >= 1.0
        assert executed >= verified

    def test_flanks_stay_consistent_with_measurements(self, pathfinder_app):
        # The merge pins the unverified flanks to the band's measured
        # extremes: above the band no prediction ranks below the measured
        # ceiling, below it none ranks above the measured floor.
        from repro.analysis.model import density_ranked

        app = pathfinder_app
        a, b = app.encode(app.reference_input)
        dyn = profile_run(app.program, args=a, bindings=b)
        predicted = predict_sdc_probabilities(
            app.module, dyn, rel_tol=app.rel_tol
        )
        cycles = {
            iid: dyn.instr_cycles[iid] for iid in injectable_iids(app.module)
        }
        ranked = density_ranked(predicted, cycles, dyn.total_cycles)
        res = _hybrid(pathfinder_app)
        fi_vals = {
            iid: p for iid, p in res.sdc_prob.items()
            if res.provenance[iid] == "fi"
        }
        assert fi_vals
        ceiling, floor = max(fi_vals.values()), min(fi_vals.values())
        pos = {iid: k for k, iid in enumerate(ranked)}
        vpos = [pos[i] for i in fi_vals]
        lo, hi = min(vpos), max(vpos)
        for iid, p in res.sdc_prob.items():
            if res.provenance[iid] != "model" or iid not in pos:
                continue
            if pos[iid] < lo:
                assert p >= ceiling
            elif pos[iid] > hi:
                assert p <= floor


class TestHybridDeterminism:
    def test_bit_identical_across_worker_counts(
        self, pathfinder_app, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        serial = _hybrid(pathfinder_app, workers=None)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        pooled = _hybrid(pathfinder_app, workers=None)
        assert serial.sdc_prob == pooled.sdc_prob
        assert serial.provenance == pooled.provenance
        assert serial.fi_trials == pooled.fi_trials

    def test_bit_identical_across_cold_and_warm_cache(
        self, pathfinder_app, tmp_path
    ):
        with cache_scope(tmp_path / "store"):
            cold = _hybrid(pathfinder_app)
            warm = _hybrid(pathfinder_app)
        uncached = _hybrid(pathfinder_app, cache=False)
        assert cold.sdc_prob == warm.sdc_prob
        assert cold.provenance == warm.provenance
        assert cold.sdc_prob == uncached.sdc_prob

    def test_profile_source_hybrid_is_deterministic(
        self, pathfinder_app, monkeypatch
    ):
        app = pathfinder_app
        a, b = app.encode(app.reference_input)

        def build():
            return build_profile_from_source(
                app.program,
                a,
                b,
                source="hybrid",
                trials_per_instruction=TRIALS,
                seed=SEED,
                rel_tol=app.rel_tol,
                abs_tol=app.abs_tol,
                workers=None,
                protection_levels=(0.5,),
            )

        monkeypatch.setenv("REPRO_WORKERS", "0")
        p0 = build()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        p2 = build()
        assert p0.sdc_prob == p2.sdc_prob
        assert p0.provenance == p2.provenance
        assert p0.source == p2.source == "hybrid"


class TestProfileSourceValidation:
    def test_unknown_source_is_a_config_error(self, pathfinder_app):
        from repro.errors import ConfigError

        app = pathfinder_app
        a, b = app.encode(app.reference_input)
        with pytest.raises(ConfigError):
            build_profile_from_source(app.program, a, b, source="psychic")
