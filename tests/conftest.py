"""Shared fixtures.

Expensive artifacts (app modules/programs, SID results) are session-scoped:
app IR is immutable after finalize, and protection pipelines are
deterministic in their seeds, so sharing them across tests is safe and keeps
the suite fast.
"""

from __future__ import annotations

import pytest

from repro.apps import all_app_names, get_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID
from repro.vm.interpreter import Program


def build_sum_squares_module(size: int = 32) -> Module:
    """sum of x[i]^2 over a global array — the suite's workhorse kernel."""
    m = Module("sumsq")
    g = m.add_global("data", F64, size)
    b = Builder.new_function(m, "main", [("n", I64)], VOID)
    acc = b.local(F64, b.f64(0.0), hint="acc")
    with b.for_loop(b.i64(0), b.function.arg("n")) as i:
        x = b.load(b.gep(g, i), F64)
        sq = b.fmul(x, x)
        b.set(acc, b.fadd(b.get(acc, F64), sq))
    b.emit_output(b.get(acc, F64))
    b.ret()
    return m.finalize()


def build_branchy_module() -> Module:
    """Kernel with data-dependent branches (for coverage-loss style tests).

    Counts inputs above a threshold and sums the large ones separately.
    """
    m = Module("branchy")
    g = m.add_global("data", F64, 64)
    b = Builder.new_function(m, "main", [("n", I64), ("thresh", F64)], VOID)
    cnt = b.local(I64, b.i64(0), hint="cnt")
    big = b.local(F64, b.f64(0.0), hint="big")
    small = b.local(F64, b.f64(0.0), hint="small")
    with b.for_loop(b.i64(0), b.function.arg("n")) as i:
        x = b.load(b.gep(g, i), F64)
        hot = b.fcmp("ogt", x, b.function.arg("thresh"))
        with b.if_then_else(hot) as otherwise:
            b.set(cnt, b.add(b.get(cnt, I64), b.i64(1)))
            b.set(big, b.fadd(b.get(big, F64), x))
            otherwise()
            b.set(small, b.fadd(b.get(small, F64), x))
    b.emit_output(b.get(cnt, I64))
    b.emit_output(b.get(big, F64))
    b.emit_output(b.get(small, F64))
    b.ret()
    return m.finalize()


@pytest.fixture(scope="session")
def sumsq_module() -> Module:
    return build_sum_squares_module()


@pytest.fixture(scope="session")
def sumsq_program(sumsq_module) -> Program:
    return Program(sumsq_module)


@pytest.fixture
def sumsq_data():
    return {"data": [float(i % 7) - 3.0 for i in range(32)]}


@pytest.fixture(scope="session")
def branchy_module() -> Module:
    return build_branchy_module()


@pytest.fixture(scope="session")
def branchy_program(branchy_module) -> Program:
    return Program(branchy_module)


_APP_CACHE: dict[str, object] = {}


def cached_app(name: str):
    """Session-cached app instances (module build is the expensive part)."""
    app = _APP_CACHE.get(name)
    if app is None:
        app = get_app(name)
        app.module  # force build + finalize
        _APP_CACHE[name] = app
    return app


@pytest.fixture(params=all_app_names())
def each_app(request):
    """Parametrized fixture over all 11 benchmarks."""
    return cached_app(request.param)


@pytest.fixture
def pathfinder_app():
    return cached_app("pathfinder")


@pytest.fixture
def fft_app():
    return cached_app("fft")


@pytest.fixture
def kmeans_app():
    return cached_app("kmeans")
