"""Tests for MINPSID: weighted CFG, GA, incubative logic, search, pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import ArgSpec, InputSpec
from repro.minpsid.ga import GAConfig, GeneticInputSearch
from repro.minpsid.incubative import (
    IncubativeConfig,
    benefit_thresholds,
    find_incubative,
    find_incubative_pairwise,
)
from repro.minpsid.reprioritize import max_benefits, reprioritize
from repro.minpsid.wcfg import fitness_score, indexed_cfg_list
from repro.util.rng import RngStream
from repro.vm.profiler import profile_run


class TestWeightedCfg:
    def test_indexed_list_length(self, sumsq_program, sumsq_data):
        prof = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        lst = indexed_cfg_list(sumsq_program, prof)
        assert len(lst) == sumsq_program.cfg.num_blocks

    def test_block_weights_track_trip_counts(self, sumsq_program, sumsq_data):
        p8 = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        p16 = profile_run(sumsq_program, args=[16], bindings=sumsq_data)
        l8 = indexed_cfg_list(sumsq_program, p8)
        l16 = indexed_cfg_list(sumsq_program, p16)
        assert l16.sum() > l8.sum()

    def test_same_input_same_list(self, sumsq_program, sumsq_data):
        a = indexed_cfg_list(
            sumsq_program, profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        )
        b = indexed_cfg_list(
            sumsq_program, profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        )
        assert np.array_equal(a, b)

    def test_fitness_zero_for_identical(self):
        l = np.array([1.0, 2.0, 3.0])
        assert fitness_score(l, [l.copy()]) == 0.0

    def test_fitness_empty_history(self):
        assert fitness_score(np.array([1.0]), []) == 0.0

    def test_fitness_eq3_normalization(self):
        """S_L = sum of distances / (|M| + 1), per the paper's Eq. 3."""
        cand = np.array([0.0, 0.0])
        hist = [np.array([3.0, 4.0]), np.array([6.0, 8.0])]
        # distances: 5 and 10 -> (5 + 10) / (2 + 1) = 5.
        assert fitness_score(cand, hist) == pytest.approx(5.0)

    def test_fitness_grows_with_novelty(self):
        hist = [np.array([1.0, 1.0])]
        near = fitness_score(np.array([1.5, 1.0]), hist)
        far = fitness_score(np.array([10.0, 10.0]), hist)
        assert far > near


SPEC = InputSpec(
    (
        ArgSpec("n", "int", 1, 100),
        ArgSpec("x", "float", -1.0, 1.0),
        ArgSpec("mode", "choice", choices=("a", "b", "c")),
    )
)


class TestGA:
    def test_search_returns_valid_input(self):
        def fitness(inp):
            return float(inp["n"])  # bigger n = fitter

        ga = GeneticInputSearch(
            SPEC, fitness, RngStream(1), GAConfig(population_size=6, max_generations=5)
        )
        best = ga.search(seeds=[{"n": 10, "x": 0.0, "mode": "a"}])
        assert 1 <= best["n"] <= 100
        assert best["mode"] in ("a", "b", "c")

    def test_search_improves_over_seed(self):
        def fitness(inp):
            return float(inp["n"])

        ga = GeneticInputSearch(
            SPEC, fitness, RngStream(2), GAConfig(population_size=8, max_generations=8)
        )
        best = ga.search(seeds=[{"n": 10, "x": 0.0, "mode": "a"}])
        assert best["n"] >= 10

    def test_evaluations_cached(self):
        calls = []

        def fitness(inp):
            calls.append(1)
            return 0.0  # constant fitness -> early stall

        ga = GeneticInputSearch(
            SPEC, fitness, RngStream(3), GAConfig(population_size=4, max_generations=4)
        )
        ga.search(seeds=[{"n": 10, "x": 0.0, "mode": "a"}])
        assert ga.stats.evaluations == len(calls)

    def test_stalls_out_early(self):
        ga = GeneticInputSearch(
            SPEC,
            lambda inp: 1.0,
            RngStream(4),
            GAConfig(population_size=4, max_generations=50, patience=2),
        )
        ga.search(seeds=[])
        assert ga.stats.generations <= 4  # patience cuts it off

    def test_deterministic(self):
        def fitness(inp):
            return inp["x"]

        out = [
            GeneticInputSearch(
                SPEC, fitness, RngStream(9), GAConfig(population_size=5)
            ).search(seeds=[])
            for _ in range(2)
        ]
        assert out[0] == out[1]


class TestMutation:
    def test_numeric_ten_percent(self):
        spec = ArgSpec("v", "float", 0.0, 1000.0)
        rng = RngStream(5)
        for _ in range(50):
            out = spec.mutate(500.0, rng)
            assert 450.0 - 1e-9 <= out <= 550.0 + 1e-9

    def test_int_always_moves(self):
        spec = ArgSpec("v", "int", 0, 100)
        rng = RngStream(6)
        assert all(spec.mutate(4, rng) != 4 or True for _ in range(10))
        # small values still move by at least ±1 (unless clamped back)
        moved = [spec.mutate(4, rng) for _ in range(20)]
        assert any(v != 4 for v in moved)

    def test_choice_enumerates(self):
        spec = ArgSpec("v", "choice", choices=("x", "y", "z"))
        rng = RngStream(7)
        vals = {spec.mutate("x", rng) for _ in range(30)}
        assert vals <= {"x", "y", "z"} and len(vals) > 1

    def test_crossover_swaps_one_argument(self):
        a = {"n": 1, "x": -1.0, "mode": "a"}
        b = {"n": 100, "x": 1.0, "mode": "c"}
        a2, b2 = SPEC.crossover(a, b, RngStream(8))
        diffs = [k for k in a if a2[k] != a[k]]
        assert len(diffs) == 1
        k = diffs[0]
        assert a2[k] == b[k] and b2[k] == a[k]

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_mutation_stays_in_domain(self, seed):
        rng = RngStream(seed)
        inp = SPEC.random(rng)
        for _ in range(5):
            inp = SPEC.mutate(inp, rng)
            for spec in SPEC.args:
                v = inp[spec.name]
                if spec.kind == "choice":
                    assert v in spec.choices
                else:
                    assert spec.lo <= v <= spec.hi


class TestIncubative:
    def test_thresholds(self):
        benefits = {i: 0.0 for i in range(97)}
        benefits.update({97: 0.5, 98: 0.7, 99: 1.0})
        v_low, v_high = benefit_thresholds(benefits)
        assert v_low == 0.0
        assert v_high == 0.0  # 30% quantile of mostly-zero data

    def test_pairwise_detection(self):
        # iid 5 is negligible under A, substantial under B.
        a = {i: 0.001 * i for i in range(10)}
        a[5] = 0.0
        b = dict(a)
        b[5] = 0.9
        inc = find_incubative_pairwise(a, b)
        assert 5 in inc

    def test_pairwise_requires_low_in_a(self):
        a = {i: 1.0 for i in range(10)}  # nothing negligible
        b = {i: 1.0 for i in range(10)}
        b[5] = 2.0
        assert find_incubative_pairwise(a, b) == set()

    def test_union_over_history(self):
        base = {i: float(i) / 10 for i in range(10)}
        h1 = dict(base)
        h1[0] = 0.0
        h2 = dict(base)
        h2[0] = 0.95
        inc = find_incubative([h1, h2])
        assert 0 in inc

    def test_symmetric(self):
        h1 = {0: 0.0, 1: 0.5, 2: 0.6}
        h2 = {0: 0.9, 1: 0.5, 2: 0.6}
        assert find_incubative([h1, h2]) == find_incubative([h2, h1])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IncubativeConfig(q_low=0.5, q_high=0.3)

    def test_empty_history(self):
        assert find_incubative([]) == set()
        assert find_incubative([{0: 1.0}]) == set()


class TestReprioritize:
    def test_max_benefits(self):
        history = [{1: 0.1, 2: 0.0}, {1: 0.5, 2: 0.3}, {1: 0.2}]
        out = max_benefits(history, {1, 2})
        assert out == {1: 0.5, 2: 0.3}

    def test_reprioritize_raises_incubative_only(self, sumsq_program, sumsq_data):
        from repro.fi.campaign import run_per_instruction_campaign
        from repro.sid.profiles import build_cost_benefit_profile

        prof_dyn = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        fi = run_per_instruction_campaign(
            sumsq_program, 3, seed=1, args=[8], bindings=sumsq_data, profile=prof_dyn
        )
        prof = build_cost_benefit_profile(sumsq_program.module, prof_dyn, fi)
        target = prof.iids[0]
        other = prof.iids[1]
        history = [{target: 0.99}]
        updated = reprioritize(prof, history, {target})
        assert updated.benefit[target] == 0.99
        assert updated.benefit[other] == prof.benefit[other]

    def test_reprioritize_never_lowers(self, sumsq_program, sumsq_data):
        from repro.fi.campaign import run_per_instruction_campaign
        from repro.sid.profiles import build_cost_benefit_profile

        prof_dyn = profile_run(sumsq_program, args=[8], bindings=sumsq_data)
        fi = run_per_instruction_campaign(
            sumsq_program, 3, seed=1, args=[8], bindings=sumsq_data, profile=prof_dyn
        )
        prof = build_cost_benefit_profile(sumsq_program.module, prof_dyn, fi)
        target = prof.iids[0]
        history = [{target: 0.0}]  # lower than current
        updated = reprioritize(prof, history, {target})
        assert updated.sdc_prob[target] >= prof.sdc_prob[target]
