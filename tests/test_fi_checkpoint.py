"""Determinism regression: every campaign engine produces identical numbers.

Serial cold, process-parallel cold, checkpoint-resumed serial, and
checkpoint-resumed parallel runs of the same seeded campaign must agree on
``per_fault`` (order included) and ``OutcomeCounts`` — the checkpoint engine
is an accelerator, never an approximation. Exercised on two apps with
different outcome mixes plus the per-instruction campaign style.
"""

from __future__ import annotations

import pytest

from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.fi.faultmodel import injectable_iids
from repro.vm.checkpoint import record_checkpoints


def _campaign_kwargs(app):
    args, bindings = app.encode(app.reference_input)
    return dict(
        args=args, bindings=bindings, rel_tol=app.rel_tol, abs_tol=app.abs_tol
    )


@pytest.fixture(params=["pathfinder", "fft"])
def app_under_test(request, pathfinder_app, fft_app):
    return {"pathfinder": pathfinder_app, "fft": fft_app}[request.param]


class TestWholeProgramDeterminism:
    def test_all_engines_identical(self, app_under_test):
        app = app_under_test
        kw = _campaign_kwargs(app)
        serial = run_campaign(app.program, 48, seed=31, workers=0, **kw)
        par = run_campaign(app.program, 48, seed=31, workers=2, **kw)
        ckpt = run_campaign(
            app.program, 48, seed=31, workers=0,
            checkpoint_interval="auto", **kw,
        )
        ckpt_par = run_campaign(
            app.program, 48, seed=31, workers=2,
            checkpoint_interval="auto", **kw,
        )
        assert serial.per_fault == par.per_fault
        assert serial.per_fault == ckpt.per_fault
        assert serial.per_fault == ckpt_par.per_fault
        assert serial.counts == ckpt.counts == ckpt_par.counts

    def test_explicit_interval_and_prerecorded_store(self, pathfinder_app):
        app = pathfinder_app
        kw = _campaign_kwargs(app)
        serial = run_campaign(app.program, 40, seed=5, **kw)
        fixed = run_campaign(
            app.program, 40, seed=5, checkpoint_interval=512, **kw
        )
        store = record_checkpoints(
            app.program, args=kw["args"], bindings=kw["bindings"], interval=512
        )
        reused = run_campaign(
            app.program, 40, seed=5, checkpoints=store, **kw
        )
        assert serial.per_fault == fixed.per_fault == reused.per_fault


class TestPerInstructionDeterminism:
    def test_checkpointed_matches_cold(self, fft_app):
        app = fft_app
        kw = _campaign_kwargs(app)
        targets = injectable_iids(app.program.module)[:12]
        cold = run_per_instruction_campaign(
            app.program, 3, seed=17, only_iids=targets, **kw
        )
        warm = run_per_instruction_campaign(
            app.program, 3, seed=17, only_iids=targets,
            checkpoint_interval="auto", workers=2, **kw,
        )
        assert cold.per_iid == warm.per_iid
        assert cold.sdc_probabilities() == warm.sdc_probabilities()
