"""Batch lockstep engine: detach edge cases must stay bit-identical to scalar.

The batch engine's contract is that its per-row observables — output stream
and trap — are *bit-identical* to the scalar injector's, whatever the fault
does to the row: trap mid-lockstep, diverge on the very last instruction,
land exactly on a tolerance boundary, or run as a batch of one. Each test
here builds the scalar reference with ``program.run(fault=...)`` and
compares raw observables (binary64 encodings for floats, trap class and
message for traps), not just classified outcomes.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import Trap
from repro.fi.faultmodel import FaultSite, injectable_iids, sample_fault_sites
from repro.fi.outcome import Outcome, classify_run
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID
from repro.util.bitops import float64_to_bits
from repro.util.rng import RngStream
from repro.vm.batch import BatchStats, run_trials_lockstep
from repro.vm.interpreter import Program
from repro.vm.profiler import profile_run

from tests.conftest import build_sum_squares_module

LIMIT = 200_000


def _scalar_raw(program, spec, args=None, bindings=None):
    """The scalar injector's observables for one fault: (output, trap)."""
    try:
        r = program.run(
            args=args, bindings=bindings, fault=spec, step_limit=LIMIT
        )
        return r.output, None
    except Trap as t:
        return None, t


def _assert_rows_identical(program, sites, args=None, bindings=None,
                           golden_output=None):
    """Every row's raw observables must match the scalar run bit-for-bit."""
    specs = [s.to_spec() for s in sites]
    results, stats = run_trials_lockstep(
        program, specs, args=args, bindings=bindings,
        golden_output=golden_output or [], step_limit=LIMIT,
    )
    assert len(results) == len(sites)
    assert isinstance(stats, BatchStats) and stats.trials == len(sites)
    traps = 0
    for site, (out, trap) in zip(sites, results):
        sout, strap = _scalar_raw(program, site.to_spec(), args, bindings)
        label = f"site {site}"
        if strap is not None:
            traps += 1
            assert trap is not None, f"{label}: scalar trapped, batch did not"
            assert type(trap) is type(strap), label
            assert str(trap) == str(strap), label
        else:
            assert trap is None, f"{label}: batch trapped, scalar did not"
            assert len(out) == len(sout), label
            for a, b in zip(out, sout):
                if isinstance(b, float):
                    assert isinstance(a, float), label
                    assert float64_to_bits(a) == float64_to_bits(b), label
                else:
                    assert a == b, label
    return traps, stats


def test_fault_induced_trap_during_lockstep(sumsq_program, sumsq_data):
    """High-bit flips on address math trap mid-lockstep; rows must detach
    and reproduce the scalar trap exactly (class and message)."""
    args = [28]
    sites = [
        FaultSite(iid, instance, bit)
        for iid in injectable_iids(sumsq_program.module)
        for instance in (1, 5)
        for bit in (62, 63)
    ]
    traps, _ = _assert_rows_identical(
        sumsq_program, sites, args=args, bindings=sumsq_data
    )
    assert traps > 0, "edge case not exercised: no fault trapped"


def _tail_module() -> Module:
    """A kernel whose *last* injectable instruction feeds the output."""
    m = Module("tail")
    g = m.add_global("data", F64, 8)
    b = Builder.new_function(m, "main", [("n", I64)], VOID)
    acc = b.local(F64, b.f64(0.0), hint="acc")
    with b.for_loop(b.i64(0), b.function.arg("n")) as i:
        x = b.load(b.gep(g, i), F64)
        b.set(acc, b.fadd(b.get(acc, F64), x))
    b.emit_output(b.fadd(b.get(acc, F64), b.f64(1.0)))
    b.ret()
    return m.finalize()


def test_divergence_on_final_instruction():
    """A fault on the last executed injectable instruction diverges with no
    trace left to reconverge in — the row must still finish identically."""
    program = Program(_tail_module())
    bindings = {"data": [float(i) + 0.5 for i in range(8)]}
    args = [8]
    gold = program.run(args=args, bindings=bindings)
    final_iid = injectable_iids(program.module)[-1]
    # The closing fadd runs exactly once, as the program's final
    # value-producing step; flip every bit class (mantissa/exponent/sign).
    sites = [FaultSite(final_iid, 1, bit) for bit in (0, 23, 51, 52, 62, 63)]
    _assert_rows_identical(
        program, sites, args=args, bindings=bindings,
        golden_output=gold.output,
    )
    # Sanity: these faults really do reach the output (not masked).
    flipped, _ = _scalar_raw(program, sites[3].to_spec(), args, bindings)
    assert float64_to_bits(flipped[0]) != float64_to_bits(gold.output[0])


def test_tolerance_boundary_float_compares():
    """Outputs landing exactly on the tolerance boundary must classify the
    same through both engines — including -0.0 and NaN encodings."""
    program = Program(_tail_module())
    bindings = {"data": [0.0] * 8}
    args = [8]
    gold = program.run(args=args, bindings=bindings)
    assert gold.output == [1.0]
    final_iid = injectable_iids(program.module)[-1]
    cases = [
        # sign flip of the final 1.0 -> -1.0: deviation exactly 2.0
        (FaultSite(final_iid, 1, 63), 2.0),
        # lowest mantissa bit: deviation exactly one ulp of 1.0
        (FaultSite(final_iid, 1, 0), math.ulp(1.0)),
    ]
    sites = [site for site, _dev in cases]
    specs = [s.to_spec() for s in sites]
    results, _ = run_trials_lockstep(
        program, specs, args=args, bindings=bindings,
        golden_output=gold.output, step_limit=LIMIT,
    )
    for (site, dev), (out, trap) in zip(cases, results):
        sout, strap = _scalar_raw(program, site.to_spec(), args, bindings)
        assert trap is None and strap is None
        assert [float64_to_bits(v) for v in out] == [
            float64_to_bits(v) for v in sout
        ]
        # At abs_tol exactly the deviation the compare sits on the
        # boundary (math.isclose is <=, so this reads benign); one ulp
        # under flips it to SDC. Both engines must agree on both sides.
        for tol, expect in ((dev, Outcome.BENIGN),
                            (dev - math.ulp(dev), Outcome.SDC)):
            batch_o = classify_run(gold.output, out, trap, 0.0, tol)
            scalar_o = classify_run(gold.output, sout, strap, 0.0, tol)
            assert batch_o == scalar_o == expect, (site, tol)


def test_negative_zero_output_is_bit_preserved():
    """-0.0 equals 0.0 under tolerance compares but differs bitwise; the
    batch engine must not lose the encoding when splicing outputs."""
    program = Program(_tail_module())
    bindings = {"data": [0.0] * 8}
    args = [8]
    gold = program.run(args=args, bindings=bindings)
    # Flip the sign bit of one loaded 0.0: the row diverges bitwise
    # (-0.0 != 0.0 in the column planes) yet the final sum is unchanged.
    load_iid = next(
        iid for iid in injectable_iids(program.module)
        if program.module.instruction(iid).opcode == "load"
        and program.module.instruction(iid).type.is_float
    )
    site = FaultSite(load_iid, 3, 63)
    results, _ = run_trials_lockstep(
        program, [site.to_spec()], args=args, bindings=bindings,
        golden_output=gold.output, step_limit=LIMIT,
    )
    out, trap = results[0]
    sout, strap = _scalar_raw(program, site.to_spec(), args, bindings)
    assert trap is None and strap is None
    assert [float64_to_bits(v) for v in out] == [
        float64_to_bits(v) for v in sout
    ]


def test_batch_of_one(sumsq_program, sumsq_data):
    """A single-row batch exercises the degenerate mask paths."""
    args = [32]
    gold = sumsq_program.run(args=args, bindings=sumsq_data)
    profile = profile_run(sumsq_program, args=args, bindings=sumsq_data)
    sites = sample_fault_sites(
        sumsq_program.module, profile, 12, RngStream(13, "batch1")
    )
    for site in sites:
        traps, stats = _assert_rows_identical(
            sumsq_program, [site], args=args, bindings=sumsq_data,
            golden_output=gold.output,
        )
        assert stats.trials == 1


def test_empty_batch():
    program = Program(_tail_module())
    results, stats = run_trials_lockstep(program, [])
    assert results == [] and stats.trials == 0
