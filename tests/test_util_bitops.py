"""Unit and property tests for repro.util.bitops."""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    flip_bit_float32,
    flip_bit_float64,
    flip_bit_int,
    float32_from_bits,
    float32_to_bits,
    float64_from_bits,
    float64_to_bits,
    sign_extend,
    to_signed,
    to_unsigned,
)


class TestSignedness:
    def test_to_signed_positive(self):
        assert to_signed(5, 8) == 5

    def test_to_signed_negative(self):
        assert to_signed(0xFF, 8) == -1
        assert to_signed(0x80, 8) == -128

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1, 8) == 0xFF
        assert to_unsigned(256, 8) == 0

    def test_sign_extend(self):
        assert sign_extend(0xFF, 8, 16) == 0xFFFF
        assert sign_extend(0x7F, 8, 16) == 0x7F

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_32(self, v):
        assert to_unsigned(to_signed(v, 32), 32) == v

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_roundtrip_signed_32(self, v):
        assert to_signed(to_unsigned(v, 32), 32) == v


class TestIntFlip:
    def test_flip_lsb(self):
        assert flip_bit_int(0, 0, 8) == 1
        assert flip_bit_int(1, 0, 8) == 0

    def test_flip_msb(self):
        assert flip_bit_int(0, 7, 8) == 0x80

    def test_out_of_range_bit(self):
        with pytest.raises(ValueError):
            flip_bit_int(0, 8, 8)

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=63),
    )
    def test_flip_is_involution(self, v, bit):
        assert flip_bit_int(flip_bit_int(v, bit, 64), bit, 64) == v

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=63),
    )
    def test_flip_changes_exactly_one_bit(self, v, bit):
        flipped = flip_bit_int(v, bit, 64)
        assert bin(v ^ flipped).count("1") == 1


class TestFloatBits:
    def test_float64_roundtrip_known(self):
        assert float64_from_bits(float64_to_bits(1.5)) == 1.5

    def test_float64_bits_of_one(self):
        assert float64_to_bits(1.0) == 0x3FF0000000000000

    def test_float32_roundtrip(self):
        assert float32_from_bits(float32_to_bits(0.5)) == 0.5

    @given(st.floats(allow_nan=False))
    def test_float64_roundtrip_property(self, x):
        assert float64_from_bits(float64_to_bits(x)) == x

    def test_nan_roundtrip_stays_nan(self):
        assert math.isnan(float64_from_bits(float64_to_bits(math.nan)))


class TestFloatFlip:
    def test_sign_bit_flip(self):
        assert flip_bit_float64(1.0, 63) == -1.0

    def test_exponent_flip_halves(self):
        # Bit 52 is the lowest exponent bit, set in 1.0's biased exponent
        # (0x3FF); flipping it off gives exponent 0x3FE, i.e. 0.5.
        assert flip_bit_float64(1.0, 52) == 0.5

    def test_exponent_flip_sets_bit(self):
        # 2.0 has biased exponent 0x400 (bit 52 clear): flipping sets it,
        # giving exponent 0x401, i.e. 4.0.
        assert flip_bit_float64(2.0, 52) == 4.0

    def test_f32_sign_flip(self):
        assert flip_bit_float32(2.0, 31) == -2.0

    def test_bad_bit_raises(self):
        with pytest.raises(ValueError):
            flip_bit_float64(1.0, 64)
        with pytest.raises(ValueError):
            flip_bit_float32(1.0, 32)

    @given(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.integers(min_value=0, max_value=63),
    )
    def test_flip_involution(self, x, bit):
        y = flip_bit_float64(flip_bit_float64(x, bit), bit)
        assert struct.pack("<d", y) == struct.pack("<d", x)
