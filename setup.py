"""Setup shim: enables legacy editable installs (`pip install -e .`) on
environments whose setuptools lacks integrated wheel support."""
from setuptools import setup

setup()
