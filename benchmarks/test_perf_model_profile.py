"""Model-mode profiling speed: static prediction vs. FI campaign (perf-marked).

Times ``build_profile_from_source`` with ``source="model"`` against the
equivalent ``source="fi"`` per-instruction campaign on identical inputs and
persists ``BENCH_model.json`` so the speedup trajectory is tracked across
PRs. Marked ``perf`` and therefore excluded from tier-1 (the default
``-m "not perf"``); run via ``pytest benchmarks/test_perf_model_profile.py
-m perf -s`` or ``scripts/bench_model.py``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import OUT_DIR, emit
from repro.analysis.bench import measure_model_speedup
from repro.util.benchmeta import bench_record, write_bench
from repro.util.tables import format_table

pytestmark = pytest.mark.perf

#: needle is the acceptance gate (largest trace of the tier-1 apps); the
#: others span the outcome mix so the trajectory shows whether the model's
#: cost tracks instruction count or trace length.
MEASURED_APPS = ("needle", "pathfinder", "hpccg", "kmeans")
GATE_APP = "needle"
TRIALS = 12


@pytest.fixture(scope="module")
def reports():
    return {
        name: measure_model_speedup(
            name, trials_per_instruction=TRIALS, seed=2022, repeats=3
        )
        for name in MEASURED_APPS
    }


def test_model_profile_report(reports):
    rows = [
        [
            r.app,
            str(r.n_instructions),
            str(r.fi_trials),
            f"{r.fi_seconds:8.3f}s",
            f"{r.model_seconds * 1e3:8.2f}ms",
            f"{r.speedup:7.1f}x",
            f"{r.spearman:+.3f}",
        ]
        for r in reports.values()
    ]
    emit(
        "BENCH_model",
        format_table(
            ["App", "Instrs", "FI trials", "FI", "Model", "Speedup",
             "Spearman"],
            rows,
            title=(
                f"Profile build: static model vs. {TRIALS}-trial "
                "per-instruction FI campaign (serial, cache off)"
            ),
        ),
    )
    write_bench(
        "model",
        bench_record(
            {name: r.to_dict() for name, r in reports.items()},
            references={f"{GATE_APP}.speedup": [350.0, -0.9, None]},
        ),
        OUT_DIR,
    )


def test_model_speedup_gate(reports):
    """Acceptance: model-mode profile >=10x faster than the FI campaign."""
    gate = reports[GATE_APP]
    assert gate.speedup >= 10.0, (
        f"{GATE_APP}: {gate.speedup:.1f}x < 10x "
        f"(FI {gate.fi_seconds:.3f}s vs model {gate.model_seconds:.4f}s)"
    )
    for name, r in reports.items():
        assert r.speedup >= 10.0, f"{name}: {r.speedup:.1f}x < 10x floor"


def test_model_ranking_not_degenerate(reports):
    """The speed must not come from a constant map: ranks must correlate."""
    for name, r in reports.items():
        assert r.spearman > 0.3, f"{name}: Spearman {r.spearman:.3f} <= 0.3"
