"""Fig. 9: the real-world-input case study (BFS graphs, Kmeans clusterings)."""

from benchmarks.conftest import BENCH, bench_once, emit
from repro.exp.fig9 import run_fig9_study
from repro.exp.report import render_comparison, render_coverage_figure

FIG9_SCALE = BENCH.with_(eval_inputs=6, search_max_inputs=2)

_cache: dict = {}


def cached_fig9():
    if "study" not in _cache:
        _cache["study"] = run_fig9_study(FIG9_SCALE)
    return _cache["study"]


def test_fig9_casestudy(benchmark):
    base, hardened = bench_once(benchmark, cached_fig9)
    emit(
        "fig9",
        render_coverage_figure(
            base, "Fig. 9 (baseline SID on real-world-like inputs)"
        )
        + "\n"
        + render_coverage_figure(
            hardened, "Fig. 9 (MINPSID on real-world-like inputs)"
        )
        + "\n\n"
        + render_comparison(base, hardened, "Fig. 9 companion: summary"),
    )
    assert {r.app for r in base.results} == {"bfs", "kmeans"}
    # Paper shape: MINPSID's minimum coverage across datasets is at least
    # comparable to the baseline's on aggregate.
    assert sum(r.min_coverage() for r in hardened.results) >= (
        sum(r.min_coverage() for r in base.results) - 0.1 * len(base.results)
    )
