"""Fig. 8: MINPSID execution-time breakdown."""

from benchmarks.conftest import BENCH, bench_once, emit
from repro.exp.fig8 import PHASES, render_fig8, run_fig8_study

APPS = ["pathfinder", "knn", "xsbench"]


def test_fig8_timing(benchmark):
    rows = bench_once(benchmark, lambda: run_fig8_study(APPS, BENCH))
    emit("fig8", render_fig8(rows))
    for r in rows:
        assert r.total > 0
        # Paper shape: the three instrumented components dominate the
        # pipeline (>98% in the paper; we assert a generous 80%).
        dominant = sum(r.fraction(p) for p in PHASES)
        assert dominant > 0.8, f"{r.app}: phases cover only {dominant:.0%}"
        # And the one-time cost is dominated by the input-search side
        # (search engine + incubative FI), not by the classic-SID part.
        search_side = r.fraction("per_inst_fi_incubative") + r.fraction(
            "search_engine"
        )
        assert search_side > r.fraction("per_inst_fi_ref") * 0.8
