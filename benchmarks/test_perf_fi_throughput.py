"""FI throughput: cold vs. checkpoint-resumed campaigns (perf-marked).

Measures injections/sec of the two campaign engines on identical seeded
fault lists at the ``small`` preset's whole-program campaign size and
persists ``BENCH_fi_throughput.json`` so the perf trajectory is tracked
across PRs. Marked ``perf`` and therefore excluded from tier-1 (the default
``-m "not perf"``); run via ``pytest benchmarks/test_perf_fi_throughput.py
-m perf -s`` or ``scripts/bench_fi.py``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import OUT_DIR, emit
from repro.exp.config import SMALL
from repro.fi.throughput import measure_fi_throughput
from repro.util.benchmeta import bench_record, write_bench
from repro.util.tables import format_table

pytestmark = pytest.mark.perf

#: Apps measured for the trajectory record. ``needle`` is the acceptance
#: gate (whole-program, small preset); the others track how outcome mix
#: (SDC-heavy hpccg vs. masking-heavy kmeans) moves the speedup.
MEASURED_APPS = ("needle", "particlefilter", "hpccg", "kmeans")
GATE_APP = "needle"


@pytest.fixture(scope="module")
def reports():
    return {
        name: measure_fi_throughput(
            name,
            n_faults=SMALL.campaign_faults,
            seed=SMALL.seed,
            checkpoint_interval="auto",
            workers=0,
            repeats=3,
        )
        for name in MEASURED_APPS
    }


def test_fi_throughput_report(reports):
    rows = [
        [
            r.app,
            str(r.golden_steps),
            f"{r.cold_injections_per_sec:8.1f}",
            f"{r.checkpointed_injections_per_sec:8.1f}",
            f"{r.speedup:5.2f}x",
            "yes" if r.identical else "NO",
        ]
        for r in reports.values()
    ]
    emit(
        "BENCH_fi_throughput",
        format_table(
            ["App", "Steps", "Cold inj/s", "Ckpt inj/s", "Speedup", "Identical"],
            rows,
            title=(
                f"FI throughput, {SMALL.campaign_faults}-fault whole-program "
                "campaigns (serial)"
            ),
        ),
    )
    write_bench(
        "fi_throughput",
        bench_record(
            {name: r.to_dict() for name, r in reports.items()},
            references={f"{GATE_APP}.speedup": [3.9, -0.5, None]},
        ),
        OUT_DIR,
    )


def test_outcomes_bit_identical(reports):
    for name, r in reports.items():
        assert r.identical, f"{name}: checkpointed outcomes diverged from cold"


def test_checkpointed_speedup_gate(reports):
    """Acceptance: >=3x over the cold path on a small-preset campaign."""
    gate = reports[GATE_APP]
    assert gate.speedup >= 3.0, (
        f"{GATE_APP}: {gate.speedup:.2f}x < 3.0x "
        f"(cold {gate.cold_seconds:.2f}s vs ckpt "
        f"{gate.checkpointed_seconds:.2f}s)"
    )
    for name, r in reports.items():
        assert r.speedup >= 1.5, f"{name}: {r.speedup:.2f}x < 1.5x floor"
