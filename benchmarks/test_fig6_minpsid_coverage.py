"""Fig. 6: MINPSID's mitigation of the SDC-coverage loss vs baseline SID."""

from benchmarks.conftest import BENCH, bench_once, cached_fig2_study, cached_fig6_study, emit
from repro.exp.report import render_comparison, render_coverage_figure


def test_fig6_minpsid_coverage(benchmark):
    hardened = bench_once(benchmark, lambda: cached_fig6_study(BENCH))
    baseline = cached_fig2_study(BENCH)
    emit(
        "fig6",
        render_coverage_figure(
            hardened,
            "Fig. 6: measured SDC coverage under MINPSID "
            "(E = expected coverage)",
        )
        + "\n\n"
        + render_comparison(
            baseline, hardened, "Fig. 6 companion: SID vs MINPSID summary"
        ),
    )
    # Paper shape: averaged over apps, MINPSID's minimum coverage is at
    # least as good as the baseline's.
    base_min = sum(r.min_coverage() for r in baseline.results)
    hard_min = sum(r.min_coverage() for r in hardened.results)
    assert hard_min >= base_min - 0.05 * len(baseline.results)
