"""Ablation 3 (DESIGN.md §6): the incubative quantile thresholds.

Sweeps (q_low, q_high) pairs around the paper's (1%, 30%) and reports the
incubative-set size each induces on a fixed benefit history — thresholds
trade sensitivity (more candidates re-prioritized) against selectivity.
"""

from benchmarks.conftest import BENCH, bench_once, emit
from repro.exp.fig7 import _reference_benefits
from repro.minpsid.ga import GAConfig
from repro.minpsid.incubative import IncubativeConfig, find_incubative
from repro.minpsid.search import InputSearchConfig, run_input_search
from repro.util.tables import format_table
from tests.conftest import cached_app

APP = "fft"
PAIRS = ((0.01, 0.30), (0.01, 0.50), (0.05, 0.30), (0.10, 0.50))


def test_ablation_thresholds(benchmark):
    app = cached_app(APP)
    ref = _reference_benefits(app, BENCH)

    def run():
        cfg = InputSearchConfig(
            max_inputs=3,
            stall_limit=3,
            per_instruction_trials=BENCH.search_per_instr_trials,
            ga=GAConfig(population_size=4, max_generations=2),
        )
        outcome = run_input_search(app, ref, seed=7, config=cfg)
        history = outcome.benefit_history
        return {
            pair: find_incubative(history, IncubativeConfig(*pair))
            for pair in PAIRS
        }

    by_pair = bench_once(benchmark, run)
    rows = [
        [f"q_low={lo:.0%}, q_high={hi:.0%}", str(len(by_pair[(lo, hi)]))]
        for lo, hi in PAIRS
    ]
    emit(
        "ablation_thresholds",
        format_table(
            ["Thresholds", "Incubative found"],
            rows,
            title=f"Ablation: incubative thresholds on {APP} (fixed history)",
        ),
    )
    # Monotonicity: relaxing q_low (more instructions count as negligible)
    # can only grow the set; tightening q_high likewise.
    assert len(by_pair[(0.01, 0.50)]) <= len(by_pair[(0.01, 0.30)])
    assert len(by_pair[(0.01, 0.30)]) <= len(by_pair[(0.05, 0.30)])
