"""Table I: the benchmark inventory (and that every app is runnable)."""

from benchmarks.conftest import bench_once, emit
from repro.apps import all_app_names, get_app
from repro.exp.report import render_table1


def test_table1_apps(benchmark):
    def run():
        rows = []
        for name in all_app_names():
            app = get_app(name)
            r = app.run_reference()
            rows.append((name, r.steps))
        return rows

    rows = bench_once(benchmark, run)
    emit("table1", render_table1())
    assert len(rows) == 11
    assert all(steps > 0 for _, steps in rows)
