"""Warm-cache figure regeneration: the incremental-runner acceptance gate.

Runs the Fig. 2 driver twice against the same campaign cache. The cold pass
fills the store; the warm pass must (a) dispatch **zero** FI campaigns —
every sweep replays a persisted result, only golden runs remain — (b) finish
at least 5x faster, and (c) reproduce the study bit-identically. Persists
``BENCH_cache_warm.json`` so the warm/cold ratio is tracked across PRs.
Marked ``perf`` and therefore excluded from tier-1; run via
``pytest benchmarks/test_perf_cache_warm.py -m perf -s``.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks.conftest import BENCH, OUT_DIR, emit
from repro.exp.fig2 import run_fig2_study
from repro.obs.core import session
from repro.obs.sink import MemorySink
from repro.util.benchmeta import bench_record, write_bench
from repro.util.tables import format_table

pytestmark = pytest.mark.perf

#: One campaign-heavy app keeps the cold pass in benchmark budget while the
#: eval campaigns still dwarf the golden runs the warm pass must repeat.
SCALE = BENCH.with_(apps=("pathfinder",), eval_inputs=5, campaign_faults=120)


@pytest.fixture(scope="module")
def passes(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("campaign-cache"))
    scale = SCALE.with_(cache_dir=cache_dir)
    out = {}
    for name in ("cold", "warm"):
        sink = MemorySink()
        t0 = time.perf_counter()
        with session(sink=sink) as t:
            study = run_fig2_study(scale)
        out[name] = {
            "seconds": time.perf_counter() - t0,
            "study": study.to_dict(),
            "counters": dict(t.metrics.counters),
        }
    return out


def test_warm_run_dispatches_zero_campaigns(passes):
    assert passes["cold"]["counters"].get("fi.campaigns", 0) > 0
    warm = passes["warm"]["counters"]
    assert warm.get("fi.campaigns", 0) == 0
    assert warm.get("fi.trials", 0) == 0
    assert warm.get("cache.hit", 0) == passes["cold"]["counters"]["fi.campaigns"]
    assert warm.get("cache.miss", 0) == 0


def test_warm_run_is_bit_identical(passes):
    assert passes["warm"]["study"] == passes["cold"]["study"]


def test_warm_run_is_at_least_5x_faster(passes):
    cold, warm = passes["cold"]["seconds"], passes["warm"]["seconds"]
    assert warm * 5 <= cold, f"warm {warm:.3f}s vs cold {cold:.3f}s"


def test_cache_warm_report(passes):
    cold, warm = passes["cold"], passes["warm"]
    speedup = cold["seconds"] / warm["seconds"] if warm["seconds"] else 0.0
    rows = [
        [
            name,
            f"{p['seconds']:.3f}s",
            str(p["counters"].get("fi.campaigns", 0)),
            str(p["counters"].get("fi.trials", 0)),
            str(p["counters"].get("cache.hit", 0)),
            str(p["counters"].get("cache.write", 0)),
        ]
        for name, p in (("cold", cold), ("warm", warm))
    ]
    emit(
        "BENCH_cache_warm",
        format_table(
            ["Pass", "Wall", "Campaigns", "Trials", "Hits", "Writes"],
            rows,
            title=f"Fig. 2 regeneration, cold vs warm cache ({speedup:.1f}x)",
        ),
    )
    write_bench(
        "cache_warm",
        bench_record(
            {
                "app": SCALE.apps[0],
                "cold_seconds": cold["seconds"],
                "warm_seconds": warm["seconds"],
                "speedup": speedup,
                "warm_campaigns": warm["counters"].get("fi.campaigns", 0),
                "identical": warm["study"] == cold["study"],
            },
            references={"speedup": [150.0, -0.9, None]},
        ),
        OUT_DIR,
    )
