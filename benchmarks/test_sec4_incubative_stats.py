"""§IV: incubative-instruction statistics (fractions, persistence,
attribution of the coverage loss)."""

from benchmarks.conftest import BENCH_FAST, bench_once, emit
from repro.exp.sec4 import run_sec4_analysis
from repro.util.tables import format_percent, format_table

SEC4_SCALE = BENCH_FAST.with_(protection_levels=(0.3, 0.5), eval_inputs=3)
APPS = ("pathfinder", "knn", "kmeans")


def test_sec4_incubative_stats(benchmark):
    def run():
        return [run_sec4_analysis(app, SEC4_SCALE) for app in APPS]

    results = bench_once(benchmark, run)
    rows = []
    for r in results:
        pers = r.persistence.get((0.3, 0.5), 0.0)
        rows.append(
            [
                r.app,
                format_percent(r.incubative_fraction),
                format_percent(pers),
                format_percent(r.attribution),
                str(r.new_sdc_faults),
            ]
        )
    emit(
        "sec4",
        format_table(
            ["Benchmark", "Incubative frac", "30->50% persistence",
             "Loss attribution", "New-SDC faults"],
            rows,
            title="Sec. IV: incubative-instruction statistics",
        ),
    )
    # Paper shape: incubative instructions are a minority of the program
    # (6.2%-32.1% in the paper) yet explain most new SDCs.
    for r in results:
        assert r.incubative_fraction < 0.6
    assert any(r.incubative_fraction > 0.0 for r in results)
    attributed = [r for r in results if r.new_sdc_faults >= 10]
    if attributed:
        assert max(r.attribution for r in attributed) > 0.3
