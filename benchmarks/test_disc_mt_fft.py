"""§VIII-B: SID vs MINPSID on the multithreaded FFT (1/2/4 threads)."""

from benchmarks.conftest import BENCH, bench_once, emit
from repro.exp.mt_fft import run_mt_fft_study
from repro.util.tables import format_percent, format_table

MT_SCALE = BENCH.with_(eval_inputs=4, campaign_faults=60, search_max_inputs=2)


def test_disc_mt_fft(benchmark):
    rows = bench_once(
        benchmark, lambda: run_mt_fft_study(MT_SCALE, thread_counts=(1, 2, 4))
    )
    emit(
        "mt_fft",
        format_table(
            ["Threads", "SID avg loss", "MINPSID avg loss"],
            [
                [str(r.threads), format_percent(r.sid_loss), format_percent(r.minpsid_loss)]
                for r in rows
            ],
            title="Sec. VIII-B: coverage loss on multithreaded FFT",
        ),
    )
    assert [r.threads for r in rows] == [1, 2, 4]
    # Paper shape: MINPSID reduces the average coverage loss at every
    # thread count (7.52/12.13/6.00% -> 2.50/5.50/1.46% in the paper).
    total_sid = sum(r.sid_loss for r in rows)
    total_min = sum(r.minpsid_loss for r in rows)
    assert total_min <= total_sid + 0.05
