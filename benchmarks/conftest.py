"""Benchmark-harness configuration.

Each benchmark regenerates one table or figure of the paper at a reduced but
representative scale and prints the same rows/series the paper reports (run
with ``-s`` to see them; they are also written to ``benchmarks/out/``).
pytest-benchmark times the end-to-end driver; statistical fidelity comes from
the seeds, not repetition, so every bench runs exactly one round.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.exp.config import TINY, ScaleConfig

OUT_DIR = Path(__file__).parent / "out"

#: Shared bench scale: every app, one protection level, modest Monte Carlo.
BENCH = TINY.with_(
    name="bench",
    campaign_faults=80,
    per_instr_trials=4,
    search_per_instr_trials=3,
    eval_inputs=5,
    search_max_inputs=3,
    search_stall=2,
    ga_population=4,
    ga_generations=2,
    protection_levels=(0.5,),
)

#: Fast subset scale for the heavier drivers.
BENCH_FAST = BENCH.with_(
    apps=("pathfinder", "knn", "kmeans"),
    eval_inputs=4,
    campaign_faults=60,
)


def bench_once(benchmark, fn):
    """Run an expensive driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def emit(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def bench_scale() -> ScaleConfig:
    return BENCH


# ---------------------------------------------------------------------------
# Study caches: Fig. 2 and Table II derive from the same baseline study (and
# Fig. 6 / Table III from the same MINPSID study), exactly as in the paper.
# The first bench to need a study computes it; derived benches then time only
# their own derivation step.
# ---------------------------------------------------------------------------

_STUDY_CACHE: dict = {}


def cached_fig2_study(scale: ScaleConfig):
    key = ("fig2", scale)
    if key not in _STUDY_CACHE:
        from repro.exp.fig2 import run_fig2_study

        _STUDY_CACHE[key] = run_fig2_study(scale)
    return _STUDY_CACHE[key]


def cached_fig6_study(scale: ScaleConfig):
    key = ("fig6", scale)
    if key not in _STUDY_CACHE:
        from repro.exp.fig6 import run_fig6_study

        _STUDY_CACHE[key] = run_fig6_study(scale)
    return _STUDY_CACHE[key]
