"""Ablation 4 (DESIGN.md §6): duplication-check placement.

The paper places checks right before the next synchronization point; the
ablation compares against checking immediately after each duplicate, on
detection effectiveness and static code-size overhead.
"""

from benchmarks.conftest import BENCH, bench_once, emit
from repro.fi.campaign import run_campaign
from repro.sid.pipeline import SIDConfig, classic_sid
from repro.util.tables import format_table
from repro.vm.interpreter import Program
from tests.conftest import cached_app

APP = "needle"
LEVEL = 0.5


def test_ablation_check_placement(benchmark):
    app = cached_app(APP)
    args, bindings = app.encode(app.reference_input)

    def run():
        out = {}
        for placement in ("sync", "immediate"):
            sid = classic_sid(
                app.module, args, bindings,
                SIDConfig(
                    protection_level=LEVEL,
                    per_instruction_trials=BENCH.per_instr_trials,
                    check_placement=placement,
                ),
            )
            prog = Program(sid.protected.module)
            camp = run_campaign(
                prog, BENCH.campaign_faults, seed=5, args=args, bindings=bindings,
                rel_tol=app.rel_tol, abs_tol=app.abs_tol,
            )
            out[placement] = (sid, camp)
        return out

    out = bench_once(benchmark, run)
    rows = []
    for placement, (sid, camp) in out.items():
        size = sid.protected.module.instruction_count()
        rows.append(
            [placement, str(size), f"{camp.sdc_probability:.3f}", repr(camp.counts)]
        )
    emit(
        "ablation_check_placement",
        format_table(
            ["Placement", "Static instrs", "Residual SDC prob", "Outcomes"],
            rows,
            title=f"Ablation: check placement on {APP} @{LEVEL:.0%}",
        ),
    )
    sync_sid, sync_camp = out["sync"]
    imm_sid, imm_camp = out["immediate"]
    # Both placements must protect the same instruction set...
    assert sync_sid.protected.protected_iids == imm_sid.protected.protected_iids
    # ...and immediate checking is never larger in check count but may be
    # denser in static code (one check per duplicate, no batching).
    assert imm_sid.protected.checks >= sync_sid.protected.checks
    # Residual SDC probabilities should be in the same ballpark.
    assert abs(sync_camp.sdc_probability - imm_camp.sdc_probability) < 0.25
