"""Table III: percentage of coverage-loss inputs under MINPSID."""

from benchmarks.conftest import BENCH, bench_once, cached_fig2_study, cached_fig6_study, emit
from repro.exp.report import render_loss_table


def test_table3_loss_inputs(benchmark):
    hardened = bench_once(benchmark, lambda: cached_fig6_study(BENCH))
    baseline = cached_fig2_study(BENCH)
    emit(
        "table3",
        render_loss_table(
            hardened,
            "Table III: Percentage of Inputs that Result in the Loss of "
            "SDC Coverage in MINPSID",
        ),
    )
    # Paper shape: MINPSID lowers the average fraction of coverage-loss
    # inputs relative to the baseline (37.58% -> 8.36% in the paper).
    for level in hardened.levels():
        assert hardened.average_loss_fraction(level) <= (
            baseline.average_loss_fraction(level) + 0.10
        )
