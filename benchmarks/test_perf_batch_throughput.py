"""Batch-engine throughput: lockstep vectorized trials vs. scalar (perf gate).

Runs the exact fault list a seeded needle campaign would dispatch through
both the scalar ``inject_one`` loop and the lockstep batch interpreter,
asserts the outcome streams are bit-identical, and gates the acceptance
criterion: **>=20x** injections/sec over the scalar cold path. Persists
``BENCH_batch.json`` (with detach-rate and lockstep-occupancy stats) so
the speedup trajectory is tracked across PRs. Marked ``perf`` and
therefore excluded from tier-1; run via
``pytest benchmarks/test_perf_batch_throughput.py -m perf -s`` or
``scripts/bench_batch.py``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import OUT_DIR, emit
from repro.fi.throughput import measure_batch_throughput
from repro.util.benchmeta import bench_record, write_bench
from repro.util.tables import format_table

pytestmark = pytest.mark.perf

#: needle is the acceptance gate (longest trace of the tier-1 apps, and the
#: app named by the issue); the others exercise different detach/outcome
#: mixes so the trajectory shows where lockstep occupancy erodes.
MEASURED_APPS = ("needle", "pathfinder", "hpccg")
GATE_APP = "needle"
FAULTS = 1024
#: The batch pass is ~20x shorter than the scalar pass, so scheduler noise
#: hits its best-of far harder; extra batch repeats are nearly free.
REPEATS, BATCH_REPEATS = 2, 8


@pytest.fixture(scope="module")
def reports():
    return {
        name: measure_batch_throughput(
            name,
            n_faults=FAULTS,
            seed=2022,
            repeats=REPEATS,
            batch_repeats=BATCH_REPEATS,
        )
        for name in MEASURED_APPS
    }


def test_batch_throughput_report(reports):
    rows = [
        [
            r.app,
            str(r.golden_steps),
            f"{r.scalar_injections_per_sec:8.1f}",
            f"{r.batch_injections_per_sec:8.1f}",
            f"{r.speedup:5.1f}x",
            f"{100 * r.detach_rate:5.1f}%",
            f"{100 * r.lockstep_occupancy:6.2f}%",
            "yes" if r.identical else "NO",
        ]
        for r in reports.values()
    ]
    emit(
        "BENCH_batch",
        format_table(
            ["App", "Steps", "Scalar inj/s", "Batch inj/s", "Speedup",
             "Detach", "Occupancy", "Identical"],
            rows,
            title=f"Batch-engine throughput, {FAULTS}-fault cold campaigns",
        ),
    )
    write_bench(
        "batch",
        bench_record(
            {name: r.to_dict() for name, r in reports.items()},
            references={f"{GATE_APP}.speedup": [24.0, -0.2, None]},
        ),
        OUT_DIR,
    )


def test_batch_outcomes_bit_identical(reports):
    """The speed must not come from a different program: same outcomes."""
    for name, r in reports.items():
        assert r.identical, f"{name}: batch outcome stream diverged"


def test_batch_speedup_gate(reports):
    """Acceptance: batch engine >=20x scalar cold throughput on needle."""
    gate = reports[GATE_APP]
    assert gate.speedup >= 20.0, (
        f"{GATE_APP}: {gate.speedup:.1f}x < 20x "
        f"(scalar {gate.scalar_seconds:.3f}s vs batch "
        f"{gate.batch_seconds:.3f}s)"
    )


def test_batch_engine_mostly_in_lockstep(reports):
    """Occupancy sanity: the win must come from lockstep, not luck.

    If most rows detach to scalar replay the speedup would be an artifact
    of the sample; require the gate app to keep the overwhelming majority
    of row-steps inside the vectorized interpreter.
    """
    gate = reports[GATE_APP]
    assert gate.detach_rate <= 0.25, f"detach rate {gate.detach_rate:.1%}"
    assert gate.lockstep_occupancy >= 0.75, (
        f"occupancy {gate.lockstep_occupancy:.1%}"
    )
