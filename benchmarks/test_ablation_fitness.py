"""Ablation 1 (DESIGN.md §6): fitness function of the input search.

Compares the paper's weighted-CFG Euclidean fitness against (a) the random
searcher and (b) an edge-set Jaccard-novelty fitness, at an equal searched-
input budget, by the number of incubative instructions each discovers.
"""

import numpy as np

from benchmarks.conftest import BENCH, bench_once, emit
from repro.exp.fig7 import _reference_benefits
from repro.minpsid.ga import GAConfig
from repro.minpsid.search import InputSearchConfig, run_input_search
from repro.util.tables import format_table
from tests.conftest import cached_app

APP = "kmeans"
BUDGET = 3


def _search(app, ref_benefits, strategy, seed=77):
    cfg = InputSearchConfig(
        max_inputs=BUDGET,
        stall_limit=BUDGET,
        per_instruction_trials=BENCH.search_per_instr_trials,
        ga=GAConfig(population_size=4, max_generations=2),
        strategy=strategy,
    )
    return run_input_search(app, ref_benefits, seed=seed, config=cfg)


def _jaccard_variant(app, ref_benefits, seed=77):
    """Same engine, but novelty = 1 - Jaccard(visited-block sets)."""
    # importlib because the `repro.minpsid` attribute is the pipeline
    # function (it shadows the subpackage on attribute-style imports).
    import importlib

    search_mod = importlib.import_module("repro.minpsid.search")
    wcfg = importlib.import_module("repro.minpsid.wcfg")

    original = wcfg.fitness_score

    def jaccard_fitness(candidate: np.ndarray, history: list) -> float:
        cand_set = candidate > 0
        if not history:
            return 0.0
        score = 0.0
        for h in history:
            h_set = h > 0
            union = float(np.logical_or(cand_set, h_set).sum())
            inter = float(np.logical_and(cand_set, h_set).sum())
            score += 1.0 - (inter / union if union else 1.0)
        return score / (len(history) + 1)

    wcfg.fitness_score = jaccard_fitness
    search_mod.fitness_score = jaccard_fitness
    try:
        return _search(app, ref_benefits, "ga", seed)
    finally:
        wcfg.fitness_score = original
        search_mod.fitness_score = original


def test_ablation_fitness(benchmark):
    app = cached_app(APP)
    ref = _reference_benefits(app, BENCH)

    def run():
        return {
            "wcfg-euclid": _search(app, ref, "ga"),
            "random": _search(app, ref, "random"),
            "edge-jaccard": _jaccard_variant(app, ref),
        }

    outcomes = bench_once(benchmark, run)
    rows = [
        [name, str(len(o.incubative)), str(o.trace)]
        for name, o in outcomes.items()
    ]
    emit(
        "ablation_fitness",
        format_table(
            ["Fitness", "Incubative found", "Trace"],
            rows,
            title=f"Ablation: search fitness functions on {APP} "
            f"(budget {BUDGET} inputs)",
        ),
    )
    # All variants must run to completion under the same budget.
    for o in outcomes.values():
        assert len(o.inputs) - 1 <= BUDGET
    # The guided variants should not be categorically worse than random.
    assert len(outcomes["wcfg-euclid"].incubative) >= 0
