"""§VIII-A: duplicated dynamic-cycle fraction vs target protection level."""

from benchmarks.conftest import BENCH_FAST, bench_once, emit
from repro.exp.overhead import render_overhead, run_overhead_study, summarize_overhead

OVERHEAD_SCALE = BENCH_FAST.with_(protection_levels=(0.3, 0.7), eval_inputs=3)


def test_disc_overhead_variance(benchmark):
    base, hardened = bench_once(
        benchmark, lambda: run_overhead_study(OVERHEAD_SCALE)
    )
    rows = summarize_overhead(base) + summarize_overhead(hardened)
    emit("overhead", render_overhead(rows))
    assert rows
    for r in rows:
        # Paper shape: actual duplication falls short of the target level
        # and never exceeds the knapsack budget.
        assert r.mean_actual <= r.target_level + 1e-9
        assert r.shortfall >= 0.0
    # Higher targets duplicate more, per technique.
    for tech in ("sid", "minpsid"):
        tech_rows = sorted(
            (r for r in rows if r.technique == tech),
            key=lambda r: r.target_level,
        )
        if len(tech_rows) >= 2:
            assert tech_rows[0].mean_actual <= tech_rows[-1].mean_actual + 0.05
