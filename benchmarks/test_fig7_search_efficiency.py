"""Fig. 7: incubative instructions found — GA search vs random search."""

from benchmarks.conftest import BENCH, bench_once, emit
from repro.exp.fig7 import run_fig7_study
from repro.util.tables import format_table

APPS = ("pathfinder", "kmeans", "fft")
FIG7_SCALE = BENCH.with_(search_max_inputs=4)


def test_fig7_search_efficiency(benchmark):
    def run():
        return [run_fig7_study(app, FIG7_SCALE) for app in APPS]

    comparisons = bench_once(benchmark, run)
    rows = []
    for c in comparisons:
        rows.append(
            [
                c.app,
                str(c.ga_trace),
                str(c.random_trace),
                f"{c.ga_found} vs {c.random_found}",
                f"{100 * c.advantage:+.1f}%",
            ]
        )
    emit(
        "fig7",
        format_table(
            ["Benchmark", "GA trace", "Random trace", "Found (GA vs rnd)",
             "GA advantage"],
            rows,
            title="Fig. 7: cumulative incubative instructions vs #inputs",
        ),
    )
    # Paper shape: under an equal input budget the guided search finds at
    # least as many incubative instructions as blind sampling, on aggregate.
    total_ga = sum(c.ga_found for c in comparisons)
    total_rnd = sum(c.random_found for c in comparisons)
    assert total_ga >= total_rnd * 0.8
    # Traces are cumulative.
    for c in comparisons:
        assert c.ga_trace == sorted(c.ga_trace)
        assert c.random_trace == sorted(c.random_trace)
