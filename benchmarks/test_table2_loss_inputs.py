"""Table II: percentage of random coverage-loss inputs under baseline SID."""

from benchmarks.conftest import BENCH, bench_once, cached_fig2_study, emit
from repro.exp.report import render_loss_table


def test_table2_loss_inputs(benchmark):
    study = bench_once(benchmark, lambda: cached_fig2_study(BENCH))
    emit(
        "table2",
        render_loss_table(
            study, "Table II: Percentage of Random Coverage-loss Inputs (SID)"
        ),
    )
    for level in study.levels():
        avg = study.average_loss_fraction(level)
        assert 0.0 <= avg <= 1.0
        # The paper's headline: a non-trivial share of inputs lose coverage.
        assert avg > 0.0
