"""Table IV: coverage-loss input percentages in the case study."""

from benchmarks.conftest import bench_once, emit
from benchmarks.test_fig9_casestudy import cached_fig9
from repro.util.tables import format_percent, format_table


def test_table4_casestudy_loss(benchmark):
    base, hardened = bench_once(benchmark, cached_fig9)
    rows = []
    for app in ("bfs", "kmeans"):
        for study, label in ((base, "Baseline"), (hardened, "MINPSID")):
            row = [f"{app} ({label})"]
            for level in study.levels():
                r = study.by_app_level(app, level)
                row.append(format_percent(r.loss_input_fraction()))
            rows.append(row)
    levels = base.levels()
    emit(
        "table4",
        format_table(
            ["Benchmark"] + [f"{int(100 * l)}% Level" for l in levels],
            rows,
            title="Table IV: Coverage-loss inputs, real-world case study",
        ),
    )
    # Paper shape: MINPSID does not increase the fraction of loss inputs.
    for app in ("bfs", "kmeans"):
        for level in levels:
            b = base.by_app_level(app, level).loss_input_fraction()
            m = hardened.by_app_level(app, level).loss_input_fraction()
            assert m <= b + 0.35
