"""Fig. 3: exhibit a concrete incubative instruction in FFT."""

from benchmarks.conftest import BENCH, bench_once, emit
from repro.exp.fig3 import find_incubative_example

FIG3_SCALE = BENCH.with_(per_instr_trials=6, eval_inputs=4)


def test_fig3_example(benchmark):
    ex = bench_once(
        benchmark, lambda: find_incubative_example(FIG3_SCALE, app_name="fft")
    )
    emit("fig3", ex.render())
    # Paper shape: an instruction exists whose SDC probability is tiny under
    # the reference input but materially higher under another input.
    assert ex.swing > 0.1
    assert ex.ref_sdc_prob < 0.5
