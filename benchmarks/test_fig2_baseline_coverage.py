"""Fig. 2: SDC-coverage loss of the existing SID method across inputs."""

from benchmarks.conftest import BENCH, bench_once, cached_fig2_study, emit
from repro.exp.report import render_coverage_figure


def test_fig2_baseline_coverage(benchmark):
    study = bench_once(benchmark, lambda: cached_fig2_study(BENCH))
    emit(
        "fig2",
        render_coverage_figure(
            study,
            "Fig. 2: measured SDC coverage of baseline SID across inputs "
            "(E = expected coverage)",
        ),
    )
    # Paper shape: at least one benchmark misses its expected coverage on
    # some input (the loss-of-coverage phenomenon exists)...
    assert any(
        r.min_coverage() < r.expected_coverage - 1e-9
        for r in study.results
        if r.valid_measured()
    )
    # ...and every app produced coverage evidence on at least one input.
    assert all(r.valid_measured() for r in study.results)
