"""Ablation 2 (DESIGN.md §6): the re-prioritization rule.

max-observed benefit (the paper's rule) vs mean-observed vs no
re-prioritization at all, judged by minimum measured coverage across inputs.
"""

from benchmarks.conftest import BENCH, bench_once, emit
from repro.exp.fig6 import minpsid_config_for
from repro.exp.runner import evaluate_protection, generate_eval_inputs
from repro.minpsid.pipeline import minpsid
from repro.util.tables import format_table
from tests.conftest import cached_app
from dataclasses import replace

APP = "kmeans"
LEVEL = 0.5


def test_ablation_reprioritize(benchmark):
    app = cached_app(APP)
    inputs = generate_eval_inputs(app, 4, seed=BENCH.seed)
    base_cfg = minpsid_config_for(BENCH, LEVEL, APP)

    def run():
        out = {}
        variants = {
            "max (paper)": base_cfg,
            "mean": replace(base_cfg, reprioritize_rule="mean"),
            "none": replace(base_cfg, apply_reprioritization=False),
        }
        for name, cfg in variants.items():
            res = minpsid(app, cfg)
            ev = evaluate_protection(
                app, res.protected, res.expected_coverage,
                technique=name, protection_level=LEVEL,
                inputs=inputs, scale=BENCH,
            )
            out[name] = (res, ev)
        return out

    out = bench_once(benchmark, run)
    rows = [
        [
            name,
            f"{res.expected_coverage:.3f}",
            f"{ev.min_coverage():.3f}",
            f"{ev.loss_input_fraction():.2f}",
            str(len(res.selection.selected)),
        ]
        for name, (res, ev) in out.items()
    ]
    emit(
        "ablation_reprioritize",
        format_table(
            ["Rule", "Expected", "Min measured", "Loss frac", "#selected"],
            rows,
            title=f"Ablation: re-prioritization rules on {APP} @{LEVEL:.0%}",
        ),
    )
    # The paper's conservative max rule should not report a *higher*
    # expected coverage than the no-reprioritization variant.
    assert (
        out["max (paper)"][0].expected_coverage
        <= out["none"][0].expected_coverage + 1e-9
    )
