#!/usr/bin/env python3
"""Run the full evaluation harness and write results + reports to results/.

This is the top-level entry point for regenerating every table and figure of
the paper in one go (what the per-table benchmarks do piecewise):

    python scripts/run_experiments.py --scale tiny      # seconds-scale smoke
    python scripts/run_experiments.py --scale small     # minutes; EXPERIMENTS.md
    python scripts/run_experiments.py --scale full      # paper-shaped (hours)

Artifacts written to --out (default results/<scale>/):
  fig2.json/.txt, table2.txt, fig6.json/.txt, table3.txt, fig3.txt,
  fig7.txt, fig8.txt, fig9.txt, table4.txt, overhead.txt, fleet.txt,
  detectors.txt, mt_fft.txt, summary.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.cache.active import cache_scope
from repro.exp.config import FULL, SMALL, TINY, ScaleConfig
from repro.exp.fig2 import run_fig2_study
from repro.exp.fig3 import find_incubative_example
from repro.exp.fig6 import run_fig6_study
from repro.exp.fig7 import run_fig7_study
from repro.exp.fig8 import render_fig8, run_fig8_study
from repro.exp.fig9 import run_fig9_study
from repro.exp.figdetectors import render_figdetectors, run_figdetectors_study
from repro.exp.figfleet import render_figfleet, run_figfleet_study
from repro.exp.mt_fft import run_mt_fft_study
from repro.exp.overhead import render_overhead, summarize_overhead
from repro.exp.report import (
    render_comparison,
    render_coverage_figure,
    render_loss_table,
    render_table1,
)
from repro.exp.results import save_json
from repro.obs.core import session
from repro.obs.log import LEVELS, configure_logging, get_logger
from repro.util.tables import format_percent, format_table
from repro.vm.batch import engine_scope

SCALES = {"tiny": TINY, "small": SMALL, "full": FULL}

log = get_logger("scripts.run_experiments")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", choices=SCALES, default="tiny")
    ap.add_argument("--out", type=Path, default=None)
    ap.add_argument("--workers", type=int, default=None,
                    help="FI process fan-out (default: REPRO_WORKERS env "
                    "or serial)")
    ap.add_argument("--checkpoint-interval", default=None, metavar="N|auto",
                    help="checkpoint-resume FI trials ('auto' or a step "
                    "count; default: cold replay)")
    ap.add_argument("--max-retries", type=int, default=None, metavar="N",
                    help="retries per failed worker chunk before a harness "
                    "failure surfaces (default: REPRO_MAX_RETRIES env, "
                    "else 2)")
    ap.add_argument("--task-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="per-chunk wall-clock deadline for hung-worker "
                    "detection (default: REPRO_TASK_TIMEOUT env, else off)")
    ap.add_argument("--engine", choices=("scalar", "batch"), default=None,
                    help="FI trial executor: 'batch' vectorizes trials in "
                    "lockstep (bit-identical outcomes, much faster; "
                    "default: REPRO_ENGINE env, else scalar)")
    ap.add_argument("--batch-size", type=int, default=None, metavar="N",
                    help="trials per lockstep batch with --engine=batch "
                    "(default: REPRO_BATCH_SIZE env, else engine default)")
    ap.add_argument("--cache-dir", metavar="PATH", default=None,
                    help="reuse bit-identical campaign results persisted "
                    "under PATH (default: REPRO_CACHE_DIR env, else no "
                    "caching); re-running an unchanged scale dispatches "
                    "zero campaigns")
    ap.add_argument("--no-cache", action="store_true",
                    help="recompute every campaign, ignoring any "
                    "configured cache")
    ap.add_argument("--apps", nargs="*", default=None,
                    help="restrict to these benchmarks")
    ap.add_argument("--skip", nargs="*", default=[],
                    help="experiment ids to skip (fig7 fig8 fig9 fleet "
                    "detectors mt ...)")
    ap.add_argument("-v", "--verbose", action="count", default=0,
                    help="diagnostic logging to stderr (-v info, -vv debug)")
    ap.add_argument("--log-level", choices=LEVELS, default=None,
                    help="explicit log level (overrides -v)")
    ap.add_argument("--trace", metavar="PATH", default=None,
                    help="record a JSONL telemetry trace to PATH")
    ap.add_argument("--progress", action="store_true",
                    help="print campaign heartbeat lines to stderr")
    args = ap.parse_args(argv)
    configure_logging(verbose=args.verbose, log_level=args.log_level)

    if args.trace or args.progress:
        with session(trace=args.trace, progress=args.progress):
            rc = _run(args)
        if args.trace:
            log.info("telemetry trace written to %s", args.trace)
        return rc
    return _run(args)


def _run(args) -> int:
    interval = args.checkpoint_interval
    if interval is not None and interval != "auto":
        interval = int(interval)
    scale: ScaleConfig = SCALES[args.scale].with_(
        workers=args.workers, checkpoint_interval=interval,
        max_retries=args.max_retries, task_timeout=args.task_timeout,
        engine=args.engine, batch_size=args.batch_size,
    )
    if args.apps:
        scale = scale.with_(apps=tuple(args.apps))
    # The installed scopes are ambient for every driver below; --no-cache
    # installs the disabled sentinel, which also beats REPRO_CACHE_DIR,
    # and the engine scope routes every nested campaign through
    # --engine/--batch-size without per-study parameter threading.
    cache_spec = False if args.no_cache else args.cache_dir
    with cache_scope(cache_spec) as store, engine_scope(
        scale.engine, scale.batch_size
    ):
        if store is not None:
            log.info("campaign cache: %s", store.root)
        return _run_experiments(args, scale)


def _run_experiments(args, scale: ScaleConfig) -> int:
    out = args.out or Path("results") / scale.name
    out.mkdir(parents=True, exist_ok=True)
    t_start = time.time()
    failures: list[tuple[str, BaseException]] = []

    def write(name: str, text: str) -> None:
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"[{time.time() - t_start:7.1f}s] wrote {out / name}.txt")

    def step(name: str, fn):
        """Run one experiment, isolating its failure from the batch.

        A study that dies — harness exhaustion, a toolchain bug — is
        logged and recorded; the remaining figures still run and the
        process exits nonzero with a failure summary at the end.
        """
        try:
            return fn()
        except Exception as exc:  # noqa: BLE001 - isolation point by design
            log.error("experiment %s failed: %s: %s",
                      name, type(exc).__name__, exc)
            failures.append((name, exc))
            return None

    step("table1", lambda: write("table1", render_table1()))

    # Fig. 2 / Table II (baseline SID) with §VIII-A duplication measurement.
    def _fig2():
        base = run_fig2_study(scale, measure_duplication=True)
        save_json(out / "fig2.json", base.to_dict())
        write("fig2", render_coverage_figure(
            base,
            "Fig. 2: baseline SID coverage across inputs (E = expected)"))
        write("table2", render_loss_table(
            base, "Table II: % coverage-loss inputs (baseline SID)"))
        return base

    base = step("fig2", _fig2)

    # Fig. 6 / Table III (MINPSID).
    def _fig6():
        hardened = run_fig6_study(scale, measure_duplication=True)
        save_json(out / "fig6.json", hardened.to_dict())
        fig6 = render_coverage_figure(
            hardened, "Fig. 6: MINPSID coverage across inputs (E = expected)")
        if base is not None:
            fig6 += "\n\n" + render_comparison(base, hardened,
                                               "SID vs MINPSID")
        write("fig6", fig6)
        write("table3", render_loss_table(
            hardened, "Table III: % coverage-loss inputs (MINPSID)"))
        return hardened

    hardened = step("fig6", _fig6)

    # §VIII-A overhead variance (derived from the two studies above).
    if base is not None and hardened is not None:
        step("overhead", lambda: write("overhead", render_overhead(
            summarize_overhead(base) + summarize_overhead(hardened))))

    if "fig3" not in args.skip:
        step("fig3", lambda: write(
            "fig3", find_incubative_example(scale, app_name="fft").render()))

    if "fig7" not in args.skip:
        def _fig7():
            apps7 = scale.apps or ("pathfinder", "kmeans", "fft", "knn")
            rows = []
            for app in apps7:
                c = run_fig7_study(app, scale)
                rows.append([app, str(c.ga_found), str(c.random_found),
                             f"{100 * c.advantage:+.1f}%"])
            write("fig7", format_table(
                ["Benchmark", "GA found", "Random found", "Advantage"], rows,
                title="Fig. 7: incubative instructions found at equal "
                "budget"))

        step("fig7", _fig7)

    if "fig8" not in args.skip:
        def _fig8():
            apps8 = list(
                scale.apps or ("pathfinder", "knn", "xsbench", "kmeans"))
            write("fig8", render_fig8(run_fig8_study(apps8, scale)))

        step("fig8", _fig8)

    if "fig9" not in args.skip:
        def _fig9():
            b9, h9 = run_fig9_study(scale)
            write("fig9", render_coverage_figure(b9, "Fig. 9 baseline")
                  + "\n" + render_coverage_figure(h9, "Fig. 9 MINPSID")
                  + "\n\n" + render_comparison(b9, h9, "Case-study summary"))
            rows = []
            for app in ("bfs", "kmeans"):
                for study, label in ((b9, "Baseline"), (h9, "MINPSID")):
                    rows.append(
                        [f"{app} ({label})"]
                        + [format_percent(
                            study.by_app_level(app, l).loss_input_fraction())
                           for l in study.levels()]
                    )
            write("table4", format_table(
                ["Benchmark"] + [f"{int(100 * l)}%" for l in b9.levels()],
                rows, title="Table IV: case-study coverage-loss inputs"))

        step("fig9", _fig9)

    if "fleet" not in args.skip:
        def _fleet():
            write("fleet", render_figfleet(run_figfleet_study(scale)))

        step("fleet", _fleet)

    if "detectors" not in args.skip:
        def _detectors():
            write("detectors", render_figdetectors(
                run_figdetectors_study(scale)))

        step("detectors", _detectors)

    if "mt" not in args.skip:
        def _mt():
            rows = run_mt_fft_study(scale)
            write("mt_fft", format_table(
                ["Threads", "SID loss", "MINPSID loss"],
                [[str(r.threads), format_percent(r.sid_loss),
                  format_percent(r.minpsid_loss)] for r in rows],
                title="Sec. VIII-B: multithreaded FFT"))

        step("mt", _mt)

    # Summary.
    def _summary():
        lines = [f"scale={scale.name}, wall={time.time() - t_start:.0f}s", ""]
        for level in base.levels():
            lines.append(
                f"level {level:.0%}: loss-input fraction "
                f"SID {base.average_loss_fraction(level):.1%} vs "
                f"MINPSID {hardened.average_loss_fraction(level):.1%}"
            )
        base_min = (sum(r.min_coverage() for r in base.results)
                    / len(base.results))
        hard_min = (sum(r.min_coverage() for r in hardened.results)
                    / len(hardened.results))
        lines.append(f"mean minimum coverage: SID {base_min:.1%} "
                     f"vs MINPSID {hard_min:.1%}")
        write("summary", "\n".join(lines))
        print("\n".join(lines))

    if base is not None and hardened is not None:
        step("summary", _summary)

    if failures:
        print(f"\n{len(failures)} experiment(s) failed:", file=sys.stderr)
        for name, exc in failures:
            print(f"  {name}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
