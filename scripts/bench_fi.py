#!/usr/bin/env python3
"""Standalone FI-throughput bench: cold vs. checkpoint-resumed campaigns.

Runs the same seeded whole-program campaign through both engines, prints an
injections/sec table, and writes a JSON record (the same shape the perf
bench persists to ``benchmarks/out/BENCH_fi_throughput.json``):

    PYTHONPATH=src python scripts/bench_fi.py --apps needle hpccg
    PYTHONPATH=src python scripts/bench_fi.py --all --faults 500 --workers 4
    PYTHONPATH=src python scripts/bench_fi.py --apps needle --interval 128
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps import all_app_names
from repro.fi.throughput import measure_fi_throughput
from repro.util.benchmeta import append_history, bench_record
from repro.util.tables import format_table


def _bench_name(out_path) -> str:
    """History-series name of an --out path: BENCH_fi.json -> fi."""
    stem = out_path.stem
    return stem[6:] if stem.startswith("BENCH_") else stem


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--apps", nargs="*", default=["needle"],
                    choices=all_app_names(), metavar="APP",
                    help="benchmarks to measure (default: needle)")
    ap.add_argument("--all", action="store_true",
                    help="measure every registered benchmark")
    ap.add_argument("--faults", type=int, default=200,
                    help="whole-program faults per campaign")
    ap.add_argument("--seed", type=int, default=2022)
    ap.add_argument("--interval", default="auto", metavar="N|auto",
                    help="checkpoint interval in dynamic instructions")
    ap.add_argument("--workers", type=int, default=0,
                    help="process fan-out for the checkpointed campaign")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per engine; best run is reported")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the JSON record here")
    args = ap.parse_args(argv)

    interval = args.interval if args.interval == "auto" else int(args.interval)
    apps = all_app_names() if args.all else args.apps
    reports = {}
    rows = []
    for name in apps:
        r = measure_fi_throughput(
            name,
            n_faults=args.faults,
            seed=args.seed,
            checkpoint_interval=interval,
            workers=args.workers,
            repeats=args.repeats,
        )
        reports[name] = r
        rows.append([
            r.app,
            str(r.golden_steps),
            str(r.checkpoint_interval),
            f"{r.cold_injections_per_sec:8.1f}",
            f"{r.checkpointed_injections_per_sec:8.1f}",
            f"{r.speedup:5.2f}x",
            "yes" if r.identical else "NO",
        ])
        print(f"{name}: {r.speedup:.2f}x", file=sys.stderr)

    print(format_table(
        ["App", "Steps", "Interval", "Cold inj/s", "Ckpt inj/s",
         "Speedup", "Identical"],
        rows,
        title=f"FI throughput, {args.faults}-fault campaigns "
        f"(workers={args.workers})",
    ))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        record = bench_record(
            {name: r.to_dict() for name, r in reports.items()}
        )
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        append_history(_bench_name(args.out), record)
        print(f"wrote {args.out}")
    return 0 if all(r.identical for r in reports.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
