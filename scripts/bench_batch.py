#!/usr/bin/env python3
"""Standalone batch-engine bench: scalar vs. lockstep-vectorized trials.

Times one seeded cold fault list through ``inject_one`` and through
``run_trials_lockstep``, prints an injections/sec table with detach-rate
and lockstep-occupancy stats, and writes a JSON record (the same shape the
perf bench persists to ``benchmarks/out/BENCH_batch.json``):

    PYTHONPATH=src python scripts/bench_batch.py --apps needle hpccg
    PYTHONPATH=src python scripts/bench_batch.py --all --faults 2048
    PYTHONPATH=src python scripts/bench_batch.py --apps needle --batch-size 256
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps import all_app_names
from repro.fi.throughput import measure_batch_throughput
from repro.util.benchmeta import append_history, bench_record
from repro.util.tables import format_table


def _bench_name(out_path) -> str:
    """History-series name of an --out path: BENCH_fi.json -> fi."""
    stem = out_path.stem
    return stem[6:] if stem.startswith("BENCH_") else stem


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--apps", nargs="*", default=["needle"],
                    choices=all_app_names(), metavar="APP",
                    help="benchmarks to measure (default: needle)")
    ap.add_argument("--all", action="store_true",
                    help="measure every registered benchmark")
    ap.add_argument("--faults", type=int, default=1024,
                    help="faults in the seeded campaign list")
    ap.add_argument("--seed", type=int, default=2022)
    ap.add_argument("--batch-size", type=int, default=None, metavar="N",
                    help="trials per lockstep batch (default: engine default)")
    ap.add_argument("--repeats", type=int, default=2,
                    help="scalar timing repeats; best run is reported")
    ap.add_argument("--batch-repeats", type=int, default=8,
                    help="batch timing repeats (cheap; best run is reported)")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the JSON record here")
    args = ap.parse_args(argv)

    apps = all_app_names() if args.all else args.apps
    reports = {}
    rows = []
    for name in apps:
        r = measure_batch_throughput(
            name,
            n_faults=args.faults,
            seed=args.seed,
            batch_size=args.batch_size,
            repeats=args.repeats,
            batch_repeats=args.batch_repeats,
        )
        reports[name] = r
        rows.append([
            r.app,
            str(r.golden_steps),
            f"{r.scalar_injections_per_sec:8.1f}",
            f"{r.batch_injections_per_sec:8.1f}",
            f"{r.speedup:5.1f}x",
            f"{100 * r.detach_rate:5.1f}%",
            f"{100 * r.lockstep_occupancy:6.2f}%",
            "yes" if r.identical else "NO",
        ])
        print(f"{name}: {r.speedup:.1f}x", file=sys.stderr)

    print(format_table(
        ["App", "Steps", "Scalar inj/s", "Batch inj/s", "Speedup",
         "Detach", "Occupancy", "Identical"],
        rows,
        title=f"Batch-engine throughput, {args.faults}-fault cold campaigns "
        f"(batch size {args.batch_size or 'default'})",
    ))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        record = bench_record(
            {name: r.to_dict() for name, r in reports.items()}
        )
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        append_history(_bench_name(args.out), record)
        print(f"wrote {args.out}")
    return 0 if all(r.identical for r in reports.values()) else 1


if __name__ == "__main__":
    sys.exit(main())
