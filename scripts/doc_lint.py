#!/usr/bin/env python3
"""Documentation lint for the library and its CLI.

    python scripts/doc_lint.py

Checks three invariants that keep the codebase navigable:

* every public module under ``src/repro`` (any ``.py`` whose name does not
  start with a single underscore, plus package ``__init__``/``__main__``
  files) opens with a module docstring;
* every CLI subcommand reachable from ``repro.cli.build_parser`` — at any
  nesting depth (``obs report``, ``cache stats``, …) — registers help text;
* the message table in ``docs/FABRIC.md`` (between the
  ``protocol-registry`` markers) matches the normative registry in
  ``repro.fabric.protocol.MESSAGES`` — same names, opcodes, directions,
  same order — so the written wire-protocol spec cannot drift from the
  implementation.

Exits non-zero and lists the offenders if any check fails; CI runs it next
to ``trace_lint.py`` so undocumented modules and silent subcommands are
caught at the source.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
sys.path.insert(0, str(SRC))


def is_public_module(path: Path) -> bool:
    """Modules the docstring rule applies to."""
    name = path.stem
    if name in ("__init__", "__main__"):
        return True
    return not name.startswith("_")


def lint_module_docstrings(package_root: Path) -> list[str]:
    """Paths (repo-relative) of public modules missing a module docstring."""
    problems = []
    for path in sorted(package_root.rglob("*.py")):
        if not is_public_module(path):
            continue
        try:
            tree = ast.parse(path.read_text())
        except SyntaxError as e:
            problems.append(f"{path.relative_to(ROOT)}: does not parse ({e})")
            continue
        if not ast.get_docstring(tree):
            problems.append(
                f"{path.relative_to(ROOT)}: missing module docstring"
            )
    return problems


def _walk_subcommands(parser: argparse.ArgumentParser, prefix: str):
    """Yield (qualified name, help text or None) for every subcommand."""
    for action in parser._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        helps = {c.dest: c.help for c in action._choices_actions}
        # Aliases (``fi`` for ``inject``) map to the same parser object as
        # the canonical name; credit them with the canonical help text.
        by_parser = {
            id(sub): helps[name]
            for name, sub in action.choices.items()
            if helps.get(name)
        }
        for name, sub in action.choices.items():
            qual = f"{prefix} {name}".strip()
            yield qual, helps.get(name) or by_parser.get(id(sub))
            yield from _walk_subcommands(sub, qual)


def lint_cli_help() -> list[str]:
    """Subcommands registered without help text."""
    from repro.cli import build_parser

    seen = {}
    for qual, help_text in _walk_subcommands(build_parser(), ""):
        seen.setdefault(qual, help_text)
    return [
        f"repro {qual}: subcommand registered without help text"
        for qual, help_text in sorted(seen.items())
        if not help_text
    ]


def _spec_table_rows(text: str) -> list[tuple[str, int, str]] | None:
    """Parse (name, opcode, direction) rows from FABRIC.md's marked table.

    Returns ``None`` when the markers are missing entirely (reported as its
    own problem). Separator and header rows are skipped; an unparsable
    opcode cell surfaces as a row with opcode ``-1`` so the comparison
    against the registry reports it.
    """
    begin = "<!-- protocol-registry:begin -->"
    end = "<!-- protocol-registry:end -->"
    if begin not in text or end not in text:
        return None
    section = text.split(begin, 1)[1].split(end, 1)[0]
    rows = []
    for line in section.splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if len(cells) < 3 or set(cells[0]) <= {"-"} or cells[0] == "Message":
            continue
        try:
            opcode = int(cells[1], 16)
        except ValueError:
            opcode = -1
        rows.append((cells[0].strip("`"), opcode, cells[2]))
    return rows


def lint_fabric_spec() -> list[str]:
    """docs/FABRIC.md message-table drift against the protocol registry."""
    from repro.fabric.protocol import MESSAGES

    spec_path = ROOT / "docs" / "FABRIC.md"
    if not spec_path.exists():
        return ["docs/FABRIC.md: missing (the wire protocol is unspecified)"]
    rows = _spec_table_rows(spec_path.read_text())
    if rows is None:
        return [
            "docs/FABRIC.md: protocol-registry markers not found "
            "(<!-- protocol-registry:begin/end -->)"
        ]
    want = [(m.name, m.opcode, m.direction) for m in MESSAGES]
    if rows == want:
        return []
    problems = []
    documented = {r[0]: r for r in rows}
    registered = {w[0]: w for w in want}
    for name, row in sorted(documented.items()):
        if name not in registered:
            problems.append(
                f"docs/FABRIC.md: documents unregistered message {name!r}"
            )
        elif row != registered[name]:
            problems.append(
                f"docs/FABRIC.md: {name} documented as "
                f"(0x{row[1]:02x}, {row[2]!r}) but registered as "
                f"(0x{registered[name][1]:02x}, {registered[name][2]!r})"
            )
    for name in sorted(registered.keys() - documented.keys()):
        problems.append(
            f"docs/FABRIC.md: registered message {name} is undocumented"
        )
    if not problems:  # same set, different order
        problems.append(
            "docs/FABRIC.md: message table order differs from the registry"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.parse_args(argv)

    problems = (
        lint_module_docstrings(SRC / "repro")
        + lint_cli_help()
        + lint_fabric_spec()
    )
    if problems:
        print(f"doc lint: {len(problems)} problem(s)")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("doc lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
