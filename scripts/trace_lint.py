#!/usr/bin/env python3
"""Validate a JSONL telemetry trace against the repro.obs schema.

    python scripts/trace_lint.py out.jsonl [more.jsonl ...]

Checks every line parses as JSON, every record has exactly the schema's
keys/kinds, the trace opens with a ``trace.meta`` record carrying a known
schema version, carries a single run id, and (unless ``--partial``) closes
with a ``trace.summary``. Exits non-zero and lists the problems if any check
fails — CI runs this on a freshly generated trace so schema drift is caught
at the source.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.schema import lint_trace  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("traces", nargs="+", help="JSONL trace files to validate")
    ap.add_argument(
        "--partial", action="store_true",
        help="allow traces without a closing trace.summary (crashed runs)",
    )
    args = ap.parse_args(argv)

    failed = 0
    for path in args.traces:
        problems = lint_trace(path, require_summary=not args.partial)
        if problems:
            failed += 1
            print(f"{path}: {len(problems)} problem(s)")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
