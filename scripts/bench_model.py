#!/usr/bin/env python3
"""Standalone model-speedup bench: static prediction vs. FI campaign.

Builds the same cost/benefit profile through ``source="model"`` and
``source="fi"``, prints a wall-clock and rank-agreement table, and writes a
JSON record (the same shape the perf bench persists to
``benchmarks/out/BENCH_model.json``):

    PYTHONPATH=src python scripts/bench_model.py --apps needle hpccg
    PYTHONPATH=src python scripts/bench_model.py --all --trials 20
    PYTHONPATH=src python scripts/bench_model.py --apps knn --out knn.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.bench import measure_model_speedup
from repro.apps import all_app_names
from repro.util.benchmeta import append_history, bench_record
from repro.util.tables import format_table


def _bench_name(out_path) -> str:
    """History-series name of an --out path: BENCH_fi.json -> fi."""
    stem = out_path.stem
    return stem[6:] if stem.startswith("BENCH_") else stem


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--apps", nargs="*", default=["needle"],
                    choices=all_app_names(), metavar="APP",
                    help="benchmarks to measure (default: needle)")
    ap.add_argument("--all", action="store_true",
                    help="measure every registered benchmark")
    ap.add_argument("--trials", type=int, default=12,
                    help="FI trials per instruction on the campaign side")
    ap.add_argument("--seed", type=int, default=2022)
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per side; best run is reported")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the JSON record here")
    args = ap.parse_args(argv)

    apps = all_app_names() if args.all else args.apps
    reports = {}
    rows = []
    for name in apps:
        r = measure_model_speedup(
            name,
            trials_per_instruction=args.trials,
            seed=args.seed,
            repeats=args.repeats,
        )
        reports[name] = r
        rows.append([
            r.app,
            str(r.n_instructions),
            str(r.fi_trials),
            f"{r.fi_seconds:8.3f}s",
            f"{r.model_seconds * 1e3:8.2f}ms",
            f"{r.speedup:7.1f}x",
            f"{r.spearman:+.3f}",
        ])
    print(format_table(
        ["App", "Instrs", "FI trials", "FI", "Model", "Speedup", "Spearman"],
        rows,
        title=(
            f"Profile build: static model vs. {args.trials}-trial "
            "per-instruction FI campaign (serial, cache off)"
        ),
    ))
    if args.out:
        record = bench_record(
            {name: r.to_dict() for name, r in reports.items()}
        )
        args.out.write_text(json.dumps(record, indent=2) + "\n")
        append_history(_bench_name(args.out), record)
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
