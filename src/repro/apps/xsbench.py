"""XSBench (CESAR): the macroscopic cross-section lookup kernel of Monte
Carlo neutronics.

Each lookup draws a pseudo-random energy (an in-IR LCG, seeded by an input
argument — deterministic per input, as required for golden-run FI), binary
searches the unionized energy grid, and accumulates linearly interpolated
micro cross-sections over all nuclides. The binary search's branch pattern
follows the sampled energies, which is why XSBench shows large coverage loss
across inputs in the paper.
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID

MAX_GRID = 96
MAX_NUCLIDES = 8

# LCG constants (numerical recipes), computed modulo 2^63 inside the IR.
LCG_A = 6364136223846793005
LCG_C = 1442695040888963407
LCG_MASK = (1 << 62) - 1


@register_app
class XsbenchApp(App):
    name = "xsbench"
    suite = "CESAR"
    description = "Key computational kernel of the Monte Carlo neutronics application"
    rel_tol = 1e-9
    abs_tol = 1e-12

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("n_grid", "int", 16, 64),
                ArgSpec("n_nuclides", "int", 2, 8),
                ArgSpec("lookups", "int", 8, 32),
                ArgSpec("xs_scale", "float", 0.1, 10.0),
                ArgSpec("seed", "int", 1, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {
            "n_grid": 32, "n_nuclides": 4, "lookups": 16,
            "xs_scale": 1.0, "seed": 97,
        }

    def encode(self, inp):
        g, nuc = int(inp["n_grid"]), int(inp["n_nuclides"])
        scale = float(inp["xs_scale"])
        rng = self.data_rng(inp, g, nuc)
        # Sorted unionized energy grid in (0, 1).
        egrid = sorted(rng.uniform(1e-6, 1.0) for _ in range(g))
        xs = [rng.uniform(0.0, scale) for _ in range(nuc * g)]
        return (
            [g, nuc, int(inp["lookups"]), int(inp["seed"])],
            {"egrid": egrid, "xs": xs},
        )

    def build_module(self) -> Module:
        m = Module("xsbench")
        egrid = m.add_global("egrid", F64, MAX_GRID)
        xs = m.add_global("xs", F64, MAX_NUCLIDES * MAX_GRID)

        b = Builder.new_function(
            m, "main",
            [("g", I64), ("nuc", I64), ("lookups", I64), ("seed", I64)],
            VOID,
        )
        g = b.function.arg("g")
        nuc = b.function.arg("nuc")
        lookups = b.function.arg("lookups")
        seed0 = b.function.arg("seed")

        state = b.local(I64, seed0, hint="lcg")
        one = b.i64(1)
        total = b.local(F64, b.f64(0.0), hint="total")

        with b.for_loop(b.i64(0), lookups, hint="lk") as _:
            # LCG advance; energy = (state & MASK) / 2^62, always in [0, 1).
            s = b.get(state, I64)
            s2 = b.add(b.mul(s, b.i64(LCG_A)), b.i64(LCG_C))
            b.set(state, s2)
            frac = b.and_(s2, b.i64(LCG_MASK))
            e = b.fmul(b.sitofp(frac, F64), b.f64(1.0 / float(1 << 62)))

            # Binary search for the interval [egrid[lo], egrid[lo+1]] with
            # clamping to the grid's interior.
            lo = b.local(I64, b.i64(0), hint="lo")
            hi = b.local(I64, b.sub(g, one), hint="hi")

            def searching():
                l = b.get(lo, I64)
                h = b.get(hi, I64)
                return b.icmp("slt", b.add(l, one), h)

            with b.while_loop(searching, hint="bsearch"):
                l = b.get(lo, I64)
                h = b.get(hi, I64)
                mid = b.sdiv(b.add(l, h), b.i64(2))
                ev = b.load(b.gep(egrid, mid), F64)
                below = b.fcmp("olt", ev, e)
                with b.if_then_else(below, hint="half") as otherwise:
                    b.set(lo, mid)
                    otherwise()
                    b.set(hi, mid)

            l = b.get(lo, I64)
            e0 = b.load(b.gep(egrid, l), F64)
            e1 = b.load(b.gep(egrid, b.add(l, one)), F64)
            width = b.fsub(e1, e0)
            # Clamp the interpolation factor into [0, 1]; energies can fall
            # outside the grid's span.
            raw_f = b.fdiv(b.fsub(e, e0), width)
            f_lo = b.fcmp("olt", raw_f, b.f64(0.0))
            f1 = b.select(f_lo, b.f64(0.0), raw_f)
            f_hi = b.fcmp("ogt", f1, b.f64(1.0))
            f = b.select(f_hi, b.f64(1.0), f1)

            # Accumulate interpolated micro XS across all nuclides.
            macro = b.local(F64, b.f64(0.0), hint="macro")
            with b.for_loop(b.i64(0), nuc, hint="nu") as nidx:
                base = b.mul(nidx, g)
                x0 = b.load(b.gep(xs, b.add(base, l)), F64)
                x1 = b.load(b.gep(xs, b.add(base, b.add(l, one))), F64)
                interp = b.fadd(x0, b.fmul(f, b.fsub(x1, x0)))
                b.set(macro, b.fadd(b.get(macro, F64), interp))
            mac = b.get(macro, F64)
            b.emit_output(mac)
            b.set(total, b.fadd(b.get(total, F64), mac))

        b.emit_output(b.get(total, F64))
        b.ret()
        return m
