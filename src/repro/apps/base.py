"""Application base classes: input specifications and the App interface.

An input is a flat ``dict`` of named scalar arguments. Structured data
(grids, graphs, point sets) is derived *deterministically* from scalar
arguments — typically a ``seed`` argument plus sizes — by the app's
:meth:`App.encode`, which turns an input into interpreter arguments and
global-array bindings. This is exactly the shape the paper's input mutation
assumes: "randomly select one argument … if numerical, modify the value with
a random number between ±10% of the current value; if non-numerical,
randomly enumerate a possible value" (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError
from repro.ir.module import Module
from repro.util.rng import RngStream
from repro.vm.interpreter import Program

__all__ = ["ArgSpec", "InputSpec", "App"]

Input = dict  # name -> scalar value


@dataclass(frozen=True)
class ArgSpec:
    """One input argument: its type, domain, and generation rule."""

    name: str
    kind: str  # "int" | "float" | "choice"
    lo: float = 0.0
    hi: float = 1.0
    choices: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float", "choice"):
            raise ConfigError(f"unknown arg kind {self.kind!r}")
        if self.kind == "choice" and not self.choices:
            raise ConfigError(f"choice arg {self.name!r} needs choices")
        if self.kind in ("int", "float") and self.lo > self.hi:
            raise ConfigError(f"arg {self.name!r}: lo > hi")

    # ------------------------------------------------------------------
    def random(self, rng: RngStream):
        """A uniform random value from the argument's domain."""
        if self.kind == "int":
            return rng.randint(int(self.lo), int(self.hi))
        if self.kind == "float":
            return rng.uniform(self.lo, self.hi)
        return rng.choice(self.choices)

    def mutate(self, value, rng: RngStream):
        """The paper's mutation: ±10% for numeric, re-enumerate otherwise."""
        if self.kind == "choice":
            return rng.choice(self.choices)
        if self.kind == "float":
            delta = abs(value) * 0.1
            if delta == 0.0:
                delta = (self.hi - self.lo) * 0.05 or 1.0
            return self.clamp(value + rng.uniform(-delta, delta))
        # int: ±10%, but always move by at least 1 so small values mutate.
        delta = max(1, int(round(abs(value) * 0.1)))
        step = rng.randint(-delta, delta)
        if step == 0:
            step = rng.choice((-1, 1))
        return self.clamp(value + step)

    def clamp(self, value):
        """Project a value back into the argument's domain."""
        if self.kind == "choice":
            return value if value in self.choices else self.choices[0]
        if self.kind == "int":
            return int(min(int(self.hi), max(int(self.lo), int(round(value)))))
        return float(min(self.hi, max(self.lo, float(value))))


@dataclass(frozen=True)
class InputSpec:
    """The full argument list of an application."""

    args: tuple[ArgSpec, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.args]
        if len(names) != len(set(names)):
            raise ConfigError(f"duplicate argument names: {names}")

    def by_name(self, name: str) -> ArgSpec:
        for a in self.args:
            if a.name == name:
                return a
        raise ConfigError(f"no argument {name!r}")

    def random(self, rng: RngStream) -> Input:
        """Draw a whole random input (the paper's random-input generator)."""
        return {a.name: a.random(rng) for a in self.args}

    def mutate(self, inp: Input, rng: RngStream) -> Input:
        """Mutate one randomly chosen argument (GA mutation operator)."""
        out = dict(inp)
        spec = rng.choice(self.args)
        out[spec.name] = spec.mutate(inp[spec.name], rng)
        return out

    def crossover(self, a: Input, b: Input, rng: RngStream) -> tuple[Input, Input]:
        """Swap one randomly chosen argument between two inputs."""
        a2, b2 = dict(a), dict(b)
        spec = rng.choice(self.args)
        a2[spec.name], b2[spec.name] = b[spec.name], a[spec.name]
        return a2, b2

    def validate(self, inp: Input) -> Input:
        """Clamp every argument into its domain (defensive normalization)."""
        return {a.name: a.clamp(inp[a.name]) for a in self.args}


class App:
    """Base class of the 11 benchmark applications.

    Subclasses define :attr:`name`, :attr:`suite`, :attr:`description`,
    :attr:`input_spec`, :attr:`reference_input`, the IR in
    :meth:`build_module` and the input encoding in :meth:`encode`.
    """

    name: str = ""
    suite: str = ""
    description: str = ""
    #: Relative/absolute tolerance of the output comparator (SDC criterion).
    rel_tol: float = 1e-9
    abs_tol: float = 1e-12

    def __init__(self) -> None:
        self._module: Module | None = None
        self._program: Program | None = None

    # -- to implement -----------------------------------------------------
    @property
    def input_spec(self) -> InputSpec:
        raise NotImplementedError

    @property
    def reference_input(self) -> Input:
        raise NotImplementedError

    def build_module(self) -> Module:
        """Construct the app's IR module (called once, then cached)."""
        raise NotImplementedError

    def encode(self, inp: Input) -> tuple[list, dict[str, list]]:
        """Turn an input dict into (@main args, global bindings)."""
        raise NotImplementedError

    # -- provided ----------------------------------------------------------
    @property
    def module(self) -> Module:
        if self._module is None:
            m = self.build_module()
            if not m.finalized:
                m.finalize()
            self._module = m
        return self._module

    @property
    def program(self) -> Program:
        if self._program is None:
            self._program = Program(self.module)
        return self._program

    def random_input(self, rng: RngStream) -> Input:
        return self.input_spec.random(rng)

    def run_reference(self):
        """Golden run on the reference input (convenience for tests)."""
        args, bindings = self.encode(self.reference_input)
        return self.program.run(args=args, bindings=bindings)

    def data_rng(self, inp: Input, *labels) -> RngStream:
        """Deterministic RNG for dataset synthesis from the input's seed."""
        seed = int(inp.get("seed", 0))
        return RngStream(seed, self.name, *labels)

    def __repr__(self) -> str:
        return f"<App {self.name} ({self.suite})>"
