"""Kmeans (Rodinia): Lloyd iterations over a 2-D point set.

Assignment scans (nearest-centroid fcmp chains) and centroid updates with an
empty-cluster guard. Cluster geometry controls which comparisons are tight,
making per-instruction SDC probability swing hard across inputs — Kmeans is
the paper's most extreme coverage-loss case (0%–100% measured coverage).
It is also one of the two §VII case-study apps (Kaggle clustering datasets).
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID

MAX_N = 128
MAX_K = 8


@register_app
class KmeansApp(App):
    name = "kmeans"
    suite = "Rodinia"
    description = "A clustering algorithm used extensively in data-mining and elsewhere"
    rel_tol = 1e-9
    abs_tol = 1e-12

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("n", "int", 16, 96),
                ArgSpec("k", "int", 2, 6),
                ArgSpec("iters", "int", 2, 6),
                ArgSpec("spread", "float", 0.5, 10.0),
                ArgSpec("sep", "float", 0.0, 20.0),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {
            "n": 48, "k": 3, "iters": 4, "spread": 2.0, "sep": 8.0, "seed": 13,
        }

    def encode(self, inp):
        n, k = int(inp["n"]), int(inp["k"])
        spread, sep = float(inp["spread"]), float(inp["sep"])
        rng = self.data_rng(inp, n, k)
        # Gaussian blobs around k well-separated centres.
        centres = [
            (rng.uniform(-sep, sep), rng.uniform(-sep, sep)) for _ in range(k)
        ]
        px, py = [], []
        for i in range(n):
            cx, cy = centres[i % k]
            px.append(cx + rng.gauss(0.0, spread))
            py.append(cy + rng.gauss(0.0, spread))
        # Initial centroids: the first k points (Rodinia's convention).
        cx0 = px[:k]
        cy0 = py[:k]
        return (
            [n, k, int(inp["iters"])],
            {"px": px, "py": py, "cx": cx0, "cy": cy0},
        )

    def build_module(self) -> Module:
        m = Module("kmeans")
        px = m.add_global("px", F64, MAX_N)
        py = m.add_global("py", F64, MAX_N)
        cx = m.add_global("cx", F64, MAX_K)
        cy = m.add_global("cy", F64, MAX_K)
        member = m.add_global("member", I64, MAX_N)
        sx = m.add_global("sx", F64, MAX_K)
        sy = m.add_global("sy", F64, MAX_K)
        cnt = m.add_global("cnt", I64, MAX_K)

        b = Builder.new_function(
            m, "main", [("n", I64), ("k", I64), ("iters", I64)], VOID
        )
        n = b.function.arg("n")
        k = b.function.arg("k")
        iters = b.function.arg("iters")

        with b.for_loop(b.i64(0), iters, hint="it") as _:
            # Assignment step.
            with b.for_loop(b.i64(0), n, hint="i") as i:
                x = b.load(b.gep(px, i), F64)
                y = b.load(b.gep(py, i), F64)
                best_d = b.local(F64, b.f64(1e300), hint="bd")
                best_c = b.local(I64, b.i64(0), hint="bc")
                with b.for_loop(b.i64(0), k, hint="c") as c:
                    dx = b.fsub(x, b.load(b.gep(cx, c), F64))
                    dy = b.fsub(y, b.load(b.gep(cy, c), F64))
                    d = b.fadd(b.fmul(dx, dx), b.fmul(dy, dy))
                    cur = b.get(best_d, F64)
                    closer = b.fcmp("olt", d, cur)
                    with b.if_then(closer, hint="cl"):
                        b.set(best_d, d)
                        b.set(best_c, c)
                b.store(b.get(best_c, I64), b.gep(member, i))

            # Update step.
            with b.for_loop(b.i64(0), k, hint="z") as c:
                b.store(b.f64(0.0), b.gep(sx, c))
                b.store(b.f64(0.0), b.gep(sy, c))
                b.store(b.i64(0), b.gep(cnt, c))
            with b.for_loop(b.i64(0), n, hint="acc") as i:
                c = b.load(b.gep(member, i), I64)
                psx = b.gep(sx, c)
                b.store(b.fadd(b.load(psx, F64), b.load(b.gep(px, i), F64)), psx)
                psy = b.gep(sy, c)
                b.store(b.fadd(b.load(psy, F64), b.load(b.gep(py, i), F64)), psy)
                pc = b.gep(cnt, c)
                b.store(b.add(b.load(pc, I64), b.i64(1)), pc)
            with b.for_loop(b.i64(0), k, hint="upd") as c:
                cc = b.load(b.gep(cnt, c), I64)
                nonempty = b.icmp("sgt", cc, b.i64(0))
                with b.if_then(nonempty, hint="ne"):
                    denom = b.sitofp(cc, F64)
                    b.store(b.fdiv(b.load(b.gep(sx, c), F64), denom), b.gep(cx, c))
                    b.store(b.fdiv(b.load(b.gep(sy, c), F64), denom), b.gep(cy, c))

        # Output: centroids, cluster sizes, and a membership checksum.
        with b.for_loop(b.i64(0), k, hint="oc") as c:
            b.emit_output(b.load(b.gep(cx, c), F64))
            b.emit_output(b.load(b.gep(cy, c), F64))
            b.emit_output(b.load(b.gep(cnt, c), I64))
        cks = b.local(I64, b.i64(0), hint="cks")
        with b.for_loop(b.i64(0), n, hint="om") as i:
            mi = b.load(b.gep(member, i), I64)
            cur = b.get(cks, I64)
            weighted = b.mul(mi, b.add(i, b.i64(1)))
            b.set(cks, b.add(cur, weighted))
        b.emit_output(b.get(cks, I64))
        b.ret()
        return m
