"""Application registry — Table I of the paper in code form."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.apps.base import App

__all__ = ["register_app", "get_app", "all_app_names", "app_table"]

_REGISTRY: dict[str, Callable[[], App]] = {}


def register_app(factory: Callable[[], App]) -> Callable[[], App]:
    """Class decorator registering an :class:`App` subclass by its name."""
    app = factory()
    if not app.name:
        raise ConfigError(f"{factory!r} has no app name")
    if app.name in _REGISTRY:
        raise ConfigError(f"duplicate app {app.name!r}")
    _REGISTRY[app.name] = factory
    return factory


def get_app(name: str) -> App:
    """Instantiate a registered app by name (fresh instance each call)."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigError(
            f"unknown app {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_app_names() -> list[str]:
    """Names of all registered benchmarks, in Table-I order."""
    _ensure_loaded()
    order = [
        "xsbench", "hpccg", "fft", "knn", "pathfinder", "backprop",
        "bfs", "particlefilter", "kmeans", "lu", "needle",
    ]
    known = [n for n in order if n in _REGISTRY]
    extra = sorted(set(_REGISTRY) - set(order))
    return known + extra


def app_table() -> list[tuple[str, str, str]]:
    """(name, suite, description) rows — the contents of Table I."""
    _ensure_loaded()
    rows = []
    for name in all_app_names():
        app = _REGISTRY[name]()
        rows.append((app.name, app.suite, app.description))
    return rows


_loaded = False


def _ensure_loaded() -> None:
    """Import all app modules so their decorators run."""
    global _loaded
    if _loaded:
        return
    from repro.apps import (  # noqa: F401
        backprop,
        bfs,
        fft,
        hpccg,
        kmeans,
        knn,
        lu,
        needle,
        particlefilter,
        pathfinder,
        xsbench,
    )

    _loaded = True
