"""LU (Rodinia): in-place LU decomposition of a dense matrix.

Doolittle elimination without pivoting (Rodinia's variant). Input matrices
are generated diagonally dominant so golden runs are numerically safe; the
degree of dominance is itself an input parameter, so fault-induced
perturbations grow or mask depending on the input — and the paper observes
LU is the benchmark *least* susceptible to coverage loss, a shape our
reproduction should preserve.
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID

MAX_N = 14


@register_app
class LuApp(App):
    name = "lu"
    suite = "Rodinia"
    description = "An algorithm calculating the solutions of a set of linear equations"
    rel_tol = 1e-7
    abs_tol = 1e-9

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("n", "int", 4, 12),
                ArgSpec("dominance", "float", 1.5, 10.0),
                ArgSpec("scale", "float", 0.5, 20.0),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {"n": 8, "dominance": 4.0, "scale": 2.0, "seed": 3}

    def encode(self, inp):
        n = int(inp["n"])
        dom, scale = float(inp["dominance"]), float(inp["scale"])
        rng = self.data_rng(inp, n)
        a = [[rng.uniform(-scale, scale) for _ in range(n)] for _ in range(n)]
        for i in range(n):
            off = sum(abs(a[i][j]) for j in range(n) if j != i)
            sign = 1.0 if a[i][i] >= 0 else -1.0
            a[i][i] = sign * (off * dom / max(dom, 1.0) + dom)
        flat = [a[i][j] for i in range(n) for j in range(n)]
        return [n], {"a": flat}

    def build_module(self) -> Module:
        m = Module("lu")
        a = m.add_global("a", F64, MAX_N * MAX_N)

        b = Builder.new_function(m, "main", [("n", I64)], VOID)
        n = b.function.arg("n")

        def at(i, j):
            # The matrix is stored densely with row stride n (not MAX_N).
            return b.gep(a, b.add(b.mul(i, n), j))

        one = b.i64(1)
        with b.for_loop(b.i64(0), n, hint="kk") as kk:
            pivot = b.load(at(kk, kk), F64)
            with b.for_loop(b.add(kk, one), n, hint="i") as i:
                factor = b.fdiv(b.load(at(i, kk), F64), pivot)
                b.store(factor, at(i, kk))
                with b.for_loop(b.add(kk, one), n, hint="j") as j:
                    cur = b.load(at(i, j), F64)
                    sub = b.fmul(factor, b.load(at(kk, j), F64))
                    b.store(b.fsub(cur, sub), at(i, j))

        # Output: U diagonal (determinant factors) and an L/U checksum.
        det = b.local(F64, b.f64(1.0), hint="det")
        with b.for_loop(b.i64(0), n, hint="od") as i:
            d = b.load(at(i, i), F64)
            b.emit_output(d)
            b.set(det, b.fmul(b.get(det, F64), d))
        b.emit_output(b.get(det, F64))
        cks = b.local(F64, b.f64(0.0), hint="cks")
        with b.for_loop(b.i64(0), n, hint="oi") as i:
            with b.for_loop(b.i64(0), n, hint="oj") as j:
                v = b.load(at(i, j), F64)
                b.set(cks, b.fadd(b.get(cks, F64), b.fmath("fabs", v)))
        b.emit_output(b.get(cks, F64))
        b.ret()
        return m
