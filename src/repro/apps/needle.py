"""Needle (Rodinia): Needleman-Wunsch global DNA sequence alignment.

Full DP matrix with match/mismatch scores from a 4-letter alphabet and an
affine-free gap penalty. The three-way max at every cell is input-dependent;
the paper measures Needle's incubative fraction as the largest of all
benchmarks (32.09%).
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import I64, VOID

MAX_LEN = 40
DIM = MAX_LEN + 1


@register_app
class NeedleApp(App):
    name = "needle"
    suite = "Rodinia"
    description = "A nonlinear global optimization method for DNA sequence alignments"
    rel_tol = 0.0
    abs_tol = 0.0

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("len1", "int", 6, 32),
                ArgSpec("len2", "int", 6, 32),
                ArgSpec("penalty", "int", 1, 12),
                ArgSpec("match", "int", 1, 10),
                ArgSpec("mismatch", "int", 1, 10),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {
            "len1": 16, "len2": 16, "penalty": 4, "match": 5,
            "mismatch": 3, "seed": 21,
        }

    def encode(self, inp):
        l1, l2 = int(inp["len1"]), int(inp["len2"])
        rng = self.data_rng(inp, l1, l2)
        seq1 = [rng.randint(0, 3) for _ in range(l1)]
        seq2 = [rng.randint(0, 3) for _ in range(l2)]
        return (
            [l1, l2, int(inp["penalty"]), int(inp["match"]), int(inp["mismatch"])],
            {"seq1": seq1, "seq2": seq2},
        )

    def build_module(self) -> Module:
        m = Module("needle")
        seq1 = m.add_global("seq1", I64, MAX_LEN)
        seq2 = m.add_global("seq2", I64, MAX_LEN)
        score = m.add_global("score", I64, DIM * DIM)

        b = Builder.new_function(
            m, "main",
            [("l1", I64), ("l2", I64), ("pen", I64), ("ma", I64), ("mi", I64)],
            VOID,
        )
        l1 = b.function.arg("l1")
        l2 = b.function.arg("l2")
        pen = b.function.arg("pen")
        ma = b.function.arg("ma")
        mi = b.function.arg("mi")
        dim = b.i64(DIM)

        # Boundary rows/columns: cumulative gap penalties.
        npen = b.sub(b.i64(0), pen)
        b.store(b.i64(0), b.gep(score, b.i64(0)))
        one = b.i64(1)
        with b.for_loop(one, b.add(l2, one), hint="b0") as j:
            b.store(b.mul(j, npen), b.gep(score, j))
        with b.for_loop(one, b.add(l1, one), hint="b1") as i:
            b.store(b.mul(i, npen), b.gep(score, b.mul(i, dim)))

        nmi = b.sub(b.i64(0), mi)
        with b.for_loop(one, b.add(l1, one), hint="i") as i:
            c1 = b.load(b.gep(seq1, b.sub(i, one)), I64)
            row = b.mul(i, dim)
            prow = b.mul(b.sub(i, one), dim)
            with b.for_loop(one, b.add(l2, one), hint="j") as j:
                c2 = b.load(b.gep(seq2, b.sub(j, one)), I64)
                same = b.icmp("eq", c1, c2)
                sub_score = b.select(same, ma, nmi)
                diag = b.load(b.gep(score, b.add(prow, b.sub(j, one))), I64)
                up = b.load(b.gep(score, b.add(prow, j)), I64)
                left = b.load(b.gep(score, b.add(row, b.sub(j, one))), I64)
                cand_d = b.add(diag, sub_score)
                cand_u = b.sub(up, pen)
                cand_l = b.sub(left, pen)
                du = b.icmp("sgt", cand_d, cand_u)
                best = b.select(du, cand_d, cand_u)
                bl = b.icmp("sgt", best, cand_l)
                best2 = b.select(bl, best, cand_l)
                b.store(best2, b.gep(score, b.add(row, j)))

        # Output: final alignment score and the last DP row.
        last_row = b.mul(l1, dim)
        b.emit_output(b.load(b.gep(score, b.add(last_row, l2)), I64))
        with b.for_loop(b.i64(0), b.add(l2, one), hint="o") as j:
            b.emit_output(b.load(b.gep(score, b.add(last_row, j)), I64))
        b.ret()
        return m
