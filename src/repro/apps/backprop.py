"""Backprop (Rodinia): one training step of a 2-layer perceptron.

Forward pass with sigmoid activations, output error, backward pass updating
both weight layers. The sigmoid's saturation makes error propagation depend
strongly on weight/input magnitudes: faults in saturated regions mask,
faults near the linear region corrupt — classic input-dependent resilience.
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID

MAX_IN = 24
MAX_HID = 24


@register_app
class BackpropApp(App):
    name = "backprop"
    suite = "Rodinia"
    description = (
        "A machine-learning algorithm that trains the weights of connected "
        "nodes on a layered neural network"
    )
    rel_tol = 1e-9
    abs_tol = 1e-12

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("n_in", "int", 4, 20),
                ArgSpec("n_hid", "int", 4, 20),
                ArgSpec("lr", "float", 0.05, 0.9),
                ArgSpec("target", "float", 0.0, 1.0),
                ArgSpec("wscale", "float", 0.1, 4.0),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {
            "n_in": 8, "n_hid": 8, "lr": 0.3, "target": 0.8,
            "wscale": 1.0, "seed": 5,
        }

    def encode(self, inp):
        n_in, n_hid = int(inp["n_in"]), int(inp["n_hid"])
        ws = float(inp["wscale"])
        rng = self.data_rng(inp, n_in, n_hid)
        x = [rng.uniform(-1.0, 1.0) for _ in range(n_in)]
        w1 = [rng.uniform(-ws, ws) for _ in range(n_in * n_hid)]
        w2 = [rng.uniform(-ws, ws) for _ in range(n_hid)]
        return (
            [n_in, n_hid, float(inp["lr"]), float(inp["target"])],
            {"x": x, "w1": w1, "w2": w2},
        )

    def build_module(self) -> Module:
        m = Module("backprop")
        x = m.add_global("x", F64, MAX_IN)
        w1 = m.add_global("w1", F64, MAX_IN * MAX_HID)
        w2 = m.add_global("w2", F64, MAX_HID)
        hid = m.add_global("hid", F64, MAX_HID)
        dhid = m.add_global("dhid", F64, MAX_HID)

        # sigmoid(z) = 1 / (1 + exp(-z))
        bs = Builder.new_function(m, "sigmoid", [("z", F64)], F64)
        z = bs.function.arg("z")
        nz = bs.fsub(bs.f64(0.0), z)
        e = bs.fmath("exp", nz)
        one = bs.f64(1.0)
        bs.ret(bs.fdiv(one, bs.fadd(one, e)))

        b = Builder.new_function(
            m, "main",
            [("n_in", I64), ("n_hid", I64), ("lr", F64), ("target", F64)],
            VOID,
        )
        n_in = b.function.arg("n_in")
        n_hid = b.function.arg("n_hid")
        lr = b.function.arg("lr")
        target = b.function.arg("target")

        # Forward: hidden layer.
        with b.for_loop(b.i64(0), n_hid, hint="h") as h:
            acc = b.local(F64, b.f64(0.0), hint="acc")
            base = b.mul(h, n_in)
            with b.for_loop(b.i64(0), n_in, hint="i") as i:
                w = b.load(b.gep(w1, b.add(base, i)), F64)
                xi = b.load(b.gep(x, i), F64)
                cur = b.get(acc, F64)
                b.set(acc, b.fadd(cur, b.fmul(w, xi)))
            act = b.call("sigmoid", [b.get(acc, F64)], F64)
            b.store(act, b.gep(hid, h))

        # Forward: output neuron.
        oacc = b.local(F64, b.f64(0.0), hint="oacc")
        with b.for_loop(b.i64(0), n_hid, hint="h2") as h:
            w = b.load(b.gep(w2, h), F64)
            a = b.load(b.gep(hid, h), F64)
            cur = b.get(oacc, F64)
            b.set(oacc, b.fadd(cur, b.fmul(w, a)))
        out = b.call("sigmoid", [b.get(oacc, F64)], F64)

        # Output delta: (target - out) * out * (1 - out)
        err = b.fsub(target, out)
        one = b.f64(1.0)
        dout = b.fmul(err, b.fmul(out, b.fsub(one, out)))

        # Hidden deltas and w2 update.
        with b.for_loop(b.i64(0), n_hid, hint="h3") as h:
            a = b.load(b.gep(hid, h), F64)
            w = b.load(b.gep(w2, h), F64)
            dh = b.fmul(b.fmul(dout, w), b.fmul(a, b.fsub(one, a)))
            b.store(dh, b.gep(dhid, h))
            nw = b.fadd(w, b.fmul(lr, b.fmul(dout, a)))
            b.store(nw, b.gep(w2, h))

        # w1 update.
        with b.for_loop(b.i64(0), n_hid, hint="h4") as h:
            dh = b.load(b.gep(dhid, h), F64)
            base = b.mul(h, n_in)
            with b.for_loop(b.i64(0), n_in, hint="i4") as i:
                xi = b.load(b.gep(x, i), F64)
                idx = b.add(base, i)
                w = b.load(b.gep(w1, idx), F64)
                b.store(b.fadd(w, b.fmul(lr, b.fmul(dh, xi))), b.gep(w1, idx))

        # Output: prediction, error, and weight checksums.
        b.emit_output(out)
        b.emit_output(err)
        cks = b.local(F64, b.f64(0.0), hint="cks")
        with b.for_loop(b.i64(0), n_hid, hint="ho") as h:
            cur = b.get(cks, F64)
            b.set(cks, b.fadd(cur, b.load(b.gep(w2, h), F64)))
        b.emit_output(b.get(cks, F64))
        cks1 = b.local(F64, b.f64(0.0), hint="cks1")
        total = b.mul(n_hid, n_in)
        with b.for_loop(b.i64(0), total, hint="wo") as i:
            cur = b.get(cks1, F64)
            b.set(cks1, b.fadd(cur, b.load(b.gep(w1, i), F64)))
        b.emit_output(b.get(cks1, F64))
        b.ret()
        return m
