"""Synthetic "real-world" dataset corpora for the §VII case study.

The paper evaluates BFS on the top-30 KONECT graphs (social/citation
networks) and Kmeans on 10 Kaggle clustering datasets. Those corpora are not
redistributable here, so we synthesize their statistical fingerprints:

- *KONECT-like graphs*: heavy-tailed degree distributions (preferential
  attachment), small-world rewirings, community structure and geometric
  proximity graphs — the four families dominating KONECT's catalogue.
- *Kaggle-like clustering sets*: Gaussian mixtures with varied cluster
  counts, anisotropy, unbalanced densities, ring/moon shapes and background
  noise — the staple geometries of public clustering datasets.

What matters for the experiment is only that these inputs are drawn from a
*different distribution* than the apps' random generators (a distribution
shift), which is exactly what the synthesis preserves.

Each corpus is wrapped in a dataset-backed App subclass so the standard
evaluation harness (``evaluate_protection``) runs unchanged: the wrapped
app's ``dataset`` argument indexes the corpus.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.apps.base import ArgSpec, InputSpec
from repro.apps.bfs import MAX_E, MAX_N, BfsApp
from repro.apps.kmeans import MAX_K
from repro.apps.kmeans import MAX_N as KM_MAX_N
from repro.apps.kmeans import KmeansApp
from repro.util.rng import RngStream

__all__ = [
    "konect_like_graphs",
    "kaggle_like_clusterings",
    "DatasetBfsApp",
    "DatasetKmeansApp",
]


# ---------------------------------------------------------------------------
# Graph corpus
# ---------------------------------------------------------------------------


def _to_csr(g: "nx.Graph") -> tuple[list[int], list[int], int]:
    """Relabel to 0..n-1 and convert to the BFS app's CSR layout."""
    g = nx.convert_node_labels_to_integers(g)
    n = g.number_of_nodes()
    row_off = [0]
    cols: list[int] = []
    for u in range(n):
        nbrs = sorted(set(g.neighbors(u)) - {u})
        cols.extend(nbrs)
        row_off.append(len(cols))
    return row_off, cols, n


def konect_like_graphs(count: int = 30, seed: int = 424242) -> list[dict]:
    """A corpus of ``count`` graphs echoing KONECT's network families.

    Each entry: ``{"name", "row_off", "cols", "n"}`` sized within the BFS
    app's global capacity.
    """
    rng = RngStream(seed, "konect")
    corpus: list[dict] = []
    makers = [
        (
            "ba",  # preferential attachment: heavy-tailed social networks
            lambda r: nx.barabasi_albert_graph(
                r.randint(24, MAX_N - 8), r.randint(1, 3), seed=r.randint(0, 10**6)
            ),
        ),
        (
            "ws",  # small-world rewiring: collaboration networks
            lambda r: nx.watts_strogatz_graph(
                r.randint(24, MAX_N - 8), 4, r.uniform(0.05, 0.5),
                seed=r.randint(0, 10**6),
            ),
        ),
        (
            "plc",  # power-law with clustering: citation networks
            lambda r: nx.powerlaw_cluster_graph(
                r.randint(24, MAX_N - 8), 2, r.uniform(0.1, 0.6),
                seed=r.randint(0, 10**6),
            ),
        ),
        (
            "caveman",  # community structure: forums/groups
            lambda r: nx.connected_caveman_graph(r.randint(3, 6), r.randint(4, 8)),
        ),
        (
            "geo",  # geometric proximity: infrastructure networks
            lambda r: nx.random_geometric_graph(
                r.randint(24, MAX_N - 8), 0.3, seed=r.randint(0, 10**6)
            ),
        ),
    ]
    i = 0
    while len(corpus) < count:
        name, maker = makers[i % len(makers)]
        i += 1
        g = maker(rng.child(i))
        if g.number_of_nodes() < 2:
            continue
        row_off, cols, n = _to_csr(g)
        if n > MAX_N or len(cols) > MAX_E:
            continue
        corpus.append(
            {"name": f"{name}-{i}", "row_off": row_off, "cols": cols, "n": n}
        )
    return corpus


# ---------------------------------------------------------------------------
# Clustering corpus
# ---------------------------------------------------------------------------


def kaggle_like_clusterings(count: int = 10, seed: int = 515151) -> list[dict]:
    """A corpus of 2-D clustering datasets with varied geometry.

    Each entry: ``{"name", "px", "py", "k"}`` sized for the Kmeans app.
    """
    rng = RngStream(seed, "kaggle")
    corpus: list[dict] = []
    shapes = ("blobs", "aniso", "unbalanced", "moons", "rings", "noisy")
    for i in range(count):
        r = rng.child(i)
        shape = shapes[i % len(shapes)]
        n = r.randint(48, KM_MAX_N - 16)
        k = r.randint(2, min(5, MAX_K))
        px: list[float] = []
        py: list[float] = []
        if shape == "blobs":
            centres = [(r.uniform(-12, 12), r.uniform(-12, 12)) for _ in range(k)]
            for j in range(n):
                cx, cy = centres[j % k]
                px.append(cx + r.gauss(0, 1.5))
                py.append(cy + r.gauss(0, 1.5))
        elif shape == "aniso":
            centres = [(r.uniform(-10, 10), r.uniform(-10, 10)) for _ in range(k)]
            for j in range(n):
                cx, cy = centres[j % k]
                px.append(cx + r.gauss(0, 4.0))
                py.append(cy + r.gauss(0, 0.6))
        elif shape == "unbalanced":
            centres = [(r.uniform(-10, 10), r.uniform(-10, 10)) for _ in range(k)]
            for j in range(n):
                c = 0 if j < 0.7 * n else (j % k)
                cx, cy = centres[c]
                px.append(cx + r.gauss(0, 1.8))
                py.append(cy + r.gauss(0, 1.8))
        elif shape == "moons":
            for j in range(n):
                t = math.pi * r.random()
                if j % 2:
                    px.append(math.cos(t) * 6 + r.gauss(0, 0.5))
                    py.append(math.sin(t) * 6 + r.gauss(0, 0.5))
                else:
                    px.append(3 - math.cos(t) * 6 + r.gauss(0, 0.5))
                    py.append(2 - math.sin(t) * 6 + r.gauss(0, 0.5))
            k = 2
        elif shape == "rings":
            for j in range(n):
                t = 2 * math.pi * r.random()
                rad = 3.0 if j % 2 else 8.0
                px.append(rad * math.cos(t) + r.gauss(0, 0.4))
                py.append(rad * math.sin(t) + r.gauss(0, 0.4))
            k = 2
        else:  # noisy blobs + uniform background
            centres = [(r.uniform(-10, 10), r.uniform(-10, 10)) for _ in range(k)]
            for j in range(n):
                if r.random() < 0.2:
                    px.append(r.uniform(-15, 15))
                    py.append(r.uniform(-15, 15))
                else:
                    cx, cy = centres[j % k]
                    px.append(cx + r.gauss(0, 1.2))
                    py.append(cy + r.gauss(0, 1.2))
        corpus.append({"name": f"{shape}-{i}", "px": px, "py": py, "k": k})
    return corpus


# ---------------------------------------------------------------------------
# Dataset-backed app wrappers
# ---------------------------------------------------------------------------


class DatasetBfsApp(BfsApp):
    """BFS whose evaluation inputs index a graph corpus (§VII)."""

    def __init__(self, corpus: list[dict] | None = None) -> None:
        super().__init__()
        self.corpus = corpus if corpus is not None else konect_like_graphs()

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("dataset", "int", 0, len(self.corpus) - 1),
                ArgSpec("source", "int", 0, 15),
            )
        )

    @property
    def reference_input(self):
        return {"dataset": 0, "source": 0}

    def encode(self, inp):
        ds = self.corpus[int(inp["dataset"]) % len(self.corpus)]
        n = ds["n"]
        src = int(inp["source"]) % n
        return [n, src], {"row_off": ds["row_off"], "cols": ds["cols"]}

    def dataset_inputs(self) -> list[dict]:
        """One evaluation input per corpus entry (source fixed at 0)."""
        return [{"dataset": i, "source": 0} for i in range(len(self.corpus))]


class DatasetKmeansApp(KmeansApp):
    """Kmeans whose evaluation inputs index a clustering corpus (§VII)."""

    def __init__(self, corpus: list[dict] | None = None) -> None:
        super().__init__()
        self.corpus = corpus if corpus is not None else kaggle_like_clusterings()

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("dataset", "int", 0, len(self.corpus) - 1),
                ArgSpec("iters", "int", 2, 6),
            )
        )

    @property
    def reference_input(self):
        return {"dataset": 0, "iters": 4}

    def encode(self, inp):
        ds = self.corpus[int(inp["dataset"]) % len(self.corpus)]
        px, py, k = ds["px"], ds["py"], ds["k"]
        n = len(px)
        return (
            [n, k, int(inp["iters"])],
            {"px": px, "py": py, "cx": px[:k], "cy": py[:k]},
        )

    def dataset_inputs(self) -> list[dict]:
        return [{"dataset": i, "iters": 4} for i in range(len(self.corpus))]
