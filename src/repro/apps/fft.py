"""FFT (SPLASH-2): iterative radix-2 complex FFT.

Bit-reversal permutation followed by log2(n) butterfly stages with twiddles
computed via sin/cos. The index arithmetic (shifts, masks, bit-reversal
comparisons) provides the integer icmp instructions of the paper's Fig. 3
incubative example; data magnitudes steer how far flipped mantissa bits
propagate through the butterflies.

The kernel is factored for the §VIII-B multithreaded experiment: the
butterfly stages live in ``@stage_worker(tid, lo, hi, len)`` (independent
blocks — race-free data parallelism) and bit reversal in ``@bitrev``; the
serial ``@main`` drives ``stage_worker`` over the whole block range, and
:mod:`repro.exp.mt_fft` builds fork-join mains that partition the block range
across threads.
"""

from __future__ import annotations

import math

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID

MAX_N = 64  # largest transform size (2^6)


def build_fft_module() -> Module:
    """Construct the FFT module (shared by the serial app and §VIII-B)."""
    m = Module("fft")
    re = m.add_global("re", F64, MAX_N)
    im = m.add_global("im", F64, MAX_N)

    _build_bitrev(m, re, im)
    _build_stage_worker(m, re, im)

    b = Builder.new_function(m, "main", [("n", I64), ("m", I64)], VOID)
    n = b.function.arg("n")
    mm = b.function.arg("m")
    b.call("bitrev", [n, mm], VOID)

    # Butterfly stages: len = 2, 4, ..., n — each stage is one (serial)
    # stage_worker call over all n/len blocks.
    stage = b.local(I64, b.i64(2), hint="len")

    def stages_left():
        return b.icmp("sle", b.get(stage, I64), n)

    with b.while_loop(stages_left, hint="stage"):
        ln = b.get(stage, I64)
        blocks = b.sdiv(n, ln)
        b.call("stage_worker", [b.i64(0), b.i64(0), blocks, ln], VOID)
        b.set(stage, b.mul(ln, b.i64(2)))

    _emit_spectrum(b, re, im, n)
    b.ret()
    return m


def _build_bitrev(m: Module, re, im) -> None:
    """@bitrev(n, m): in-place bit-reversal permutation."""
    b = Builder.new_function(m, "bitrev", [("n", I64), ("m", I64)], VOID)
    n = b.function.arg("n")
    mm = b.function.arg("m")
    one = b.i64(1)
    with b.for_loop(b.i64(0), n, hint="br") as i:
        j = b.local(I64, b.i64(0), hint="rev")
        tmp = b.local(I64, i, hint="tmp")
        with b.for_loop(b.i64(0), mm, hint="bit") as _:
            cur_j = b.get(j, I64)
            cur_t = b.get(tmp, I64)
            bit = b.and_(cur_t, one)
            b.set(j, b.or_(b.shl(cur_j, one), bit))
            b.set(tmp, b.lshr(cur_t, one))
        jj = b.get(j, I64)
        do_swap = b.icmp("sgt", jj, i)  # Fig. 3's comparison shape
        with b.if_then(do_swap, hint="swap"):
            pi_r = b.gep(re, i)
            pj_r = b.gep(re, jj)
            a = b.load(pi_r, F64)
            c = b.load(pj_r, F64)
            b.store(c, pi_r)
            b.store(a, pj_r)
            pi_i = b.gep(im, i)
            pj_i = b.gep(im, jj)
            ai = b.load(pi_i, F64)
            ci = b.load(pj_i, F64)
            b.store(ci, pi_i)
            b.store(ai, pj_i)
    b.ret()


def _build_stage_worker(m: Module, re, im) -> None:
    """@stage_worker(tid, lo, hi, len): butterfly blocks lo..hi of one stage.

    Block ``blk`` covers indices [blk*len, (blk+1)*len); blocks are disjoint,
    so threads partitioning the block range never race.
    """
    b = Builder.new_function(
        m, "stage_worker",
        [("tid", I64), ("lo", I64), ("hi", I64), ("ln", I64)],
        VOID,
    )
    lo = b.function.arg("lo")
    hi = b.function.arg("hi")
    ln = b.function.arg("ln")
    half = b.sdiv(ln, b.i64(2))
    ang = b.fdiv(b.f64(-2.0 * math.pi), b.sitofp(ln, F64))
    with b.for_loop(lo, hi, hint="blk") as blk:
        bs = b.mul(blk, ln)
        with b.for_loop(b.i64(0), half, hint="k") as k:
            th = b.fmul(ang, b.sitofp(k, F64))
            wr = b.fmath("cos", th)
            wi = b.fmath("sin", th)
            i0 = b.add(bs, k)
            i1 = b.add(i0, half)
            p0r = b.gep(re, i0)
            p0i = b.gep(im, i0)
            p1r = b.gep(re, i1)
            p1i = b.gep(im, i1)
            ar = b.load(p0r, F64)
            ai = b.load(p0i, F64)
            br_ = b.load(p1r, F64)
            bi = b.load(p1i, F64)
            tr = b.fsub(b.fmul(wr, br_), b.fmul(wi, bi))
            ti = b.fadd(b.fmul(wr, bi), b.fmul(wi, br_))
            b.store(b.fadd(ar, tr), p0r)
            b.store(b.fadd(ai, ti), p0i)
            b.store(b.fsub(ar, tr), p1r)
            b.store(b.fsub(ai, ti), p1i)
    b.ret()


def _emit_spectrum(b: Builder, re, im, n) -> None:
    """Emit the full spectrum plus total power."""
    power = b.local(F64, b.f64(0.0), hint="pw")
    with b.for_loop(b.i64(0), n, hint="o") as i:
        rr = b.load(b.gep(re, i), F64)
        ii = b.load(b.gep(im, i), F64)
        b.emit_output(rr)
        b.emit_output(ii)
        b.set(power, b.fadd(b.get(power, F64), b.fadd(b.fmul(rr, rr), b.fmul(ii, ii))))
    b.emit_output(b.get(power, F64))


@register_app
class FftApp(App):
    name = "fft"
    suite = "SPLASH-2"
    description = "1D fast Fourier transform using six-step FFT method"
    rel_tol = 1e-7
    abs_tol = 1e-9

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("m", "int", 3, 6),  # transform size 2^m
                ArgSpec("scale", "float", 0.1, 50.0),
                ArgSpec("waveform", "choice", choices=("noise", "tone", "chirp", "step")),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {"m": 4, "scale": 1.0, "waveform": "noise", "seed": 23}

    def encode(self, inp):
        mm = int(inp["m"])
        n = 1 << mm
        scale = float(inp["scale"])
        rng = self.data_rng(inp, mm, inp["waveform"])
        re, im = [], []
        wf = inp["waveform"]
        for i in range(n):
            if wf == "tone":
                re.append(scale * math.cos(2 * math.pi * 3 * i / n))
                im.append(scale * math.sin(2 * math.pi * 3 * i / n))
            elif wf == "chirp":
                ph = 2 * math.pi * i * i / (2.0 * n)
                re.append(scale * math.cos(ph))
                im.append(scale * math.sin(ph))
            elif wf == "step":
                re.append(scale if i < n // 2 else -scale)
                im.append(0.0)
            else:
                re.append(rng.uniform(-scale, scale))
                im.append(rng.uniform(-scale, scale))
        return [n, mm], {"re": re, "im": im}

    def build_module(self) -> Module:
        return build_fft_module()
