"""BFS (Rodinia): breadth-first search over a CSR graph.

The frontier queue, visited tests and depth updates are all driven by the
graph's connectivity, so which instructions matter for SDCs shifts with the
input's degree distribution — the app the paper also exercises with
real-world KONECT graphs in its §VII case study.
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import I64, VOID
from repro.util.rng import RngStream

MAX_N = 128
MAX_E = 1024


def build_random_csr(n: int, avg_degree: float, rng: RngStream):
    """Random undirected graph in CSR form (simple, no self-loops)."""
    target_edges = min(MAX_E // 2, max(n - 1, int(n * avg_degree / 2)))
    edges: set[tuple[int, int]] = set()
    # A random spanning path keeps most of the graph reachable from node 0.
    order = list(range(n))
    rng.shuffle(order)
    for a, bb in zip(order, order[1:]):
        edges.add((min(a, bb), max(a, bb)))
    tries = 0
    while len(edges) < target_edges and tries < 20 * target_edges:
        tries += 1
        u = rng.randint(0, n - 1)
        v = rng.randint(0, n - 1)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in sorted(edges):
        adj[u].append(v)
        adj[v].append(u)
    row_off = [0]
    cols: list[int] = []
    for u in range(n):
        cols.extend(sorted(adj[u]))
        row_off.append(len(cols))
    return row_off, cols


@register_app
class BfsApp(App):
    name = "bfs"
    suite = "Rodinia"
    description = "Breadth-first search all connected components in a graph"
    rel_tol = 0.0
    abs_tol = 0.0

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("n", "int", 16, 96),
                ArgSpec("avg_degree", "float", 1.0, 6.0),
                ArgSpec("source", "int", 0, 15),  # clamped below n at encode
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {"n": 48, "avg_degree": 3.0, "source": 0, "seed": 11}

    def encode(self, inp):
        n = int(inp["n"])
        rng = self.data_rng(inp, n, round(float(inp["avg_degree"]), 3))
        row_off, cols = build_random_csr(n, float(inp["avg_degree"]), rng)
        src = int(inp["source"]) % n
        return [n, src], {"row_off": row_off, "cols": cols}

    def build_module(self) -> Module:
        m = Module("bfs")
        row_off = m.add_global("row_off", I64, MAX_N + 1)
        cols = m.add_global("cols", I64, MAX_E)
        depth = m.add_global("depth", I64, MAX_N)
        queue = m.add_global("queue", I64, MAX_N)

        b = Builder.new_function(m, "main", [("n", I64), ("src", I64)], VOID)
        n = b.function.arg("n")
        src = b.function.arg("src")

        with b.for_loop(b.i64(0), n, hint="init") as i:
            b.store(b.i64(-1), b.gep(depth, i))

        b.store(b.i64(0), b.gep(depth, src))
        b.store(src, b.gep(queue, b.i64(0)))
        head = b.local(I64, b.i64(0), hint="head")
        tail = b.local(I64, b.i64(1), hint="tail")

        def not_empty():
            return b.icmp("slt", b.get(head, I64), b.get(tail, I64))

        with b.while_loop(not_empty, hint="bfs"):
            h = b.get(head, I64)
            u = b.load(b.gep(queue, h), I64)
            b.set(head, b.add(h, b.i64(1)))
            du = b.load(b.gep(depth, u), I64)
            d_next = b.add(du, b.i64(1))
            lo = b.load(b.gep(row_off, u), I64)
            hi = b.load(b.gep(row_off, b.add(u, b.i64(1))), I64)
            with b.for_loop(lo, hi, hint="edge") as e:
                v = b.load(b.gep(cols, e), I64)
                dv = b.load(b.gep(depth, v), I64)
                unseen = b.icmp("eq", dv, b.i64(-1))
                with b.if_then(unseen, hint="visit"):
                    b.store(d_next, b.gep(depth, v))
                    t = b.get(tail, I64)
                    b.store(v, b.gep(queue, t))
                    b.set(tail, b.add(t, b.i64(1)))

        with b.for_loop(b.i64(0), n, hint="out") as i:
            b.emit_output(b.load(b.gep(depth, i), I64))
        b.ret()
        return m
