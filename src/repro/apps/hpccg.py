"""HPCCG (Mantevo): conjugate gradient on a 3-D 27/7-point chimney domain.

A fixed number of CG iterations on the 7-point Laplacian of an
nx×ny×nz grid in CSR form (matrix built host-side, exactly how the Mantevo
mini-app generates its sparse structure). Dot products, AXPYs and the
sparse mat-vec dominate; the rtrans/alpha divisions make error magnitudes
depend on the right-hand side's conditioning — yet, as the paper observes,
CG's self-correcting iterations leave HPCCG with no coverage-loss inputs.
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID

MAX_ROWS = 150
MAX_NNZ = 1200


def build_stencil_csr(nx: int, ny: int, nz: int):
    """7-point Laplacian CSR of an nx×ny×nz grid (Dirichlet boundaries)."""
    n = nx * ny * nz

    def idx(i, j, k):
        return (k * ny + j) * nx + i

    row_off = [0]
    cols: list[int] = []
    vals: list[float] = []
    for k in range(nz):
        for j in range(ny):
            for i in range(nx):
                entries = [(idx(i, j, k), 6.5)]
                for di, dj, dk in (
                    (-1, 0, 0), (1, 0, 0), (0, -1, 0),
                    (0, 1, 0), (0, 0, -1), (0, 0, 1),
                ):
                    ii, jj, kk = i + di, j + dj, k + dk
                    if 0 <= ii < nx and 0 <= jj < ny and 0 <= kk < nz:
                        entries.append((idx(ii, jj, kk), -1.0))
                entries.sort()
                for c, v in entries:
                    cols.append(c)
                    vals.append(v)
                row_off.append(len(cols))
    return n, row_off, cols, vals


@register_app
class HpccgApp(App):
    name = "hpccg"
    suite = "Mantevo"
    description = (
        "A simple conjugate gradient benchmark code for a 3D chimney domain "
        "on an arbitrary number of processors"
    )
    rel_tol = 1e-8
    abs_tol = 1e-10

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("nx", "int", 2, 5),
                ArgSpec("ny", "int", 2, 5),
                ArgSpec("nz", "int", 2, 5),
                ArgSpec("iters", "int", 2, 6),
                ArgSpec("rhs_scale", "float", 0.5, 10.0),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {"nx": 3, "ny": 3, "nz": 3, "iters": 4, "rhs_scale": 1.0, "seed": 29}

    def encode(self, inp):
        nx, ny, nz = int(inp["nx"]), int(inp["ny"]), int(inp["nz"])
        n, row_off, cols, vals = build_stencil_csr(nx, ny, nz)
        rng = self.data_rng(inp, nx, ny, nz)
        scale = float(inp["rhs_scale"])
        rhs = [rng.uniform(-scale, scale) for _ in range(n)]
        return (
            [n, int(inp["iters"])],
            {"row_off": row_off, "cols": cols, "vals": vals, "rhs": rhs},
        )

    def build_module(self) -> Module:
        m = Module("hpccg")
        row_off = m.add_global("row_off", I64, MAX_ROWS + 1)
        cols = m.add_global("cols", I64, MAX_NNZ)
        vals = m.add_global("vals", F64, MAX_NNZ)
        rhs = m.add_global("rhs", F64, MAX_ROWS)
        x = m.add_global("x", F64, MAX_ROWS)
        r = m.add_global("r", F64, MAX_ROWS)
        p = m.add_global("p", F64, MAX_ROWS)
        ap = m.add_global("Ap", F64, MAX_ROWS)

        # dot(u, v, n) -> f64
        bd = Builder.new_function(m, "dot", [("u", I64), ("v", I64), ("n", I64)], F64)
        # u/v are passed as raw addresses (i64) of the vector bases.
        acc = bd.local(F64, bd.f64(0.0), hint="acc")
        # Convert int addresses to pointers via gep on the globals directly is
        # not possible across arbitrary vectors, so dot takes a selector:
        # 0 -> (r, r), 1 -> (p, Ap), 2 -> (r, r) after update. For clarity we
        # instead inline dot products in main; this helper handles (r·r).
        with bd.for_loop(bd.i64(0), bd.function.arg("n"), hint="i") as i:
            ri = bd.load(bd.gep(r, i), F64)
            bd.set(acc, bd.fadd(bd.get(acc, F64), bd.fmul(ri, ri)))
        bd.ret(bd.get(acc, F64))

        b = Builder.new_function(m, "main", [("n", I64), ("iters", I64)], VOID)
        n = b.function.arg("n")
        iters = b.function.arg("iters")

        # x = 0; r = rhs; p = rhs
        with b.for_loop(b.i64(0), n, hint="init") as i:
            b.store(b.f64(0.0), b.gep(x, i))
            v = b.load(b.gep(rhs, i), F64)
            b.store(v, b.gep(r, i))
            b.store(v, b.gep(p, i))

        rtrans = b.local(F64, b.call("dot", [b.i64(0), b.i64(0), n], F64), hint="rt")

        with b.for_loop(b.i64(0), iters, hint="it") as _:
            # Ap = A @ p (CSR sparse mat-vec).
            with b.for_loop(b.i64(0), n, hint="row") as row:
                lo = b.load(b.gep(row_off, row), I64)
                hi = b.load(b.gep(row_off, b.add(row, b.i64(1))), I64)
                sum_ = b.local(F64, b.f64(0.0), hint="sum")
                with b.for_loop(lo, hi, hint="nz") as e:
                    c = b.load(b.gep(cols, e), I64)
                    a = b.load(b.gep(vals, e), F64)
                    pc = b.load(b.gep(p, c), F64)
                    b.set(sum_, b.fadd(b.get(sum_, F64), b.fmul(a, pc)))
                b.store(b.get(sum_, F64), b.gep(ap, row))

            # alpha = rtrans / (p . Ap)
            pap = b.local(F64, b.f64(0.0), hint="pap")
            with b.for_loop(b.i64(0), n, hint="d1") as i:
                pi = b.load(b.gep(p, i), F64)
                api = b.load(b.gep(ap, i), F64)
                b.set(pap, b.fadd(b.get(pap, F64), b.fmul(pi, api)))
            denom = b.get(pap, F64)
            safe = b.fcmp("one", denom, b.f64(0.0))
            with b.if_then(safe, hint="step"):
                alpha = b.fdiv(b.get(rtrans, F64), denom)
                # x += alpha p ; r -= alpha Ap
                with b.for_loop(b.i64(0), n, hint="ax") as i:
                    xp = b.gep(x, i)
                    b.store(
                        b.fadd(b.load(xp, F64), b.fmul(alpha, b.load(b.gep(p, i), F64))),
                        xp,
                    )
                    rp = b.gep(r, i)
                    b.store(
                        b.fsub(b.load(rp, F64), b.fmul(alpha, b.load(b.gep(ap, i), F64))),
                        rp,
                    )
                new_rtrans = b.call("dot", [b.i64(0), b.i64(0), n], F64)
                old = b.get(rtrans, F64)
                beta = b.fdiv(new_rtrans, old)
                b.set(rtrans, new_rtrans)
                # p = r + beta p
                with b.for_loop(b.i64(0), n, hint="bp") as i:
                    pp = b.gep(p, i)
                    b.store(
                        b.fadd(b.load(b.gep(r, i), F64), b.fmul(beta, b.load(pp, F64))),
                        pp,
                    )
            b.emit_output(b.fmath("sqrt", b.get(rtrans, F64)))

        # Output: solution checksum.
        cks = b.local(F64, b.f64(0.0), hint="cks")
        with b.for_loop(b.i64(0), n, hint="o") as i:
            b.set(cks, b.fadd(b.get(cks, F64), b.load(b.gep(x, i), F64)))
        b.emit_output(b.get(cks, F64))
        b.ret()
        return m
