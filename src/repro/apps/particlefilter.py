"""Particlefilter (Rodinia): sequential Monte-Carlo tracking of a 1-D target.

Predict / weight (Gaussian likelihood) / normalize / systematic-resample /
estimate loop over noisy observations. The likelihood's exponential collapses
weights whose particles stray from the observation, so the set of
SDC-relevant instructions tracks the observation noise and motion scale of
the input.
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID

MAX_P = 80
MAX_T = 10


@register_app
class ParticlefilterApp(App):
    name = "particlefilter"
    suite = "Rodinia"
    description = (
        "Statistical estimator of the location of a target object given "
        "noisy measurements of that target's location in a Bayesian framework"
    )
    rel_tol = 1e-9
    abs_tol = 1e-12

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("n_particles", "int", 16, 64),
                ArgSpec("steps", "int", 2, 8),
                ArgSpec("velocity", "float", -2.0, 2.0),
                ArgSpec("obs_noise", "float", 0.2, 4.0),
                ArgSpec("proc_noise", "float", 0.1, 2.0),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {
            "n_particles": 32, "steps": 4, "velocity": 1.0,
            "obs_noise": 1.0, "proc_noise": 0.5, "seed": 17,
        }

    def encode(self, inp):
        n, steps = int(inp["n_particles"]), int(inp["steps"])
        vel = float(inp["velocity"])
        obs_noise = float(inp["obs_noise"])
        proc_noise = float(inp["proc_noise"])
        rng = self.data_rng(inp, n, steps)
        # True trajectory and observations generated host-side.
        true_x = 0.0
        obs = []
        for _ in range(steps):
            true_x += vel + rng.gauss(0.0, proc_noise * 0.5)
            obs.append(true_x + rng.gauss(0.0, obs_noise * 0.5))
        # Initial particles near the origin; per-step process noise table
        # (the IR kernel is deterministic: "random" draws are precomputed).
        init = [rng.gauss(0.0, 1.0) for _ in range(n)]
        noise = [rng.gauss(0.0, proc_noise) for _ in range(n * steps)]
        resample_u = [rng.uniform(0.0, 1.0 / n) for _ in range(steps)]
        return (
            [n, steps, vel, obs_noise],
            {"obs": obs, "xs": init, "noise": noise, "resample_u": resample_u},
        )

    def build_module(self) -> Module:
        m = Module("particlefilter")
        obs = m.add_global("obs", F64, MAX_T)
        xs = m.add_global("xs", F64, MAX_P)
        noise = m.add_global("noise", F64, MAX_P * MAX_T)
        weights = m.add_global("weights", F64, MAX_P)
        cdf = m.add_global("cdf", F64, MAX_P)
        newx = m.add_global("newx", F64, MAX_P)
        resample_u = m.add_global("resample_u", F64, MAX_T)

        b = Builder.new_function(
            m, "main",
            [("n", I64), ("steps", I64), ("vel", F64), ("obs_noise", F64)],
            VOID,
        )
        n = b.function.arg("n")
        steps = b.function.arg("steps")
        vel = b.function.arg("vel")
        obs_noise = b.function.arg("obs_noise")

        half = b.f64(-0.5)
        var = b.fmul(obs_noise, obs_noise)

        with b.for_loop(b.i64(0), steps, hint="t") as t:
            ob = b.load(b.gep(obs, t), F64)
            nbase = b.mul(t, n)
            # Predict + weight.
            wsum = b.local(F64, b.f64(0.0), hint="wsum")
            with b.for_loop(b.i64(0), n, hint="p") as p:
                xp = b.gep(xs, p)
                x = b.load(xp, F64)
                nz = b.load(b.gep(noise, b.add(nbase, p)), F64)
                x2 = b.fadd(x, b.fadd(vel, nz))
                b.store(x2, xp)
                diff = b.fsub(x2, ob)
                z = b.fdiv(b.fmul(diff, diff), var)
                w = b.fmath("exp", b.fmul(half, z))
                b.store(w, b.gep(weights, p))
                b.set(wsum, b.fadd(b.get(wsum, F64), w))

            # Normalize into a CDF (uniform fallback if all weights vanish).
            total = b.get(wsum, F64)
            degenerate = b.fcmp("ole", total, b.f64(0.0))
            acc = b.local(F64, b.f64(0.0), hint="acc")
            with b.if_then_else(degenerate, hint="deg") as otherwise:
                uni = b.fdiv(b.f64(1.0), b.sitofp(n, F64))
                with b.for_loop(b.i64(0), n, hint="pu") as p:
                    b.set(acc, b.fadd(b.get(acc, F64), uni))
                    b.store(b.get(acc, F64), b.gep(cdf, p))
                otherwise()
                with b.for_loop(b.i64(0), n, hint="pc") as p:
                    w = b.load(b.gep(weights, p), F64)
                    b.set(acc, b.fadd(b.get(acc, F64), b.fdiv(w, total)))
                    b.store(b.get(acc, F64), b.gep(cdf, p))

            # Systematic resampling.
            u0 = b.load(b.gep(resample_u, t), F64)
            inv_n = b.fdiv(b.f64(1.0), b.sitofp(n, F64))
            with b.for_loop(b.i64(0), n, hint="r") as j:
                u = b.fadd(u0, b.fmul(b.sitofp(j, F64), inv_n))
                idx = b.local(I64, b.i64(0), hint="idx")
                # Scan the CDF while idx < n-1 and cdf[idx] < u. Both arms
                # evaluate eagerly (select, not short-circuit); the load stays
                # in bounds because idx never exceeds n-1.
                with b.while_loop(lambda: b.select(
                    b.icmp("slt", b.get(idx, I64), b.sub(n, b.i64(1))),
                    b.fcmp("olt", b.load(b.gep(cdf, b.get(idx, I64)), F64), u),
                    b.false(),
                ), hint="scan"):
                    b.set(idx, b.add(b.get(idx, I64), b.i64(1)))
                b.store(
                    b.load(b.gep(xs, b.get(idx, I64)), F64), b.gep(newx, j)
                )
            with b.for_loop(b.i64(0), n, hint="cp") as p:
                b.store(b.load(b.gep(newx, p), F64), b.gep(xs, p))

            # Estimate: particle mean after resampling.
            est = b.local(F64, b.f64(0.0), hint="est")
            with b.for_loop(b.i64(0), n, hint="e") as p:
                b.set(est, b.fadd(b.get(est, F64), b.load(b.gep(xs, p), F64)))
            b.emit_output(b.fdiv(b.get(est, F64), b.sitofp(n, F64)))
        b.ret()
        return m
