"""kNN (Rodinia): k nearest neighbours of a query in a 2-D point cloud.

Squared-distance computation followed by k selection scans. All control flow
hinges on floating comparisons between distances, so the SDC proneness of
each comparison depends on how tightly the input points cluster around the
query — a canonical source of incubative instructions.
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, I64, VOID

MAX_N = 160


@register_app
class KnnApp(App):
    name = "knn"
    suite = "Rodinia"
    description = "Find the k-nearest neighbours from an unstructured data set"
    rel_tol = 1e-9
    abs_tol = 1e-12

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("n", "int", 16, 128),
                ArgSpec("k", "int", 1, 8),
                ArgSpec("qx", "float", -10.0, 10.0),
                ArgSpec("qy", "float", -10.0, 10.0),
                ArgSpec("spread", "float", 0.5, 20.0),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {"n": 48, "k": 4, "qx": 0.0, "qy": 0.0, "spread": 5.0, "seed": 7}

    def encode(self, inp):
        n = int(inp["n"])
        spread = float(inp["spread"])
        rng = self.data_rng(inp, n)
        px = [rng.uniform(-spread, spread) for _ in range(n)]
        py = [rng.uniform(-spread, spread) for _ in range(n)]
        return (
            [n, int(inp["k"]), float(inp["qx"]), float(inp["qy"])],
            {"px": px, "py": py},
        )

    def build_module(self) -> Module:
        m = Module("knn")
        px = m.add_global("px", F64, MAX_N)
        py = m.add_global("py", F64, MAX_N)
        dist = m.add_global("dist", F64, MAX_N)
        used = m.add_global("used", I64, MAX_N)

        b = Builder.new_function(
            m, "main", [("n", I64), ("k", I64), ("qx", F64), ("qy", F64)], VOID
        )
        n = b.function.arg("n")
        k = b.function.arg("k")
        qx = b.function.arg("qx")
        qy = b.function.arg("qy")

        with b.for_loop(b.i64(0), n, hint="i") as i:
            x = b.load(b.gep(px, i), F64)
            y = b.load(b.gep(py, i), F64)
            dx = b.fsub(x, qx)
            dy = b.fsub(y, qy)
            d2 = b.fadd(b.fmul(dx, dx), b.fmul(dy, dy))
            b.store(d2, b.gep(dist, i))
            b.store(b.i64(0), b.gep(used, i))

        with b.for_loop(b.i64(0), k, hint="sel") as _:
            best_d = b.local(F64, b.f64(1e300), hint="bestd")
            best_i = b.local(I64, b.i64(0), hint="besti")
            with b.for_loop(b.i64(0), n, hint="scan") as i:
                u = b.load(b.gep(used, i), I64)
                fresh = b.icmp("eq", u, b.i64(0))
                with b.if_then(fresh, hint="fresh"):
                    d = b.load(b.gep(dist, i), F64)
                    cur = b.get(best_d, F64)
                    closer = b.fcmp("olt", d, cur)
                    with b.if_then(closer, hint="closer"):
                        b.set(best_d, d)
                        b.set(best_i, i)
            bi = b.get(best_i, I64)
            b.store(b.i64(1), b.gep(used, bi))
            b.emit_output(bi)
            b.emit_output(b.get(best_d, F64))
        b.ret()
        return m
