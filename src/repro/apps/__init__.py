"""Benchmark applications.

The paper's 11 benchmarks (8 from Rodinia plus HPCCG, FFT and XSBench)
re-implemented against the mini-IR, each with a typed input specification,
a reference input, a randomized input generator and an output comparator —
everything the SID/MINPSID pipelines and the experiment harness need.
"""

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import all_app_names, get_app, register_app

__all__ = [
    "App",
    "ArgSpec",
    "InputSpec",
    "get_app",
    "all_app_names",
    "register_app",
]
