"""Pathfinder (Rodinia): dynamic programming over a weighted grid.

Row-by-row DP: each cell of the next row adds its weight to the minimum of
the three neighbouring cells of the current row. Branch/select behaviour is
driven entirely by the relative magnitudes of grid weights, which is what
makes its error propagation input-dependent (it is also the paper's Fig. 1
and Fig. 5 running example).
"""

from __future__ import annotations

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.registry import register_app
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import I64, VOID

MAX_ROWS = 40
MAX_COLS = 64


@register_app
class PathfinderApp(App):
    name = "pathfinder"
    suite = "Rodinia"
    description = "Use dynamic programming to find a path in grid"
    rel_tol = 0.0  # integer outputs compare exactly
    abs_tol = 0.0

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("rows", "int", 4, 24),
                ArgSpec("cols", "int", 8, 48),
                ArgSpec("wmax", "int", 2, 40),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {"rows": 10, "cols": 16, "wmax": 10, "seed": 42}

    def encode(self, inp):
        rows, cols = int(inp["rows"]), int(inp["cols"])
        wmax = max(1, int(inp["wmax"]))
        rng = self.data_rng(inp, rows, cols, wmax)
        grid = [rng.randint(0, wmax) for _ in range(rows * cols)]
        return [rows, cols], {"grid": grid}

    def build_module(self) -> Module:
        m = Module("pathfinder")
        grid = m.add_global("grid", I64, MAX_ROWS * MAX_COLS)
        src = m.add_global("src", I64, MAX_COLS)
        dst = m.add_global("dst", I64, MAX_COLS)

        b = Builder.new_function(m, "main", [("rows", I64), ("cols", I64)], VOID)
        rows = b.function.arg("rows")
        cols = b.function.arg("cols")

        # src <- grid row 0
        with b.for_loop(b.i64(0), cols, hint="j0") as j:
            v = b.load(b.gep(grid, j), I64)
            b.store(v, b.gep(src, j))

        last = b.sub(cols, b.i64(1))
        with b.for_loop(b.i64(1), rows, hint="i") as i:
            base = b.mul(i, cols)
            with b.for_loop(b.i64(0), cols, hint="j") as j:
                best = b.local(I64, b.load(b.gep(src, j), I64), hint="best")
                # left neighbour
                has_l = b.icmp("sgt", j, b.i64(0))
                with b.if_then(has_l, hint="left"):
                    jl = b.sub(j, b.i64(1))
                    l = b.load(b.gep(src, jl), I64)
                    cur = b.get(best, I64)
                    lt = b.icmp("slt", l, cur)
                    b.set(best, b.select(lt, l, cur))
                # right neighbour
                has_r = b.icmp("slt", j, last)
                with b.if_then(has_r, hint="right"):
                    jr = b.add(j, b.i64(1))
                    r = b.load(b.gep(src, jr), I64)
                    cur = b.get(best, I64)
                    lt = b.icmp("slt", r, cur)
                    b.set(best, b.select(lt, r, cur))
                w = b.load(b.gep(grid, b.add(base, j)), I64)
                b.store(b.add(w, b.get(best, I64)), b.gep(dst, j))
            # src <- dst
            with b.for_loop(b.i64(0), cols, hint="jc") as j:
                b.store(b.load(b.gep(dst, j), I64), b.gep(src, j))

        # Output: the final DP row and its minimum (the shortest path cost).
        mn = b.local(I64, b.i64(1 << 40), hint="mn")
        with b.for_loop(b.i64(0), cols, hint="jo") as j:
            v = b.load(b.gep(src, j), I64)
            b.emit_output(v)
            cur = b.get(mn, I64)
            lt = b.icmp("slt", v, cur)
            b.set(mn, b.select(lt, v, cur))
        b.emit_output(b.get(mn, I64))
        b.ret()
        return m
