"""Fleet-scale SDC resilience simulation.

Simulates a fleet of VM hosts in which a seeded minority carry sticky
per-opcode fault signatures (:mod:`repro.fi.hostfault`), runs the 11
benchmark apps as a deterministic job mix under SID protection, and
evaluates resilience policies — in-field test scheduling, SDC-evidence
health scoring (:mod:`repro.util.health`), quarantine/readmission — by
fleet-wide SDC escape rate versus throughput cost.

Entry points: ``repro fleet run`` / ``repro fleet sweep`` on the CLI,
:class:`repro.fleet.sim.FleetSim` and :func:`repro.fleet.sweep.run_sweep`
as the library surface, ``repro obs fleet`` for trace-side reporting.
"""

from repro.fleet.hosts import Host, seed_fleet
from repro.fleet.policy import FleetPolicy, parse_policy
from repro.fleet.sim import (
    FleetResult,
    FleetSim,
    render_fleet_summary,
    run_fleet,
)
from repro.fleet.sweep import run_sweep, render_sweep

__all__ = [
    "Host",
    "seed_fleet",
    "FleetPolicy",
    "parse_policy",
    "FleetSim",
    "FleetResult",
    "render_fleet_summary",
    "run_fleet",
    "run_sweep",
    "render_sweep",
]
