"""Fleet host population: mostly clean, a seeded minority defective.

Mirrors the Meta "SDCs at Scale" population model: defect incidence is a
small host-level probability, and each defective host carries one sticky
:class:`~repro.fi.hostfault.HostFaultModel` signature drawn from the
opcode mix the job programs actually execute (so every seeded defect is
reachable by at least one app in the mix).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fi.hostfault import HostFaultModel, sample_host_fault
from repro.util.rng import RngStream

__all__ = ["Host", "seed_fleet"]


@dataclass(frozen=True)
class Host:
    """One simulated VM host; ``defect`` is None for the clean majority."""

    host_id: int
    defect: HostFaultModel | None = None

    @property
    def defective(self) -> bool:
        return self.defect is not None


def seed_fleet(
    n_hosts: int,
    defect_rate: float,
    seed: int,
    opcodes,
    n_defective: int | None = None,
    intermittent_share: float = 0.5,
) -> list[Host]:
    """Build a deterministic host population.

    ``defect_rate`` fixes the defective-host count at
    ``round(n_hosts * defect_rate)`` rather than flipping a coin per host,
    so small smoke fleets (200 hosts, rate 0.01) carry exactly the
    expected defect count; ``n_defective`` overrides the count directly.
    Which hosts are defective, and each signature, derive from ``seed``
    only — two calls with equal arguments return equal fleets.
    """
    if n_hosts < 1:
        raise ConfigError(f"n_hosts must be >= 1, got {n_hosts}")
    if not 0.0 <= defect_rate <= 1.0:
        raise ConfigError(f"defect_rate must be in [0, 1], got {defect_rate}")
    if not opcodes:
        raise ConfigError("seed_fleet needs a non-empty opcode pool")
    count = (
        n_defective if n_defective is not None
        else int(round(n_hosts * defect_rate))
    )
    if not 0 <= count <= n_hosts:
        raise ConfigError(
            f"defective count {count} out of range for {n_hosts} hosts"
        )
    rng = RngStream(seed, "fleet", "hosts")
    defective = set(rng.sample(range(n_hosts), count))
    hosts: list[Host] = []
    for hid in range(n_hosts):
        if hid in defective:
            defect = sample_host_fault(
                rng.child("defect", hid), opcodes,
                intermittent_share=intermittent_share,
            )
            hosts.append(Host(hid, defect))
        else:
            hosts.append(Host(hid))
    return hosts
