"""The fleet simulator: job rounds, in-field tests, quarantine.

Execution model
---------------
Time advances in rounds. Each round every *active* (non-quarantined)
host runs one job from the mix (app rotation staggered by host id);
on the staggered test schedule, hosts additionally run an in-field test
sweeping a rotating window of the opcode space. Clean hosts produce the
golden output by construction, so only defective-host jobs execute the
VM — with the host's sticky signature driving the interpreter's
``sticky`` hook — and only their outcomes can differ from golden.

Evidence and ground truth are kept strictly apart, as in production:
DETECTED and CRASH/HANG outcomes charge health evidence
(:mod:`repro.util.health`); an SDC is *silent* — it is tallied against
the fleet's escape rate but contributes no evidence, and only a directed
in-field test can catch the host that produced it. That separation is
what makes test scheduling a real policy knob rather than bookkeeping.

Determinism
-----------
The schedule, the RNG tree, and every health update derive from the
master seed and run sequentially in the parent; defective-host jobs are
dispatched through :func:`repro.util.parallel.parallel_map`, whose
results arrive in submission order. Summaries are therefore
byte-identical across worker counts, which ``fleet-smoke`` diffs in CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, Trap
from repro.fi.hostfault import BoundHostFault, HostFaultModel
from repro.fi.outcome import classify_run
from repro.fleet.hosts import Host, seed_fleet
from repro.fleet.jobs import AppJobSpec, build_job_specs, job_mix_opcodes
from repro.fleet.policy import FleetPolicy
from repro.obs.core import current as _obs_current
from repro.util.health import HealthPolicy, HealthTracker, QUARANTINED
from repro.util.parallel import parallel_map
from repro.util.rng import RngStream, derive_seed
from repro.util.tables import format_table

__all__ = ["FleetResult", "FleetSim", "render_fleet_summary", "run_fleet"]

#: Job-equivalents per in-field probe execution: a probe is one directed
#: operation against a reference, a job is thousands of instructions.
PROBE_COST = 1.0 / 4096.0

#: Hang budget for defective-host jobs, as in :mod:`repro.fi.injector`.
_HANG_FACTOR = 8


# ---------------------------------------------------------------------------
# Worker side: run one defective-host job under its sticky signature.
# ---------------------------------------------------------------------------

_APP_CACHE: dict = {}
_BIND_CACHE: dict = {}


def _app_state(app_name: str):
    state = _APP_CACHE.get(app_name)
    if state is None:
        from repro.apps.registry import get_app

        app = get_app(app_name)
        args, bindings = app.encode(app.reference_input)
        golden = app.program.run(args=args, bindings=bindings)
        state = _APP_CACHE[app_name] = (
            app.program, args, bindings, golden.output,
            golden.steps * _HANG_FACTOR + 10_000,
            app.rel_tol, app.abs_tol,
        )
    return state


def _run_fleet_job(item):
    """One defective-host job: sticky run + outcome classification.

    ``item`` is a flat picklable tuple; the per-process caches make the
    golden run and the signature binding one-time costs per worker.
    Returns ``(outcome_name, visits, corrupted, detected)``.
    """
    (app_name, protected, opcode, bit, mode, fseed,
     fire_rate, pattern_bits, salt) = item
    program, args, bindings, golden_output, limit, rel_tol, abs_tol = (
        _app_state(app_name)
    )
    bind_key = (app_name, protected, opcode, bit, mode, fseed,
                fire_rate, pattern_bits)
    bound = _BIND_CACHE.get(bind_key)
    if bound is None:
        model = HostFaultModel(
            opcode=opcode, bit=bit, mode=mode, seed=fseed,
            fire_rate=fire_rate, pattern_bits=pattern_bits,
        )
        bound = _BIND_CACHE[bind_key] = BoundHostFault(
            model, program, protected
        )
    sticky = bound.start_run(salt)
    trap = None
    output = None
    try:
        result = program.run(
            args=args, bindings=bindings, sticky=sticky, step_limit=limit
        )
        output = result.output
    except Trap as t:
        trap = t
    outcome = classify_run(golden_output, output, trap, rel_tol, abs_tol)
    return (outcome.name, sticky.visits, sticky.corrupted, sticky.detected)


# ---------------------------------------------------------------------------
# Parent side: the round loop.
# ---------------------------------------------------------------------------

@dataclass
class FleetResult:
    """Aggregate outcome of one fleet simulation."""

    n_hosts: int
    rounds: int
    policy: FleetPolicy
    seed: int
    apps: tuple
    jobs_run: int
    sdc_escapes: int
    detected: int
    crashes: int
    masked: int
    tests_run: int
    test_catches: int
    quarantines: int
    readmissions: int
    degraded_rounds: int
    test_cost: float
    dup_cost: float
    idle_cost: float
    #: (host_id, opcode, bit, mode, status, evidence, escapes, caught_round)
    defective: list

    @property
    def capacity(self) -> int:
        return self.n_hosts * self.rounds

    @property
    def escape_rate(self) -> float:
        """SDC escapes per job actually run (the per-work risk)."""
        return self.sdc_escapes / self.jobs_run if self.jobs_run else 0.0

    @property
    def schedule_escape_rate(self) -> float:
        """SDC escapes per *scheduled* host-round.

        The denominator is fixed by (hosts, rounds) rather than by how
        many jobs the policy let run — a stricter policy quarantines
        sooner, shrinking ``jobs_run``, which can nudge the per-job
        :attr:`escape_rate` *up* even as absolute escapes fall. Policy
        comparisons (the sweep's monotonicity gate) use this rate so the
        ladder is judged on what reached users, not on the denominator.
        """
        return self.sdc_escapes / self.capacity if self.capacity else 0.0

    @property
    def throughput_cost(self) -> float:
        if not self.capacity:
            return 0.0
        return (self.test_cost + self.dup_cost + self.idle_cost) / self.capacity

    @property
    def caught_all(self) -> bool:
        return all(row[7] >= 0 for row in self.defective)


class FleetSim:
    """One simulation instance; :meth:`run` executes the round loop."""

    def __init__(
        self,
        hosts: list,
        specs: list,
        policy: FleetPolicy,
        seed: int,
        rounds: int,
        workers: int | None = None,
    ) -> None:
        if rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {rounds}")
        if not specs:
            raise ConfigError("fleet simulation needs a non-empty job mix")
        self.hosts = hosts
        self.specs = specs
        self.policy = policy
        self.seed = seed
        self.rounds = rounds
        self.workers = workers
        self.health = HealthTracker(
            HealthPolicy(policy.quarantine_at, policy.readmit_after)
        )
        self.opcode_space = sorted(job_mix_opcodes(specs))
        self.rng = RngStream(seed, "fleet", "sim")

    # -- schedule helpers ----------------------------------------------
    def _job_for(self, host: Host, rnd: int) -> AppJobSpec:
        return self.specs[(host.host_id + rnd) % len(self.specs)]

    def _due_for_test(self, host: Host, rnd: int) -> bool:
        te = self.policy.test_every
        return te > 0 and (host.host_id + rnd) % te == 0

    def _test_window(self, rnd: int) -> list:
        space = self.opcode_space
        k = max(1, min(len(space), round(len(space) * self.policy.test_coverage)))
        if k >= len(space):
            return list(space)
        start = (rnd * k) % len(space)
        return [space[(start + i) % len(space)] for i in range(k)]

    # -- main loop ------------------------------------------------------
    def run(self) -> FleetResult:
        t = _obs_current()
        pol = self.policy
        n = len(self.hosts)
        floor = int(pol.min_capacity * n)
        jobs_run = escapes = detected = crashes = masked = 0
        tests_run = catches = quarantines = readmissions = degraded = 0
        test_cost = dup_cost = idle_cost = 0.0
        escapes_by_host: dict[int, int] = {}
        caught_round: dict[int, int] = {}

        for rnd in range(self.rounds):
            active = [
                h for h in self.hosts
                if self.health.status(h.host_id) != QUARANTINED
            ]
            # Graceful degradation: quarantine may not starve the fleet.
            if len(active) < floor:
                victims = sorted(
                    self.health.quarantined(),
                    key=lambda e: (self.health.record(e).score, e),
                )
                while len(active) < floor and victims:
                    hid = victims.pop(0)
                    self.health.force_readmit(hid)
                    readmissions += 1
                    active.append(self.hosts[hid])
                active.sort(key=lambda h: h.host_id)
                degraded += 1
                if t is not None:
                    t.count("fleet.degraded")
                    t.emit("fleet.degraded", {"round": rnd, "active": len(active)})

            # Job phase: clean hosts produce golden output for free.
            items, item_hosts = [], []
            for host in active:
                spec = self._job_for(host, rnd)
                jobs_run += 1
                dup_cost += spec.dup_overhead
                if host.defect is None or host.defect.opcode not in spec.opcodes:
                    continue
                d = host.defect
                items.append((
                    spec.app_name, spec.protected, d.opcode, d.bit, d.mode,
                    d.seed, d.fire_rate, d.pattern_bits,
                    derive_seed(self.seed, "job", rnd, host.host_id),
                ))
                item_hosts.append(host)
            if t is not None:
                t.count("fleet.jobs", len(active))
            results = (
                parallel_map(_run_fleet_job, items, workers=self.workers)
                if items else []
            )
            for host, (outcome, visits, corrupted, ndet) in zip(
                item_hosts, results
            ):
                hid = host.host_id
                if outcome == "SDC":
                    escapes += 1
                    escapes_by_host[hid] = escapes_by_host.get(hid, 0) + 1
                    if t is not None:
                        t.count("fleet.sdc_escapes")
                elif outcome == "DETECTED":
                    detected += 1
                    self.health.charge(hid, "detected")
                    if t is not None:
                        t.count("fleet.detected")
                elif outcome in ("CRASH", "HANG"):
                    crashes += 1
                    self.health.charge(hid, "crash")
                    if t is not None:
                        t.count("fleet.crashes")
                elif corrupted:
                    masked += 1
                    if t is not None:
                        t.count("fleet.masked")

            # In-field test phase. Quarantined hosts are only re-tested
            # when the policy readmits at all.
            window = self._test_window(rnd) if pol.test_every else []
            for host in self.hosts:
                if not self._due_for_test(host, rnd):
                    continue
                in_quarantine = (
                    self.health.status(host.host_id) == QUARANTINED
                )
                if in_quarantine and pol.readmit_after <= 0:
                    continue
                tests_run += 1
                test_cost += pol.test_depth * len(window) * PROBE_COST
                if t is not None:
                    t.count("fleet.tests")
                caught = False
                if host.defect is not None and host.defect.opcode in window:
                    caught = host.defect.in_field_probe(
                        self.rng.child("test", rnd, host.host_id),
                        pol.test_depth,
                    )
                if caught:
                    catches += 1
                    self.health.charge(host.host_id, "test_fail")
                    if t is not None:
                        t.count("fleet.test_catches")
                        t.emit("fleet.test_fail", {
                            "round": rnd, "host": host.host_id,
                            "opcode": host.defect.opcode,
                        })
                elif in_quarantine:
                    if self.health.clear_pass(host.host_id):
                        readmissions += 1
                        if t is not None:
                            t.count("fleet.readmissions")
                            t.emit("fleet.readmit", {
                                "round": rnd, "host": host.host_id,
                            })

            # Quarantine transitions this round.
            for hid in self.health.quarantined():
                if hid not in caught_round:
                    caught_round[hid] = rnd
                    quarantines += 1
                    if t is not None:
                        t.count("fleet.quarantines")
                        t.emit("fleet.quarantine", {
                            "round": rnd, "host": hid,
                            "score": self.health.record(hid).score,
                        })

            idle_cost += float(n - len(active))
            if t is not None:
                t.emit("fleet.round", {
                    "round": rnd,
                    "active": len(active),
                    "escapes": escapes,
                    "quarantined": len(self.health.quarantined()),
                }, kind="event")

        defective_rows = []
        for host in self.hosts:
            if host.defect is None:
                continue
            d = host.defect
            defective_rows.append((
                host.host_id, d.opcode, d.bit, d.mode,
                self.health.status(host.host_id),
                self.health.record(host.host_id).score,
                escapes_by_host.get(host.host_id, 0),
                caught_round.get(host.host_id, -1),
            ))
        result = FleetResult(
            n_hosts=n, rounds=self.rounds, policy=pol, seed=self.seed,
            apps=tuple(s.app_name for s in self.specs),
            jobs_run=jobs_run, sdc_escapes=escapes, detected=detected,
            crashes=crashes, masked=masked, tests_run=tests_run,
            test_catches=catches, quarantines=quarantines,
            readmissions=readmissions, degraded_rounds=degraded,
            test_cost=test_cost, dup_cost=dup_cost, idle_cost=idle_cost,
            defective=defective_rows,
        )
        if t is not None:
            t.emit("fleet.summary", {
                "hosts": n, "rounds": self.rounds,
                "policy": pol.describe(),
                "jobs": jobs_run, "escapes": escapes,
                "escape_rate": result.escape_rate,
                "throughput_cost": result.throughput_cost,
                "quarantines": quarantines,
                "caught_all": result.caught_all,
            })
        return result


def run_fleet(
    n_hosts: int,
    defect_rate: float,
    policy: FleetPolicy,
    seed: int,
    rounds: int = 32,
    apps=None,
    n_defective: int | None = None,
    workers: int | None = None,
) -> FleetResult:
    """Seed a fleet, prepare the job mix, simulate — the CLI's one call."""
    specs = build_job_specs(apps, protection=policy.protection, seed=seed)
    hosts = seed_fleet(
        n_hosts, defect_rate, seed, job_mix_opcodes(specs),
        n_defective=n_defective,
    )
    sim = FleetSim(hosts, specs, policy, seed, rounds, workers=workers)
    return sim.run()


def render_fleet_summary(result: FleetResult) -> str:
    """Human summary; timestamp-free so CI can byte-diff it."""
    pol = result.policy
    overview = format_table(
        ["Metric", "Value"],
        [
            ["hosts", str(result.n_hosts)],
            ["rounds", str(result.rounds)],
            ["job mix", " ".join(result.apps)],
            ["policy", pol.describe()],
            ["jobs run", str(result.jobs_run)],
            ["SDC escapes", str(result.sdc_escapes)],
            ["escape rate", f"{result.escape_rate:.6f}"],
            ["detected (duplication)", str(result.detected)],
            ["crashes/hangs", str(result.crashes)],
            ["masked corruptions", str(result.masked)],
            ["in-field tests", str(result.tests_run)],
            ["test catches", str(result.test_catches)],
            ["quarantines", str(result.quarantines)],
            ["readmissions", str(result.readmissions)],
            ["degraded rounds", str(result.degraded_rounds)],
            ["throughput cost", f"{result.throughput_cost:.6f}"],
            ["  · testing", f"{result.test_cost / result.capacity:.6f}"],
            ["  · duplication", f"{result.dup_cost / result.capacity:.6f}"],
            ["  · quarantine idle", f"{result.idle_cost / result.capacity:.6f}"],
        ],
        title="Fleet summary",
    )
    rows = [
        [
            f"host{hid}", opcode, str(bit), mode, status, str(score),
            str(esc), str(caught) if caught >= 0 else "never",
        ]
        for hid, opcode, bit, mode, status, score, esc, caught
        in result.defective
    ]
    if not rows:
        rows = [["(none)", "-", "-", "-", "-", "-", "-", "-"]]
    defects = format_table(
        ["Host", "Opcode", "Bit", "Mode", "Status", "Evidence",
         "Escapes", "Caught@round"],
        rows,
        title="Defective hosts",
    )
    return overview + "\n\n" + defects
