"""The fleet's job mix: the 11 apps prepared as dispatchable job specs.

Preparing an app once — golden run, SID selection at the policy's
protection level via the static model (:mod:`repro.analysis`), flip-info
opcode census — makes each fleet job cheap: clean hosts produce the
golden output by construction (no VM run), and only defective-host jobs
and in-field tests ever execute instructions. That asymmetry is what
makes thousand-host fleets tractable on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.registry import all_app_names, get_app
from repro.errors import ConfigError
from repro.sid.profiles import build_profile_from_source
from repro.sid.selection import select_instructions

__all__ = ["AppJobSpec", "build_job_specs", "job_mix_opcodes"]


@dataclass(frozen=True)
class AppJobSpec:
    """One app of the job mix, fully prepared for fleet dispatch.

    ``protected`` is the SID-duplicated iid set (knapsack selection at
    the policy's protection level), ``dup_overhead`` the fraction of
    dynamic cycles that duplication re-executes (the selection's used
    budget) — charged against fleet throughput for *every* job, clean or
    not, because protection runs fleet-wide. ``opcodes`` is the app's
    value-producing opcode census, the reachable surface for sticky
    defects and the space in-field tests sweep.
    """

    app_name: str
    args: tuple
    bindings: tuple  # ((name, tuple(values)), ...) — hashable/picklable
    rel_tol: float
    abs_tol: float
    golden_output: tuple
    golden_steps: int
    protected: tuple
    dup_overhead: float
    opcodes: frozenset


def _freeze_bindings(bindings: dict) -> tuple:
    return tuple(sorted((k, tuple(v)) for k, v in bindings.items()))


def build_job_specs(
    app_names=None,
    protection: float = 0.5,
    seed: int = 2022,
) -> list[AppJobSpec]:
    """Prepare the job mix (Table-I order) at one protection level.

    Deterministic in ``(app_names, protection, seed)``: the static-model
    profile source injects nothing, and the knapsack is deterministic,
    so two processes build identical specs — the property the fleet's
    byte-identical-across-workers guarantee rests on.
    """
    names = list(app_names) if app_names else all_app_names()
    if not names:
        raise ConfigError("fleet job mix needs at least one app")
    specs: list[AppJobSpec] = []
    for name in names:
        app = get_app(name)
        program = app.program
        args, bindings = app.encode(app.reference_input)
        golden = program.run(args=args, bindings=bindings)
        protected: tuple = ()
        dup_overhead = 0.0
        if protection > 0.0:
            profile = build_profile_from_source(
                program, args, bindings, source="model", seed=seed,
                rel_tol=app.rel_tol, abs_tol=app.abs_tol,
            )
            selection = select_instructions(profile, protection)
            protected = tuple(sorted(selection.selected))
            dup_overhead = selection.used_budget
        opcodes = frozenset(
            instr.opcode
            for instr in program.module.instructions()
            if instr.iid in program.flip_info
        )
        specs.append(
            AppJobSpec(
                app_name=name,
                args=tuple(args),
                bindings=_freeze_bindings(bindings),
                rel_tol=app.rel_tol,
                abs_tol=app.abs_tol,
                golden_output=tuple(golden.output),
                golden_steps=golden.steps,
                protected=protected,
                dup_overhead=dup_overhead,
                opcodes=opcodes,
            )
        )
    return specs


def job_mix_opcodes(specs) -> frozenset:
    """Union of value-producing opcodes across the mix — the defect pool."""
    out: frozenset = frozenset()
    for spec in specs:
        out = out | spec.opcodes
    return out
