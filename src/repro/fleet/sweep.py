"""Policy sweep: escape rate vs. throughput cost across the policy axis.

The DETOx framing — detection is a cost/coverage knob, not a fixed
mechanism — made concrete: sweep one fleet along a ladder of policies
from lax to paranoid, holding the fleet seed (hence the host population,
defect signatures, and job schedule) fixed, and chart how the SDC escape
rate falls as the resilience spend rises. Because the corruption
evidence stream is identical across rungs, the tradeoff is structurally
monotone: a stricter policy can only catch each defective host sooner.

The rate column (and the monotonicity gate) is *escapes per scheduled
host-round*, whose denominator is fixed across the ladder; the per-job
rate of a single run's summary would let early quarantine shrink the
denominator and mask an improvement (see
:attr:`~repro.fleet.sim.FleetResult.schedule_escape_rate`).
"""

from __future__ import annotations

from dataclasses import replace

from repro.fleet.policy import FleetPolicy, PRESETS
from repro.fleet.sim import FleetResult, run_fleet
from repro.util.tables import format_table

__all__ = ["SWEEP_LADDER", "run_sweep", "render_sweep", "sweep_is_monotone"]

#: The default ladder, lax → strict: test more often/deeper and
#: quarantine on less evidence as you climb.
SWEEP_LADDER: tuple[tuple[str, FleetPolicy], ...] = (
    ("lax", PRESETS["lax"]),
    ("default", PRESETS["default"]),
    ("strict", replace(
        PRESETS["default"], test_every=2, test_depth=128, quarantine_at=2
    )),
    ("paranoid", PRESETS["paranoid"]),
)


def run_sweep(
    n_hosts: int,
    defect_rate: float,
    seed: int,
    rounds: int = 32,
    apps=None,
    n_defective: int | None = None,
    workers: int | None = None,
    ladder=SWEEP_LADDER,
) -> list[tuple[str, FleetResult]]:
    """Simulate the same fleet under each ladder policy."""
    out = []
    for name, policy in ladder:
        result = run_fleet(
            n_hosts, defect_rate, policy, seed, rounds=rounds, apps=apps,
            n_defective=n_defective, workers=workers,
        )
        out.append((name, result))
    return out


def sweep_is_monotone(results) -> bool:
    """Escape rate non-increasing up the ladder — the acceptance gate.

    Judged on :attr:`~repro.fleet.sim.FleetResult.schedule_escape_rate`
    (escapes per scheduled host-round, fixed denominator), not the
    per-job rate: a stricter policy quarantines sooner and runs fewer
    jobs, which can raise escapes-per-job while delivering strictly
    fewer corrupted results overall.
    """
    rates = [r.schedule_escape_rate for _, r in results]
    return all(a >= b for a, b in zip(rates, rates[1:]))


def render_sweep(results) -> str:
    """The tradeoff table (timestamp-free, CI-diffable)."""
    rows = []
    for name, r in results:
        rows.append([
            name,
            str(r.policy.test_every),
            str(r.policy.test_depth),
            str(r.policy.quarantine_at),
            str(r.sdc_escapes),
            f"{r.schedule_escape_rate:.6f}",
            f"{r.throughput_cost:.6f}",
            str(r.quarantines),
            "yes" if r.caught_all else "no",
        ])
    table = format_table(
        ["Policy", "TestEvery", "Depth", "Quarantine@", "Escapes",
         "EscapeRate", "ThroughputCost", "Quarantined", "CaughtAll"],
        rows,
        title="Fleet policy sweep (escape rate vs. throughput cost)",
    )
    verdict = (
        "monotone: escape rate non-increasing lax->paranoid"
        if sweep_is_monotone(results)
        else "NOT MONOTONE: escape rate increased along the ladder"
    )
    return table + "\n" + verdict
