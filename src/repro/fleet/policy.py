"""Fleet resilience policies: the knobs the simulator evaluates.

A :class:`FleetPolicy` bundles the operational levers the Meta and DETOx
papers frame as cost-vs-coverage decisions: how often and how deeply to
run in-field tests, how much of the opcode space each test sweeps, how
much evidence quarantines a host, when a quarantined host is readmitted,
and how low quarantine may push capacity before the scheduler degrades
gracefully and returns suspects to service.

Policies parse from the CLI as ``key=value`` lists (``--policy
test_every=4,quarantine_at=3``) on top of named presets.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.errors import ConfigError

__all__ = ["FleetPolicy", "PRESETS", "parse_policy"]


@dataclass(frozen=True)
class FleetPolicy:
    """One resilience configuration under evaluation.

    Parameters
    ----------
    test_every:
        In-field test period in rounds: host ``h`` is tested in round
        ``r`` when ``(h + r) % test_every == 0`` (staggered so the test
        load spreads evenly). 0 disables in-field testing entirely.
    test_depth:
        Probe executions per tested opcode — deeper tests catch marginal
        intermittent defects more reliably, at proportional cost.
    test_coverage:
        Fraction of the fleet's opcode space each test sweeps; the swept
        window rotates round to round, so partial coverage trades catch
        *latency* for per-test cost rather than leaving blind spots.
    quarantine_at:
        Evidence score (:mod:`repro.util.health` weights) that pulls a
        host from service.
    readmit_after:
        Consecutive clean deep tests that readmit a quarantined host;
        0 means quarantine is final. Readmission is honest about risk: an
        intermittent defect can pass tests and return to service.
    protection:
        SID protection level ∈ [0, 1] applied to every job (0 disables
        duplication); the knapsack fraction of dynamic cycles duplicated.
    min_capacity:
        Graceful-degradation floor: when the active fraction of the fleet
        drops below this, the scheduler force-readmits the least-suspect
        quarantined hosts rather than starve throughput.
    """

    test_every: int = 8
    test_depth: int = 64
    test_coverage: float = 1.0
    quarantine_at: int = 3
    readmit_after: int = 0
    protection: float = 0.5
    min_capacity: float = 0.25

    def __post_init__(self) -> None:
        if self.test_every < 0:
            raise ConfigError(f"test_every must be >= 0, got {self.test_every}")
        if self.test_depth < 1:
            raise ConfigError(f"test_depth must be >= 1, got {self.test_depth}")
        if not 0.0 < self.test_coverage <= 1.0:
            raise ConfigError(
                f"test_coverage must be in (0, 1], got {self.test_coverage}"
            )
        if self.quarantine_at < 1:
            raise ConfigError(
                f"quarantine_at must be >= 1, got {self.quarantine_at}"
            )
        if self.readmit_after < 0:
            raise ConfigError(
                f"readmit_after must be >= 0, got {self.readmit_after}"
            )
        if not 0.0 <= self.protection <= 1.0:
            raise ConfigError(
                f"protection must be in [0, 1], got {self.protection}"
            )
        if not 0.0 <= self.min_capacity <= 1.0:
            raise ConfigError(
                f"min_capacity must be in [0, 1], got {self.min_capacity}"
            )

    def describe(self) -> str:
        """Canonical ``key=value`` rendering (stable field order)."""
        parts = []
        for f in fields(self):
            v = getattr(self, f.name)
            parts.append(f"{f.name}={v:g}" if isinstance(v, float) else f"{f.name}={v}")
        return ",".join(parts)


#: Named starting points for ``--policy``; overrides apply on top.
PRESETS: dict[str, FleetPolicy] = {
    "default": FleetPolicy(),
    # Test rarely and shallowly, quarantine reluctantly: the cheap end of
    # the tradeoff curve, with the escape rate to match.
    "lax": FleetPolicy(
        test_every=32, test_depth=16, test_coverage=0.5, quarantine_at=6
    ),
    # Test every round at depth, quarantine on first hard evidence: the
    # expensive low-escape end.
    "paranoid": FleetPolicy(
        test_every=1, test_depth=256, test_coverage=1.0, quarantine_at=1
    ),
    # Final quarantine replaced by test-gated readmission.
    "forgiving": FleetPolicy(readmit_after=3),
}

_INT_FIELDS = {"test_every", "test_depth", "quarantine_at", "readmit_after"}
_FLOAT_FIELDS = {"test_coverage", "protection", "min_capacity"}


def parse_policy(spec: str | None) -> FleetPolicy:
    """Parse ``[preset][,key=value,...]`` into a :class:`FleetPolicy`.

    A bare token with no ``=`` names a preset (first position only);
    everything else must be ``key=value`` over the policy's fields.
    """
    policy = PRESETS["default"]
    if not spec:
        return policy
    overrides: dict[str, object] = {}
    for idx, raw in enumerate(spec.split(",")):
        part = raw.strip()
        if not part:
            continue
        if "=" not in part:
            if idx != 0 or part not in PRESETS:
                known = ", ".join(sorted(PRESETS))
                raise ConfigError(
                    f"bad policy token {part!r}; expected key=value or a "
                    f"leading preset ({known})"
                )
            policy = PRESETS[part]
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key in _INT_FIELDS:
                overrides[key] = int(value)
            elif key in _FLOAT_FIELDS:
                overrides[key] = float(value)
            else:
                names = ", ".join(f.name for f in fields(FleetPolicy))
                raise ConfigError(
                    f"unknown policy key {key!r}; expected one of {names}"
                )
        except ValueError:
            raise ConfigError(
                f"bad value for policy key {key!r}: {value!r}"
            ) from None
    return replace(policy, **overrides) if overrides else policy
