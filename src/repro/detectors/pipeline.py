"""End-to-end detector-zoo pipeline: profile → candidates → frontier → FI.

The detector analogue of :func:`repro.sid.pipeline.classic_sid`: given a
module and its reference input, build the cost/benefit profile (by default
from the *static model* — the objective the ISSUE prescribes: predicted SDC
probability × detector coverage), mine the golden-run value profile, gather
priced candidates from the requested detectors, trace the coverage-vs-
overhead frontier, and optionally validate each frontier configuration with
FI campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.optimizer import (
    DEFAULT_BUDGETS,
    FrontierPoint,
    gather_candidates,
    pareto_frontier,
)
from repro.detectors.validate import ConfigValidation, validate_frontier
from repro.detectors.zoo import DETECTOR_KINDS, DetectorContext, make_detectors
from repro.ir.module import Module
from repro.obs.timers import Stopwatch
from repro.sid.profiles import build_profile_from_source
from repro.vm.interpreter import Program
from repro.vm.profiler import profile_run

__all__ = ["FrontierConfig", "FrontierResult", "build_frontier"]


@dataclass(frozen=True)
class FrontierConfig:
    """Knobs of the detector-frontier pipeline."""

    #: Detector kinds to draw candidates from (``--detectors`` spelling).
    detectors: tuple[str, ...] = DETECTOR_KINDS
    #: Budget ladder as fractions of total dynamic cycles (``--frontier``).
    budgets: tuple[float, ...] = DEFAULT_BUDGETS
    #: Where SDC probabilities come from; the model is the default
    #: objective here (predicted SDC probability × detector coverage).
    profile_source: str = "model"
    #: Faults per static instruction when ``profile_source`` injects.
    per_instruction_trials: int = 20
    seed: int = 2022
    rel_tol: float = 0.0
    abs_tol: float = 0.0
    workers: int | None = 0
    #: Whole-program faults per configuration validation (0 = skip FI).
    validate_faults: int = 0


@dataclass
class FrontierResult:
    """Everything the detector pipeline produces for one program."""

    points: list[FrontierPoint]
    profile: object = field(repr=False, default=None)
    candidates: list = field(repr=False, default_factory=list)
    validations: list[ConfigValidation] = field(default_factory=list)
    stopwatch: Stopwatch = None


def build_frontier(
    module: Module,
    args: list | None,
    bindings: dict[str, list] | None,
    config: FrontierConfig = FrontierConfig(),
) -> FrontierResult:
    """Trace (and optionally FI-validate) one app's detector frontier."""
    sw = Stopwatch()
    program = Program(module)
    with sw.phase("profile"):
        dyn = profile_run(program, args=args, bindings=bindings)
        profile = build_profile_from_source(
            program,
            args,
            bindings,
            source=config.profile_source,
            trials_per_instruction=config.per_instruction_trials,
            seed=config.seed,
            rel_tol=config.rel_tol,
            abs_tol=config.abs_tol,
            workers=config.workers,
            dyn_profile=dyn,
        )
    with sw.phase("candidates"):
        ctx = DetectorContext(
            program=program, profile=profile, args=args, bindings=bindings
        )
        candidates = gather_candidates(
            make_detectors(config.detectors), ctx
        )
    with sw.phase("frontier"):
        points = pareto_frontier(candidates, profile, budgets=config.budgets)
    validations: list[ConfigValidation] = []
    if config.validate_faults > 0:
        with sw.phase("validate"):
            validations = validate_frontier(
                program,
                points,
                config.validate_faults,
                config.seed,
                args=args,
                bindings=bindings,
                rel_tol=config.rel_tol,
                abs_tol=config.abs_tol,
                workers=config.workers,
            )
    return FrontierResult(
        points=points,
        profile=profile,
        candidates=candidates,
        validations=validations,
        stopwatch=sw,
    )
