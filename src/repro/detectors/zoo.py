"""The detector zoo: cost-modeled, coverage-estimated error detectors.

DETOx (PAPERS.md) frames reliable protection as choosing an *optimal
configuration* among detector types with different cost/coverage points.
This module supplies the types. Each :class:`Detector` turns a program plus
its profiles into :class:`Candidate` s — priced in VM cycles by the
:mod:`repro.vm.costmodel` tables and carrying an a-priori coverage estimate
the Pareto optimizer (:mod:`repro.detectors.optimizer`) trades against the
static model's predicted SDC probability, and FI campaigns later measure
(:mod:`repro.detectors.validate`).

The four concrete detectors:

``dup``
    Full duplication + compare before the next sync point — classic SID
    (§II-C), coverage ≈ 1.0 for the protected value, the most expensive.
``store``
    Duplication verified only at the next memory store in the block (the
    SWIFT placement): the comparison rides the store unit off the critical
    path, so the check itself is priced free — but values never reaching a
    store in their block go unverified (coverage 0, candidate dropped).
``range``
    ITHICA-style invariant check against golden-run value envelopes
    (:mod:`repro.detectors.valueprofile`): one cheap ``checkrange`` per
    execution, coverage = the fraction of single-bit flips that escape the
    mined ``[lo, hi]`` band.
``checksum``
    Algorithm-level result checksum for the linear-algebra apps: a
    synthesized function sums the app's solution arrays before every return
    of ``@main`` and traps when the sum leaves its golden value — one
    composite candidate covering the backward slice of those arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.transform import ChecksumSpec, PlanAction
from repro.detectors.valueprofile import ValueProfile, mine_value_profile
from repro.errors import ConfigError
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import GlobalArray
from repro.util.bitops import (
    FLIP_F32,
    FLIP_F64,
    FLIP_INT,
    flip_value,
)
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.interpreter import Program

__all__ = [
    "Candidate",
    "DetectorContext",
    "Detector",
    "DuplicationDetector",
    "StoreOnlyDetector",
    "RangeDetector",
    "ChecksumDetector",
    "CHECKSUM_TARGETS",
    "DETECTOR_KINDS",
    "make_detectors",
]

#: Solution-state globals per linear-algebra app (module name -> globals).
CHECKSUM_TARGETS: dict[str, tuple[str, ...]] = {
    "hpccg": ("x",),
    "lu": ("a",),
    "fft": ("re", "im"),
}

#: Coverage a store-verified duplicate gets when a store follows in-block.
_STORE_COVERAGE = 0.95

#: Coverage credited to checksum-slice instructions (faults can still cancel
#: inside the sum or corrupt state outside the checksummed arrays).
_CHECKSUM_COVERAGE = 0.85


@dataclass(frozen=True)
class Candidate:
    """One purchasable protection item for the optimizer.

    Per-instruction candidates carry a single iid and a ``PlanAction``;
    the checksum's composite candidate covers its whole slice and carries a
    :class:`~repro.detectors.transform.ChecksumSpec` instead.
    """

    detector: str
    iids: tuple[int, ...]
    cost: float  # predicted cycles per run
    coverage: dict[int, float]  # iid -> detection probability estimate
    action: PlanAction | None = None
    checksum: ChecksumSpec | None = None


@dataclass
class DetectorContext:
    """Everything a detector may consult when generating candidates.

    ``profile`` is a :class:`repro.sid.profiles.CostBenefitProfile` (cycles,
    counts, SDC probability per iid); ``value_profile`` is mined lazily on
    first use and shared across detectors.
    """

    program: Program
    profile: object
    args: list | None = None
    bindings: dict | None = None
    cost_model: CostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    value_profile: ValueProfile | None = None

    @property
    def module(self) -> Module:
        return self.program.module

    def values(self) -> ValueProfile:
        if self.value_profile is None:
            self.value_profile = mine_value_profile(
                self.program, args=self.args, bindings=self.bindings
            )
        return self.value_profile


class Detector:
    """Base class: a named detector family producing priced candidates."""

    #: Registry kind (also the CLI spelling in ``--detectors``).
    kind: str = ""

    def candidates(self, ctx: DetectorContext) -> list[Candidate]:
        """Priced candidates for ``ctx``'s program, in deterministic order."""
        raise NotImplementedError


def _live_iids(ctx: DetectorContext):
    """Profile iids that executed at least once, with their instruction."""
    prof = ctx.profile
    for iid in prof.iids:
        if prof.counts.get(iid, 0) <= 0:
            continue
        yield iid, ctx.module.instruction(iid)


class DuplicationDetector(Detector):
    """Full duplication + sync-point compare (classic SID)."""

    kind = "dup"

    def candidates(self, ctx: DetectorContext) -> list[Candidate]:
        check = ctx.cost_model.cost_of("check")
        out = []
        for iid, _ in _live_iids(ctx):
            cost = ctx.profile.cycles[iid] + ctx.profile.counts[iid] * check
            out.append(
                Candidate(
                    detector=self.kind,
                    iids=(iid,),
                    cost=float(cost),
                    coverage={iid: 1.0},
                    action=PlanAction("dup", placement="sync"),
                )
            )
        return out


class StoreOnlyDetector(Detector):
    """Duplication verified only at the next in-block memory store."""

    kind = "store"

    def candidates(self, ctx: DetectorContext) -> list[Candidate]:
        followed = _store_follows(ctx.module)
        out = []
        for iid, _ in _live_iids(ctx):
            if not followed.get(iid, False):
                continue  # pair would be dropped at block end: coverage 0
            # The compare is fused into the store unit and priced free; the
            # duplicate's own cycles are the whole cost.
            out.append(
                Candidate(
                    detector=self.kind,
                    iids=(iid,),
                    cost=float(ctx.profile.cycles[iid]),
                    coverage={iid: _STORE_COVERAGE},
                    action=PlanAction("store"),
                )
            )
        return out


class RangeDetector(Detector):
    """Golden-run range/invariant check (ITHICA-style)."""

    kind = "range"

    def candidates(self, ctx: DetectorContext) -> list[Candidate]:
        values = ctx.values()
        cycles = ctx.cost_model.cost_of("checkrange")
        out = []
        for iid, instr in _live_iids(ctx):
            rec = values.record(iid)
            if rec is None or rec.nan_seen:
                # A NaN inside the golden envelope would make checkrange
                # trap on the golden run itself; no safe invariant exists.
                continue
            escape = _escape_fraction(instr, rec.vmin, rec.vmax)
            if escape <= 0.0:
                continue
            out.append(
                Candidate(
                    detector=self.kind,
                    iids=(iid,),
                    cost=float(ctx.profile.counts[iid] * cycles),
                    coverage={iid: escape},
                    action=PlanAction("range", lo=rec.vmin, hi=rec.vmax),
                )
            )
        return out


class ChecksumDetector(Detector):
    """Algorithm-level solution checksum for the linear-algebra apps."""

    kind = "checksum"

    def __init__(self, targets: dict[str, tuple[str, ...]] | None = None):
        self.targets = CHECKSUM_TARGETS if targets is None else targets

    def candidates(self, ctx: DetectorContext) -> list[Candidate]:
        globals_ = self.targets.get(ctx.module.name)
        if not globals_:
            return []
        slice_iids = _target_store_slice(ctx.module, set(globals_))
        covered = tuple(
            sorted(
                iid
                for iid, _ in _live_iids(ctx)
                if iid in slice_iids
            )
        )
        if not covered:
            return []
        golden = _probe_checksum(ctx, globals_)
        spec = ChecksumSpec(globals_=tuple(globals_), golden=golden)
        return [
            Candidate(
                detector=self.kind,
                iids=covered,
                cost=float(_checksum_cycles(ctx, globals_)),
                coverage={iid: _CHECKSUM_COVERAGE for iid in covered},
                checksum=spec,
            )
        ]


#: Default zoo construction order (also the ``--detectors`` spelling).
DETECTOR_KINDS = ("dup", "range", "store", "checksum")

_REGISTRY = {
    "dup": DuplicationDetector,
    "store": StoreOnlyDetector,
    "range": RangeDetector,
    "checksum": ChecksumDetector,
}


def make_detectors(kinds) -> list[Detector]:
    """Instantiate detectors by kind name, rejecting unknown spellings."""
    out = []
    for kind in kinds:
        cls = _REGISTRY.get(kind)
        if cls is None:
            raise ConfigError(
                f"unknown detector {kind!r}; known: {sorted(_REGISTRY)}"
            )
        out.append(cls())
    return out


# ----------------------------------------------------------------------
# Estimator internals
# ----------------------------------------------------------------------
def _store_follows(module: Module) -> dict[int, bool]:
    """iid -> whether a store appears later in the same basic block."""
    out: dict[int, bool] = {}
    for fn in module.functions.values():
        for blk in fn.blocks.values():
            seen: list[int] = []
            for instr in blk.instructions:
                if instr.opcode == "store":
                    for iid in seen:
                        out[iid] = True
                    seen.clear()
                elif instr.produces_value:
                    out.setdefault(instr.iid, False)
                    seen.append(instr.iid)
    return out


def _flip_info(instr: Instruction) -> tuple[int, int]:
    t = instr.type
    if t.is_float:
        return (FLIP_F64, 64) if t.width == 64 else (FLIP_F32, 32)
    return FLIP_INT, max(1, t.width)


def _escape_fraction(
    instr: Instruction, lo: int | float, hi: int | float
) -> float:
    """Fraction of single-bit flips of the envelope endpoints that leave
    ``[lo, hi]`` (or go NaN) — the range check's a-priori coverage."""
    kind, width = _flip_info(instr)
    samples = (lo, hi) if lo != hi else (lo,)
    escapes = trials = 0
    for v in samples:
        for bit in range(width):
            f = flip_value(v, bit, kind, width)
            trials += 1
            if f != f or f < lo or f > hi:
                escapes += 1
    return escapes / trials if trials else 0.0


def _base_of(value):
    while isinstance(value, Instruction) and value.opcode == "gep":
        value = value.operands[0]
    return value


def _target_store_slice(module: Module, targets: set[str]) -> set[int]:
    """iids whose values flow (through operands) into stores that hit the
    target arrays — the instructions a result checksum can vouch for."""
    work: list = []
    for fn in module.functions.values():
        for instr in fn.instructions():
            if instr.opcode != "store":
                continue
            base = _base_of(instr.operands[1])
            if isinstance(base, GlobalArray) and base.name in targets:
                work.extend(instr.operands)
    sliced: set[int] = set()
    while work:
        v = work.pop()
        if not isinstance(v, Instruction) or v.iid in sliced:
            continue
        sliced.add(v.iid)
        work.extend(v.operands)
    return sliced


def _checksum_cycles(ctx: DetectorContext, globals_) -> float:
    """Predicted per-run cost of the synthesized checksum function."""
    c = ctx.cost_model.cost_of
    per_elem = (
        c("gep") + 2 * c("load") + c("fadd") + c("store")  # body
        + c("load") + c("icmp") + c("condbr") + c("add") + c("store") + c("br")
    )
    elems = sum(ctx.module.get_global(g).size for g in globals_)
    return (
        c("call")
        + c("checkrange")
        + elems * per_elem
        + 2 * c("alloca")
        + c("ret")
    )


def _probe_checksum(ctx: DetectorContext, globals_) -> float:
    """Golden checksum value: run a probe build that emits the sum."""
    from repro.detectors.transform import apply_plan

    probe = apply_plan(
        ctx.module,
        {},
        checksum=ChecksumSpec(globals_=tuple(globals_), probe=True),
    )
    result = Program(probe.module).run(args=ctx.args, bindings=ctx.bindings)
    if not result.output:  # pragma: no cover - @main always returns
        raise ConfigError("checksum probe produced no output")
    return float(result.output[-1])
