"""Golden-run value profiles: the raw material of invariant detectors.

One fault-free run of the program observes every injectable instruction's
produced values through the interpreter's ``sticky`` hook (zero interpreter
changes — the same vehicle the fleet simulator uses to model defective
hosts) and records, per iid: inclusive min/max, whether a NaN was seen,
whether every float value was integral, and the dynamic count. ITHICA-style
range/invariant detectors (:mod:`repro.detectors.zoo`) compile these bounds
into ``checkrange`` instructions that are *golden-safe by construction* —
the bounds were mined inclusively from the very run a campaign replays as
its golden reference.

Profiles are persisted in the campaign cache under
:func:`repro.cache.keys.value_profile_key`, so invariant detectors rebuild
warm without re-running golden executions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.active import active_cache
from repro.cache.keys import value_profile_key
from repro.ir.printer import print_module
from repro.obs.core import current as _obs_current
from repro.vm.interpreter import INJECTABLE_OPCODES, Program

__all__ = ["ValueRecord", "ValueProfile", "mine_value_profile"]


@dataclass(frozen=True)
class ValueRecord:
    """Observed value envelope of one instruction over the golden run."""

    iid: int
    vmin: int | float
    vmax: int | float
    count: int
    nan_seen: bool = False
    all_integral: bool = True

    @property
    def nonnegative(self) -> bool:
        """Sign invariant: the golden run never produced a negative value."""
        return not self.nan_seen and self.vmin >= 0


class _Observer:
    """Sticky hook recording per-iid min/max/NaN/integrality envelopes."""

    def __init__(self, iids) -> None:
        self.iids = set(iids)
        self.stats: dict[int, list] = {}  # iid -> [min, max, count, nan, int]

    def visit(self, iid: int, val):
        if val != val:  # NaN never enters the min/max envelope
            s = self.stats.get(iid)
            if s is None:
                self.stats[iid] = [None, None, 1, True, True]
            else:
                s[2] += 1
                s[3] = True
            return val
        s = self.stats.get(iid)
        if s is None:
            self.stats[iid] = [val, val, 1, False, float(val).is_integer()]
        else:
            if s[0] is None or val < s[0]:
                s[0] = val
            if s[1] is None or val > s[1]:
                s[1] = val
            s[2] += 1
            if s[4] and not float(val).is_integer():
                s[4] = False
        return val


@dataclass(frozen=True)
class ValueProfile:
    """Per-iid value envelopes from one golden run of one input."""

    records: dict[int, ValueRecord]
    #: Dynamic instructions observed (sum of per-iid counts).
    observed: int

    def record(self, iid: int) -> ValueRecord | None:
        return self.records.get(iid)

    def to_payload(self) -> dict:
        """JSON-serializable form for the campaign cache."""
        return {
            "records": {
                str(i): [r.vmin, r.vmax, r.count, r.nan_seen, r.all_integral]
                for i, r in self.records.items()
            },
            "observed": self.observed,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ValueProfile":
        records = {}
        for key, row in payload.get("records", {}).items():
            vmin, vmax, count, nan_seen, all_integral = row
            iid = int(key)
            records[iid] = ValueRecord(
                iid=iid, vmin=vmin, vmax=vmax, count=int(count),
                nan_seen=bool(nan_seen), all_integral=bool(all_integral),
            )
        return cls(records=records, observed=int(payload.get("observed", 0)))


def mine_value_profile(
    program: Program,
    args=None,
    bindings=None,
    cache=None,
) -> ValueProfile:
    """Mine (or load from cache) the value profile of one golden run.

    ``cache`` overrides the ambient campaign cache; pass ``False`` to force
    a fresh mining run.
    """
    store = active_cache() if cache is None else (cache or None)
    key = None
    t = _obs_current()
    if store is not None:
        key = value_profile_key(
            print_module(program.module), args, bindings
        )
        hit = store.get(key)
        if hit is not None:
            if t:
                t.count("detectors.value_profile.cache_hits")
            return ValueProfile.from_payload(hit)

    iids = [
        i.iid
        for i in program.module.instructions()
        if i.opcode in INJECTABLE_OPCODES
    ]
    obs = _Observer(iids)
    program.run(args=args, bindings=bindings, sticky=obs)
    records = {}
    for iid, s in sorted(obs.stats.items()):
        vmin, vmax, count, nan_seen, all_integral = s
        if vmin is None:  # only NaNs ever observed: no usable envelope
            continue
        records[iid] = ValueRecord(
            iid=iid, vmin=vmin, vmax=vmax, count=count,
            nan_seen=nan_seen, all_integral=all_integral,
        )
    profile = ValueProfile(
        records=records, observed=sum(s[2] for s in obs.stats.values())
    )
    if t:
        t.count("detectors.value_profile.mined")
    if store is not None and key is not None:
        store.put(key, profile.to_payload())
    return profile
