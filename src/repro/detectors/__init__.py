"""Detector zoo + multi-detector Pareto optimizer.

The repo's protection story generalized beyond classic SID's single
detector: a :class:`~repro.detectors.zoo.Detector` abstraction with four
concrete implementations (full duplication, store-only duplication,
golden-run range invariants, algorithm-level checksums), each carrying a
cycle cost model and an a-priori coverage estimator; a multi-choice
knapsack optimizer tracing coverage-vs-overhead Pareto frontiers per app;
and FI validation of every configuration. See DESIGN.md §7.10.
"""

from repro.detectors.optimizer import (
    DEFAULT_BUDGETS,
    DetectorConfig,
    FrontierPoint,
    frontier_detector_kinds,
    frontier_is_monotone,
    frontier_is_nondominated,
    gather_candidates,
    pareto_frontier,
    select_configuration,
)
from repro.detectors.pipeline import (
    FrontierConfig,
    FrontierResult,
    build_frontier,
)
from repro.detectors.transform import (
    ChecksumSpec,
    PlanAction,
    ProtectedModule,
    apply_plan,
    duplicate_instructions,
)
from repro.detectors.validate import (
    ConfigValidation,
    validate_config,
    validate_frontier,
)
from repro.detectors.valueprofile import (
    ValueProfile,
    ValueRecord,
    mine_value_profile,
)
from repro.detectors.zoo import (
    CHECKSUM_TARGETS,
    DETECTOR_KINDS,
    Candidate,
    ChecksumDetector,
    Detector,
    DetectorContext,
    DuplicationDetector,
    RangeDetector,
    StoreOnlyDetector,
    make_detectors,
)

__all__ = [
    "Candidate",
    "CHECKSUM_TARGETS",
    "ChecksumDetector",
    "ChecksumSpec",
    "ConfigValidation",
    "DEFAULT_BUDGETS",
    "DETECTOR_KINDS",
    "Detector",
    "DetectorConfig",
    "DetectorContext",
    "DuplicationDetector",
    "FrontierConfig",
    "FrontierPoint",
    "FrontierResult",
    "PlanAction",
    "ProtectedModule",
    "RangeDetector",
    "StoreOnlyDetector",
    "ValueProfile",
    "ValueRecord",
    "apply_plan",
    "build_frontier",
    "duplicate_instructions",
    "frontier_detector_kinds",
    "frontier_is_monotone",
    "frontier_is_nondominated",
    "gather_candidates",
    "make_detectors",
    "mine_value_profile",
    "pareto_frontier",
    "select_configuration",
    "validate_config",
    "validate_frontier",
]
