"""FI validation of detector configurations: predicted vs. measured.

Every Pareto-frontier point is a *prediction* — cycle costs from the cost
model, coverage from a-priori estimators. This module closes the loop the
way the paper validates the static story (§III): one whole-program FI
campaign on the unprotected program, one per protected configuration, and
``measured coverage = 1 − SDC_prot / SDC_unprot`` on the same input. The
campaigns go through :func:`repro.fi.run_campaign`, so they inherit the
cache (keyed on the protected module's text), the batch engine and the
supervisor for free.

Results are published as ``detectors.*`` counters and one
``detectors.config`` event per configuration, which feed the "Detector
configurations" table of ``repro obs report``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detectors.optimizer import DetectorConfig, FrontierPoint
from repro.detectors.transform import ProtectedModule, apply_plan
from repro.fi.campaign import (
    CampaignResult,
    per_detector_detection,
    run_campaign,
)
from repro.fi.outcome import Outcome
from repro.obs.core import current as _obs_current
from repro.sid.coverage import measured_coverage
from repro.vm.interpreter import Program

__all__ = ["ConfigValidation", "validate_config", "validate_frontier"]


@dataclass(frozen=True)
class ConfigValidation:
    """Measured behaviour of one detector configuration on one input."""

    config: DetectorConfig
    protected: ProtectedModule
    unprotected: CampaignResult
    campaign: CampaignResult
    #: 1 − SDC_prot/SDC_unprot, or None when the baseline saw no SDCs.
    measured_coverage: float | None
    #: Fraction of trials classified DETECTED under this configuration.
    detected_rate: float
    #: Measured dynamic-cycle overhead of the protected golden run.
    measured_overhead: float


def _protect(program: Program, config: DetectorConfig) -> ProtectedModule:
    return apply_plan(program.module, config.plan, checksum=config.checksum)


def validate_config(
    program: Program,
    config: DetectorConfig,
    n_faults: int,
    seed: int,
    args=None,
    bindings=None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    workers: int | None = 0,
    baseline: CampaignResult | None = None,
    app: str | None = None,
) -> ConfigValidation:
    """Protect ``program`` per ``config`` and measure it with FI campaigns.

    ``baseline`` is the unprotected campaign on the same input; pass it in
    when validating several configurations to pay for it once.
    """
    if baseline is None:
        baseline = run_campaign(
            program, n_faults, seed, args=args, bindings=bindings,
            rel_tol=rel_tol, abs_tol=abs_tol, workers=workers,
        )
    protected = _protect(program, config)
    prot_program = Program(protected.module)
    campaign = run_campaign(
        prot_program, n_faults, seed, args=args, bindings=bindings,
        rel_tol=rel_tol, abs_tol=abs_tol, workers=workers,
    )
    cov = measured_coverage(
        baseline.counts.sdc_probability, campaign.counts.sdc_probability
    )
    detected = campaign.counts.probability(Outcome.DETECTED)
    base_cycles = _golden_cycles(program, args, bindings)
    prot_cycles = _golden_cycles(prot_program, args, bindings)
    overhead = (
        (prot_cycles - base_cycles) / base_cycles if base_cycles else 0.0
    )
    per_kind = per_detector_detection(campaign, protected)
    t = _obs_current()
    if t:
        t.count("detectors.validations")
        for kind, n in sorted(config.by_kind.items()):
            t.count(f"detectors.assigned.{kind}", n)
        t.emit(
            "detectors.config",
            {
                "app": app or program.module.name,
                "budget": config.budget,
                "assigned": dict(sorted(config.by_kind.items())),
                "per_detector": {
                    k: list(v) for k, v in sorted(per_kind.items())
                },
                "checks": protected.checks,
                "range_checks": protected.range_checks,
                "predicted_overhead": config.overhead,
                "measured_overhead": overhead,
                "predicted_coverage": config.coverage,
                "measured_coverage": cov,
                "detected_rate": detected,
                "trials": campaign.trials,
            },
        )
    return ConfigValidation(
        config=config,
        protected=protected,
        unprotected=baseline,
        campaign=campaign,
        measured_coverage=cov,
        detected_rate=detected,
        measured_overhead=overhead,
    )


def validate_frontier(
    program: Program,
    points: list[FrontierPoint],
    n_faults: int,
    seed: int,
    **kwargs,
) -> list[ConfigValidation]:
    """Validate each distinct configuration on a frontier, reusing the
    unprotected baseline campaign across all of them."""
    args = kwargs.get("args")
    bindings = kwargs.get("bindings")
    baseline = run_campaign(
        program, n_faults, seed, args=args, bindings=bindings,
        rel_tol=kwargs.get("rel_tol", 0.0),
        abs_tol=kwargs.get("abs_tol", 0.0),
        workers=kwargs.get("workers", 0),
    )
    out: list[ConfigValidation] = []
    seen: dict[int, ConfigValidation] = {}
    for p in points:
        marker = id(p.config)
        if marker in seen:
            out.append(seen[marker])
            continue
        v = validate_config(
            program, p.config, n_faults, seed,
            baseline=baseline, **kwargs,
        )
        seen[marker] = v
        out.append(v)
    return out


def _golden_cycles(program: Program, args, bindings) -> int:
    """Total dynamic cycles of one golden run (cost-model weighted)."""
    from repro.vm.profiler import profile_run

    return profile_run(program, args=args, bindings=bindings).total_cycles
