"""Multi-detector Pareto optimizer: coverage-vs-overhead frontiers.

Generalizes the classic 0-1 knapsack of ``sid/knapsack.py`` (one detector,
buy/don't-buy) to a *multi-choice* knapsack: per instruction the optimizer
assigns at most one detector from the zoo — or none — plus at most one
module-level checksum, maximizing the objective

    Σ  sdc_mass(iid) × coverage_d(iid)      (predicted-SDC mass detected)

under a cycle budget, where ``sdc_mass`` is the static model's (or FI's)
predicted SDC probability weighted by execution count. Sweeping the budget
ladder with a best-so-far rule traces the coverage-vs-overhead frontier:
feasibility is monotone in budget (any cheaper configuration remains
affordable), so the frontier is non-dominated and monotone *by
construction* — the property the ``detector-smoke`` CI job gates.

Selection within one budget is greedy by value density with deterministic
tie-breaking on (density, iid, detector kind), mirroring
:func:`repro.sid.knapsack.greedy_knapsack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detectors.transform import ChecksumSpec, PlanAction
from repro.detectors.zoo import Candidate, DetectorContext, Detector
from repro.obs.core import current as _obs_current

__all__ = [
    "DetectorConfig",
    "FrontierPoint",
    "gather_candidates",
    "select_configuration",
    "pareto_frontier",
    "frontier_is_monotone",
    "frontier_is_nondominated",
    "frontier_detector_kinds",
]

#: Default budget ladder (fractions of the program's total dynamic cycles).
DEFAULT_BUDGETS = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75)


@dataclass(frozen=True)
class DetectorConfig:
    """One point in configuration space: a full detector assignment."""

    #: Budget this configuration was selected under (fraction of cycles).
    budget: float
    #: Per-iid plan actions, ready for ``apply_plan``.
    plan: dict[int, PlanAction]
    #: Module-level checksum, if purchased.
    checksum: ChecksumSpec | None
    #: iid -> detector kind, for reporting.
    assigned: dict[int, str]
    #: Predicted cycles spent on detection per run.
    cost: float
    #: Predicted overhead (cost / total golden cycles).
    overhead: float
    #: Predicted fraction of SDC mass detected, in [0, 1].
    coverage: float
    #: Detector kind -> number of instructions it protects.
    by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def kinds(self) -> tuple[str, ...]:
        """Detector kinds present in this configuration, sorted."""
        kinds = set(self.by_kind)
        if self.checksum is not None:
            kinds.add("checksum")
        return tuple(sorted(kinds))


@dataclass(frozen=True)
class FrontierPoint:
    """One budget rung of the frontier (best configuration so far)."""

    budget: float
    config: DetectorConfig


def gather_candidates(
    detectors: list[Detector], ctx: DetectorContext
) -> list[Candidate]:
    """All candidates from all detectors, in deterministic order."""
    out: list[Candidate] = []
    for det in detectors:
        out.extend(det.candidates(ctx))
    return out


def _value_of(cand: Candidate, mass: dict[int, float]) -> float:
    return sum(mass.get(i, 0.0) * cov for i, cov in cand.coverage.items())


def select_configuration(
    candidates: list[Candidate],
    budget: float,
    profile,
) -> DetectorConfig:
    """Greedy multi-choice selection under ``budget`` (cycle fraction).

    ``profile`` is the cost/benefit profile supplying ``sdc_mass`` weights
    and ``total_cycles`` (the budget denominator).
    """
    total = float(profile.total_cycles) or 1.0
    budget_cycles = budget * total
    mass = {iid: profile.sdc_mass(iid) for iid in profile.iids}

    def density(c: Candidate) -> float:
        v = _value_of(c, mass)
        return v / c.cost if c.cost > 0 else (float("inf") if v > 0 else 0.0)

    order = sorted(
        candidates,
        key=lambda c: (-density(c), min(c.iids), c.detector),
    )
    plan: dict[int, PlanAction] = {}
    assigned: dict[int, str] = {}
    checksum: ChecksumSpec | None = None
    checksum_cov: dict[int, float] = {}
    spent = 0.0
    for cand in order:
        if _value_of(cand, mass) <= 0.0:
            continue
        if spent + cand.cost > budget_cycles:
            continue
        if cand.checksum is not None:
            if checksum is not None:
                continue
            checksum = cand.checksum
            checksum_cov = dict(cand.coverage)
            spent += cand.cost
        else:
            iid = cand.iids[0]
            if iid in plan:
                continue
            plan[iid] = cand.action
            assigned[iid] = cand.detector
            spent += cand.cost
            # Shrink the remaining mass: the marginal value of a second
            # detector on this iid is only what this one missed.
            mass[iid] = mass[iid] * (1.0 - cand.coverage[iid])

    full_mass = {iid: profile.sdc_mass(iid) for iid in profile.iids}
    total_mass = sum(full_mass.values())
    covered = 0.0
    per_iid_cov = {
        iid: next(
            c.coverage[iid]
            for c in candidates
            if c.checksum is None and c.iids[0] == iid
            and c.detector == assigned[iid]
        )
        for iid in assigned
    }
    for iid, m in full_mass.items():
        cov = per_iid_cov.get(iid, 0.0)
        cs = checksum_cov.get(iid, 0.0)
        combined = 1.0 - (1.0 - cov) * (1.0 - cs)
        covered += m * combined
    by_kind: dict[str, int] = {}
    for kind in assigned.values():
        by_kind[kind] = by_kind.get(kind, 0) + 1
    if checksum is not None:
        by_kind["checksum"] = len(checksum_cov)
    return DetectorConfig(
        budget=budget,
        plan=plan,
        checksum=checksum,
        assigned=assigned,
        cost=spent,
        overhead=spent / total,
        coverage=(covered / total_mass) if total_mass > 0 else 0.0,
        by_kind=by_kind,
    )


def pareto_frontier(
    candidates: list[Candidate],
    profile,
    budgets=DEFAULT_BUDGETS,
) -> list[FrontierPoint]:
    """Sweep the budget ladder; each rung gets the best affordable config.

    Every rung re-ranks *all* configurations computed so far by
    (coverage desc, cost asc) among those whose cost fits its budget — a
    cheaper configuration found at a higher rung retroactively cannot exist
    below a pricier one, so the frontier is non-dominated and monotone
    (budget up ⇒ feasible set grows ⇒ coverage never drops) by
    construction.
    """
    t = _obs_current()
    ladder = sorted(set(float(x) for x in budgets))
    total = float(profile.total_cycles) or 1.0
    configs = [select_configuration(candidates, b, profile) for b in ladder]
    points: list[FrontierPoint] = []
    for b in ladder:
        feasible = [c for c in configs if c.cost <= b * total]
        best = max(feasible, key=lambda c: (c.coverage, -c.cost))
        points.append(FrontierPoint(budget=b, config=best))
        if t:
            t.count("detectors.frontier_points")
    if t:
        t.count("detectors.frontiers")
    return points


def frontier_is_monotone(points: list[FrontierPoint]) -> bool:
    """More budget never buys less coverage (the CI gate)."""
    cov = [p.config.coverage for p in points]
    return all(b >= a for a, b in zip(cov, cov[1:]))


def frontier_is_nondominated(points: list[FrontierPoint]) -> bool:
    """No point is strictly worse than another on both axes."""
    for p in points:
        for q in points:
            if (
                q.config.cost <= p.config.cost
                and q.config.coverage >= p.config.coverage
                and (
                    q.config.cost < p.config.cost
                    or q.config.coverage > p.config.coverage
                )
            ):
                return False
    return True


def frontier_detector_kinds(points: list[FrontierPoint]) -> tuple[str, ...]:
    """All detector kinds appearing anywhere on the frontier, sorted."""
    kinds: set[str] = set()
    for p in points:
        kinds.update(p.config.kinds)
    return tuple(sorted(kinds))
