"""The multi-detector protection transform.

Generalization of the paper's duplication+check pass (⑨ in Fig. 4) to a
*plan* of per-instruction detector assignments: each selected instruction is
protected by exactly one detector — full duplication ("dup", checks flushed
before the next synchronization point or immediately, as in classic SID),
store-only duplication ("store", the comparison is deferred to the next
memory store in the block and silently dropped if none follows — the SWIFT
trade), or a mined range invariant ("range", a ``checkrange`` against
golden-run bounds) — plus an optional module-level algorithm checksum that
sums named global arrays before every return of ``@main`` and traps when the
sum leaves its golden band.

When the plan assigns "dup" with sync placement to every selected iid the
emitted module is *byte-identical* to the legacy ``sid.duplication`` output:
``repro.sid.duplication`` is now a thin shim over this pass, so classic SID
and the detector zoo share one code path by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.ir.builder import Builder
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.types import F64, VOID
from repro.ir.values import Constant

__all__ = [
    "PlanAction",
    "ChecksumSpec",
    "ProtectedModule",
    "apply_plan",
    "duplicate_instructions",
    "CHECKSUM_FN",
]

#: Name of the synthesized checksum function.
CHECKSUM_FN = "__checksum"

#: Detector kinds a plan may assign to one instruction.
PLAN_KINDS = ("dup", "store", "range")


@dataclass(frozen=True)
class PlanAction:
    """One instruction's detector assignment.

    ``kind`` is one of :data:`PLAN_KINDS`. ``placement`` applies to "dup"
    only ("sync" or "immediate"); ``lo``/``hi`` are the inclusive bounds of
    a "range" action (in the instruction's own value domain).
    """

    kind: str
    placement: str = "sync"
    lo: int | float | None = None
    hi: int | float | None = None


@dataclass(frozen=True)
class ChecksumSpec:
    """Module-level checksum over F64 global arrays.

    ``golden`` is the expected sum on the build input; ``band`` widens the
    accepted interval to ``[golden - band, golden + band]``. With
    ``probe=True`` the transform emits the sum to the output stream instead
    of checking it — the mining mode used to learn ``golden``.
    """

    globals_: tuple[str, ...]
    golden: float = 0.0
    band: float = 0.0
    probe: bool = False


@dataclass
class ProtectedModule:
    """A protected program plus the bookkeeping to reason about it."""

    module: Module
    #: Original iid -> iid in the protected module (original instructions).
    iid_map: dict[int, int]
    #: Original iid -> iid of its duplicate in the protected module.
    dup_map: dict[int, int]
    #: Number of check instructions inserted.
    checks: int = 0
    #: The original-module iids that were protected.
    protected_iids: list[int] = field(default_factory=list)
    #: Original iid -> detector kind ("dup", "store", "range", ...).
    detectors: dict[int, str] = field(default_factory=dict)
    #: Number of ``checkrange`` invariant checks inserted.
    range_checks: int = 0
    #: Store-only pairs whose block had no following store (never verified).
    dropped_pairs: int = 0
    #: True when a module-level checksum function was synthesized.
    has_checksum: bool = False

    def origin_of(self, new_iid: int) -> int | None:
        """Map a protected-module iid back to the original-module iid.

        Duplicate instructions map to the instruction they shadow; check
        instructions map to ``None``.
        """
        instr = self.module.instruction(new_iid)
        if instr.opcode in ("check", "checkrange"):
            return None
        if instr.origin is not None:
            return instr.origin
        return self._reverse().get(new_iid)

    def _reverse(self) -> dict[int, int]:
        rev = getattr(self, "_rev_cache", None)
        if rev is None:
            rev = {new: old for old, new in self.iid_map.items()}
            object.__setattr__(self, "_rev_cache", rev)
        return rev


def _make_check(orig: Instruction, dup: Instruction, blk) -> Instruction:
    chk = Instruction(
        "check",
        VOID,
        [orig, dup],
        attrs={"label": f"chk.{orig.iid}"},
    )
    chk.origin = orig.iid
    chk.parent = blk
    return chk


def _validate_plan(module: Module, plan: dict[int, PlanAction]) -> None:
    unknown = [i for i in plan if i >= module.instruction_count()]
    if unknown:
        raise ConfigError(f"selected iids out of range: {sorted(unknown)}")
    for iid, act in plan.items():
        if act.kind not in PLAN_KINDS:
            raise ConfigError(f"unknown detector kind {act.kind!r}")
        if act.kind == "dup" and act.placement not in ("sync", "immediate"):
            raise ConfigError(f"unknown check placement {act.placement!r}")
        instr = module.instruction(iid)
        if not instr.produces_value:
            raise ConfigError(f"iid {iid} produces no value; cannot duplicate")
        if act.kind == "range":
            if act.lo is None or act.hi is None:
                raise ConfigError(f"range action for iid {iid} missing bounds")
            if not (instr.type.is_int or instr.type.is_float):
                raise ConfigError(
                    f"iid {iid}: checkrange needs an int/float value"
                )


def _build_checksum_fn(clone: Module, spec: ChecksumSpec) -> None:
    """Synthesize ``@__checksum() -> f64`` summing the target globals."""
    if CHECKSUM_FN in clone.functions:
        raise ConfigError(f"module already defines @{CHECKSUM_FN}")
    for name in spec.globals_:
        g = clone.get_global(name)
        if g.elem_type is not F64:
            raise ConfigError(
                f"checksum target @{name} is {g.elem_type}, need f64"
            )
    b = Builder.new_function(clone, CHECKSUM_FN, [], F64)
    acc = b.local(F64, b.f64(0.0), hint="acc")
    for name in spec.globals_:
        g = clone.get_global(name)
        with b.for_loop(b.i64(0), b.i64(g.size), hint=f"cs.{name}") as i:
            p = b.gep(g, i)
            v = b.load(p, F64)
            cur = b.load(acc, F64)
            b.store(b.fadd(cur, v), acc)
    b.ret(b.load(acc, F64, hint="sum"))


def _insert_checksum_calls(clone: Module, spec: ChecksumSpec) -> None:
    """Before every ``ret`` of ``@main``: call the checksum and check it."""
    main = clone.get_function("main")
    for blk in main.blocks.values():
        term = blk.instructions[-1] if blk.instructions else None
        if term is None or term.opcode != "ret":
            continue
        call = Instruction(
            "call",
            F64,
            [],
            name=main.fresh_name("cs"),
            attrs={"callee": CHECKSUM_FN},
        )
        call.parent = blk
        if spec.probe:
            use = Instruction("emit", VOID, [call])
        else:
            lo = Constant(F64, spec.golden - spec.band)
            hi = Constant(F64, spec.golden + spec.band)
            use = Instruction(
                "checkrange", VOID, [call, lo, hi], attrs={"label": "chk.sum"}
            )
        use.parent = blk
        blk.instructions[-1:-1] = [call, use]


def apply_plan(
    module: Module,
    plan: dict[int, PlanAction],
    checksum: ChecksumSpec | None = None,
) -> ProtectedModule:
    """Clone ``module`` and protect it according to ``plan``.

    ``plan`` maps original iids to :class:`PlanAction` s (one detector per
    instruction); ``checksum`` optionally adds the module-level checksum.
    The clone is re-finalized, so iids are recomputed; the returned
    :class:`ProtectedModule` carries the old→new maps.
    """
    if not module.finalized:
        module.finalize()
    _validate_plan(module, plan)

    clone = module.clone()
    # The deepcopy preserves iid fields, so instructions are addressable by
    # their original iids until we re-finalize at the end.
    old_iids: dict[int, Instruction] = {}
    for fn in clone.functions.values():
        for instr in fn.instructions():
            old_iids[instr.iid] = instr

    checks = 0
    range_checks = 0
    dropped = 0
    detectors: dict[int, str] = {}
    for fn in clone.functions.values():
        for blk in fn.blocks.values():
            new_seq: list[Instruction] = []
            pending: list[tuple[Instruction, Instruction]] = []
            pending_store: list[tuple[Instruction, Instruction]] = []

            def flush(pairs: list) -> None:
                nonlocal checks
                for orig, dup in pairs:
                    new_seq.append(_make_check(orig, dup, blk))
                    checks += 1
                pairs.clear()

            for instr in blk.instructions:
                if instr.is_sync_point and pending:
                    flush(pending)
                if instr.opcode == "store" and pending_store:
                    flush(pending_store)
                new_seq.append(instr)
                act = plan.get(instr.iid)
                if act is None:
                    continue
                detectors[instr.iid] = act.kind
                if act.kind in ("dup", "store"):
                    dup = instr.clone()
                    dup.name = fn.fresh_name(f"dup.{instr.iid}")
                    dup.origin = instr.iid
                    dup.parent = blk
                    new_seq.append(dup)
                    if act.kind == "store":
                        pending_store.append((instr, dup))
                    elif act.placement == "immediate":
                        new_seq.append(_make_check(instr, dup, blk))
                        checks += 1
                    else:
                        pending.append((instr, dup))
                else:  # range
                    chk = Instruction(
                        "checkrange",
                        VOID,
                        [
                            instr,
                            Constant(instr.type, act.lo),
                            Constant(instr.type, act.hi),
                        ],
                        attrs={"label": f"rng.{instr.iid}"},
                    )
                    chk.origin = instr.iid
                    chk.parent = blk
                    new_seq.append(chk)
                    range_checks += 1
            # A block always ends in a terminator (a sync point), so pending
            # dup pairs are flushed before it by the loop above; be defensive
            # for malformed blocks anyway.
            if pending:  # pragma: no cover - terminator flush handles this
                flush(pending)
            # Store-only pairs with no following store are never verified —
            # that is the detector's coverage loss, priced by its estimator.
            dropped += len(pending_store)
            pending_store.clear()
            blk.instructions = new_seq

    if checksum is not None:
        _build_checksum_fn(clone, checksum)
        _insert_checksum_calls(clone, checksum)

    clone.finalized = False
    clone.finalize()

    iid_map: dict[int, int] = {}
    dup_map: dict[int, int] = {}
    for fn in clone.functions.values():
        for instr in fn.instructions():
            if instr.origin is not None and instr.opcode not in (
                "check",
                "checkrange",
            ):
                dup_map[instr.origin] = instr.iid
    for old, obj in old_iids.items():
        iid_map[old] = obj.iid
    return ProtectedModule(
        module=clone,
        iid_map=iid_map,
        dup_map=dup_map,
        checks=checks,
        protected_iids=sorted(plan),
        detectors=detectors,
        range_checks=range_checks,
        dropped_pairs=dropped,
        has_checksum=checksum is not None,
    )


def duplicate_instructions(
    module: Module,
    selected_iids: list[int],
    check_placement: str = "sync",
) -> ProtectedModule:
    """Clone ``module`` and duplicate ``selected_iids`` (classic SID).

    ``check_placement`` is ``"sync"`` (flush checks right before the next
    synchronization point, the paper's placement), ``"immediate"`` (check
    directly after the duplicate — the ablation variant) or ``"store"``
    (verify only at the next memory store in the block).
    """
    if check_placement not in ("sync", "immediate", "store"):
        raise ConfigError(f"unknown check placement {check_placement!r}")
    if check_placement == "store":
        plan = {int(i): PlanAction("store") for i in selected_iids}
    else:
        plan = {
            int(i): PlanAction("dup", placement=check_placement)
            for i in selected_iids
        }
    return apply_plan(module, plan)
