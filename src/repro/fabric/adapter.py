"""The adapter side of the fabric: a wire-protocol shell around FI workers.

An adapter is what a pool worker becomes when the pool is replaced by a
byte stream. It accepts the handshake, then serves a simple request loop:

* ``INIT`` — run a campaign worker initializer (e.g.
  ``repro.fi.campaign._init_lockstep_worker``) to pin per-process trial
  context, exactly as a ``ProcessPoolExecutor`` initializer would;
* ``CHUNK`` — execute one supervisor chunk payload through
  :func:`repro.util.supervisor._run_chunk` (the *same* entry pool workers
  use, so metric scrubbing, chaos triggers, and worker-obs installation
  carry over byte-for-byte) and answer ``RESULT``, or ``CHUNK_ERROR``
  carrying the raised exception;
* ``PING``/``BYE`` — liveness probe and clean shutdown.

Because worker entries call ``_ensure_worker_obs`` themselves, an adapter
subprocess ships drained metric deltas and span subtrees home inside each
``RESULT`` with no fabric-specific obs code at all. An *in-process*
adapter (``allow_chaos=False``) instead shares the harness session — and
must therefore never execute chaos faults, whose ``crash`` kind is
``os._exit``; chunk payloads are scrubbed of chaos before running.

Run standalone with either end of the transport spectrum::

    python -m repro.fabric.adapter --fd 5            # inherited socketpair
    python -m repro.fabric.adapter --listen :9440    # TCP server
"""

from __future__ import annotations

import argparse
import socket
import sys
import threading

from repro.errors import ConnectionClosed, FrameError, HandshakeError
from repro.fabric.protocol import (
    decode_message,
    encode_message,
    error_body,
    handshake_accept,
)
from repro.fabric.transport import (
    InprocTransport,
    SocketTransport,
    Transport,
    inproc_pair,
    parse_addr,
)

__all__ = ["run_adapter", "spawn_inproc_adapter", "serve_forever", "main"]


def _log():
    from repro.obs.log import get_logger

    return get_logger("fabric.adapter")


def run_adapter(
    transport: Transport,
    *,
    allow_chaos: bool = True,
    name: str | None = None,
) -> None:
    """Serve one harness connection until BYE or disconnect.

    ``allow_chaos=False`` marks an adapter sharing the harness process (the
    inproc transport): any :class:`~repro.util.supervisor.ChaosFault` list in
    a chunk payload is replaced with ``()`` so an injected ``os._exit`` can
    never take the harness down with it.

    ``name`` registers this adapter's chaos identity
    (:func:`repro.util.supervisor.set_chaos_identity`), making it
    addressable by targeted ``REPRO_CHAOS`` directives like
    ``crash@*#*@name`` — the sticky-bad-host hook the fleet tests use.
    """
    from repro.util.supervisor import _run_chunk, set_chaos_identity

    if name is not None:
        set_chaos_identity(name)

    try:
        handshake_accept(transport, role="adapter")
    except (HandshakeError, FrameError, ConnectionClosed):
        transport.close()
        return
    try:
        while True:
            try:
                name, body = decode_message(transport.recv_frame())
            except ConnectionClosed:
                return
            if name == "BYE":
                return
            if name == "PING":
                transport.send_bytes(encode_message("PONG", body))
                continue
            if name == "INIT":
                try:
                    initializer = body.get("initializer")
                    if initializer is not None:
                        initializer(*body.get("initargs", ()))
                except BaseException as e:
                    transport.send_bytes(
                        encode_message(
                            "ERROR",
                            error_body(
                                "init-failed",
                                f"{type(e).__name__}: {e}",
                            ),
                        )
                    )
                    return
                continue
            if name == "CHUNK":
                _serve_chunk(transport, body, _run_chunk, allow_chaos)
                continue
            transport.send_bytes(
                encode_message(
                    "ERROR",
                    error_body("protocol", f"unexpected message {name}"),
                )
            )
            return
    finally:
        transport.close()


def _serve_chunk(
    transport: Transport, body: dict, _run_chunk, allow_chaos: bool
) -> None:
    chunk_id = body.get("id")
    payload = body.get("payload")
    if not allow_chaos and payload is not None:
        fn, items, index, attempt, _chaos = payload
        payload = (fn, items, index, attempt, ())
    try:
        value = _run_chunk(payload)
    except BaseException as e:
        # fn's exception rides home for the supervisor's "error" retry
        # path; an unpicklable one degrades to its repr.
        try:
            frame = encode_message(
                "CHUNK_ERROR", {"id": chunk_id, "error": e}
            )
        except Exception:
            frame = encode_message(
                "CHUNK_ERROR",
                {"id": chunk_id, "error": None,
                 "repr": f"{type(e).__name__}: {e}"},
            )
        transport.send_bytes(frame)
        return
    transport.send_bytes(encode_message("RESULT", {"id": chunk_id, "value": value}))


def spawn_inproc_adapter() -> tuple[Transport, threading.Thread]:
    """An adapter running as a daemon thread of this process.

    Returns the harness-side transport. The thread serves with
    ``allow_chaos=False`` (see :func:`run_adapter`) and exits when the
    harness closes its end.
    """
    harness_end, adapter_end = inproc_pair()
    thread = threading.Thread(
        target=run_adapter,
        args=(adapter_end,),
        kwargs={"allow_chaos": False},
        name="repro-fabric-inproc-adapter",
        daemon=True,
    )
    thread.start()
    return harness_end, thread


# ---------------------------------------------------------------------------
# Standalone entry (socketpair child / TCP server)
# ---------------------------------------------------------------------------


def serve_forever(
    host: str, port: int, *, once: bool = False, ready_stream=None,
    name: str | None = None,
) -> None:
    """Listen on TCP and serve harness connections one at a time.

    Chunk execution pins per-process worker state (program caches, trial
    context), so connections are served sequentially — parallelism comes
    from running more adapters, which is also what keeps one adapter's
    crash from taking out another's chunks. Prints
    ``FABRIC-ADAPTER LISTENING host:port`` (actual port, so ``:0`` works)
    once the socket is bound.
    """
    srv = socket.create_server((host, port))
    bound_host, bound_port = srv.getsockname()[:2]
    stream = ready_stream if ready_stream is not None else sys.stdout
    print(f"FABRIC-ADAPTER LISTENING {bound_host}:{bound_port}",
          file=stream, flush=True)
    log = _log()
    try:
        while True:
            conn, peer = srv.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            label = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else "peer"
            log.info("harness connected from %s", label)
            try:
                run_adapter(SocketTransport(conn, label=label), name=name)
            except Exception:
                log.exception("connection from %s failed", label)
            if once:
                return
    finally:
        srv.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric.adapter",
        description="Serve repro fabric chunks over a socket "
                    "(see docs/FABRIC.md).",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--fd", type=int, metavar="N",
        help="serve one connection on inherited socket file descriptor N",
    )
    group.add_argument(
        "--listen", metavar="HOST:PORT",
        help="listen for harness TCP connections (:0 picks a free port)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="with --listen: exit after the first connection closes",
    )
    parser.add_argument(
        "--name", metavar="NAME", default=None,
        help="chaos identity for targeted REPRO_CHAOS directives "
        "(kind@chunk@NAME); default: the REPRO_CHAOS_IDENTITY environment",
    )
    args = parser.parse_args(argv)
    if args.fd is not None:
        sock = socket.socket(fileno=args.fd)
        run_adapter(SocketTransport(sock, label="harness"), name=args.name)
        return 0
    host, port = parse_addr(args.listen)
    serve_forever(host, port, once=args.once, name=args.name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
