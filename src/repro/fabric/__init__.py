"""Distributed campaign fabric: harness/adapter split over a wire protocol.

The fabric turns FI worker dispatch transport-agnostic. The *harness* side
(:mod:`repro.fabric.harness`) keeps the chunk supervisor of
:mod:`repro.util.supervisor` as its scheduler — retries, deadlines, chaos
injection, and bit-identical reassembly carry over unchanged — but ships
chunks to *adapters* instead of pool workers. An adapter
(:mod:`repro.fabric.adapter`) wraps the existing campaign worker entry
points behind a CRC-framed, length-prefixed, versioned byte protocol
(:mod:`repro.fabric.frames` / :mod:`repro.fabric.protocol`) spoken over
pluggable transports (:mod:`repro.fabric.transport`): in-process byte
pipes, subprocess socketpairs, and TCP sockets. On top,
:mod:`repro.fabric.serve` is an asyncio service front-end (``repro serve``
/ ``repro submit``) that accepts campaign requests over the same protocol,
dedupes them through the content-addressed campaign cache, and streams
progress/span obs events back to clients.

The full wire-protocol specification lives in ``docs/FABRIC.md``;
``scripts/doc_lint.py`` keeps its message-type table in lockstep with
:data:`repro.fabric.protocol.MESSAGES`.
"""

from repro.fabric.frames import (
    FrameDecoder,
    HEADER_SIZE,
    MAGIC,
    PROTOCOL_VERSION,
    encode_frame,
)
from repro.fabric.harness import (
    ADDR_ENV,
    TRANSPORT_ENV,
    TRANSPORTS,
    FabricPool,
    fabric_scope,
    resolve_fabric,
    resolve_transport,
)
from repro.fabric.protocol import MESSAGES, MessageSpec

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER_SIZE",
    "FrameDecoder",
    "encode_frame",
    "MESSAGES",
    "MessageSpec",
    "TRANSPORTS",
    "TRANSPORT_ENV",
    "ADDR_ENV",
    "FabricPool",
    "fabric_scope",
    "resolve_fabric",
    "resolve_transport",
]
