"""Frame codec: the lowest layer of the fabric wire protocol.

Every fabric message travels inside one *frame* — a fixed 16-byte header
followed by an opaque payload (see ``docs/FABRIC.md`` for the normative
layout):

====== ======= =====================================================
offset size    field
====== ======= =====================================================
0      4       magic ``b"RFAB"``
4      2       protocol version (big-endian u16)
6      2       message opcode (big-endian u16)
8      4       payload length in bytes (big-endian u32)
12     4       CRC32 of the payload (big-endian u32, ``zlib.crc32``)
16     length  payload bytes
====== ======= =====================================================

The header is self-delimiting (length-prefixed), so frames can be streamed
over any byte transport without sentinels; the CRC turns silent transport
corruption into a loud :class:`~repro.errors.FrameError` — fitting for a
system whose whole subject is silent data corruption. Decoding is
incremental: :class:`FrameDecoder` buffers arbitrary byte chunks and yields
complete frames, so callers never block on partial reads.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import FrameError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "HEADER_SIZE",
    "MAX_PAYLOAD_BYTES",
    "Frame",
    "encode_frame",
    "FrameDecoder",
]

#: Leading frame bytes; anything else means the peer is not speaking fabric.
MAGIC = b"RFAB"

#: The protocol version this build speaks (negotiated at handshake).
PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">4sHHII")

#: Fixed frame-header size in bytes.
HEADER_SIZE = _HEADER.size

#: Sanity cap on a declared payload length. A frame claiming more than this
#: is treated as corruption (a garbled length field would otherwise make the
#: decoder wait forever for bytes that never come).
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024


class Frame(tuple):
    """One decoded frame: ``(version, opcode, payload)``."""

    __slots__ = ()

    def __new__(cls, version: int, opcode: int, payload: bytes) -> "Frame":
        return super().__new__(cls, (version, opcode, payload))

    @property
    def version(self) -> int:
        return self[0]

    @property
    def opcode(self) -> int:
        return self[1]

    @property
    def payload(self) -> bytes:
        return self[2]


def encode_frame(
    opcode: int, payload: bytes, version: int = PROTOCOL_VERSION
) -> bytes:
    """Serialize one frame: header (magic, version, opcode, length, CRC) +
    payload."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame cap"
        )
    header = _HEADER.pack(
        MAGIC, version, opcode, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    )
    return header + payload


class FrameDecoder:
    """Incremental frame parser over a byte stream.

    Feed arbitrary chunks with :meth:`feed`; pull complete frames with
    :meth:`next_frame` (``None`` while more bytes are needed). Magic, length
    and CRC violations raise :class:`~repro.errors.FrameError`. A transport
    reaching EOF should consult :meth:`at_boundary` to distinguish a clean
    close (empty buffer) from a truncated frame (bytes stranded mid-frame).
    """

    def __init__(self, max_payload: int = MAX_PAYLOAD_BYTES) -> None:
        self._buf = bytearray()
        self._max_payload = max_payload

    def feed(self, data: bytes) -> None:
        """Append received bytes to the internal buffer."""
        self._buf.extend(data)

    def at_boundary(self) -> bool:
        """True when the buffer holds no partial frame (clean-EOF point)."""
        return not self._buf

    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as a complete frame."""
        return len(self._buf)

    def next_frame(self) -> Frame | None:
        """The next complete frame, or ``None`` until more bytes arrive."""
        if len(self._buf) < HEADER_SIZE:
            return None
        magic, version, opcode, length, crc = _HEADER.unpack_from(self._buf)
        if magic != MAGIC:
            raise FrameError(
                f"bad frame magic {bytes(magic)!r} (expected {MAGIC!r}): "
                "peer is not speaking the fabric protocol or the stream "
                "lost sync"
            )
        if length > self._max_payload:
            raise FrameError(
                f"declared payload length {length} exceeds the "
                f"{self._max_payload}-byte cap (corrupt length field?)"
            )
        if len(self._buf) < HEADER_SIZE + length:
            return None
        payload = bytes(self._buf[HEADER_SIZE : HEADER_SIZE + length])
        del self._buf[: HEADER_SIZE + length]
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != crc:
            raise FrameError(
                f"payload CRC mismatch on opcode 0x{opcode:02x}: header "
                f"says 0x{crc:08x}, payload hashes to 0x{actual:08x}"
            )
        return Frame(version, opcode, payload)

    def frames(self):
        """Yield every complete frame currently buffered."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame
