"""Pluggable byte transports carrying fabric frames between peers.

A *transport* is the thinnest possible abstraction over a reliable,
ordered byte stream: ``send_bytes`` pushes encoded frames out,
``recv_frame`` blocks for the next complete frame (running an incremental
:class:`~repro.fabric.frames.FrameDecoder` underneath), and ``close``
releases the underlying resource. Everything above this layer — handshake,
chunk dispatch, the campaign service — is transport-agnostic.

Three concrete transports ship:

* :class:`InprocTransport` — paired in-memory byte queues
  (:func:`inproc_pair`), used when the adapter runs as a thread of the
  harness process. Zero processes, zero sockets; the development and test
  default.
* ``socketpair`` — an AF_UNIX :func:`socket.socketpair` whose far end is
  inherited by an adapter subprocess (:func:`spawn_socketpair_adapter`).
  Same machine, separate address space: chaos crashes and OS-level kills
  behave exactly like pool workers.
* TCP — :func:`connect_tcp` from the harness to adapters listening via
  ``python -m repro.fabric.adapter --listen HOST:PORT`` on any host.

EOF handling is where silent truncation would hide: a stream that ends on
a frame boundary raises :class:`~repro.errors.ConnectionClosed` (a clean
goodbye), while one that ends mid-frame raises
:class:`~repro.errors.FrameError` naming the stranded byte count — a
half-delivered chunk result is never mistaken for a short campaign.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
from typing import Iterable

from repro.errors import ConnectionClosed, FrameError
from repro.fabric.frames import Frame, FrameDecoder

__all__ = [
    "Transport",
    "SocketTransport",
    "InprocTransport",
    "inproc_pair",
    "parse_addr",
    "connect_tcp",
    "adapter_command",
    "spawn_socketpair_adapter",
]

#: Bytes pulled from a socket per read.
_RECV_SIZE = 1 << 16


class Transport:
    """Abstract reliable byte stream speaking whole fabric frames."""

    def send_bytes(self, data: bytes) -> None:
        raise NotImplementedError

    def recv_frame(self, timeout: float | None = None) -> Frame:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SocketTransport(Transport):
    """Frames over a connected ``socket`` (TCP or AF_UNIX socketpair)."""

    def __init__(self, sock: socket.socket, label: str = "") -> None:
        self._sock = sock
        self._decoder = FrameDecoder()
        self._closed = False
        self.label = label or _peer_label(sock)

    def send_bytes(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionClosed(f"transport to {self.label} is closed")
        try:
            self._sock.sendall(data)
        except OSError as e:
            self._closed = True
            raise ConnectionClosed(
                f"send to {self.label} failed: {e}"
            ) from e

    def recv_frame(self, timeout: float | None = None) -> Frame:
        if self._closed:
            raise ConnectionClosed(f"transport to {self.label} is closed")
        frame = self._decoder.next_frame()
        if frame is not None:
            return frame
        self._sock.settimeout(timeout)
        try:
            while True:
                try:
                    data = self._sock.recv(_RECV_SIZE)
                except socket.timeout:
                    raise
                except OSError as e:
                    self._closed = True
                    raise ConnectionClosed(
                        f"receive from {self.label} failed: {e}"
                    ) from e
                if not data:
                    self._closed = True
                    if self._decoder.at_boundary():
                        raise ConnectionClosed(
                            f"{self.label} closed the connection"
                        )
                    raise FrameError(
                        f"{self.label} closed the connection mid-frame "
                        f"({self._decoder.pending_bytes()} bytes stranded)"
                    )
                self._decoder.feed(data)
                frame = self._decoder.next_frame()
                if frame is not None:
                    return frame
        finally:
            if not self._closed:
                self._sock.settimeout(None)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class InprocTransport(Transport):
    """One end of an in-memory transport pair (see :func:`inproc_pair`).

    Byte chunks travel through a pair of thread-safe queues; ``None`` is
    the EOF sentinel a closing peer leaves behind. Semantics mirror
    :class:`SocketTransport` exactly — including the clean-close vs
    mid-frame distinction — so protocol tests run without sockets.
    """

    def __init__(
        self,
        rx: "queue.Queue[bytes | None]",
        tx: "queue.Queue[bytes | None]",
        label: str = "inproc",
    ) -> None:
        self._rx = rx
        self._tx = tx
        self._decoder = FrameDecoder()
        self._closed = False
        self._peer_gone = False
        self.label = label

    def send_bytes(self, data: bytes) -> None:
        if self._closed or self._peer_gone:
            raise ConnectionClosed(f"transport to {self.label} is closed")
        self._tx.put(data)

    def recv_frame(self, timeout: float | None = None) -> Frame:
        if self._closed:
            raise ConnectionClosed(f"transport to {self.label} is closed")
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                return frame
            if self._peer_gone:
                if self._decoder.at_boundary():
                    raise ConnectionClosed(
                        f"{self.label} closed the connection"
                    )
                raise FrameError(
                    f"{self.label} closed the connection mid-frame "
                    f"({self._decoder.pending_bytes()} bytes stranded)"
                )
            try:
                data = self._rx.get(timeout=timeout)
            except queue.Empty:
                raise socket.timeout(
                    f"no frame from {self.label} within {timeout}s"
                ) from None
            if data is None:
                self._peer_gone = True
                continue
            self._decoder.feed(data)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._tx.put(None)


def inproc_pair(
    label_a: str = "harness", label_b: str = "adapter"
) -> tuple[InprocTransport, InprocTransport]:
    """A connected in-memory transport pair (a's sends are b's receives)."""
    ab: "queue.Queue[bytes | None]" = queue.Queue()
    ba: "queue.Queue[bytes | None]" = queue.Queue()
    return (
        InprocTransport(rx=ba, tx=ab, label=label_b),
        InprocTransport(rx=ab, tx=ba, label=label_a),
    )


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------


def parse_addr(addr: str) -> tuple[str, int]:
    """Split ``host:port`` (empty host means all interfaces / localhost)."""
    host, sep, port_s = addr.strip().rpartition(":")
    if not sep:
        raise ValueError(f"bad address {addr!r}: expected HOST:PORT")
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"bad port in address {addr!r}") from None
    return host or "127.0.0.1", port


def connect_tcp(
    host: str, port: int, timeout: float | None = 10.0
) -> SocketTransport:
    """Open a TCP connection to an adapter (or ``repro serve``) endpoint."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return SocketTransport(sock, label=f"{host}:{port}")


def _peer_label(sock: socket.socket) -> str:
    try:
        peer = sock.getpeername()
    except OSError:
        return "peer"
    if isinstance(peer, tuple) and len(peer) >= 2:
        return f"{peer[0]}:{peer[1]}"
    return "socketpair-peer"


# ---------------------------------------------------------------------------
# Adapter subprocesses
# ---------------------------------------------------------------------------


def _adapter_env() -> dict:
    """Child environment with the repro package importable.

    The adapter re-imports ``repro`` from scratch, so the source tree of
    *this* interpreter is prepended to ``PYTHONPATH`` — the fabric then
    works from checkouts that were never installed.
    """
    import repro

    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    parts = [pkg_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def adapter_command(extra: Iterable[str] = ()) -> list[str]:
    """The argv that starts an adapter with this interpreter."""
    return [sys.executable, "-m", "repro.fabric.adapter", *extra]


def spawn_socketpair_adapter() -> tuple[SocketTransport, subprocess.Popen]:
    """Start one adapter subprocess wired up over an AF_UNIX socketpair.

    Returns the harness-side transport and the child ``Popen`` (whose
    ``kill()`` the supervisor uses for hang recovery). The child inherits
    only its end of the pair, via ``--fd``.
    """
    parent_sock, child_sock = socket.socketpair()
    proc = subprocess.Popen(
        adapter_command(["--fd", str(child_sock.fileno())]),
        pass_fds=(child_sock.fileno(),),
        env=_adapter_env(),
        stdin=subprocess.DEVNULL,
    )
    child_sock.close()
    return SocketTransport(parent_sock, label=f"adapter-pid{proc.pid}"), proc
