"""``repro serve``: the campaign fabric as a long-running service.

An asyncio front-end that accepts campaign requests over the same framed
protocol the harness/adapter link speaks (SUBMIT → PROGRESS… → DONE),
dedupes them through the content-addressed campaign cache, dispatches
trials across whatever fabric transport the server was started with, and
streams obs records back to the submitting client as PROGRESS frames.

Request dedup is the FastFlip-shaped payoff: campaigns are pure functions
of (program, input, fault model, plan), so the server runs each one inside
the ambient :mod:`repro.cache` scope — a repeated identical SUBMIT answers
straight from the store with **zero trials dispatched** (the DONE frame
carries ``dispatched: 0, cached: true``, and the preceding PROGRESS stream
shows the ``cache.hit`` event instead of campaign spans).

Campaigns run one at a time: trial outcomes are deterministic regardless,
but the telemetry session that powers progress streaming is process-global,
so a lock serializes execution while the asyncio loop keeps accepting and
queueing connections. The campaign itself runs in a worker thread
(``run_in_executor``); a :class:`ForwardSink` hops each obs record back
onto the loop with ``call_soon_threadsafe``.

Trusted-network assumption: SUBMIT bodies contain pickled module text and
argument structures, like every fabric message — bind ``repro serve`` and
its adapters to loopback or a private network only (docs/FABRIC.md).
"""

from __future__ import annotations

import asyncio
import time

from repro.cache.active import cache_scope
from repro.errors import ConnectionClosed, FrameError, HandshakeError
from repro.fabric.frames import FrameDecoder
from repro.fabric.harness import fabric_scope
from repro.fabric.protocol import (
    SUPPORTED_VERSIONS,
    decode_message,
    encode_message,
    error_body,
    hello_body,
    negotiate,
    welcome_body,
)
from repro.fabric.transport import Transport, connect_tcp
from repro.obs.sink import TraceSink

__all__ = ["ForwardSink", "CampaignService", "run_serve", "submit"]


class ForwardSink(TraceSink):
    """A trace sink that hands every record to a callback.

    The serve loop passes a ``call_soon_threadsafe`` trampoline so records
    produced in the campaign's executor thread surface in the asyncio loop;
    a callback failure must never fail the campaign, so errors are dropped.
    """

    def __init__(self, forward) -> None:
        self._forward = forward

    def write(self, record: dict) -> None:
        try:
            self._forward(record)
        except Exception:
            pass


def _log():
    from repro.obs.log import get_logger

    return get_logger("fabric.serve")


# ---------------------------------------------------------------------------
# Async frame plumbing (the sync Transport blocks, so serve re-frames here)
# ---------------------------------------------------------------------------


async def _read_message(reader: asyncio.StreamReader, decoder: FrameDecoder):
    while True:
        frame = decoder.next_frame()
        if frame is not None:
            return decode_message(frame)
        data = await reader.read(1 << 16)
        if not data:
            if decoder.at_boundary():
                raise ConnectionClosed("client closed the connection")
            raise FrameError(
                "client closed the connection mid-frame "
                f"({decoder.pending_bytes()} bytes stranded)"
            )
        decoder.feed(data)


async def _write(writer: asyncio.StreamWriter, data: bytes) -> None:
    writer.write(data)
    await writer.drain()


# ---------------------------------------------------------------------------
# Request execution
# ---------------------------------------------------------------------------


def _load_request_program(request: dict):
    """Resolve a SUBMIT body to ``(program, args, bindings, meta)``.

    Two request shapes: ``{"app": name, "input": {...}}`` picks a bundled
    benchmark (``input`` ``None`` means its reference input), while
    ``{"module": ir_text, "args": [...], "bindings": {...}}`` ships a
    program directly.
    """
    if request.get("app"):
        from repro.apps.registry import get_app

        app = get_app(request["app"])
        inp = request.get("input") or app.reference_input
        args, bindings = app.encode(inp)
        return app.program, args, bindings, {"app": app.name}
    if request.get("module"):
        from repro.ir.parser import parse_module
        from repro.vm.interpreter import Program

        program = Program(parse_module(request["module"]))
        return (
            program,
            request.get("args"),
            request.get("bindings"),
            {"app": None},
        )
    raise ValueError("SUBMIT needs either 'app' or 'module'")


def _execute_request(request: dict, forward, scopes=(None, None, None)) -> dict:
    """Run one campaign (executor thread) and shape the DONE body.

    ``scopes`` is the server's ``(cache, transport, adapters)``
    configuration, installed here — around the campaign, not around the
    accept loop — so the ambient scope is held exactly while a request
    executes and never leaks to other code sharing the process (``None``
    entries keep the environment defaults). A request may still narrow
    ``workers``/``engine`` for itself.
    """
    from repro.fi.campaign import run_campaign
    from repro.obs.core import session

    cache, transport, adapters = scopes
    program, args, bindings, meta = _load_request_program(request)
    t0 = time.perf_counter()
    with cache_scope(cache), fabric_scope(transport, adapters), session(
        sink=ForwardSink(forward)
    ) as t:
        result = run_campaign(
            program,
            int(request.get("n_faults", 100)),
            int(request.get("seed", 0)),
            args=args,
            bindings=bindings,
            rel_tol=float(request.get("rel_tol", 0.0)),
            abs_tol=float(request.get("abs_tol", 0.0)),
            workers=request.get("workers"),
            engine=request.get("engine"),
        )
        dispatched = int(
            t.metrics.snapshot()["counters"].get("fi.trials", 0)
        )
    return {
        "ok": True,
        "app": meta["app"],
        "counts": {
            o.value: n for o, n in result.counts.counts.items() if n
        },
        "sdc_probability": result.sdc_probability,
        "trials": result.trials,
        "dispatched": dispatched,
        "cached": dispatched == 0,
        "seconds": time.perf_counter() - t0,
    }


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------


class CampaignService:
    """Connection handler + the one-campaign-at-a-time execution lock."""

    def __init__(self, cache=None, transport=None, adapters=None) -> None:
        self._lock = asyncio.Lock()
        self._scopes = (cache, transport, adapters)
        #: Writers of currently open client connections, so a shutdown can
        #: say goodbye instead of slamming sockets shut.
        self._writers: set = set()

    async def shutdown(self) -> None:
        """Close every open connection politely (server shutdown path).

        Each client still connected gets a ``BYE`` before its stream
        closes, so a waiting ``repro submit`` sees an orderly end of
        session rather than a reset.
        """
        for writer in list(self._writers):
            try:
                await _write(writer, encode_message("BYE", {}))
            except Exception:
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass
        self._writers.clear()

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        log = _log()
        self._writers.add(writer)
        try:
            await self._handshake(reader, writer, decoder)
            while True:
                try:
                    name, body = await _read_message(reader, decoder)
                except ConnectionClosed:
                    return
                if name == "BYE":
                    return
                if name == "PING":
                    await _write(writer, encode_message("PONG", body))
                    continue
                if name != "SUBMIT":
                    await _write(writer, encode_message(
                        "ERROR",
                        error_body("protocol", f"unexpected {name}"),
                    ))
                    return
                await self._serve_submit(writer, body)
        except (FrameError, HandshakeError, ConnectionResetError) as e:
            log.warning("client connection failed: %s", e)
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def _handshake(self, reader, writer, decoder) -> None:
        name, body = await _read_message(reader, decoder)
        if name != "HELLO":
            await _write(writer, encode_message(
                "ERROR", error_body("protocol", f"expected HELLO, got {name}")
            ))
            raise HandshakeError(f"expected HELLO, client sent {name}")
        try:
            version = negotiate(body)
        except HandshakeError as e:
            await _write(writer, encode_message(
                "ERROR",
                error_body("version-mismatch", str(e),
                           supported=list(SUPPORTED_VERSIONS)),
            ))
            raise
        await _write(writer, encode_message(
            "WELCOME", welcome_body(version, "serve"), version=version
        ))

    async def _serve_submit(self, writer, request) -> None:
        loop = asyncio.get_running_loop()
        records: "asyncio.Queue" = asyncio.Queue()
        done = object()

        def forward(record: dict) -> None:
            loop.call_soon_threadsafe(records.put_nowait, record)

        async with self._lock:
            task = loop.run_in_executor(
                None, _execute_request, dict(request or {}), forward,
                self._scopes,
            )

            async def pump() -> None:
                while True:
                    rec = await records.get()
                    if rec is done:
                        return
                    await _write(writer, encode_message("PROGRESS", rec))

            pumper = asyncio.ensure_future(pump())
            try:
                outcome = await task
            except Exception as e:
                records.put_nowait(done)
                await pumper
                await _write(writer, encode_message("DONE", {
                    "ok": False,
                    "error": f"{type(e).__name__}: {e}",
                }))
                return
            records.put_nowait(done)
            await pumper
        await _write(writer, encode_message("DONE", outcome))


async def _serve_async(
    host: str, port: int, *, cache=None, transport=None, adapters=None,
    ready_stream=None, started: "asyncio.Event | None" = None,
) -> None:
    import signal
    import sys

    service = CampaignService(cache=cache, transport=transport,
                              adapters=adapters)
    server = await asyncio.start_server(service.handle, host, port)
    bound = server.sockets[0].getsockname()

    stream = ready_stream if ready_stream is not None else sys.stdout
    print(f"REPRO-SERVE LISTENING {bound[0]}:{bound[1]}",
          file=stream, flush=True)
    if started is not None:
        started.set()
    # Orderly shutdown on SIGINT/SIGTERM: stop accepting, BYE the open
    # connections, return — so the CLI's obs session flushes its trace
    # and the process exits 0 instead of dying in an asyncio traceback.
    # Where the loop can't own signals (non-main thread, non-Unix), the
    # KeyboardInterrupt fallback in run_serve covers Ctrl-C.
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    hooked: list = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
            hooked.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        async with server:
            await stop.wait()
    finally:
        for sig in hooked:
            loop.remove_signal_handler(sig)
        server.close()
        await server.wait_closed()
        await service.shutdown()
        _log().info("serve: shut down cleanly")


def run_serve(
    host: str, port: int, *, cache=None, transport=None, adapters=None,
    ready_stream=None,
) -> None:
    """Run the campaign service until interrupted.

    ``cache`` is a directory for the campaign cache (``None`` keeps the
    ambient/environment cache — set one, or dedup is off); ``transport`` /
    ``adapters`` pick the dispatch fabric for every campaign the service
    runs, with the usual ``REPRO_FABRIC_*`` environment fallback. The
    scopes are installed around each request's execution, not around the
    accept loop, so nothing ambient leaks between requests.

    SIGINT/SIGTERM end the service cleanly: the listener closes, every
    open connection gets a ``BYE``, and the call returns (letting the CLI
    flush any obs trace) rather than surfacing an asyncio traceback.
    """
    try:
        asyncio.run(_serve_async(
            host, port, cache=cache, transport=transport, adapters=adapters,
            ready_stream=ready_stream,
        ))
    except KeyboardInterrupt:
        pass


# ---------------------------------------------------------------------------
# The client (``repro submit``)
# ---------------------------------------------------------------------------


def submit(
    host: str, port: int, request: dict, on_progress=None,
    timeout: float | None = None,
) -> dict:
    """Submit one campaign request and block for its DONE body.

    ``on_progress`` receives each streamed obs record dict as it arrives.
    Raises :class:`~repro.errors.HandshakeError` on version mismatch and
    :class:`~repro.errors.ProtocolError` kin on wire trouble; a campaign
    failure comes back as ``{"ok": False, "error": ...}`` rather than an
    exception, so the caller can render it.
    """
    transport: Transport = connect_tcp(host, port, timeout=timeout)
    try:
        transport.send_bytes(encode_message("HELLO", hello_body("client")))
        name, body = decode_message(transport.recv_frame(timeout=timeout))
        if name == "ERROR":
            code = body.get("code", "?") if isinstance(body, dict) else "?"
            raise HandshakeError(f"server rejected handshake ({code}): "
                                 f"{body.get('message') if isinstance(body, dict) else body}")
        if name != "WELCOME":
            raise HandshakeError(f"expected WELCOME, server sent {name}")
        transport.send_bytes(encode_message("SUBMIT", request))
        while True:
            name, body = decode_message(transport.recv_frame(timeout=timeout))
            if name == "PROGRESS":
                if on_progress is not None:
                    on_progress(body)
                continue
            if name == "DONE":
                return body
            if name == "ERROR":
                raise ConnectionClosed(
                    f"server error: {body.get('message') if isinstance(body, dict) else body}"
                )
    finally:
        transport.close()
