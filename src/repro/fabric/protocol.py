"""Message layer of the fabric wire protocol: registry, codec, handshake.

One fabric message = one frame (:mod:`repro.fabric.frames`) whose opcode
names an entry in :data:`MESSAGES` and whose payload is the message body
serialized with :mod:`pickle` (protocol 4). Pickle is the codec because
chunk requests carry the same objects the process-pool path already ships
through ``multiprocessing`` — module-level callables (pickled by
reference), checkpoint stores, fault tuples — and because the fabric, like
a process pool, is a **trusted-peer** protocol: never expose an adapter or
``repro serve`` socket to untrusted networks (docs/FABRIC.md §security).

The registry is the single source of truth for (name, opcode, direction);
``docs/FABRIC.md`` carries a human-readable copy of the table and
``scripts/doc_lint.py`` fails CI when the two drift apart.

Handshake
---------
The connecting side opens with HELLO listing every protocol version it
speaks; the accepting side picks the highest common one and answers
WELCOME, or answers ERROR (code ``version-mismatch``) and closes when there
is none. Both sides raise :class:`~repro.errors.HandshakeError` on
rejection, so a version skew is a loud configuration-time failure — never a
mid-campaign decode error.
"""

from __future__ import annotations

import os
import pickle
import socket
from dataclasses import dataclass

from repro.errors import FrameError, HandshakeError, ProtocolError
from repro.fabric.frames import Frame, PROTOCOL_VERSION, encode_frame

__all__ = [
    "MessageSpec",
    "MESSAGES",
    "OPCODES",
    "BY_OPCODE",
    "SUPPORTED_VERSIONS",
    "encode_message",
    "decode_message",
    "hello_body",
    "welcome_body",
    "error_body",
    "negotiate",
    "handshake_connect",
    "handshake_accept",
]

#: Every protocol version this build can speak (newest last).
SUPPORTED_VERSIONS = (PROTOCOL_VERSION,)


@dataclass(frozen=True)
class MessageSpec:
    """One registered message type: wire name, opcode, and who sends it."""

    name: str
    opcode: int
    #: ``harness->adapter``, ``adapter->harness``, ``client->serve``,
    #: ``serve->client``, or ``both`` (either peer may send it).
    direction: str


#: The message registry — the normative (name, opcode, direction) table.
#: docs/FABRIC.md mirrors this table; scripts/doc_lint.py enforces the
#: mirror, so extend both together.
MESSAGES: tuple[MessageSpec, ...] = (
    # -- session layer (any transport) ----------------------------------
    MessageSpec("HELLO", 0x01, "both"),
    MessageSpec("WELCOME", 0x02, "both"),
    MessageSpec("ERROR", 0x03, "both"),
    MessageSpec("PING", 0x04, "harness->adapter"),
    MessageSpec("PONG", 0x05, "adapter->harness"),
    MessageSpec("BYE", 0x06, "harness->adapter"),
    # -- chunk dispatch (harness <-> adapter) ---------------------------
    MessageSpec("INIT", 0x10, "harness->adapter"),
    MessageSpec("CHUNK", 0x11, "harness->adapter"),
    MessageSpec("RESULT", 0x12, "adapter->harness"),
    MessageSpec("CHUNK_ERROR", 0x13, "adapter->harness"),
    # -- campaign service (client <-> repro serve) ----------------------
    MessageSpec("SUBMIT", 0x20, "client->serve"),
    MessageSpec("PROGRESS", 0x21, "serve->client"),
    MessageSpec("DONE", 0x22, "serve->client"),
)

#: name -> opcode and opcode -> spec lookup tables.
OPCODES: dict[str, int] = {m.name: m.opcode for m in MESSAGES}
BY_OPCODE: dict[int, MessageSpec] = {m.opcode: m for m in MESSAGES}

assert len(OPCODES) == len(MESSAGES) == len(BY_OPCODE), "registry collision"


def encode_message(
    name: str, body: object = None, version: int = PROTOCOL_VERSION
) -> bytes:
    """Serialize one message to its on-the-wire frame bytes."""
    try:
        opcode = OPCODES[name]
    except KeyError:
        raise ProtocolError(f"unknown message type {name!r}") from None
    payload = pickle.dumps(body, protocol=4)
    return encode_frame(opcode, payload, version=version)


def decode_message(frame: Frame) -> tuple[str, object]:
    """Decode a received frame into ``(message name, body)``."""
    spec = BY_OPCODE.get(frame.opcode)
    if spec is None:
        raise ProtocolError(
            f"unknown opcode 0x{frame.opcode:02x} "
            f"(protocol version {frame.version})"
        )
    try:
        body = pickle.loads(frame.payload)
    except Exception as e:
        raise FrameError(
            f"undecodable {spec.name} payload ({type(e).__name__}: {e})"
        ) from e
    return spec.name, body


# ---------------------------------------------------------------------------
# Handshake
# ---------------------------------------------------------------------------


def hello_body(role: str) -> dict:
    """The HELLO body: advertised versions plus peer identification."""
    return {
        "versions": list(SUPPORTED_VERSIONS),
        "role": role,
        "impl": "repro.fabric",
        "pid": os.getpid(),
        "host": socket.gethostname(),
    }


def welcome_body(version: int, role: str) -> dict:
    """The WELCOME body: the negotiated version plus peer identification."""
    return {
        "version": version,
        "role": role,
        "impl": "repro.fabric",
        "pid": os.getpid(),
        "host": socket.gethostname(),
    }


def error_body(code: str, message: str, **extra) -> dict:
    """The ERROR body: a stable machine code plus a human message."""
    return {"code": code, "message": message, **extra}


def negotiate(hello: object) -> int:
    """Pick the highest protocol version shared with a HELLO's peer.

    Raises :class:`~repro.errors.HandshakeError` when the HELLO is
    malformed or no common version exists.
    """
    if not isinstance(hello, dict) or not isinstance(
        hello.get("versions"), (list, tuple)
    ):
        raise HandshakeError(f"malformed HELLO body: {hello!r}")
    theirs = {v for v in hello["versions"] if isinstance(v, int)}
    common = theirs & set(SUPPORTED_VERSIONS)
    if not common:
        raise HandshakeError(
            f"no common protocol version: peer speaks "
            f"{sorted(theirs) or '[]'}, this build speaks "
            f"{list(SUPPORTED_VERSIONS)}"
        )
    return max(common)


def handshake_connect(transport, role: str = "harness") -> dict:
    """Run the connecting side of the handshake on ``transport``.

    Sends HELLO, expects WELCOME (returning its body) or ERROR (raising
    :class:`~repro.errors.HandshakeError` with the peer's reason).
    """
    transport.send_bytes(encode_message("HELLO", hello_body(role)))
    name, body = decode_message(transport.recv_frame())
    if name == "ERROR":
        code = body.get("code", "?") if isinstance(body, dict) else "?"
        msg = body.get("message", body) if isinstance(body, dict) else body
        raise HandshakeError(f"peer rejected handshake ({code}): {msg}")
    if name != "WELCOME":
        raise HandshakeError(f"expected WELCOME, peer sent {name}")
    if not isinstance(body, dict) or body.get("version") not in SUPPORTED_VERSIONS:
        raise HandshakeError(f"peer accepted unsupported version: {body!r}")
    return body


def handshake_accept(transport, role: str = "adapter") -> int:
    """Run the accepting side of the handshake on ``transport``.

    Expects HELLO; answers WELCOME and returns the negotiated version, or
    answers ERROR (code ``version-mismatch``) and raises
    :class:`~repro.errors.HandshakeError`.
    """
    name, body = decode_message(transport.recv_frame())
    if name != "HELLO":
        transport.send_bytes(
            encode_message(
                "ERROR",
                error_body("protocol", f"expected HELLO, got {name}"),
            )
        )
        raise HandshakeError(f"expected HELLO, peer sent {name}")
    try:
        version = negotiate(body)
    except HandshakeError as e:
        transport.send_bytes(
            encode_message(
                "ERROR",
                error_body(
                    "version-mismatch", str(e),
                    supported=list(SUPPORTED_VERSIONS),
                ),
            )
        )
        raise
    transport.send_bytes(
        encode_message("WELCOME", welcome_body(version, role), version=version)
    )
    return version
