"""Harness side of the fabric: a pool of adapters behind the supervisor.

The design move of the whole fabric is here: :class:`FabricPool` speaks the
``ProcessPoolExecutor`` surface the chunk supervisor already drives —
``submit`` returning futures, ``shutdown``, a ``_processes`` mapping whose
values answer ``kill()`` — so :mod:`repro.util.supervisor` schedules
adapters over any transport with **zero changes to its recovery logic**.
Retries with backoff, hang deadlines, pool respawn, serial degradation,
and bit-identical ordered reassembly all carry over because the supervisor
cannot tell a fabric from a process pool.

Failure mapping (docs/FABRIC.md §errors):

* adapter raises inside ``fn`` → ``CHUNK_ERROR`` rides home and becomes the
  future's exception → the supervisor's *error* retry path;
* transport drops mid-chunk → the dispatcher fails the future with
  :class:`~repro.errors.ConnectionClosed` (again the error-retry path, so
  the chunk re-runs on a surviving adapter) and then tries one reconnect
  for subsequent chunks;
* every adapter gone and unreachable → the pool marks itself broken and
  fails pending futures with ``BrokenProcessPool`` — exactly the signal
  that makes the supervisor respawn the pool, which reconnects everything.

Transport selection mirrors the engine knob: explicit argument beats the
ambient :func:`fabric_scope` beats ``REPRO_FABRIC_TRANSPORT`` beats the
default ``local`` (no fabric — plain process pool). TCP adapter endpoints
come from ``--listen``-style ``HOST:PORT`` lists via ``REPRO_FABRIC_ADDR``.

Health is visible as ``fabric.*`` obs counters (adapters connected,
chunks per adapter, disconnects, reconnects, handshake failures) — the
"Fabric health" table of ``repro obs report``. Like ``harness.*`` they are
infrastructure-dependent and excluded from the deterministic-counter
guarantee.
"""

from __future__ import annotations

import os
import queue
import threading
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager

from repro.errors import (
    ConfigError,
    ConnectionClosed,
    FrameError,
    HandshakeError,
    ProtocolError,
    WorkerError,
)
from repro.fabric.protocol import (
    decode_message,
    encode_message,
    handshake_connect,
)
from repro.fabric.transport import (
    Transport,
    connect_tcp,
    parse_addr,
    spawn_socketpair_adapter,
)

__all__ = [
    "TRANSPORTS",
    "TRANSPORT_ENV",
    "ADDR_ENV",
    "FabricPool",
    "fabric_scope",
    "resolve_transport",
    "resolve_addrs",
    "resolve_fabric",
]

#: Recognized transport names. ``local`` means *no* fabric: the plain
#: supervised process pool (or serial execution) of repro.util.parallel.
TRANSPORTS = ("local", "inproc", "socketpair", "tcp")

#: Ambient transport selection (same precedence slot as ``REPRO_ENGINE``).
TRANSPORT_ENV = "REPRO_FABRIC_TRANSPORT"
#: Comma-separated ``HOST:PORT`` list of TCP adapter endpoints.
ADDR_ENV = "REPRO_FABRIC_ADDR"

#: Ambient (transport, addrs) overrides; innermost non-None wins.
_SCOPE: list = []


def resolve_transport(transport: str | None = None) -> str:
    """Resolve the fabric transport: explicit > scope > env > ``local``."""
    if transport is None:
        for t, _addrs in reversed(_SCOPE):
            if t is not None:
                transport = t
                break
    if transport is None:
        transport = os.environ.get(TRANSPORT_ENV) or "local"
    if transport not in TRANSPORTS:
        raise ConfigError(
            f"unknown fabric transport {transport!r}; expected one of "
            f"{', '.join(TRANSPORTS)}"
        )
    return transport


def resolve_addrs(addrs=None) -> tuple[tuple[str, int], ...]:
    """Resolve TCP adapter endpoints: explicit > scope > env.

    Accepts a comma-separated ``HOST:PORT`` string or an iterable of such
    strings / ``(host, port)`` pairs; raises :class:`ConfigError` when the
    tcp transport is selected with no endpoints configured.
    """
    if addrs is None:
        for _t, a in reversed(_SCOPE):
            if a is not None:
                addrs = a
                break
    if addrs is None:
        addrs = os.environ.get(ADDR_ENV, "").strip() or None
    if addrs is None:
        raise ConfigError(
            "the tcp fabric transport needs adapter endpoints: pass "
            f"--adapters/addrs or set {ADDR_ENV} to a comma-separated "
            "HOST:PORT list"
        )
    if isinstance(addrs, str):
        addrs = [a for a in addrs.split(",") if a.strip()]
    out = []
    for a in addrs:
        if isinstance(a, str):
            try:
                out.append(parse_addr(a))
            except ValueError as e:
                raise ConfigError(str(e)) from None
        else:
            host, port = a
            out.append((host, int(port)))
    if not out:
        raise ConfigError(f"empty fabric endpoint list (check {ADDR_ENV})")
    return tuple(out)


@contextmanager
def fabric_scope(transport: str | None = None, addrs=None):
    """Ambient fabric selection for code paths without explicit threading.

    The CLI wraps command execution in this scope so deeply nested campaign
    calls pick up ``--transport`` (and the endpoint list) without every
    intermediate layer growing parameters — the exact shape of
    :func:`repro.vm.batch.engine_scope`.
    """
    _SCOPE.append((transport, addrs))
    try:
        yield
    finally:
        _SCOPE.pop()


def resolve_fabric(transport: str | None = None, addrs=None):
    """Resolve the transport and build the supervisor's pool factory.

    Returns ``(kind, pool_factory)`` where ``pool_factory`` is ``None`` for
    the ``local`` transport (keep the plain process pool) and otherwise a
    callable with the supervisor's factory signature
    ``(max_workers=, initializer=, initargs=) -> FabricPool``. Endpoint
    resolution for tcp happens here, eagerly, so a missing
    ``REPRO_FABRIC_ADDR`` is a configuration-time error rather than a
    mid-campaign one.
    """
    kind = resolve_transport(transport)
    if kind == "local":
        return kind, None
    endpoints = resolve_addrs(addrs) if kind == "tcp" else None

    def pool_factory(max_workers: int = 1, initializer=None, initargs=()):
        return FabricPool(
            kind,
            max_workers=max_workers,
            initializer=initializer,
            initargs=initargs,
            addrs=endpoints,
        )

    return kind, pool_factory


# ---------------------------------------------------------------------------
# Obs plumbing (infra counters; never part of the deterministic guarantee)
# ---------------------------------------------------------------------------

_count_lock = threading.Lock()


def _count(name: str, n: int = 1) -> None:
    from repro.obs.core import current

    t = current()
    if t is None:
        return
    with _count_lock:  # dispatcher threads share the parent registry
        t.count(name, n)


def _log():
    from repro.obs.log import get_logger

    return get_logger("fabric.harness")


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class _AdapterHandle:
    """One connected adapter: its transport plus whatever can be killed."""

    __slots__ = ("transport", "proc", "label", "dead")

    def __init__(self, transport: Transport, proc=None, label: str = "") -> None:
        self.transport = transport
        self.proc = proc  # subprocess.Popen for socketpair adapters
        self.label = label or transport.label
        self.dead = False

    def kill(self) -> None:
        """Hard stop — the supervisor's hang-recovery hook (``proc.kill()``
        shape). Closing the transport unblocks any dispatcher recv."""
        self.dead = True
        if self.proc is not None:
            try:
                self.proc.kill()
            except Exception:
                pass
        try:
            self.transport.close()
        except Exception:
            pass
        self._reap()

    def _reap(self) -> None:
        if self.proc is not None:
            try:
                self.proc.wait(timeout=5)
            except Exception:
                pass


_STOP = object()  # dispatcher wake-up sentinel


class FabricPool:
    """Adapters behind the ``ProcessPoolExecutor`` surface.

    One dispatcher thread per adapter slot pulls ``(future, payload)`` work
    off a shared queue, ships the payload as a CHUNK, and resolves the
    future from the RESULT / CHUNK_ERROR answer. The supervisor never sees
    the wire: it submits and waits on futures as it always did.
    """

    def __init__(
        self,
        kind: str,
        max_workers: int = 1,
        initializer=None,
        initargs: tuple = (),
        addrs: tuple | None = None,
    ) -> None:
        if kind not in ("inproc", "socketpair", "tcp"):
            raise ConfigError(f"FabricPool cannot speak transport {kind!r}")
        self.kind = kind
        self.initializer = initializer
        self.initargs = initargs
        self.addrs = addrs or ()
        if kind == "inproc":
            # The inproc adapter shares the harness process and telemetry;
            # one slot keeps the ambient span stack single-writer.
            slots = 1
        elif kind == "tcp":
            slots = len(self.addrs)
            if slots == 0:
                raise ConfigError("tcp FabricPool needs at least one endpoint")
        else:
            slots = max(1, max_workers)
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._seq = 0
        self._broken = False
        self._closed = False
        self._live = 0
        #: Supervisor kill surface: slot -> _AdapterHandle (kill()-able).
        self._processes: dict[int, _AdapterHandle] = {}
        self._threads: list[threading.Thread] = []
        failures = 0
        for slot in range(slots):
            try:
                self._processes[slot] = self._connect(slot)
                self._live += 1
            except (HandshakeError, ProtocolError, OSError) as e:
                failures += 1
                _count("fabric.handshake_failures")
                _log().warning("adapter slot %d failed to connect: %s", slot, e)
        if self._live == 0:
            raise BrokenProcessPool(
                f"no fabric adapter reachable over {kind} "
                f"({failures} connection failure(s))"
            )
        for slot in range(slots):
            th = threading.Thread(
                target=self._dispatch,
                args=(slot,),
                name=f"repro-fabric-dispatch-{slot}",
                daemon=True,
            )
            th.start()
            self._threads.append(th)

    # ``crash`` chaos is ``os._exit``: fatal to the harness when the
    # adapter is an in-process thread, so the supervisor strips chaos from
    # chunk payloads unless the pool advertises support.
    @property
    def supports_chaos(self) -> bool:
        return self.kind != "inproc"

    # -- connection management ------------------------------------------
    def _connect(self, slot: int) -> _AdapterHandle:
        if self.kind == "inproc":
            from repro.fabric.adapter import spawn_inproc_adapter

            transport, _thread = spawn_inproc_adapter()
            handle = _AdapterHandle(transport, label="inproc")
        elif self.kind == "socketpair":
            transport, proc = spawn_socketpair_adapter()
            handle = _AdapterHandle(transport, proc=proc,
                                    label=f"pid{proc.pid}")
        else:
            host, port = self.addrs[slot]
            transport = connect_tcp(host, port)
            handle = _AdapterHandle(transport, label=f"{host}:{port}")
        try:
            handshake_connect(transport, role="harness")
            transport.send_bytes(
                encode_message(
                    "INIT",
                    {"initializer": self.initializer,
                     "initargs": self.initargs},
                )
            )
        except BaseException:
            handle.kill()
            raise
        _count("fabric.adapters_connected")
        return handle

    def _reconnect(self, slot: int) -> _AdapterHandle | None:
        """Replace a dead adapter in-place; None when it cannot be done."""
        old = self._processes.get(slot)
        if old is not None:
            old.kill()
        try:
            handle = self._connect(slot)
        except (HandshakeError, ProtocolError, OSError) as e:
            _count("fabric.handshake_failures")
            _log().warning("adapter slot %d reconnect failed: %s", slot, e)
            return None
        _count("fabric.reconnects")
        with self._lock:
            self._processes[slot] = handle
            self._live += 1
        return handle

    def _slot_lost(self, slot: int) -> None:
        """One slot's adapter is gone; break the pool when it was the last."""
        with self._lock:
            self._live -= 1
            last = self._live <= 0 and not self._closed
            if last:
                self._broken = True
        if last:
            _log().warning("all fabric adapters lost; marking pool broken")
            self._fail_pending(BrokenProcessPool(
                "every fabric adapter disconnected and reconnection failed"
            ))

    def _fail_pending(self, exc: BaseException) -> None:
        """Drain the queue, failing waiting futures so the supervisor's
        wait() observes the breakage instead of blocking forever."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            fut, _payload = item
            if fut.set_running_or_notify_cancel():
                fut.set_exception(exc)

    # -- executor surface ------------------------------------------------
    def submit(self, fn, payload) -> Future:
        """Queue one chunk payload; ``fn`` is always the supervisor's
        ``_run_chunk``, which the adapter invokes on its own side."""
        del fn
        if self._closed:
            raise RuntimeError("cannot submit to a shut-down FabricPool")
        if self._broken:
            raise BrokenProcessPool("fabric pool is broken")
        fut: Future = Future()
        self._queue.put((fut, payload))
        return fut

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._processes.values())
        if cancel_futures:
            self._fail_pending(BrokenProcessPool("fabric pool shut down"))
        for _ in self._threads:
            self._queue.put(_STOP)
        for handle in handles:
            if not handle.dead:
                try:
                    handle.transport.send_bytes(encode_message("BYE"))
                except Exception:
                    pass
            handle.kill()
        if wait:
            for th in self._threads:
                th.join(timeout=5)

    # -- dispatcher ------------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _dispatch(self, slot: int) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP or self._closed:
                return
            fut, payload = item
            if not fut.set_running_or_notify_cancel():
                continue
            handle = self._processes.get(slot)
            if handle is None or handle.dead:
                handle = self._reconnect(slot)
                if handle is None:
                    # This slot cannot serve; hand the work back unless the
                    # whole pool just died (then fail it with the rest).
                    self._requeue_or_fail(fut, payload)
                    self._slot_lost(slot)
                    return
            self._serve_one(slot, handle, fut, payload)

    def _requeue_or_fail(self, fut: Future, payload) -> None:
        with self._lock:
            broken = self._broken or self._closed or self._live <= 0
        if broken:
            fut.set_exception(BrokenProcessPool(
                "every fabric adapter disconnected and reconnection failed"
            ))
        else:
            refut: Future = Future()
            # Chain: the supervisor holds `fut`; mirror the requeued
            # future's resolution onto it.
            self._queue.put((refut, payload))
            refut.add_done_callback(lambda f: _mirror(f, fut))


    def _serve_one(
        self, slot: int, handle: _AdapterHandle, fut: Future, payload
    ) -> None:
        msg_id = self._next_id()
        try:
            handle.transport.send_bytes(
                encode_message("CHUNK", {"id": msg_id, "payload": payload})
            )
            while True:
                name, body = decode_message(handle.transport.recv_frame())
                if name == "RESULT":
                    _count(f"fabric.chunks.{handle.label}")
                    fut.set_result(body["value"])
                    return
                if name == "CHUNK_ERROR":
                    _count(f"fabric.retries.{handle.label}")
                    err = body.get("error")
                    if not isinstance(err, BaseException):
                        err = WorkerError(
                            body.get("repr") or "adapter chunk failed"
                        )
                    fut.set_exception(err)
                    return
                if name == "ERROR":
                    code = body.get("code") if isinstance(body, dict) else "?"
                    raise ProtocolError(
                        f"adapter {handle.label} reported {code}: "
                        f"{body.get('message') if isinstance(body, dict) else body}"
                    )
                if name == "PONG":
                    continue
                raise ProtocolError(
                    f"unexpected {name} from adapter {handle.label}"
                )
        except (ConnectionClosed, FrameError, ProtocolError, OSError) as e:
            # Mid-chunk loss: fail *this* future onto the supervisor's
            # error-retry path (the chunk re-runs on a surviving adapter)
            # and retire the connection; the next chunk triggers a
            # reconnect attempt for this slot.
            _count("fabric.disconnects")
            _count(f"fabric.disconnects.{handle.label}")
            _count(f"fabric.retries.{handle.label}")
            _log().warning(
                "adapter %s lost mid-chunk: %s", handle.label, e
            )
            handle.kill()
            with self._lock:
                self._live -= 1
            fresh = self._reconnect(slot)
            if fresh is None:
                self._slot_lost_after_retry(slot)
            if not fut.done():
                fut.set_exception(
                    e if isinstance(e, ConnectionClosed)
                    else ConnectionClosed(
                        f"adapter {handle.label} lost mid-chunk: {e}"
                    )
                )

    def _slot_lost_after_retry(self, slot: int) -> None:
        with self._lock:
            last = self._live <= 0 and not self._closed
            if last:
                self._broken = True
        if last:
            _log().warning("all fabric adapters lost; marking pool broken")
            self._fail_pending(BrokenProcessPool(
                "every fabric adapter disconnected and reconnection failed"
            ))


def _mirror(src: Future, dst: Future) -> None:
    if dst.done():
        return
    exc = src.exception()
    if exc is not None:
        dst.set_exception(exc)
    else:
        dst.set_result(src.result())
