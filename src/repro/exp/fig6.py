"""Fig. 6 / Table III driver: MINPSID's mitigation of the coverage loss.

Identical evaluation protocol to the Fig. 2 study but the protected binary
comes from the MINPSID pipeline (input search + re-prioritization). The same
evaluation inputs are used for both techniques so their candlesticks are
directly comparable.
"""

from __future__ import annotations

from repro.apps import all_app_names, get_app
from repro.exp.config import ScaleConfig
from repro.exp.results import CoverageStudyResult
from repro.exp.runner import evaluate_protection, generate_eval_inputs
from repro.minpsid.ga import GAConfig
from repro.minpsid.pipeline import MINPSIDConfig, minpsid
from repro.minpsid.search import InputSearchConfig
from repro.util.rng import derive_seed

__all__ = ["minpsid_config_for", "run_fig6_study"]


def minpsid_config_for(scale: ScaleConfig, level: float, app_name: str) -> MINPSIDConfig:
    """MINPSID configuration derived from a scale preset."""
    return MINPSIDConfig(
        protection_level=level,
        per_instruction_trials=scale.per_instr_trials,
        seed=derive_seed(scale.seed, "minpsid", app_name, level),
        search=InputSearchConfig(
            max_inputs=scale.search_max_inputs,
            stall_limit=scale.search_stall,
            per_instruction_trials=scale.search_per_instr_trials,
            ga=GAConfig(
                population_size=scale.ga_population,
                max_generations=scale.ga_generations,
            ),
            workers=scale.workers,
            cache_dir=scale.cache_dir,
        ),
        workers=scale.workers,
        cache_dir=scale.cache_dir,
        profile_source=scale.profile_source,
    )


def run_fig6_study(
    scale: ScaleConfig, measure_duplication: bool = False
) -> CoverageStudyResult:
    """Run the MINPSID coverage study over apps × protection levels.

    Incremental: with ``scale.cache_dir`` set, a re-run whose programs,
    inputs, and campaign plans are unchanged replays every FI campaign from
    the cache (bit-identical results, no trials dispatched).
    """
    study = CoverageStudyResult(technique="minpsid", scale=scale.name)
    apps = scale.apps if scale.apps is not None else tuple(all_app_names())
    for app_name in apps:
        app = get_app(app_name)
        inputs = generate_eval_inputs(
            app, scale.eval_inputs, derive_seed(scale.seed, "eval", app_name)
        )
        for level in scale.protection_levels:
            res = minpsid(app, minpsid_config_for(scale, level, app_name))
            study.results.append(
                evaluate_protection(
                    app,
                    res.protected,
                    res.expected_coverage,
                    technique="minpsid",
                    protection_level=level,
                    inputs=inputs,
                    scale=scale,
                    measure_duplication=measure_duplication,
                )
            )
    return study
