"""Experiment harness: one driver per table/figure of the paper.

==========  ==============================================================
Driver      Paper artifact
==========  ==============================================================
table1      Table I    — benchmark inventory
fig2        Fig. 2     — baseline SID coverage candlesticks (3 levels)
table2      Table II   — % coverage-loss inputs, baseline SID
sec4        §IV        — incubative-instruction statistics
fig3        Fig. 3     — a concrete incubative icmp in FFT
fig6        Fig. 6     — MINPSID vs baseline candlesticks
table3      Table III  — % coverage-loss inputs, MINPSID
fig7        Fig. 7     — GA vs random input-search efficiency
fig8        Fig. 8     — MINPSID execution-time breakdown
fig9        Fig. 9     — case study with realistic datasets (BFS, Kmeans)
table4      Table IV   — % coverage-loss inputs in the case study
overhead    §VIII-A    — duplicated-dynamic-instruction variance
mt_fft      §VIII-B    — multithreaded FFT
==========  ==============================================================

Every driver accepts a :class:`~repro.exp.config.ScaleConfig` so tests run in
seconds (``TINY``) while benches and EXPERIMENTS.md use ``SMALL``/``FULL``.
"""

from repro.exp.config import FULL, SMALL, TINY, ScaleConfig
from repro.exp.candlestick import Candlestick
from repro.exp.results import (
    AppLevelResult,
    CoverageStudyResult,
    load_json,
    save_json,
)
from repro.exp.runner import evaluate_protection, generate_eval_inputs

__all__ = [
    "ScaleConfig",
    "TINY",
    "SMALL",
    "FULL",
    "Candlestick",
    "AppLevelResult",
    "CoverageStudyResult",
    "save_json",
    "load_json",
    "evaluate_protection",
    "generate_eval_inputs",
]
