"""Fig. 7 driver: efficiency of the GA input search vs a random searcher.

Runs MINPSID's input search twice per app — once with the weighted-CFG GA
(the real engine) and once with the blind random baseline — under the same
input budget, and reports the cumulative number of incubative instructions
found after each searched input (normalized per app, as the paper plots).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import get_app
from repro.exp.config import ScaleConfig
from repro.fi.campaign import run_per_instruction_campaign
from repro.minpsid.ga import GAConfig
from repro.minpsid.search import InputSearchConfig, run_input_search
from repro.sid.profiles import build_cost_benefit_profile
from repro.util.rng import derive_seed
from repro.vm.profiler import profile_run

__all__ = ["SearchComparison", "run_fig7_study"]


@dataclass
class SearchComparison:
    """GA-vs-random traces for one app."""

    app: str
    ga_trace: list[int] = field(default_factory=list)
    random_trace: list[int] = field(default_factory=list)
    ga_found: int = 0
    random_found: int = 0

    @property
    def advantage(self) -> float:
        """Relative surplus of GA over random at convergence (paper: +45.6%)."""
        if self.random_found == 0:
            return float(self.ga_found > 0)
        return (self.ga_found - self.random_found) / self.random_found

    def normalized(self, trace: list[int]) -> list[float]:
        peak = max(self.ga_found, self.random_found, 1)
        return [t / peak for t in trace]


def _reference_benefits(app, scale: ScaleConfig) -> dict[int, float]:
    args, bindings = app.encode(app.reference_input)
    prof = profile_run(app.program, args=args, bindings=bindings)
    fi = run_per_instruction_campaign(
        app.program,
        scale.per_instr_trials,
        derive_seed(scale.seed, "fig7-ref", app.name),
        args=args,
        bindings=bindings,
        rel_tol=app.rel_tol,
        abs_tol=app.abs_tol,
        workers=scale.workers,
        profile=prof,
    )
    return build_cost_benefit_profile(app.module, prof, fi).benefit


def run_fig7_study(app_name: str, scale: ScaleConfig) -> SearchComparison:
    """Compare search strategies on one app under the same budget."""
    app = get_app(app_name)
    ref_benefits = _reference_benefits(app, scale)
    out = SearchComparison(app=app_name)
    for strategy in ("ga", "random"):
        cfg = InputSearchConfig(
            max_inputs=scale.search_max_inputs,
            stall_limit=max(scale.search_stall, scale.search_max_inputs),  # fixed budget
            per_instruction_trials=scale.search_per_instr_trials,
            ga=GAConfig(
                population_size=scale.ga_population,
                max_generations=scale.ga_generations,
            ),
            strategy=strategy,
            workers=scale.workers,
        )
        outcome = run_input_search(
            app,
            reference_benefits=ref_benefits,
            seed=derive_seed(scale.seed, "fig7", app_name, strategy),
            config=cfg,
        )
        if strategy == "ga":
            out.ga_trace = outcome.trace
            out.ga_found = len(outcome.incubative)
        else:
            out.random_trace = outcome.trace
            out.random_found = len(outcome.incubative)
    return out
