"""Model-validation study: static predictions vs. FI ground truth per app.

The driver behind ``repro analyze --validate`` and the CI model smoke job.
For each app it runs one golden profile, a full per-instruction FI campaign
(the ground truth), the static error-propagation model, and a hybrid
predict-then-verify campaign, then scores:

* **rank agreement** — Spearman correlation and top-k overlap between
  predicted and measured SDC probabilities (the model's job is ranking);
* **selection agreement** — whether the knapsack, fed the hybrid profile,
  protects the *same instruction set* as when fed pure FI measurements, at
  each protection level. Pure FI's selection is itself a Monte-Carlo
  estimate — re-running the ground-truth sweep under an independent seed
  moves the set — so "same" means the hybrid disagrees with the ground
  truth by **no more instructions than a second, equally-sized FI sweep
  does** (statistically indistinguishable from pure FI);
* **trial savings** — FI trials a full sweep would have cost vs. what the
  hybrid actually spent.

Every row is emitted as a ``model.validate`` / ``model.hybrid`` telemetry
event, so ``repro obs report`` renders the same numbers from a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.model import predict_sdc_probabilities
from repro.analysis.validate import ValidationResult, validate_model
from repro.apps.registry import get_app
from repro.cache.active import cache_scope
from repro.exp.config import ScaleConfig
from repro.fi.campaign import run_model_guided_campaign, run_per_instruction_campaign
from repro.sid.profiles import build_cost_benefit_profile
from repro.sid.selection import select_instructions
from repro.util.rng import derive_seed
from repro.util.tables import format_table
from repro.vm.profiler import profile_run

__all__ = ["AppModelValidation", "run_model_validation", "render_model_validation"]


@dataclass
class AppModelValidation:
    """Model-vs-FI agreement for one application."""

    app: str
    validation: ValidationResult
    #: Hybrid-vs-FI selection disagreement is within FI's own seed-to-seed
    #: disagreement, per protection level.
    selection_match: dict[float, bool] = field(default_factory=dict)
    #: |hybrid selection ∆ FI selection| per protection level.
    selection_diff: dict[float, int] = field(default_factory=dict)
    #: |FI selection ∆ FI-reseeded selection| per protection level.
    fi_self_diff: dict[float, int] = field(default_factory=dict)
    fi_trials_full: int = 0
    fi_trials_hybrid: int = 0

    @property
    def trials_saved_factor(self) -> float:
        if self.fi_trials_hybrid <= 0:
            return float("inf") if self.fi_trials_full else 1.0
        return self.fi_trials_full / self.fi_trials_hybrid

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "validation": self.validation.to_dict(),
            "selection_match": {
                str(k): v for k, v in self.selection_match.items()
            },
            "selection_diff": {
                str(k): v for k, v in self.selection_diff.items()
            },
            "fi_self_diff": {
                str(k): v for k, v in self.fi_self_diff.items()
            },
            "fi_trials_full": self.fi_trials_full,
            "fi_trials_hybrid": self.fi_trials_hybrid,
            "trials_saved_factor": self.trials_saved_factor,
        }


def run_model_validation(
    scale: ScaleConfig,
    apps: tuple[str, ...] | None = None,
    verify_margin: float = 0.3,
) -> list[AppModelValidation]:
    """Validate the model against FI ground truth on each app.

    Apps default to the scale preset's selection (or all 11). The FI ground
    truth uses ``scale.per_instr_trials`` faults per instruction, cached
    like any campaign, so repeated validations replay instead of re-inject.
    A second, independently-seeded ground-truth sweep calibrates how much
    pure FI's own selection moves between runs; the hybrid passes when its
    disagreement stays within that bound.
    """
    from repro.apps.registry import all_app_names

    names = apps or scale.apps or tuple(all_app_names())
    out: list[AppModelValidation] = []
    with cache_scope(scale.cache_dir):
        for name in names:
            app = get_app(name)
            args, bindings = app.encode(app.reference_input)
            program = app.program
            seed = derive_seed(scale.seed, "modelval", name)
            dyn = profile_run(program, args=args, bindings=bindings)
            fi = run_per_instruction_campaign(
                program,
                scale.per_instr_trials,
                seed=seed,
                args=args,
                bindings=bindings,
                rel_tol=app.rel_tol,
                abs_tol=app.abs_tol,
                workers=scale.workers,
                profile=dyn,
                checkpoint_interval=scale.checkpoint_interval,
                max_retries=scale.max_retries,
                task_timeout=scale.task_timeout,
            )
            fi_alt = run_per_instruction_campaign(
                program,
                scale.per_instr_trials,
                seed=derive_seed(scale.seed, "modelval-alt", name),
                args=args,
                bindings=bindings,
                rel_tol=app.rel_tol,
                abs_tol=app.abs_tol,
                workers=scale.workers,
                profile=dyn,
                checkpoint_interval=scale.checkpoint_interval,
                max_retries=scale.max_retries,
                task_timeout=scale.task_timeout,
            )
            predicted = predict_sdc_probabilities(
                app.module, dyn, rel_tol=app.rel_tol
            )
            validation = validate_model(predicted, fi, app=name)
            hybrid = run_model_guided_campaign(
                program,
                scale.per_instr_trials,
                seed=seed,
                args=args,
                bindings=bindings,
                rel_tol=app.rel_tol,
                abs_tol=app.abs_tol,
                workers=scale.workers,
                profile=dyn,
                protection_levels=scale.protection_levels,
                verify_margin=verify_margin,
                checkpoint_interval=scale.checkpoint_interval,
                max_retries=scale.max_retries,
                task_timeout=scale.task_timeout,
            )
            fi_profile = build_cost_benefit_profile(
                app.module, dyn, fi, source="fi"
            )
            fi_alt_profile = build_cost_benefit_profile(
                app.module, dyn, fi_alt, source="fi"
            )
            hy_profile = build_cost_benefit_profile(
                app.module,
                dyn,
                hybrid,
                source="hybrid",
                provenance=hybrid.provenance,
            )
            row = AppModelValidation(
                app=name,
                validation=validation,
                fi_trials_full=hybrid.full_sweep_trials,
                fi_trials_hybrid=hybrid.fi_trials,
            )
            for level in scale.protection_levels:
                sel_fi = set(select_instructions(fi_profile, level).selected)
                sel_alt = set(
                    select_instructions(fi_alt_profile, level).selected
                )
                sel_hy = set(select_instructions(hy_profile, level).selected)
                self_diff = len(sel_fi ^ sel_alt)
                hy_diff = len(sel_fi ^ sel_hy)
                row.fi_self_diff[level] = self_diff
                row.selection_diff[level] = hy_diff
                row.selection_match[level] = hy_diff <= self_diff
            out.append(row)
    return out


def render_model_validation(rows: list[AppModelValidation]) -> str:
    """Per-app agreement table (the ``repro analyze --validate`` output)."""
    headers = [
        "Benchmark",
        "Spearman",
        "Top-k overlap",
        "MAE",
        "Selection match",
        "Sel diff (hybrid/reseed)",
        "FI trials (full -> hybrid)",
    ]
    body = []
    for r in rows:
        v = r.validation
        match = (
            f"{sum(r.selection_match.values())}/{len(r.selection_match)}"
            if r.selection_match
            else "-"
        )
        diffs = (
            f"{sum(r.selection_diff.values())}/{sum(r.fi_self_diff.values())}"
            if r.selection_diff
            else "-"
        )
        body.append(
            [
                r.app,
                f"{v.spearman:.3f}",
                f"{v.top_k_overlap:.2f} (k={v.top_k})",
                f"{v.mean_abs_error:.3f}",
                match,
                diffs,
                f"{r.fi_trials_full} -> {r.fi_trials_hybrid} "
                f"({r.trials_saved_factor:.1f}x)",
            ]
        )
    return format_table(
        headers, body, title="Model validation: static prediction vs. FI"
    )
