"""§VIII-A driver: performance-overhead variance across inputs.

The paper observes the *actual* fraction of dynamic instructions duplicated
at runtime falls short of the target protection level and varies across
inputs (SID: 15.61/28.63/46.31% actual at 30/50/70% targets; MINPSID shows a
similar shortfall). This driver measures the duplicated share of dynamic
cycles per evaluation input for both techniques.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exp.config import ScaleConfig
from repro.exp.fig2 import run_fig2_study
from repro.exp.fig6 import run_fig6_study
from repro.exp.results import CoverageStudyResult
from repro.util.tables import format_percent, format_table

__all__ = ["OverheadRow", "run_overhead_study", "summarize_overhead", "render_overhead"]


@dataclass
class OverheadRow:
    """Average actual duplication at one target level for one technique."""

    technique: str
    target_level: float
    mean_actual: float
    min_actual: float
    max_actual: float
    shortfall: float  # target - mean_actual


def run_overhead_study(
    scale: ScaleConfig,
) -> tuple[CoverageStudyResult, CoverageStudyResult]:
    """Coverage studies for both techniques with duplication measurement on."""
    base = run_fig2_study(scale, measure_duplication=True)
    hardened = run_fig6_study(scale, measure_duplication=True)
    return base, hardened


def summarize_overhead(study: CoverageStudyResult) -> list[OverheadRow]:
    """Aggregate duplication fractions across apps and inputs per level."""
    rows: list[OverheadRow] = []
    for level in study.levels():
        fractions: list[float] = []
        for r in study.results:
            if abs(r.protection_level - level) < 1e-9:
                fractions.extend(r.dup_fraction)
        if not fractions:
            continue
        mean = sum(fractions) / len(fractions)
        rows.append(
            OverheadRow(
                technique=study.technique,
                target_level=level,
                mean_actual=mean,
                min_actual=min(fractions),
                max_actual=max(fractions),
                shortfall=level - mean,
            )
        )
    return rows


def render_overhead(rows: list[OverheadRow]) -> str:
    return format_table(
        ["Technique", "Target", "Mean actual", "Min", "Max", "Shortfall"],
        [
            [
                r.technique,
                format_percent(r.target_level),
                format_percent(r.mean_actual),
                format_percent(r.min_actual),
                format_percent(r.max_actual),
                format_percent(r.shortfall),
            ]
            for r in rows
        ],
        title="Sec. VIII-A: duplicated dynamic-cycle fraction vs target level",
    )
