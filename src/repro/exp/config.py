"""Scale presets: how much Monte Carlo each experiment buys.

The paper's campaign sizes (1000 faults/program-input, 100 faults/static
instruction, 50 generated + 30 evaluation inputs) are scaled down through
these presets; every count is a knob so a user with more compute can push
back toward paper scale (the ``FULL`` preset).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["ScaleConfig", "TINY", "SMALL", "FULL"]


@dataclass(frozen=True)
class ScaleConfig:
    """All experiment-size knobs in one place."""

    name: str
    #: Whole-program faults per (program, input) campaign.
    campaign_faults: int
    #: Faults per static instruction (reference-input benefit measurement).
    per_instr_trials: int
    #: Faults per static instruction when measuring searched inputs.
    search_per_instr_trials: int
    #: Number of random evaluation inputs per app.
    eval_inputs: int
    #: Input-search budget (number of searched inputs).
    search_max_inputs: int
    #: Search stall limit (stop after this many fruitless inputs).
    search_stall: int
    #: GA population / generation caps.
    ga_population: int
    ga_generations: int
    #: Protection levels studied (the paper's 30/50/70%).
    protection_levels: tuple[float, ...] = (0.3, 0.5, 0.7)
    #: Master seed.
    seed: int = 2022
    #: Process fan-out for FI campaigns (0 = serial, None = REPRO_WORKERS).
    workers: int | None = 0
    #: Checkpoint-resume for FI campaigns: None/0 = cold replay, "auto" =
    #: interval heuristic, an int = snapshot every that many instructions.
    checkpoint_interval: int | str | None = None
    #: Campaign-cache directory: campaigns reuse results persisted there
    #: across runs (None = ambient cache, REPRO_CACHE_DIR or none; False =
    #: explicitly disabled for this study even if one is installed).
    cache_dir: str | None = None
    #: Supervisor: retries per failed worker chunk before a typed
    #: HarnessError surfaces (None = REPRO_MAX_RETRIES env, else 2).
    max_retries: int | None = None
    #: Supervisor: per-chunk wall-clock deadline in seconds for hung-worker
    #: detection (None = REPRO_TASK_TIMEOUT env, else off).
    task_timeout: float | None = None
    #: Apps to include (None = all 11).
    apps: tuple[str, ...] | None = None
    #: Trial executor for FI campaigns: "scalar" runs one interpreter per
    #: trial; "batch" vectorizes trials in lockstep over numpy columns
    #: (bit-identical outcomes, ~20-35x cold throughput). None defers to
    #: REPRO_ENGINE (default scalar).
    engine: str | None = None
    #: Trials per lockstep batch when engine="batch" (None = REPRO_BATCH_SIZE
    #: env, else the engine default).
    batch_size: int | None = None
    #: Source of per-instruction SDC probabilities for protection profiles:
    #: "fi" (inject — the paper's method), "model" (static error-propagation
    #: prediction, zero trials), or "hybrid" (model + FI verification near
    #: the knapsack cut). Evaluation campaigns always inject.
    profile_source: str = "fi"
    #: Dispatch fabric for FI campaigns: "local" keeps the in-host process
    #: pool; "inproc"/"socketpair"/"tcp" route chunks through
    #: repro.fabric adapters (bit-identical outcomes either way). None
    #: defers to REPRO_FABRIC_TRANSPORT (default local); tcp endpoints
    #: come from REPRO_FABRIC_ADDR.
    transport: str | None = None
    #: Detector zoo kinds for frontier studies (repro.detectors order).
    detectors: tuple[str, ...] = ("dup", "range", "store", "checksum")
    #: Budget ladder (cycle fractions) swept by detector-frontier studies.
    frontier_budgets: tuple[float, ...] = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75)

    def with_(self, **kw) -> "ScaleConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **kw)


#: Seconds-scale preset for unit/integration tests.
TINY = ScaleConfig(
    name="tiny",
    campaign_faults=60,
    per_instr_trials=4,
    search_per_instr_trials=3,
    eval_inputs=5,
    search_max_inputs=3,
    search_stall=2,
    ga_population=4,
    ga_generations=2,
    protection_levels=(0.5,),
)

#: Minutes-scale preset used by the benchmark harness and EXPERIMENTS.md.
SMALL = ScaleConfig(
    name="small",
    campaign_faults=200,
    per_instr_trials=8,
    search_per_instr_trials=6,
    eval_inputs=10,
    search_max_inputs=5,
    search_stall=2,
    ga_population=6,
    ga_generations=4,
)

#: Paper-shaped preset (hours of compute; use workers > 1).
FULL = ScaleConfig(
    name="full",
    campaign_faults=1000,
    per_instr_trials=100,
    search_per_instr_trials=30,
    eval_inputs=30,
    search_max_inputs=20,
    search_stall=3,
    ga_population=8,
    ga_generations=8,
)
