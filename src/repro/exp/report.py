"""Textual rendering of studies: the same rows/series the paper reports."""

from __future__ import annotations

from repro.apps.registry import app_table
from repro.exp.results import CoverageStudyResult
from repro.util.tables import format_percent, format_table, render_candlestick_row

__all__ = [
    "render_table1",
    "render_loss_table",
    "render_coverage_figure",
    "render_comparison",
]


def render_table1() -> str:
    """Table I: the benchmark inventory."""
    return format_table(
        ["Benchmark", "Suite", "Description"],
        app_table(),
        title="Table I: Our Benchmarks",
    )


def render_loss_table(study: CoverageStudyResult, title: str) -> str:
    """Table II/III/IV shape: % coverage-loss inputs per app × level."""
    levels = study.levels()
    headers = ["Benchmark"] + [f"{int(round(100 * l))}% Level" for l in levels]
    rows = []
    for app in study.apps():
        row = [app]
        for level in levels:
            r = study.by_app_level(app, level)
            row.append(format_percent(r.loss_input_fraction()))
        rows.append(row)
    avg = ["Average"] + [
        format_percent(study.average_loss_fraction(level)) for level in levels
    ]
    rows.append(avg)
    return format_table(headers, rows, title=title)


def render_coverage_figure(study: CoverageStudyResult, title: str) -> str:
    """Fig. 2/6/9 shape: per app × level candlestick with expected bar."""
    lines = [title]
    for app in study.apps():
        for level in study.levels():
            r = study.by_app_level(app, level)
            c = r.candlestick()
            label = f"{app}@{int(round(100 * level))}%"
            lines.append(
                render_candlestick_row(
                    label, c.lo, c.q1, c.median, c.q3, c.hi,
                    expected=r.expected_coverage,
                )
            )
    return "\n".join(lines)


def render_comparison(
    baseline: CoverageStudyResult, minpsid: CoverageStudyResult, title: str
) -> str:
    """Side-by-side min-coverage and loss-input comparison (Fig. 6 text)."""
    headers = [
        "Benchmark", "Level",
        "SID exp", "SID min", "SID loss%",
        "MIN exp", "MIN min", "MIN loss%",
    ]
    rows = []
    for app in baseline.apps():
        for level in baseline.levels():
            b = baseline.by_app_level(app, level)
            try:
                m = minpsid.by_app_level(app, level)
            except KeyError:
                continue
            rows.append(
                [
                    app,
                    f"{int(round(100 * level))}%",
                    f"{b.expected_coverage:.3f}",
                    f"{b.min_coverage():.3f}",
                    format_percent(b.loss_input_fraction()),
                    f"{m.expected_coverage:.3f}",
                    f"{m.min_coverage():.3f}",
                    format_percent(m.loss_input_fraction()),
                ]
            )
    return format_table(headers, rows, title=title)
