"""Fig. 2 / Table II driver: the loss of SDC coverage in existing SID.

For every benchmark: build classic SID at each protection level using the
app's reference input, then measure SDC coverage across random evaluation
inputs. The candlesticks (min/quartiles/max of measured coverage) against the
expected-coverage bars reproduce Fig. 2; the fraction of inputs below the
expected bar reproduces Table II.
"""

from __future__ import annotations

from repro.apps import all_app_names, get_app
from repro.cache.active import cache_scope
from repro.exp.config import ScaleConfig
from repro.exp.results import CoverageStudyResult
from repro.exp.runner import evaluate_protection, generate_eval_inputs
from repro.sid.pipeline import SIDConfig, classic_sid
from repro.util.rng import derive_seed

__all__ = ["run_fig2_study"]


def run_fig2_study(
    scale: ScaleConfig, measure_duplication: bool = False
) -> CoverageStudyResult:
    """Run the baseline-SID coverage study over apps × protection levels.

    Incremental: with ``scale.cache_dir`` set, the per-instruction benefit
    sweeps inside ``classic_sid`` and every evaluation campaign replay
    persisted results when nothing relevant changed.
    """
    study = CoverageStudyResult(technique="sid", scale=scale.name)
    apps = scale.apps if scale.apps is not None else tuple(all_app_names())
    with cache_scope(scale.cache_dir):
        return _run_fig2_apps(scale, study, apps, measure_duplication)


def _run_fig2_apps(scale, study, apps, measure_duplication):
    for app_name in apps:
        app = get_app(app_name)
        args, bindings = app.encode(app.reference_input)
        inputs = generate_eval_inputs(
            app, scale.eval_inputs, derive_seed(scale.seed, "eval", app_name)
        )
        for level in scale.protection_levels:
            sid = classic_sid(
                app.module,
                args,
                bindings,
                SIDConfig(
                    protection_level=level,
                    per_instruction_trials=scale.per_instr_trials,
                    seed=derive_seed(scale.seed, "sid", app_name, level),
                    rel_tol=app.rel_tol,
                    abs_tol=app.abs_tol,
                    workers=scale.workers,
                    profile_source=scale.profile_source,
                ),
            )
            study.results.append(
                evaluate_protection(
                    app,
                    sid.protected,
                    sid.expected_coverage,
                    technique="sid",
                    protection_level=level,
                    inputs=inputs,
                    scale=scale,
                    measure_duplication=measure_duplication,
                )
            )
    return study
