"""§VIII-B driver: SID/MINPSID on a multithreaded FFT.

Builds fork-join variants of the FFT whose butterfly stages are partitioned
across 1/2/4 threads (see :mod:`repro.vm.threads` for why a deterministic
tid-order linearization is exact for these race-free phases), protects each
variant with both techniques, and measures the average SDC-coverage loss
across evaluation inputs — the quantity the paper reports per thread count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.apps.base import App, ArgSpec, InputSpec
from repro.apps.fft import FftApp, _build_bitrev, _build_stage_worker, _emit_spectrum
from repro.exp.config import ScaleConfig
from repro.exp.fig6 import minpsid_config_for
from repro.exp.runner import evaluate_protection, generate_eval_inputs
from repro.ir.builder import Builder
from repro.ir.module import Module
from repro.ir.types import F64, VOID
from repro.minpsid.pipeline import minpsid
from repro.sid.pipeline import SIDConfig, classic_sid
from repro.util.rng import derive_seed
from repro.vm.threads import partition_range

__all__ = ["ThreadedFftApp", "MtFftRow", "run_mt_fft_study"]


class ThreadedFftApp(App):
    """FFT with butterfly stages fork-joined over ``num_threads`` threads.

    The transform size is fixed at build time (thread partitions are static,
    as in the pthreads SPLASH-2 code); inputs vary signal content only.
    """

    suite = "SPLASH-2"
    description = "Multithreaded 1D FFT (fork-join butterfly stages)"
    rel_tol = 1e-7
    abs_tol = 1e-9

    def __init__(self, num_threads: int = 2, m: int = 4) -> None:
        super().__init__()
        self.num_threads = num_threads
        self.m = m
        self.n = 1 << m
        self.name = f"fft-mt{num_threads}"

    @property
    def input_spec(self) -> InputSpec:
        return InputSpec(
            (
                ArgSpec("scale", "float", 0.1, 50.0),
                ArgSpec("waveform", "choice", choices=("noise", "tone", "chirp", "step")),
                ArgSpec("seed", "int", 0, 1_000_000),
            )
        )

    @property
    def reference_input(self):
        return {"scale": 1.0, "waveform": "noise", "seed": 23}

    def encode(self, inp):
        serial = FftApp()
        full = dict(inp)
        full["m"] = self.m
        _, bindings = serial.encode(full)
        return [], bindings

    def build_module(self) -> Module:
        m = Module(self.name)
        re = m.add_global("re", F64, self.n)
        im = m.add_global("im", F64, self.n)
        _build_bitrev(m, re, im)
        _build_stage_worker(m, re, im)

        b = Builder.new_function(m, "main", [], VOID)
        n_c = b.i64(self.n)
        b.call("bitrev", [n_c, b.i64(self.m)], VOID)
        ln = 2
        while ln <= self.n:
            blocks = self.n // ln
            for tid, (lo, hi) in enumerate(
                partition_range(blocks, min(self.num_threads, blocks))
            ):
                if lo == hi:
                    continue
                b.call(
                    "stage_worker",
                    [b.i64(tid), b.i64(lo), b.i64(hi), b.i64(ln)],
                    VOID,
                )
            ln *= 2
        _emit_spectrum(b, re, im, n_c)
        b.ret()
        return m


@dataclass
class MtFftRow:
    """Average coverage loss for one thread count."""

    threads: int
    sid_loss: float
    minpsid_loss: float


def _avg_loss(result) -> float:
    """Mean (expected − measured)+ over evaluation inputs."""
    losses = [
        max(0.0, result.expected_coverage - m)
        for m in result.measured
        if m is not None
    ]
    return sum(losses) / len(losses) if losses else 0.0


def run_mt_fft_study(
    scale: ScaleConfig, thread_counts: tuple[int, ...] = (1, 2, 4), level: float = 0.5
) -> list[MtFftRow]:
    """Protect and evaluate the threaded FFT at each thread count."""
    rows: list[MtFftRow] = []
    for t in thread_counts:
        app = ThreadedFftApp(num_threads=t)
        args, bindings = app.encode(app.reference_input)
        inputs = generate_eval_inputs(
            app, scale.eval_inputs, derive_seed(scale.seed, "mt-eval", t)
        )
        sid = classic_sid(
            app.module, args, bindings,
            SIDConfig(
                protection_level=level,
                per_instruction_trials=scale.per_instr_trials,
                seed=derive_seed(scale.seed, "mt-sid", t),
                rel_tol=app.rel_tol, abs_tol=app.abs_tol, workers=scale.workers,
            ),
        )
        sid_eval = evaluate_protection(
            app, sid.protected, sid.expected_coverage,
            technique="sid", protection_level=level, inputs=inputs, scale=scale,
        )
        mres = minpsid(app, minpsid_config_for(scale, level, app.name))
        min_eval = evaluate_protection(
            app, mres.protected, mres.expected_coverage,
            technique="minpsid", protection_level=level, inputs=inputs, scale=scale,
        )
        rows.append(
            MtFftRow(
                threads=t,
                sid_loss=_avg_loss(sid_eval),
                minpsid_loss=_avg_loss(min_eval),
            )
        )
    return rows
