"""Result dataclasses shared by the experiment drivers, plus JSON I/O."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exp.candlestick import Candlestick

__all__ = [
    "AppLevelResult",
    "CoverageStudyResult",
    "save_json",
    "load_json",
]


@dataclass
class AppLevelResult:
    """Coverage evaluation of one technique on one app at one level."""

    app: str
    technique: str  # "sid" | "minpsid"
    protection_level: float
    expected_coverage: float
    #: Measured coverage per evaluation input (None = no SDC evidence).
    measured: list[float | None] = field(default_factory=list)
    #: Unprotected / protected whole-program SDC probabilities per input.
    sdc_unprotected: list[float] = field(default_factory=list)
    sdc_protected: list[float] = field(default_factory=list)
    #: Fraction of dynamic instructions actually duplicated, per input
    #: (§VIII-A overhead-variance data; empty unless requested).
    dup_fraction: list[float] = field(default_factory=list)
    #: Where the protection profile's SDC probabilities came from:
    #: "fi" (injected), "model" (static prediction), or "hybrid".
    profile_source: str = "fi"

    def valid_measured(self) -> list[float]:
        return [m for m in self.measured if m is not None]

    def candlestick(self) -> Candlestick:
        return Candlestick.from_values(self.valid_measured())

    def loss_input_fraction(self) -> float:
        """Fraction of inputs whose measured coverage missed the expected
        coverage — one cell of Table II / III / IV."""
        vals = self.valid_measured()
        if not vals:
            return 0.0
        losses = sum(1 for m in vals if m < self.expected_coverage)
        return losses / len(vals)

    def min_coverage(self) -> float:
        vals = self.valid_measured()
        return min(vals) if vals else 0.0

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "technique": self.technique,
            "protection_level": self.protection_level,
            "expected_coverage": self.expected_coverage,
            "measured": self.measured,
            "sdc_unprotected": self.sdc_unprotected,
            "sdc_protected": self.sdc_protected,
            "dup_fraction": self.dup_fraction,
            "profile_source": self.profile_source,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AppLevelResult":
        return cls(**d)


@dataclass
class CoverageStudyResult:
    """A full Fig. 2/6/9-style study: apps × levels for one technique."""

    technique: str
    scale: str
    results: list[AppLevelResult] = field(default_factory=list)

    def by_app_level(self, app: str, level: float) -> AppLevelResult:
        for r in self.results:
            if r.app == app and abs(r.protection_level - level) < 1e-9:
                return r
        raise KeyError((app, level))

    def apps(self) -> list[str]:
        seen: list[str] = []
        for r in self.results:
            if r.app not in seen:
                seen.append(r.app)
        return seen

    def levels(self) -> list[float]:
        seen: list[float] = []
        for r in self.results:
            if r.protection_level not in seen:
                seen.append(r.protection_level)
        return sorted(seen)

    def average_loss_fraction(self, level: float) -> float:
        rows = [r for r in self.results if abs(r.protection_level - level) < 1e-9]
        if not rows:
            return 0.0
        return sum(r.loss_input_fraction() for r in rows) / len(rows)

    def to_dict(self) -> dict:
        return {
            "technique": self.technique,
            "scale": self.scale,
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CoverageStudyResult":
        return cls(
            technique=d["technique"],
            scale=d["scale"],
            results=[AppLevelResult.from_dict(r) for r in d["results"]],
        )


def save_json(path: str | Path, payload: dict) -> None:
    """Write a result dict as pretty JSON (parents created)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
