"""Shared evaluation machinery of the coverage studies.

``evaluate_protection`` is the core loop behind Figs. 2/6/9 and Tables
II/III/IV: run whole-program FI campaigns on the unprotected and protected
binaries under each evaluation input and convert SDC probabilities into
measured coverage.

The loop is **incremental**: when the scale preset names a ``cache_dir``
(or a cache is already installed), every campaign consults the
content-addressed store first, so re-running an unchanged study — the
common case when regenerating a figure after an unrelated edit — dispatches
zero campaigns and replays persisted, bit-identical results.
"""

from __future__ import annotations

from repro.apps.base import App, Input
from repro.cache.active import cache_scope
from repro.errors import Trap
from repro.exp.config import ScaleConfig
from repro.exp.results import AppLevelResult
from repro.fi.campaign import run_campaign
from repro.sid.coverage import measured_coverage
from repro.sid.duplication import ProtectedModule
from repro.util.rng import RngStream, derive_seed
from repro.fabric.harness import fabric_scope
from repro.vm.batch import engine_scope
from repro.vm.interpreter import Program
from repro.vm.profiler import profile_run

__all__ = ["generate_eval_inputs", "duplication_fraction", "evaluate_protection"]


def generate_eval_inputs(app: App, n: int, seed: int) -> list[Input]:
    """The paper's random evaluation inputs (filtered to run cleanly).

    Random inputs that trap or hang on a golden run are discarded — the
    paper's generator likewise rejects inputs that "produce reported errors"
    (§III-A2). With our domain-constrained specs rejection is rare. Only
    guest :class:`~repro.errors.Trap`\\ s count as rejection; any other
    exception is a toolchain bug and propagates instead of being silently
    swallowed as a "rejected input".
    """
    rng = RngStream(seed, app.name, "eval-inputs")
    out: list[Input] = []
    attempt = 0
    while len(out) < n and attempt < 20 * n:
        attempt += 1
        inp = app.random_input(rng.child(attempt))
        try:
            args, bindings = app.encode(inp)
            app.program.run(args=args, bindings=bindings)
        except Trap:
            continue
        out.append(inp)
    return out


def duplication_fraction(
    protected: ProtectedModule, program: Program, args, bindings
) -> float:
    """Duplicated share of dynamic cycles under one input (§VIII-A)."""
    from repro.vm.costmodel import DEFAULT_COST_MODEL

    prof = profile_run(program, args=args, bindings=bindings)
    dup_cycles = 0
    base_cycles = 0
    for instr in program.module.instructions():
        c = prof.instr_cycles[instr.iid]
        if instr.opcode in ("check", "checkrange"):
            continue
        if instr.origin is not None:
            dup_cycles += c
        else:
            base_cycles += c
    return dup_cycles / base_cycles if base_cycles else 0.0


def evaluate_protection(
    app: App,
    protected: ProtectedModule,
    expected_coverage: float,
    technique: str,
    protection_level: float,
    inputs: list[Input],
    scale: ScaleConfig,
    measure_duplication: bool = False,
    profile_source: str | None = None,
) -> AppLevelResult:
    """Measure coverage of one protected binary across evaluation inputs.

    ``profile_source`` labels how the protection profile's SDC
    probabilities were obtained (fi/model/hybrid); it defaults to the scale
    preset's setting and travels into the emitted result row.
    """
    result = AppLevelResult(
        app=app.name,
        technique=technique,
        protection_level=protection_level,
        expected_coverage=expected_coverage,
        profile_source=(
            profile_source if profile_source is not None
            else scale.profile_source
        ),
    )
    prog_unprot = app.program
    prog_prot = Program(protected.module)
    with cache_scope(scale.cache_dir), engine_scope(
        scale.engine, scale.batch_size
    ), fabric_scope(scale.transport):
        for k, inp in enumerate(inputs):
            args, bindings = app.encode(inp)
            seed_u = derive_seed(
                scale.seed, app.name, technique, protection_level, k, "u"
            )
            seed_p = derive_seed(
                scale.seed, app.name, technique, protection_level, k, "p"
            )
            pu = run_campaign(
                prog_unprot, scale.campaign_faults, seed_u,
                args=args, bindings=bindings,
                rel_tol=app.rel_tol, abs_tol=app.abs_tol,
                workers=scale.workers,
                checkpoint_interval=scale.checkpoint_interval,
                max_retries=scale.max_retries,
                task_timeout=scale.task_timeout,
            ).sdc_probability
            pp = run_campaign(
                prog_prot, scale.campaign_faults, seed_p,
                args=args, bindings=bindings,
                rel_tol=app.rel_tol, abs_tol=app.abs_tol,
                workers=scale.workers,
                checkpoint_interval=scale.checkpoint_interval,
                max_retries=scale.max_retries,
                task_timeout=scale.task_timeout,
            ).sdc_probability
            result.sdc_unprotected.append(pu)
            result.sdc_protected.append(pp)
            result.measured.append(measured_coverage(pu, pp))
            if measure_duplication:
                result.dup_fraction.append(
                    duplication_fraction(protected, prog_prot, args, bindings)
                )
    return result
