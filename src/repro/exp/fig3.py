"""Fig. 3 driver: exhibit a concrete incubative instruction.

The paper's Fig. 3 shows an ``icmp`` in FFT whose SDC probability is ~0%
under the reference input but large under another input. This driver scans
per-instruction FI results of a benchmark under its reference input and a
contrasting input and reports the instruction with the largest SDC-probability
swing, printing its textual IR and both probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps import get_app
from repro.apps.base import Input
from repro.exp.config import ScaleConfig
from repro.exp.runner import generate_eval_inputs
from repro.fi.campaign import run_per_instruction_campaign
from repro.ir.printer import format_instruction
from repro.util.rng import derive_seed

__all__ = ["IncubativeExample", "find_incubative_example"]


@dataclass
class IncubativeExample:
    """One exhibited incubative instruction."""

    app: str
    iid: int
    opcode: str
    text: str
    ref_sdc_prob: float
    alt_sdc_prob: float
    alt_input: Input

    @property
    def swing(self) -> float:
        return self.alt_sdc_prob - self.ref_sdc_prob

    def render(self) -> str:
        return (
            f"Incubative example in {self.app} (iid {self.iid}):\n"
            f"  {self.text}\n"
            f"  SDC probability with reference input: {self.ref_sdc_prob:.2%}\n"
            f"  SDC probability with input {self.alt_input}: "
            f"{self.alt_sdc_prob:.2%}"
        )


def find_incubative_example(
    scale: ScaleConfig, app_name: str = "fft", prefer_opcode: str = "icmp"
) -> IncubativeExample:
    """Find the largest-swing instruction between reference and random inputs.

    Prefers instructions of ``prefer_opcode`` (the paper's example is an
    icmp) when one exhibits a meaningful swing, falling back to the global
    maximum otherwise.
    """
    app = get_app(app_name)
    program = app.program

    def sdc_map(inp: Input, k: int) -> dict[int, float]:
        args, bindings = app.encode(inp)
        fi = run_per_instruction_campaign(
            program,
            scale.per_instr_trials,
            derive_seed(scale.seed, "fig3", app_name, k),
            args=args,
            bindings=bindings,
            rel_tol=app.rel_tol,
            abs_tol=app.abs_tol,
            workers=scale.workers,
        )
        return fi.sdc_probabilities()

    ref = sdc_map(app.reference_input, 0)
    candidates = generate_eval_inputs(
        app, max(3, scale.eval_inputs // 2), derive_seed(scale.seed, "fig3", app_name)
    )

    def rank(ex: IncubativeExample) -> tuple:
        """Incubative-ness: near-zero on the reference input first (the
        paper's defining property), then the largest swing, then the
        preferred opcode as a tie-break."""
        return (
            ex.ref_sdc_prob <= 0.2,  # truly negligible under the reference
            ex.opcode == prefer_opcode,
            ex.swing,
        )

    best: IncubativeExample | None = None
    for k, inp in enumerate(candidates, start=1):
        alt = sdc_map(inp, k)
        for iid, p_alt in alt.items():
            p_ref = ref.get(iid, 0.0)
            if p_alt <= p_ref:
                continue
            instr = app.module.instruction(iid)
            ex = IncubativeExample(
                app=app_name,
                iid=iid,
                opcode=instr.opcode,
                text=format_instruction(instr),
                ref_sdc_prob=p_ref,
                alt_sdc_prob=p_alt,
                alt_input=inp,
            )
            if best is None or rank(ex) > rank(best):
                best = ex
    assert best is not None, "no instruction showed an SDC-probability swing"
    return best
