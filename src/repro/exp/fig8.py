"""Fig. 8 driver: MINPSID execution-time breakdown.

Runs the full MINPSID pipeline per app and reports wall-clock spent in the
paper's three dominant components — per-instruction FI on the reference input
(①), per-instruction FI for incubative identification (⑦), and the input
search engine (③–⑥) — plus everything else. Absolute minutes are machine-
and scale-specific; the reproduced claim is the *shape*: incubative FI and
the search engine dominate, reference FI is comparatively small, and the
whole cost is a one-time compile-time expense.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import get_app
from repro.exp.config import ScaleConfig
from repro.exp.fig6 import minpsid_config_for
from repro.minpsid.pipeline import minpsid
from repro.util.tables import format_table

__all__ = ["TimingRow", "run_fig8_study", "render_fig8"]

PHASES = ("per_inst_fi_ref", "per_inst_fi_incubative", "search_engine")


@dataclass
class TimingRow:
    """Per-app phase timings in seconds."""

    app: str
    phases: dict[str, float] = field(default_factory=dict)
    total: float = 0.0

    def fraction(self, phase: str) -> float:
        return self.phases.get(phase, 0.0) / self.total if self.total else 0.0


def run_fig8_study(app_names: list[str], scale: ScaleConfig, level: float = 0.5) -> list[TimingRow]:
    """Time the MINPSID pipeline on each app."""
    rows = []
    for name in app_names:
        app = get_app(name)
        res = minpsid(app, minpsid_config_for(scale, level, name))
        sw = res.stopwatch
        rows.append(TimingRow(app=name, phases=dict(sw.totals), total=sw.total()))
    return rows


def render_fig8(rows: list[TimingRow]) -> str:
    """Render the breakdown table (the Fig. 8 series in text form)."""
    headers = ["Benchmark", "FI(ref)", "FI(incubative)", "Search", "Other", "Total [s]"]
    out = []
    for r in rows:
        other = r.total - sum(r.phases.get(p, 0.0) for p in PHASES)
        out.append(
            [
                r.app,
                f"{r.phases.get('per_inst_fi_ref', 0.0):.2f}s",
                f"{r.phases.get('per_inst_fi_incubative', 0.0):.2f}s",
                f"{r.phases.get('search_engine', 0.0):.2f}s",
                f"{max(0.0, other):.2f}s",
                f"{r.total:.2f}",
            ]
        )
    return format_table(headers, out, title="Fig. 8: MINPSID execution time")
