"""Fig. 9 / Table IV driver: the real-world-input case study (§VII).

Protect BFS and Kmeans with both techniques exactly as in the main
evaluation (reference input + random-input search), then *evaluate* the
protected binaries on dataset-derived inputs: KONECT-like graphs for BFS,
Kaggle-like clustering sets for Kmeans.
"""

from __future__ import annotations

from repro.apps.datasets import (
    DatasetBfsApp,
    DatasetKmeansApp,
    kaggle_like_clusterings,
    konect_like_graphs,
)
from repro.exp.config import ScaleConfig
from repro.exp.fig6 import minpsid_config_for
from repro.exp.results import CoverageStudyResult
from repro.exp.runner import evaluate_protection
from repro.minpsid.pipeline import minpsid
from repro.sid.pipeline import SIDConfig, classic_sid
from repro.util.rng import derive_seed

__all__ = ["run_fig9_study", "case_study_apps"]


def case_study_apps(scale: ScaleConfig):
    """The two dataset-backed apps, corpus sizes scaled to the preset."""
    n_graphs = min(30, max(4, scale.eval_inputs))
    n_clusterings = min(10, max(3, scale.eval_inputs // 2))
    bfs = DatasetBfsApp(konect_like_graphs(n_graphs, seed=scale.seed))
    kmeans = DatasetKmeansApp(kaggle_like_clusterings(n_clusterings, seed=scale.seed))
    return [bfs, kmeans]


def run_fig9_study(
    scale: ScaleConfig,
) -> tuple[CoverageStudyResult, CoverageStudyResult]:
    """Run the case study; returns (baseline study, MINPSID study)."""
    base = CoverageStudyResult(technique="sid", scale=scale.name)
    hardened = CoverageStudyResult(technique="minpsid", scale=scale.name)

    for ds_app in case_study_apps(scale):
        # Protection is built on the *generator-backed* app — the paper
        # protects the program as usual; only the evaluation inputs are
        # real-world datasets.
        from repro.apps import get_app

        gen_app = get_app(ds_app.name)
        args, bindings = gen_app.encode(gen_app.reference_input)
        inputs = ds_app.dataset_inputs()

        for level in scale.protection_levels:
            sid = classic_sid(
                gen_app.module, args, bindings,
                SIDConfig(
                    protection_level=level,
                    per_instruction_trials=scale.per_instr_trials,
                    seed=derive_seed(scale.seed, "fig9-sid", ds_app.name, level),
                    rel_tol=gen_app.rel_tol, abs_tol=gen_app.abs_tol,
                    workers=scale.workers,
                    profile_source=scale.profile_source,
                ),
            )
            base.results.append(
                evaluate_protection(
                    ds_app, sid.protected, sid.expected_coverage,
                    technique="sid", protection_level=level,
                    inputs=inputs, scale=scale,
                )
            )
            mres = minpsid(gen_app, minpsid_config_for(scale, level, ds_app.name))
            hardened.results.append(
                evaluate_protection(
                    ds_app, mres.protected, mres.expected_coverage,
                    technique="minpsid", protection_level=level,
                    inputs=inputs, scale=scale,
                )
            )
    return base, hardened
