"""§IV driver: root-cause statistics of the coverage loss.

Reproduces the paper's three §IV quantifications:

1. *Target instructions*: instructions that cause no SDCs under the
   reference input on the SID-protected binary but cause SDCs under other
   inputs — the instructions behind the coverage loss.
2. *Cross-level persistence*: the share of level-L target instructions that
   remain targets at the next level (paper: 54.4% from 30→50%, 41.3% from
   50→70%).
3. *Incubative fraction and attribution*: the share of injectable
   instructions that are incubative (paper: 6.20%–32.09%, avg 15.79%) and
   the share of new-SDC faults attributable to them (paper: ≥97%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps import get_app
from repro.apps.base import App, Input
from repro.exp.config import ScaleConfig
from repro.exp.runner import generate_eval_inputs
from repro.fi.campaign import run_campaign, run_per_instruction_campaign
from repro.fi.faultmodel import injectable_iids
from repro.minpsid.incubative import IncubativeConfig, find_incubative
from repro.sid.pipeline import SIDConfig, classic_sid
from repro.util.rng import derive_seed
from repro.vm.interpreter import Program
from repro.vm.profiler import profile_run

__all__ = ["Sec4AppResult", "run_sec4_analysis"]


@dataclass
class Sec4AppResult:
    """§IV statistics for one application."""

    app: str
    #: level -> set of target (coverage-loss-causing) original iids.
    targets_by_level: dict[float, set[int]] = field(default_factory=dict)
    #: (level_a, level_b) -> |targets_a ∩ targets_b| / |targets_a|.
    persistence: dict[tuple[float, float], float] = field(default_factory=dict)
    #: Incubative instructions found from per-instruction FI across inputs.
    incubative: set[int] = field(default_factory=set)
    #: |incubative| / |injectable|.
    incubative_fraction: float = 0.0
    #: Share of new-SDC faults whose origin instruction is incubative.
    attribution: float = 0.0
    new_sdc_faults: int = 0


def _sdc_origins(
    program: Program, protected, app: App, inp: Input, faults: int, seed: int,
    workers: int,
) -> tuple[set[int], list[int]]:
    """Origins (original iids) of SDC-causing faults on the protected binary.

    Returns (distinct origins, per-fault origin list).
    """
    args, bindings = app.encode(inp)
    res = run_campaign(
        program, faults, seed, args=args, bindings=bindings,
        rel_tol=app.rel_tol, abs_tol=app.abs_tol, workers=workers,
    )
    origins: list[int] = []
    from repro.fi.outcome import Outcome

    for iid, outcome in res.per_fault:
        if outcome is Outcome.SDC:
            origin = protected.origin_of(iid)
            if origin is not None:
                origins.append(origin)
    return set(origins), origins


def run_sec4_analysis(app_name: str, scale: ScaleConfig) -> Sec4AppResult:
    """Run the full §IV analysis for one benchmark."""
    app = get_app(app_name)
    result = Sec4AppResult(app=app_name)
    args, bindings = app.encode(app.reference_input)
    inputs = generate_eval_inputs(
        app, scale.eval_inputs, derive_seed(scale.seed, "sec4-eval", app_name)
    )

    # 1/2: target instructions per protection level on SID binaries.
    for level in scale.protection_levels:
        sid = classic_sid(
            app.module, args, bindings,
            SIDConfig(
                protection_level=level,
                per_instruction_trials=scale.per_instr_trials,
                seed=derive_seed(scale.seed, "sec4-sid", app_name, level),
                rel_tol=app.rel_tol, abs_tol=app.abs_tol, workers=scale.workers,
            ),
        )
        prog = Program(sid.protected.module)
        ref_origins, _ = _sdc_origins(
            prog, sid.protected, app, app.reference_input,
            scale.campaign_faults,
            derive_seed(scale.seed, "sec4-ref", app_name, level),
            scale.workers,
        )
        targets: set[int] = set()
        all_new_origins: list[int] = []
        for k, inp in enumerate(inputs):
            origins, per_fault = _sdc_origins(
                prog, sid.protected, app, inp, scale.campaign_faults,
                derive_seed(scale.seed, "sec4-in", app_name, level, k),
                scale.workers,
            )
            targets |= origins - ref_origins
            all_new_origins.extend(o for o in per_fault if o not in ref_origins)
        result.targets_by_level[level] = targets
        if level == scale.protection_levels[-1]:
            result._last_new_origins = all_new_origins  # type: ignore[attr-defined]

    levels = list(scale.protection_levels)
    for a, b in zip(levels, levels[1:]):
        ta, tb = result.targets_by_level[a], result.targets_by_level[b]
        result.persistence[(a, b)] = len(ta & tb) / len(ta) if ta else 0.0

    # 3: incubative identification from per-instruction FI across inputs.
    program = app.program
    history = []
    for k, inp in enumerate([app.reference_input] + inputs[: max(2, scale.search_max_inputs)]):
        a2, b2 = app.encode(inp)
        prof = profile_run(program, args=a2, bindings=b2)
        fi = run_per_instruction_campaign(
            program, scale.search_per_instr_trials,
            derive_seed(scale.seed, "sec4-fi", app_name, k),
            args=a2, bindings=b2, rel_tol=app.rel_tol, abs_tol=app.abs_tol,
            workers=scale.workers, profile=prof,
        )
        total = prof.total_cycles or 1
        history.append(
            {
                iid: c.sdc_probability * prof.instr_cycles[iid] / total
                for iid, c in fi.per_iid.items()
            }
        )
    result.incubative = find_incubative(history, IncubativeConfig())
    n_inj = len(injectable_iids(app.module))
    result.incubative_fraction = len(result.incubative) / n_inj if n_inj else 0.0

    # Attribution: share of new-SDC faults with incubative origins.
    new_origins = getattr(result, "_last_new_origins", [])
    result.new_sdc_faults = len(new_origins)
    if new_origins:
        hits = sum(1 for o in new_origins if o in result.incubative)
        result.attribution = hits / len(new_origins)
    return result
