"""Fleet policy-sweep figure: the escape-rate / throughput-cost frontier.

The fleet simulator (:mod:`repro.fleet`) turns the Meta "SDCs at Scale"
operational question into a figure: walking the policy ladder from lax to
paranoid in-field testing, the fleet-wide SDC escape rate falls
monotonically while throughput cost rises — the tradeoff the paper frames
qualitatively, measured here on the repo's own 11-app job mix under SID
protection. The same sweep (fixed seed, small fleet) is byte-diffed and
monotonicity-gated by the ``fleet-smoke`` CI job.
"""

from __future__ import annotations

from repro.exp.config import ScaleConfig
from repro.fleet import render_sweep, run_sweep
from repro.fleet.sweep import sweep_is_monotone

__all__ = ["fleet_dimensions", "run_figfleet_study", "render_figfleet"]

#: Per-scale fleet shape: (hosts, defective, rounds, apps or None = all).
FLEET_SCALES = {
    "tiny": (24, 2, 8, ("kmeans", "fft")),
    "small": (200, 2, 24, None),
    "full": (2000, 20, 64, None),
}


def fleet_dimensions(scale: ScaleConfig) -> tuple:
    """The fleet shape for a scale preset (unknown names get tiny's)."""
    return FLEET_SCALES.get(scale.name, FLEET_SCALES["tiny"])


def run_figfleet_study(scale: ScaleConfig, seed: int | None = None):
    """Run the policy ladder; returns ``[(policy_name, FleetResult), ...]``."""
    hosts, defective, rounds, apps = fleet_dimensions(scale)
    apps = scale.apps or apps  # --apps narrows the job mix here too
    return run_sweep(
        hosts, 0.01, seed if seed is not None else scale.seed,
        rounds=rounds, apps=list(apps) if apps else None,
        n_defective=defective, workers=scale.workers,
    )


def render_figfleet(results) -> str:
    """The sweep table plus an ASCII cost/escape frontier."""
    lines = [render_sweep(results), ""]
    max_cost = max(r.throughput_cost for _, r in results) or 1.0
    for name, r in results:
        bar = "#" * max(1, round(24 * r.throughput_cost / max_cost))
        lines.append(
            f"{name:<9} cost {r.throughput_cost:6.3f} |{bar:<24}| "
            f"escapes {r.sdc_escapes}"
        )
    lines.append("")
    lines.append(
        "frontier: "
        + ("monotone — paying for tests buys escapes down"
           if sweep_is_monotone(results)
           else "NOT monotone at this seed/scale")
    )
    return "\n".join(lines)
