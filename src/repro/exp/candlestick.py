"""Candlestick summaries — the visual unit of Figs. 2, 6 and 9."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Candlestick"]


@dataclass(frozen=True)
class Candlestick:
    """Five-number summary of measured coverage across inputs."""

    lo: float
    q1: float
    median: float
    q3: float
    hi: float
    n: int

    @classmethod
    def from_values(cls, values: list[float]) -> "Candlestick":
        if not values:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0)
        arr = np.asarray(values, dtype=np.float64)
        return cls(
            lo=float(arr.min()),
            q1=float(np.quantile(arr, 0.25)),
            median=float(np.quantile(arr, 0.5)),
            q3=float(np.quantile(arr, 0.75)),
            hi=float(arr.max()),
            n=int(arr.size),
        )

    @property
    def spread(self) -> float:
        """Whisker range — the paper's "range of SDC coverage"."""
        return self.hi - self.lo

    def to_dict(self) -> dict:
        return {
            "lo": self.lo, "q1": self.q1, "median": self.median,
            "q3": self.q3, "hi": self.hi, "n": self.n,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Candlestick":
        return cls(d["lo"], d["q1"], d["median"], d["q3"], d["hi"], d["n"])
