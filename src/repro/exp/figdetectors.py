"""Detector-frontier figure: coverage-vs-overhead per app.

The detector-zoo analogue of the paper's protection-level story: for each
app, the multi-detector Pareto optimizer (:mod:`repro.detectors`) sweeps
the budget ladder and traces the coverage-vs-overhead frontier, with each
configuration FI-validated at the scale's campaign size. Rendered as one
ASCII frontier per app plus a kinds/monotonicity gate line — the same
frontier the ``detector-smoke`` CI job asserts non-dominated and monotone.
"""

from __future__ import annotations

from repro.apps.registry import all_app_names, get_app
from repro.detectors import (
    FrontierConfig,
    FrontierResult,
    build_frontier,
    frontier_detector_kinds,
    frontier_is_monotone,
    frontier_is_nondominated,
)
from repro.exp.config import ScaleConfig

__all__ = [
    "detectors_dimensions",
    "run_figdetectors_study",
    "render_figdetectors",
]

#: Apps studied per scale (None = all 11). fft rides along at every scale
#: so an algorithm-checksum app is always on the figure.
DETECTOR_APPS = {
    "tiny": ("pathfinder", "fft"),
    "small": ("pathfinder", "fft", "kmeans", "hpccg"),
    "full": None,
}


def detectors_dimensions(scale: ScaleConfig) -> tuple[str, ...]:
    """The app list for a scale preset (unknown names get tiny's)."""
    apps = scale.apps or DETECTOR_APPS.get(scale.name, DETECTOR_APPS["tiny"])
    return tuple(apps) if apps else tuple(all_app_names())


def run_figdetectors_study(
    scale: ScaleConfig, seed: int | None = None
) -> list[tuple[str, FrontierResult]]:
    """Trace + FI-validate each app's frontier; ``[(app, result), ...]``."""
    out = []
    for name in detectors_dimensions(scale):
        app = get_app(name)
        a, b = app.encode(app.reference_input)
        res = build_frontier(
            app.module, a, b,
            FrontierConfig(
                detectors=scale.detectors,
                budgets=scale.frontier_budgets,
                profile_source="model",
                per_instruction_trials=scale.per_instr_trials,
                seed=seed if seed is not None else scale.seed,
                rel_tol=app.rel_tol,
                abs_tol=app.abs_tol,
                workers=scale.workers,
                validate_faults=scale.campaign_faults,
            ),
        )
        out.append((name, res))
    return out


def render_figdetectors(results) -> str:
    """One ASCII coverage-vs-overhead frontier per app, plus gate lines."""
    lines: list[str] = []
    for name, res in results:
        lines.append(f"== {name} ==")
        vals = res.validations or [None] * len(res.points)
        for p, v in zip(res.points, vals):
            c = p.config
            bar = "#" * max(1, round(30 * c.coverage))
            mix = " ".join(
                f"{k}:{n}" for k, n in sorted(c.by_kind.items())
            )
            mc = (
                f"{v.measured_coverage:6.1%}"
                if v is not None and v.measured_coverage is not None
                else "   n/a"
            )
            lines.append(
                f"  {p.budget:>4.0%} ovh {c.overhead:6.1%} "
                f"|{bar:<30}| pred {c.coverage:6.1%} meas {mc} "
                f"[{mix or 'none'}]"
            )
        ok = frontier_is_monotone(res.points) and frontier_is_nondominated(
            res.points
        )
        kinds = ",".join(frontier_detector_kinds(res.points))
        lines.append(
            f"  frontier: {'monotone+nondominated' if ok else 'VIOLATED'}"
            f", kinds {kinds}"
        )
        lines.append("")
    return "\n".join(lines)
