"""Lockstep batch execution: N fault-injection trials as one numpy program.

Every FI trial of the same (program, input) executes the *identical*
instruction stream as the golden run until its injected flip makes it
diverge — and the overwhelming majority never meaningfully diverge at all
(masked faults) or diverge only in data, not control flow. The scalar
interpreter pays the full per-instruction Python dispatch cost for each
trial separately; this module replays the golden trace **once** per batch
and carries the N trials along as vectorized numpy state.

Representation: the golden mirror + sparse diff columns
-------------------------------------------------------
A :class:`_BatchRun` re-executes the golden trace with exactly the scalar
interpreter's semantics (same step accounting, same operator formulas, same
trap conditions). Divergent per-trial state is held as *diff columns*:
length-N numpy arrays (``uint64`` for int/pointer/bool values, ``float64``
for floats, f32 values stored f32-rounded) attached to a value slot, a
memory cell, or an output position. ``None``/absent column means "all
trials hold the golden value" — the fast path, costing one extra ``is
None`` check per operand over the scalar interpreter, amortized over all N
rows. When a column's alive rows all equal the golden value bit-for-bit
again, the column is dropped (the batch equivalent of convergence pruning,
detected instantly instead of at the next checkpoint oracle).

Dirty operands take one of two tiers:

- **vectorized**: closed-form numpy expressions whose results are
  bit-identical to the scalar formulas (wrapping uint64 arithmetic,
  XOR-bias signed compares, hardware float ops shared with CPython);
- **scalar fixup**: ops whose CPython result can differ from numpy in bits
  (div/rem/shift traps, libm calls, huge-float casts, 0-divisor fdiv NaN
  payloads) are computed with the *interpreter's own formulas* on exactly
  the rows whose operands differ from golden.

The detach invariant
--------------------
A row stays in lockstep only while its control flow and trap state match
the golden trace and its memory writes are representable in the column
planes. Anything else leaves the batch with exact scalar state:

- **finalized in lockstep**: traps (invalid address, division by zero,
  failed ``check``) classify the row immediately — CRASH/DETECTED outcomes
  need no further execution;
- **detached to the scalar engine**: a row whose divergent-address store
  would need a mixed-dtype column (or whose branch divergence cannot
  reconverge, below) is materialized into a
  :class:`~repro.vm.checkpoint.Snapshot` (its exact slots, memory, and
  output, reconstructed from golden + columns) and finished by
  :meth:`Program.resume` with the usual convergence oracles.

Branch reconvergence (the SIMT trick)
-------------------------------------
A row that takes the other side of a conditional branch usually rejoins
the golden path a few instructions later — loop trip-count off by one,
guarded update skipped. Detaching it to a scalar tail forfeits all
remaining amortization, and data-dependent loop bounds make such rows the
dominant cost. Instead, like a GPU warp, the row executes its divergent
detour *privately* (a scalar mini-interpreter on its own slots/memory
copy, with exact step accounting) up to the branch's **immediate
post-dominator**, then *parks* there. When the golden mirror reaches that
block — it must, the block post-dominates the branch — the row wakes: its
step offset is carried per-row (preserving exact hang classification) and
its frozen state is diffed back into the column planes, including its own
phi inputs along its own incoming edge. Detours that trap finalize
exactly like lockstep traps; detours that hit ops a private copy cannot
carry (alloca, call, emit), and parked rows the mirror overtakes with an
alloca or emit (shared segment/output cursors), fall back to an ordinary
detach from their exact frozen state.

Outcomes are therefore bit-identical to the scalar engine *by
construction*: every value a row ever observes is either the golden value
(shared), computed by the same formula (vectorized/fixup tiers), or
produced by the scalar interpreter itself (detached tail).

numpy is an optional dependency of this module only; importing it is
deferred and :func:`run_trials_lockstep`/:func:`resolve_engine` raise
:class:`~repro.errors.ConfigError` when the batch engine is requested
without numpy installed.

Sticky host faults are scalar-only
----------------------------------
The amortization above assumes trials diverge from the golden trace
rarely and briefly — true for one-shot transient flips, false for a
sticky defective-host signature (:mod:`repro.fi.hostfault`), which
corrupts matching values for the *whole* run and never re-joins the
golden trajectory. Batched trials therefore carry no ``sticky`` hook;
the fleet simulator (:mod:`repro.fleet`) runs its defective-host jobs
through ``Program.run(sticky=...)`` on the scalar interpreter directly,
which also keeps fleet summaries byte-identical under ``REPRO_ENGINE``
overrides (the engine scope only routes FI *campaign* trials).
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass, field

try:  # numpy is required for the batch engine only — gate, don't demand.
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None

from repro.errors import (
    ArithmeticTrap,
    ConfigError,
    DetectedError,
    HangTimeout,
    IRError,
    MemoryFault,
    Trap,
)
from repro.obs.core import current as _obs_current
from repro.obs.spans import span as _span
from repro.util.bitops import (
    flip_value,
    float32_from_bits,
    float64_from_bits,
    float64_to_bits,
)
from repro.vm.checkpoint import FrameSnapshot, Snapshot
from repro.vm.interpreter import _f32
from repro.vm.memory import SEG_MASK, SEG_SHIFT

__all__ = [
    "ENGINES",
    "ENGINE_ENV",
    "BATCH_SIZE_ENV",
    "DEFAULT_BATCH_SIZE",
    "BatchStats",
    "engine_scope",
    "resolve_engine",
    "resolve_batch_size",
    "run_trials_lockstep",
]

#: Recognised execution engines for FI campaigns.
ENGINES = ("scalar", "batch")
#: Environment variable selecting the campaign execution engine.
ENGINE_ENV = "REPRO_ENGINE"
#: Environment variable overriding the lockstep batch width.
BATCH_SIZE_ENV = "REPRO_BATCH_SIZE"
#: Default rows per lockstep batch. Wide enough to amortize the golden
#: mirror replay (~one scalar run per batch) far below the per-trial scalar
#: cost, small enough that column working sets stay cache-resident; the
#: measured per-trial sweet spot on the bundled apps.
DEFAULT_BATCH_SIZE = 1024

#: Steps between lockstep maintenance passes (column garbage collection +
#: row retirement). Large enough that scanning every live column costs a
#: small fraction of the replay between passes, small enough that masked
#: rows retire long before the program ends.
_MAINT_INTERVAL = 2048

_M64 = (1 << 64) - 1

# Ambient engine overrides installed by engine_scope(); innermost last.
_SCOPE: list = []


def _numpy_ok() -> bool:
    return _np is not None


def resolve_engine(engine: str | None = None) -> str:
    """Resolve the campaign engine: explicit > ambient scope > env > default.

    Raises :class:`ConfigError` for unknown names, and for ``batch`` when
    numpy is unavailable — the caller gets a configuration-time error
    instead of a mid-campaign import failure.
    """
    if engine is None:
        for eng, _size in reversed(_SCOPE):
            if eng is not None:
                engine = eng
                break
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "scalar"
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    if engine == "batch" and not _numpy_ok():
        raise ConfigError("engine 'batch' requires numpy, which is not installed")
    return engine


def resolve_batch_size(batch_size: int | None = None) -> int:
    """Resolve the lockstep batch width: explicit > scope > env > default."""
    if batch_size is None:
        for _eng, size in reversed(_SCOPE):
            if size is not None:
                batch_size = size
                break
    if batch_size is None:
        raw = os.environ.get(BATCH_SIZE_ENV)
        if raw:
            try:
                batch_size = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{BATCH_SIZE_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            batch_size = DEFAULT_BATCH_SIZE
    if batch_size < 1:
        raise ConfigError(f"batch size must be >= 1, got {batch_size}")
    return batch_size


@contextmanager
def engine_scope(engine: str | None = None, batch_size: int | None = None):
    """Ambient engine selection for code paths without explicit threading.

    The CLI wraps command execution in this scope so that deeply nested
    campaign calls (supervisor retries, hybrid verify bands, model-guided
    refinement) pick up ``--engine``/``--batch-size`` without every
    intermediate layer growing parameters.
    """
    if engine is not None and engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    if batch_size is not None and batch_size < 1:
        raise ConfigError(f"batch size must be >= 1, got {batch_size}")
    _SCOPE.append((engine, batch_size))
    try:
        yield
    finally:
        _SCOPE.pop()


@dataclass
class BatchStats:
    """Deterministic accounting of one lockstep batch (or a merged campaign).

    ``lockstep_steps`` counts dynamic instructions each row spent riding the
    shared mirror replay; ``scalar_steps`` counts instructions executed by
    detached rows' scalar tails. Their ratio — :meth:`occupancy` — is the
    fraction of trial-instructions the batch engine amortized.
    """

    trials: int = 0
    batches: int = 0
    detached: int = 0
    #: Rows whose branch divergence reconverged at the immediate
    #: post-dominator (parked or side-tripped) instead of detaching.
    reconverged: int = 0
    retired: int = 0
    finalized_crash: int = 0
    finalized_detected: int = 0
    lockstep_steps: int = 0
    scalar_steps: int = 0
    detach_reasons: dict = field(default_factory=dict)
    #: Detaches per guest site ("fn:block" of the row's innermost frame at
    #: detach time) — the batch engine's hotspot attribution.
    detach_sites: dict = field(default_factory=dict)
    #: Reconvergences per guest site ("fn:block" of the post-dominator the
    #: divergent row parked at).
    reconverge_sites: dict = field(default_factory=dict)

    def detach_rate(self) -> float:
        return self.detached / self.trials if self.trials else 0.0

    def occupancy(self) -> float:
        total = self.lockstep_steps + self.scalar_steps
        return self.lockstep_steps / total if total else 1.0

    def merge(self, other: "BatchStats") -> None:
        self.trials += other.trials
        self.batches += other.batches
        self.detached += other.detached
        self.reconverged += other.reconverged
        self.retired += other.retired
        self.finalized_crash += other.finalized_crash
        self.finalized_detected += other.finalized_detected
        self.lockstep_steps += other.lockstep_steps
        self.scalar_steps += other.scalar_steps
        for k, v in other.detach_reasons.items():
            self.detach_reasons[k] = self.detach_reasons.get(k, 0) + v
        for k, v in other.detach_sites.items():
            self.detach_sites[k] = self.detach_sites.get(k, 0) + v
        for k, v in other.reconverge_sites.items():
            self.reconverge_sites[k] = self.reconverge_sites.get(k, 0) + v

    def as_dict(self) -> dict:
        return {
            "trials": self.trials,
            "batches": self.batches,
            "detached": self.detached,
            "reconverged": self.reconverged,
            "retired": self.retired,
            "finalized_crash": self.finalized_crash,
            "finalized_detected": self.finalized_detected,
            "lockstep_steps": self.lockstep_steps,
            "scalar_steps": self.scalar_steps,
            "detach_rate": self.detach_rate(),
            "occupancy": self.occupancy(),
            "detach_reasons": dict(self.detach_reasons),
            "detach_sites": dict(self.detach_sites),
            "reconverge_sites": dict(self.reconverge_sites),
        }


class _AllDone(Exception):
    """Internal: every row finalized/detached — stop the mirror replay."""


class _RFrame:
    """A snapshot frame resolved for batch resume (golden slots + columns)."""

    __slots__ = ("dfn", "blk", "prev_gid", "call_index", "gslots", "cols")

    def __init__(self, dfn, blk, prev_gid, call_index, gslots):
        self.dfn = dfn
        self.blk = blk
        self.prev_gid = prev_gid
        self.call_index = call_index
        self.gslots = gslots
        self.cols = [None] * dfn.n_slots


class _RowMem(dict):
    """Lazy per-row memory view over frozen park-time segment refs.

    Side trips touch a handful of segments; copying the full memory image
    per reconverging row dominated reconvergence cost. Instead the view
    holds ``base`` — the golden segment *references* as of park time — and
    clones just the segments actually read or written. The refs stay
    frozen because the mirror's store path clones any golden segment it
    would mutate while rows are parked (see ``_store``/``_thawed``).
    Iteration only sees materialized segments, so anything that escapes
    into a :class:`Snapshot` goes through :meth:`materialize` first.
    """

    __slots__ = ("base",)

    def __init__(self, base: dict):
        super().__init__()
        self.base = base

    def __missing__(self, seg):
        cells = list(self.base[seg])
        self[seg] = cells
        return cells

    def get(self, seg, default=None):
        """Materializing get: a returned segment may be written to."""
        if seg in self:
            return dict.__getitem__(self, seg)
        if seg in self.base:
            return self[seg]
        return default

    def peek(self, addr: int):
        """Read one cell without materializing its segment."""
        cells = dict.get(self, addr >> SEG_SHIFT)
        if cells is None:
            cells = self.base[addr >> SEG_SHIFT]
        return cells[addr & SEG_MASK]

    def materialize(self) -> dict:
        """A plain, fully private dict (for Snapshot/resume consumers)."""
        return {seg: self[seg] for seg in self.base}


def _int_op_scalar(op: int, a: int, b: int, d: list) -> int:
    """The scalar interpreter's exact formula for fixup-tier integer ops."""
    mask = d[7]
    if op == 10:
        return (a << b) & mask if b < d[8] else 0
    if op == 11:
        return a >> b if b < d[8] else 0
    if op == 12:
        w, sign = d[8], d[9]
        sa = a - (1 << w) if a & sign else a
        return (sa >> b if b < w else (sa >> (w - 1))) & mask
    if op == 3 or op == 5:  # sdiv / srem
        w, sign = d[8], d[9]
        sa = a - (1 << w) if a & sign else a
        sb = b - (1 << w) if b & sign else b
        if sb == 0:
            raise ArithmeticTrap("signed division by zero")
        q, r = divmod(abs(sa), abs(sb))
        if op == 3:
            return (-q if (sa < 0) != (sb < 0) else q) & mask
        return (-r if sa < 0 else r) & mask
    if b == 0:
        raise ArithmeticTrap("unsigned division by zero")
    return (a // b if op == 4 else a % b) & mask


def _fdiv_scalar(a: float, b: float) -> float:
    """The scalar interpreter's fdiv, including its 0-divisor NaN payloads."""
    if b == 0.0:
        if a == 0.0 or a != a:
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    try:
        return a / b
    except OverflowError:  # pragma: no cover - float operands never raise
        return math.copysign(math.inf, a) * math.copysign(1.0, b)


def _fmath_scalar(x: float, fn: int) -> float:
    """The scalar interpreter's fmath formulas (libm via CPython's math)."""
    if fn == 0:
        return math.sqrt(x) if x >= 0.0 else math.nan
    if fn == 1:
        return math.sin(x) if -1e18 < x < 1e18 else math.nan
    if fn == 2:
        return math.cos(x) if -1e18 < x < 1e18 else math.nan
    if fn == 3:
        try:
            return math.exp(x)
        except OverflowError:
            return math.inf
    if fn == 4:
        if x > 0.0:
            return math.log(x)
        if x == 0.0:
            return -math.inf
        return math.nan
    if fn == 5:
        return abs(x)
    return math.floor(x) if math.isfinite(x) else x


def _sneq(a, b) -> bool:
    """Bitwise scalar inequality, matching the column planes' notion.

    Floats compare by their binary64 encoding (NaN == NaN, -0.0 != 0.0),
    ints by value; a class mismatch (or exactly one ``None``) is always a
    difference. Used when reconciling a woken row's frozen state against
    the golden mirror.
    """
    if a is None or b is None:
        return a is not b
    af = type(a) is float
    if af != (type(b) is float):
        return True
    if af:
        return float64_to_bits(a) != float64_to_bits(b)
    return a != b


class _BatchRun:
    """One lockstep batch: golden mirror replay + N rows of diff columns."""

    def __init__(
        self,
        program,
        faults,
        args,
        bindings,
        golden_output,
        snapshot,
        convergence,
        step_limit,
    ):
        self.prog = program
        self.n = len(faults)
        self.args = args
        self.bindings = bindings
        self.golden_output = golden_output
        self.snapshot = snapshot
        self.convergence = convergence
        self.step_limit = step_limit

        np = _np
        self._U64 = np.uint64
        self._F64 = np.float64
        self.alive = np.ones(self.n, dtype=bool)
        self.alive_count = self.n
        # Rows waiting at a reconvergence point for the mirror to catch up.
        # ``exec_mask`` (= alive & ~parked) is what every execution-semantics
        # scan uses; ``alive`` alone gates only final-result bookkeeping.
        self.parked = np.zeros(self.n, dtype=bool)
        self.exec_mask = np.ones(self.n, dtype=bool)
        # Per-row dynamic-step offset relative to the mirror, picked up by
        # rows whose reconverged detour had a different step count. Only
        # positive offsets can change hang classification; ``max_extra``
        # makes that check one integer compare per block.
        self.extra = np.zeros(self.n, dtype=np.int64)
        self.max_extra = 0
        self.park_count = 0
        self.park_stack: list = []  # one {gid: [records]} per active frame
        # Memory addresses the mirror wrote while any row was parked —
        # with per-frame slot logs, the candidate set for wake-time
        # reconciliation (everything else provably equals golden).
        self.park_mem_log: set = set()
        # Golden segments cloned by the mirror since the most recent park
        # (clone-on-first-write keeps park records' segment refs frozen).
        self._thawed: set = set()
        self._ipdom_cache: dict = {}
        self.results: list = [None] * self.n
        self.stats = BatchStats(trials=self.n, batches=1)

        # Fault schedule: iid -> [(instance, row, bit), ...] sorted by
        # *descending* instance so the next-due fault pops off the end.
        self.f_by_iid: dict[int, list] = {}
        for row, spec in enumerate(faults):
            self.f_by_iid.setdefault(spec.iid, []).append(
                (spec.instance, row, spec.bit)
            )
        for lst in self.f_by_iid.values():
            lst.sort(reverse=True)
        self.f_seen: dict[int, int] = {iid: 0 for iid in self.f_by_iid}
        self.f_fired = np.zeros(self.n, dtype=bool)

        # Golden mirror state (exactly the scalar interpreter's).
        self.mem: dict[int, list] = {}
        self.next_seg = 1
        self.output: list = []
        self.steps = 0
        self.base_steps = 0

        # Diff planes.
        self.mem_cols: dict[int, object] = {}  # absolute address -> column
        self.out_overlays: list = []  # (output index, {row: value})
        self.out_diff = np.zeros(self.n, dtype=bool)
        self.shadow: list = []  # suspended caller frames, outermost first
        self.maint_at = _MAINT_INTERVAL

    # -- column helpers ------------------------------------------------
    def _bcast(self, gv):
        """A fresh column holding the golden value in every row."""
        if type(gv) is float:
            return _np.full(self.n, gv, dtype=self._F64)
        return _np.full(self.n, gv, dtype=self._U64)

    def _diff_raw(self, col, gv):
        """Unmasked bitwise column-vs-golden difference."""
        if col.dtype == self._F64:
            return col.view(self._U64) != self._U64(float64_to_bits(gv))
        return col != self._U64(gv)

    def _neq(self, col, gv):
        """Executing rows whose column value differs bit-for-bit from golden.

        Parked rows are excluded: their column entries go stale while they
        wait (their truth lives in the frozen park record and is reconciled
        at wake), so they must neither trigger divergence handling nor keep
        settled columns alive.
        """
        return self._diff_raw(col, gv) & self.exec_mask

    def _settled(self, col, gv) -> bool:
        return gv is not None and not bool(self._neq(col, gv).any())

    def _row_val(self, row: int, gv, col):
        """Row's scalar view of a value: golden unless a column overrides."""
        if col is None:
            return gv
        if col.dtype == self._F64:
            return float(col[row])
        return int(col[row])

    # -- row lifecycle -------------------------------------------------
    def _mark_done(self, row: int) -> None:
        self.alive[row] = False
        self.exec_mask[row] = False
        self.alive_count -= 1
        self.stats.lockstep_steps += self.steps - self.base_steps
        if self.alive_count == 0:
            raise _AllDone()

    def _finalize_trap(self, row: int, trap: Trap) -> None:
        """Classify a row in lockstep: its trap decides the outcome now."""
        self.results[row] = (None, trap)
        if isinstance(trap, DetectedError):
            self.stats.finalized_detected += 1
        else:
            self.stats.finalized_crash += 1
        self._mark_done(row)

    def _row_output(self, row: int) -> list:
        """Row's output so far (the shared golden list when undiverged)."""
        if not self.out_diff[row]:
            return self.output
        out = list(self.output)
        for pos, overrides in self.out_overlays:
            v = overrides.get(row)
            if v is not None or row in overrides:
                out[pos] = v
        return out

    def _row_mem(self, row: int) -> dict:
        mem = {seg: list(cells) for seg, cells in self.mem.items()}
        for addr, col in self.mem_cols.items():
            if col.dtype == self._F64:
                v = float(col[row])
            else:
                v = int(col[row])
            mem[addr >> SEG_SHIFT][addr & SEG_MASK] = v
        return mem

    def _row_slots(self, row: int, gslots: list, cols: list) -> list:
        return [self._row_val(row, gv, c) for gv, c in zip(gslots, cols)]

    def _detach_row(
        self, row, dfn, block_name, prev_gid, gslots, cols, code_index, reason
    ) -> None:
        """Materialize a diverged row's exact state and finish it scalar.

        ``code_index`` >= 0 resumes mid-block at that instruction (store
        divergence — the scalar run re-executes the store); -1 resumes at
        ``block_name``'s entry (branch divergence — ``self.steps`` is the
        step count at the target block's entry, pre-accounting, exactly
        where checkpoint snapshots are defined).
        """
        frames = [
            FrameSnapshot(f[0].name, f[3].name, f[4], f[5],
                          self._row_slots(row, f[1], f[2]))
            for f in self.shadow
        ]
        frames.append(
            FrameSnapshot(dfn.name, block_name, prev_gid, -1,
                          self._row_slots(row, gslots, cols), code_index)
        )
        snap = Snapshot(
            steps=self.steps + int(self.extra[row]),
            next_seg=self.next_seg,
            output=self._row_output(row),
            instr_counts=None,
            mem=self._row_mem(row),
            frames=frames,
        )
        self._finish_scalar(row, snap, reason)

    def _finish_scalar(self, row: int, snap: Snapshot, reason: str) -> None:
        """Run a detached row's scalar tail from ``snap`` and record it."""
        self.stats.detached += 1
        reasons = self.stats.detach_reasons
        reasons[reason] = reasons.get(reason, 0) + 1
        fr = snap.frames[-1]
        site = f"{fr.fn}:{fr.block}"
        sites = self.stats.detach_sites
        sites[site] = sites.get(site, 0) + 1
        self._mark_done_detached(row)
        trap: Trap | None = None
        output: list | None = None
        with _span("batch.detach", {"site": site, "reason": reason},
                   infra=True):
            try:
                res = self.prog.resume(
                    snap,
                    fault=None,
                    step_limit=self.step_limit,
                    convergence=self.convergence,
                    fault_fired=True,
                )
                output = res.output
                if res.converged:
                    output = output + self.golden_output[res.converged_output_len:]
                self.stats.scalar_steps += res.steps - snap.steps
            except Trap as t:
                trap = t
        self.results[row] = (output, trap)
        if self.alive_count == 0:
            raise _AllDone()

    def _mark_done_detached(self, row: int) -> None:
        # Like _mark_done but defers the _AllDone raise until the scalar
        # tail has run and the row's result is recorded.
        self.alive[row] = False
        self.exec_mask[row] = False
        self.alive_count -= 1
        self.stats.lockstep_steps += self.steps - self.base_steps

    # -- branch reconvergence ------------------------------------------
    def _ipdom_for(self, dfn) -> dict:
        """Block gid -> reconvergence block: the immediate post-dominator,
        or ``None`` when control only rejoins at function exit.

        Standard iterative post-dominator sets over the block graph (tiny:
        programs here have tens of blocks), cached per function. A branch
        whose divergent path must pass the ipdom before leaving the
        function lets the row rejoin the batch there instead of detaching.
        """
        cached = self._ipdom_cache.get(dfn.name)
        if cached is not None:
            return cached
        by_gid = {b.gid: b for b in dfn.blocks.values()}
        succs = {}
        for g, b in by_gid.items():
            t = b.term
            if t[0] == "br":
                succs[g] = (t[2].gid,)
            elif t[0] == "condbr":
                succs[g] = (t[4].gid, t[5].gid)
            else:
                succs[g] = ()
        EXIT = -1
        allset = frozenset(by_gid) | {EXIT}
        pdom = {g: allset for g in by_gid}
        pdom[EXIT] = frozenset({EXIT})
        changed = True
        while changed:
            changed = False
            for g in by_gid:
                ss = succs[g] or (EXIT,)
                new = frozenset({g}).union(
                    frozenset.intersection(*(pdom.get(s, allset) for s in ss))
                )
                if new != pdom[g]:
                    pdom[g] = new
                    changed = True
        res = {}
        for g in by_gid:
            cands = pdom[g] - {g}
            ip = None
            # The immediate post-dominator is the candidate every other
            # candidate post-dominates (candidates form a chain).
            for c in cands:
                if c != EXIT and cands <= pdom[c]:
                    ip = by_gid[c]
                    break
            res[g] = ip
        self._ipdom_cache[dfn.name] = res
        return res

    def _reconverge_row(self, row, dfn, blk, atarget, rblk, gslots, cols,
                        parks) -> None:
        """Branch-divergent row: run its detour privately up to the
        reconvergence block ``rblk``, then park it there until the golden
        mirror arrives (the mirror must pass ``rblk`` — it post-dominates
        the branch)."""
        slots = self._row_slots(row, gslots, cols)
        gmem = self.mem
        mem = _RowMem(dict(gmem))
        stale_addrs = []
        F64 = self._F64
        for addr, col in self.mem_cols.items():
            gv = gmem[addr >> SEG_SHIFT][addr & SEG_MASK]
            if col.dtype == F64:
                rv = float(col[row])
                if float64_to_bits(rv) == float64_to_bits(gv):
                    continue
            else:
                rv = int(col[row])
                if rv == gv:
                    continue
            mem[addr >> SEG_SHIFT][addr & SEG_MASK] = rv
            stale_addrs.append(addr)
        with _span("batch.reconverge", {"site": f"{dfn.name}:{rblk.name}"},
                   infra=True):
            rec = self._side_trip(row, dfn, atarget, blk.gid, slots, mem,
                                  rblk.gid, self.steps + int(self.extra[row]))
        if rec is None:
            return
        psteps, pgid, slots, mem, wslots, wmem = rec
        # Wake-time reconciliation candidates: the detour's writes plus
        # every location where the row already differed from golden at park
        # time. With the mirror's own write logs, that covers every
        # location that can differ at wake.
        for i, col in enumerate(cols):
            gv = gslots[i]
            if col is not None and gv is not None and self._stale(col, row, gv):
                wslots.add(i)
        wmem.update(stale_addrs)
        self.parked[row] = True
        self.exec_mask[row] = False
        self.extra[row] = 0  # the offset now lives in the park record
        self.park_count += 1
        self.stats.reconverged += 1
        site = f"{dfn.name}:{rblk.name}"
        rsites = self.stats.reconverge_sites
        rsites[site] = rsites.get(site, 0) + 1
        # The record now holds frozen refs to the current golden segments;
        # the mirror clones before its next write to any of them.
        self._thawed.clear()
        parks.setdefault(rblk.gid, []).append(
            (row, psteps, pgid, slots, mem, len(self.shadow), dfn, rblk.name,
             wslots, wmem)
        )

    def _side_trip(self, row, dfn, blk, prev_gid, slots, mem, r_gid, steps):
        """Scalar mini-interpreter for one row's divergent detour.

        Executes on the row's *private* slots/memory with exactly the
        scalar interpreter's step accounting, formulas, and trap
        conditions, until control reaches the reconvergence block
        ``r_gid`` (stop *before* its accounting — park state is at block
        entry, like checkpoint snapshots). Returns ``(steps, prev_gid,
        slots, mem, written slot set, written addr set)`` to park — the
        write sets feed wake-time reconciliation candidates — or ``None``
        when the row left the batch:
        trapped (finalized), or hit an op the private detour cannot carry
        — alloca (segment ids are global), call (frame bookkeeping), emit
        (shared output stream) — which detaches it to the full scalar
        engine from this exact point.
        """
        limit = self.step_limit
        t0 = steps
        wslots: set = set()
        wmem: set = set()
        while True:
            if blk.gid == r_gid:
                self.stats.scalar_steps += steps - t0
                return steps, prev_gid, slots, mem, wslots, wmem
            steps += len(blk.code) + 1
            if limit is not None and steps > limit:
                self.stats.scalar_steps += steps - t0
                self._finalize_trap(
                    row, HangTimeout(f"step limit {limit} exceeded")
                )
                return None
            if blk.phis:
                vals = []
                for d in blk.phis:
                    k, v = d[3][prev_gid]
                    vals.append(v if k == 0 else slots[v])
                for d, v in zip(blk.phis, vals):
                    slots[d[2]] = v
                    wslots.add(d[2])
                steps += len(blk.phis)
            for ci, d in enumerate(blk.code):
                op = d[0]
                try:
                    if op <= 12:
                        a = d[4] if d[3] == 0 else slots[d[4]]
                        b = d[6] if d[5] == 0 else slots[d[6]]
                        mask = d[7]
                        if op == 0:
                            val = (a + b) & mask
                        elif op == 1:
                            val = (a - b) & mask
                        elif op == 2:
                            val = (a * b) & mask
                        elif op == 7:
                            val = a & b
                        elif op == 8:
                            val = a | b
                        elif op == 9:
                            val = a ^ b
                        else:
                            val = _int_op_scalar(op, a, b, d)
                    elif op <= 16:
                        a = d[4] if d[3] == 0 else slots[d[4]]
                        b = d[6] if d[5] == 0 else slots[d[6]]
                        if op == 13:
                            val = a + b
                        elif op == 14:
                            val = a - b
                        elif op == 15:
                            val = a * b
                        else:
                            val = _fdiv_scalar(a, b)
                        if d[7]:
                            val = _f32(val)
                    elif op == 17:
                        a = d[4] if d[3] == 0 else slots[d[4]]
                        b = d[6] if d[5] == 0 else slots[d[6]]
                        val = self._icmp_scalar(d, a, b)
                    elif op == 18:
                        a = d[4] if d[3] == 0 else slots[d[4]]
                        b = d[6] if d[5] == 0 else slots[d[6]]
                        val = self._fcmp_scalar(d, a, b)
                    elif op == 19:
                        c = d[4] if d[3] == 0 else slots[d[4]]
                        tv = d[6] if d[5] == 0 else slots[d[6]]
                        fv = d[8] if d[7] == 0 else slots[d[8]]
                        val = tv if c else fv
                    elif op == 20:
                        x = d[4] if d[3] == 0 else slots[d[4]]
                        val = _fmath_scalar(x, d[5])
                        if d[6]:
                            val = _f32(val)
                    elif op <= 29:
                        x = d[4] if d[3] == 0 else slots[d[4]]
                        val, _ = self._cast(op, d, x, None)
                    elif op == 31:  # load
                        addr = d[4] if d[3] == 0 else slots[d[4]]
                        cells = mem.get(addr >> SEG_SHIFT)
                        off = addr & SEG_MASK
                        if cells is None or off >= len(cells):
                            raise MemoryFault(f"load from {addr:#x}")
                        val = self._coerce_load_scalar(cells[off], d[5], d[6])
                    elif op == 32:  # store
                        v = d[4] if d[3] == 0 else slots[d[4]]
                        addr = d[6] if d[5] == 0 else slots[d[6]]
                        cells = mem.get(addr >> SEG_SHIFT)
                        off = addr & SEG_MASK
                        if cells is None or off >= len(cells):
                            raise MemoryFault(f"store to {addr:#x}")
                        cells[off] = v
                        wmem.add(addr)
                        continue
                    elif op == 33:  # gep
                        p = d[4] if d[3] == 0 else slots[d[4]]
                        idx = d[6] if d[5] == 0 else slots[d[6]]
                        w = d[7]
                        sidx = idx - (1 << w) if idx & (1 << (w - 1)) else idx
                        val = (p + sidx) & _M64
                    elif op == 37:  # check
                        a = d[4] if d[3] == 0 else slots[d[4]]
                        b = d[6] if d[5] == 0 else slots[d[6]]
                        if a != b and not (a != a and b != b):
                            raise DetectedError(d[7], a, b)
                        continue
                    elif op == 38:  # checkrange
                        x = d[4] if d[3] == 0 else slots[d[4]]
                        if x != x or x < d[5] or x > d[6]:
                            raise DetectedError(d[7], x, d[5])
                        continue
                    else:  # alloca / call / emit: detour can't carry it
                        self.stats.scalar_steps += steps - t0
                        self._side_abort(row, dfn, blk, prev_gid, slots,
                                         mem, ci, steps)
                        return None
                except Trap as tr:
                    self.stats.scalar_steps += steps - t0
                    self._finalize_trap(row, tr)
                    return None
                slots[d[2]] = val
                wslots.add(d[2])
            t = blk.term
            if t[0] == "br":
                prev_gid = blk.gid
                blk = t[2]
            elif t[0] == "condbr":
                c = t[3] if t[2] == 0 else slots[t[3]]
                prev_gid = blk.gid
                blk = t[4] if c else t[5]
            else:  # pragma: no cover - r_gid post-dominates, ret unreachable
                self.stats.scalar_steps += steps - t0
                self._side_abort(row, dfn, blk, prev_gid, slots, mem,
                                 len(blk.code), steps)
                return None

    def _side_abort(self, row, dfn, blk, prev_gid, slots, mem, code_index,
                    steps) -> None:
        """Detour hit an op it can't execute privately: detach the row with
        the detour's exact state, resuming at that instruction."""
        frames = [
            FrameSnapshot(f[0].name, f[3].name, f[4], f[5],
                          self._row_slots(row, f[1], f[2]))
            for f in self.shadow
        ]
        frames.append(
            FrameSnapshot(dfn.name, blk.name, prev_gid, -1, slots, code_index)
        )
        snap = Snapshot(
            steps=steps,
            next_seg=self.next_seg,
            output=self._row_output(row),
            instr_counts=None,
            mem=mem.materialize() if isinstance(mem, _RowMem) else mem,
            frames=frames,
        )
        self._finish_scalar(row, snap, "side-trip-op")

    def _detach_from_park(self, rec, reason: str) -> None:
        """Late-detach a parked row from its frozen park-time state (the
        caller has already cleared its parked flag)."""
        row, psteps, pgid, fslots, fmem, depth, dfn, rname = rec[:8]
        frames = [
            FrameSnapshot(f[0].name, f[3].name, f[4], f[5],
                          self._row_slots(row, f[1], f[2]))
            for f in self.shadow[:depth]
        ]
        frames.append(FrameSnapshot(dfn.name, rname, pgid, -1, list(fslots)))
        snap = Snapshot(
            steps=psteps,
            next_seg=self.next_seg,
            output=self._row_output(row),
            instr_counts=None,
            mem=fmem.materialize() if isinstance(fmem, _RowMem) else fmem,
            frames=frames,
        )
        self._finish_scalar(row, snap, reason)

    def _flush_parked(self, reason: str) -> None:
        """The mirror is about to execute an op parked rows cannot sit
        through — alloca (renumbers the shared segment cursor) or emit
        (advances the shared output stream) — so late-detach every parked
        row, in every frame, from its frozen state first."""
        for parks in self.park_stack:
            if parks:
                self._flush_dict(parks, reason)
        self.park_mem_log.clear()

    def _flush_dict(self, parks: dict, reason: str) -> None:
        for wl in parks.values():
            for rec in wl:
                row = rec[0]
                self.parked[row] = False
                self.park_count -= 1
                self._detach_from_park(rec, reason)
        parks.clear()

    def _stale(self, col, row: int, gv) -> bool:
        """Does this column's entry for ``row`` differ bitwise from ``gv``?"""
        if col.dtype == self._F64:
            return float64_to_bits(float(col[row])) != float64_to_bits(gv)
        return int(col[row]) != gv

    def _hang_extras(self) -> None:
        """Rows running ahead of the mirror (positive step offset) can
        exceed the hang budget where the mirror doesn't — exactly the
        scalar interpreter's block-entry check, offset per row."""
        limit = self.step_limit
        over = (self.extra > 0) & self.exec_mask
        over &= (self.steps + self.extra) > limit
        for r in _np.nonzero(over)[0]:
            self._finalize_trap(
                int(r), HangTimeout(f"step limit {limit} exceeded")
            )
        live = self.extra[self.exec_mask | self.parked]
        self.max_extra = int(live.max()) if live.size else 0

    def _wake_reconcile(self, rec, blk, dfn, gslots, cols, slot_log) -> None:
        """Fold a woken row's frozen detour state back into the columns.

        The row sat at this block's entry while the mirror caught up; the
        mirror has just run the block's phis. Reconciling = apply the
        row's *own* phi inputs (from its frozen slots, along its own
        incoming edge) and then diff against golden — not everywhere, only
        at the *candidates*: slots/cells the detour wrote, locations the
        row already differed at park time, and everything the mirror wrote
        while rows were parked (``slot_log``/``park_mem_log``). Anywhere
        else, frozen == park-time golden == current golden. Differences
        materialize columns; candidate entries gone stale while parked are
        scrubbed back to golden. A difference no column can hold
        (value-class flip, or a slot golden never set) falls back to a
        full detach from the frozen state — rare, and exactly as correct
        as any other detach.
        """
        row, psteps, pgid, fslots, fmem, depth, rdfn, rname, ws, wm = rec
        cand_slots = ws | slot_log
        if blk.phis:
            vals = []
            for d in blk.phis:
                k, v = d[3][pgid]
                vals.append(v if k == 0 else fslots[v])
                cand_slots.add(d[2])
            fslots = list(fslots)  # keep the frozen record for detach
            for d, v in zip(blk.phis, vals):
                fslots[d[2]] = v
        cand_mem = wm | self.park_mem_log
        # Representability scan first, so an unrepresentable diff detaches
        # from the untouched frozen record.
        for i in cand_slots:
            gv = gslots[i]
            rv = fslots[i]
            if rv is None and gv is None:
                continue
            if rv is None or gv is None or (
                (type(rv) is float) != (type(gv) is float)
            ):
                self._detach_from_park(rec, "reconverge-class")
                return
        mem = self.mem
        for addr in cand_mem:
            rv = fmem.peek(addr)
            gv = mem[addr >> SEG_SHIFT][addr & SEG_MASK]
            if (type(rv) is float) != (type(gv) is float):
                self._detach_from_park(rec, "reconverge-class")
                return
        # Apply: slots...
        for i in cand_slots:
            gv = gslots[i]
            if gv is None:
                continue
            rv = fslots[i]
            col = cols[i]
            if _sneq(rv, gv):
                ncol = col.copy() if col is not None else self._bcast(gv)
                ncol[row] = rv
                cols[i] = ncol
            elif col is not None and self._stale(col, row, gv):
                ncol = col.copy()
                ncol[row] = gv
                cols[i] = ncol
        # ...and memory cells.
        mem_cols = self.mem_cols
        for addr in cand_mem:
            rv = fmem.peek(addr)
            gv = mem[addr >> SEG_SHIFT][addr & SEG_MASK]
            col = mem_cols.get(addr)
            if _sneq(rv, gv):
                ncol = col.copy() if col is not None else self._bcast(gv)
                ncol[row] = rv
                mem_cols[addr] = ncol
            elif col is not None and self._stale(col, row, gv):
                ncol = col.copy()
                ncol[row] = gv
                mem_cols[addr] = ncol

    def _maintain(self, gslots, cols) -> None:
        """Periodic lockstep maintenance: column GC and row retirement.

        Drops columns whose alive rows all re-joined golden (row deaths and
        settled corruption leave stale diffs behind; every consumer masks by
        ``alive``, so GC is a fast-path restorer, not a correctness need).
        While scanning, accumulates a per-row any-diff mask: an alive row
        whose fault fired, with no fault still pending and no surviving diff
        in any slot, frame, or memory cell, is in a state bit-identical to
        golden — its remaining execution *is* the golden tail, so it retires
        immediately with the full golden output (plus any recorded output
        overlays). This is the batch-native convergence pruning, detected
        the moment corruption washes out instead of at checkpoint oracles.
        """
        self.maint_at = self.steps + _MAINT_INTERVAL
        dirty = _np.zeros(self.n, dtype=bool)
        # GC must keep columns alive for *parked* rows too: a parked row's
        # outer-frame diffs live only in the columns (its park record
        # freezes just the diverging frame), so dropping them would lose
        # state. Its current-frame entries may be stale garbage — keeping
        # those columns is merely conservative.
        if self.park_count:
            gcm = self.exec_mask | self.parked
        else:
            gcm = self.exec_mask
        frames = [(f[1], f[2]) for f in self.shadow]
        frames.append((gslots, cols))
        for f_gslots, f_cols in frames:
            for i, col in enumerate(f_cols):
                if col is None:
                    continue
                gv = f_gslots[i]
                if gv is None:  # pragma: no cover - defensive
                    f_cols[i] = None
                    continue
                m = self._diff_raw(col, gv) & gcm
                if not m.any():
                    f_cols[i] = None
                else:
                    dirty |= m
        mem = self.mem
        dead = []
        for addr, col in self.mem_cols.items():
            m = self._diff_raw(col, mem[addr >> SEG_SHIFT][addr & SEG_MASK])
            m &= gcm
            if not m.any():
                dead.append(addr)
            else:
                dirty |= m
        for addr in dead:
            del self.mem_cols[addr]
        pending = _np.zeros(self.n, dtype=bool)
        for lst in self.f_by_iid.values():
            for _inst, row, _bit in lst:
                pending[row] = True
        # Parked rows' diffs live in their frozen park records, invisible to
        # the column scan; rows running ahead of the mirror (positive step
        # offset) could still hang where golden finishes — neither may
        # retire on "bit-identical to golden" evidence.
        retire = self.exec_mask & self.f_fired & ~dirty & ~pending
        if self.max_extra > 0 and self.step_limit is not None:
            retire &= ~(self.extra > 0)
        if not retire.any():
            return
        golden = self.golden_output
        for r in _np.nonzero(retire)[0]:
            r = int(r)
            if self.out_diff[r]:
                out = list(golden)
                for pos, overrides in self.out_overlays:
                    if r in overrides:
                        out[pos] = overrides[r]
            else:
                out = golden
            self.results[r] = (out, None)
            self.stats.retired += 1
            self.alive[r] = False
            self.exec_mask[r] = False
            self.alive_count -= 1
            self.stats.lockstep_steps += self.steps - self.base_steps
        if self.alive_count == 0:
            raise _AllDone()

    # -- fault firing --------------------------------------------------
    def _fire_faults(self, iid: int, gval, col):
        """Apply every fault scheduled at this dynamic instance; returns the
        (possibly created/copied) column."""
        lst = self.f_by_iid.get(iid)
        if lst is None:
            return col
        seen = self.f_seen[iid] + 1
        self.f_seen[iid] = seen
        if not lst or lst[-1][0] != seen:
            return col
        kind, width = self.prog.flip_info[iid]
        owned = False
        while lst and lst[-1][0] == seen:
            _inst, row, bit = lst.pop()
            if not self.alive[row]:  # pragma: no cover - defensive
                continue
            if col is None:
                col = self._bcast(gval)
                owned = True
            elif not owned:
                col = col.copy()
                owned = True
            flipped = flip_value(self._row_val(row, gval, col), bit, kind, width)
            col[row] = flipped
            self.f_fired[row] = True
        if not lst:
            del self.f_by_iid[iid]
            del self.f_seen[iid]
        return col

    # -- memory ops ----------------------------------------------------
    def _coerce_load_col(self, col, want: int, mask: int):
        """Column version of the load type-reinterpretation rules."""
        U64 = self._U64
        if want == 0:
            if col.dtype == self._F64:
                return col.view(U64) & U64(mask)
            return col
        if want == 1:
            if col.dtype != self._F64:
                return col.view(self._F64)
            return col
        if col.dtype != self._F64:
            return (
                (col & U64(0xFFFFFFFF))
                .astype(_np.uint32)
                .view(_np.float32)
                .astype(self._F64)
            )
        return col

    @staticmethod
    def _coerce_load_scalar(val, want: int, mask: int):
        """The scalar interpreter's load type-reinterpretation, verbatim."""
        if want == 0:
            if type(val) is float:
                return float64_to_bits(val) & mask
            return val
        if want == 1:
            if type(val) is int:
                return float64_from_bits(val & _M64)
            return val
        if type(val) is int:
            return float32_from_bits(val & 0xFFFFFFFF)
        return val

    def _load(self, d, gaddr, acol, dfn, gslots, cols):
        """Execute a load: golden value + result column; divergent-address
        rows read their own cells in lockstep (per-row), invalid addresses
        finalize as CRASH."""
        mem = self.mem
        cells = mem.get(gaddr >> SEG_SHIFT)
        off = gaddr & SEG_MASK
        # Golden addresses are always valid: the mirror follows a trace the
        # golden run completed.
        raw = cells[off]
        want, mask = d[5], d[6]
        gval = self._coerce_load_scalar(raw, want, mask)

        dv = None
        if acol is not None:
            dv = self._neq(acol, gaddr)
            if not dv.any():
                dv = None
        mc = self.mem_cols.get(gaddr)
        if dv is None:
            if mc is None:
                return gval, None
            col = self._coerce_load_col(mc, want, mask)
            if self._settled(col, gval):
                return gval, None
            return gval, col

        # Divergent address stream: per-row reads, in lockstep.
        if mc is not None:
            col = self._coerce_load_col(mc, want, mask).copy()
        else:
            col = self._bcast(gval)
        for r in _np.nonzero(dv)[0]:
            r = int(r)
            addr = int(acol[r])
            rcells = mem.get(addr >> SEG_SHIFT)
            roff = addr & SEG_MASK
            if rcells is None or roff >= len(rcells):
                self._finalize_trap(r, MemoryFault(f"load from {addr:#x}"))
                continue
            v = rcells[roff]
            rmc = self.mem_cols.get(addr)
            if rmc is not None:
                v = self._row_val(r, v, rmc)
            col[r] = self._coerce_load_scalar(v, want, mask)
        if self._settled(col, gval):
            return gval, None
        return gval, col

    def _store(self, d, idx, dfn, blk, prev_gid, gslots, cols) -> None:
        """Execute a store; divergent-address rows write their own columns
        (or detach when a column would need mixed dtypes)."""
        gv = d[4] if d[3] == 0 else gslots[d[4]]
        vcol = None if d[3] == 0 else cols[d[4]]
        gaddr = d[6] if d[5] == 0 else gslots[d[6]]
        acol = None if d[5] == 0 else cols[d[6]]
        mem = self.mem
        cells = mem.get(gaddr >> SEG_SHIFT)
        off = gaddr & SEG_MASK
        if self.park_count:
            self.park_mem_log.add(gaddr)
            seg = gaddr >> SEG_SHIFT
            if seg not in self._thawed:
                # Park records hold frozen refs to this segment's list —
                # clone before the first mutation since the last park.
                cells = mem[seg] = list(cells)
                self._thawed.add(seg)

        dv = None
        if acol is not None:
            dv = self._neq(acol, gaddr)
            if not dv.any():
                dv = None

        if dv is None:
            cells[off] = gv
            if vcol is None or self._settled(vcol, gv):
                self.mem_cols.pop(gaddr, None)
            else:
                self.mem_cols[gaddr] = vcol
            return

        # Divergent address stream. Pass 0: classify every divergent row
        # *before* any memory mutation, so detached rows materialize the
        # exact pre-store state (their scalar tail re-executes the store).
        old_gv = cells[off]
        class_flip = (type(old_gv) is float) != (type(gv) is float)
        new_is_float = type(gv) is float
        plans: list = []
        for r in _np.nonzero(dv)[0]:
            r = int(r)
            addr = int(acol[r])
            rcells = mem.get(addr >> SEG_SHIFT)
            roff = addr & SEG_MASK
            if rcells is None or roff >= len(rcells):
                self._finalize_trap(r, MemoryFault(f"store to {addr:#x}"))
                continue
            tgt_is_float = type(rcells[roff]) is float
            v_r = self._row_val(r, gv, vcol)
            if tgt_is_float != new_is_float or class_flip:
                # The row's view of some cell needs a dtype its column
                # cannot hold alongside golden — leave the batch instead.
                self._detach_row(
                    r, dfn, blk.name, prev_gid, gslots, cols, idx,
                    "store-dtype",
                )
                continue
            plans.append((r, addr, v_r))

        old_col = self.mem_cols.get(gaddr)
        # Golden write at the golden address.
        cells[off] = gv
        # Rebuild the golden address's column: rows that wrote elsewhere
        # keep their pre-store view; rows that wrote here get their value.
        dv &= self.exec_mask  # drop rows finalized/detached in pass 0
        if dv.any():
            base = old_col.copy() if old_col is not None else self._bcast(old_gv)
            wmask = self.exec_mask & ~dv
            if vcol is not None:
                base[wmask] = vcol[wmask]
            else:
                if type(gv) is float:
                    base[wmask] = gv
                else:
                    base[wmask] = self._U64(gv)
            if self._settled(base, gv):
                self.mem_cols.pop(gaddr, None)
            else:
                self.mem_cols[gaddr] = base
        else:
            if vcol is None or self._settled(vcol, gv):
                self.mem_cols.pop(gaddr, None)
            else:
                self.mem_cols[gaddr] = vcol
        # Per-row writes at divergent addresses (grouped: several rows may
        # target the same cell).
        by_addr: dict[int, list] = {}
        for r, addr, v_r in plans:
            if self.alive[r]:
                by_addr.setdefault(addr, []).append((r, v_r))
        for addr, writes in by_addr.items():
            tcol = self.mem_cols.get(addr)
            if tcol is None:
                tcells = mem[addr >> SEG_SHIFT]
                tcol = self._bcast(tcells[addr & SEG_MASK])
            else:
                tcol = tcol.copy()
            for r, v_r in writes:
                tcol[r] = v_r
            self.mem_cols[addr] = tcol

    # -- vectorized/fixup op tiers ------------------------------------
    def _operand_cols(self, d, gslots, cols):
        ca = None if d[3] == 0 else cols[d[4]]
        cb = None if d[5] == 0 else cols[d[6]]
        return ca, cb

    def _arr_u(self, col, gv):
        return col if col is not None else _np.full(self.n, gv, dtype=self._U64)

    def _arr_f(self, col, gv):
        return col if col is not None else _np.full(self.n, gv, dtype=self._F64)

    def _int_col(self, op, d, ga, gb, ca, cb, gval):
        U64 = self._U64
        if op in (0, 1, 2, 7, 8, 9):
            A = self._arr_u(ca, ga)
            B = self._arr_u(cb, gb)
            m = U64(d[7])
            if op == 0:
                return (A + B) & m
            if op == 1:
                return (A - B) & m
            if op == 2:
                return (A * B) & m
            if op == 7:
                return A & B
            if op == 8:
                return A | B
            return A ^ B
        # Fixup tier: shifts and div/rem — per-row CPython arithmetic on
        # exactly the rows whose operands differ from golden.
        col = self._bcast(gval)
        neq = _np.zeros(self.n, dtype=bool)
        if ca is not None:
            neq |= self._neq(ca, ga)
        if cb is not None:
            neq |= self._neq(cb, gb)
        for r in _np.nonzero(neq)[0]:
            r = int(r)
            a = int(ca[r]) if ca is not None else ga
            b = int(cb[r]) if cb is not None else gb
            try:
                col[r] = _int_op_scalar(op, a, b, d)
            except ArithmeticTrap as t:
                self._finalize_trap(r, t)
        return col

    def _float_col(self, op, d, ga, gb, ca, cb):
        A = self._arr_f(ca, ga)
        B = self._arr_f(cb, gb)
        if op == 13:
            col = A + B
        elif op == 14:
            col = A - B
        elif op == 15:
            col = A * B
        else:
            col = A / B
            # 0-divisors take the interpreter's formula row by row: its
            # NaN payload (math.nan) differs from the hardware 0/0 qNaN.
            zero = (B == 0.0) & self.exec_mask
            if zero.any():
                for r in _np.nonzero(zero)[0]:
                    r = int(r)
                    col[r] = _fdiv_scalar(float(A[r]), float(B[r]))
        if d[7]:
            col = col.astype(_np.float32).astype(self._F64)
        return col

    def _icmp_col(self, d, ga, gb, ca, cb):
        U64 = self._U64
        A = self._arr_u(ca, ga)
        B = self._arr_u(cb, gb)
        pred = d[7]
        if pred == 0:
            r = A == B
        elif pred == 1:
            r = A != B
        elif pred <= 5:  # signed: XOR-bias then compare unsigned
            bias = U64(1 << (d[8] - 1))
            Ax = A ^ bias
            Bx = B ^ bias
            if pred == 2:
                r = Ax < Bx
            elif pred == 3:
                r = Ax <= Bx
            elif pred == 4:
                r = Ax > Bx
            else:
                r = Ax >= Bx
        else:
            if pred == 6:
                r = A < B
            elif pred == 7:
                r = A <= B
            elif pred == 8:
                r = A > B
            else:
                r = A >= B
        return r.astype(U64)

    def _fcmp_col(self, d, ga, gb, ca, cb):
        A = self._arr_f(ca, ga)
        B = self._arr_f(cb, gb)
        pred = d[7]
        nan = _np.isnan(A) | _np.isnan(B)
        if pred == 0:
            r = A == B
        elif pred == 1:
            r = A != B
        elif pred == 2:
            r = A < B
        elif pred == 3:
            r = A <= B
        elif pred == 4:
            r = A > B
        else:
            r = A >= B
        return (r & ~nan).astype(self._U64)

    # -- execution -----------------------------------------------------
    def run(self):
        """Execute the batch; returns (results, stats) with one
        ``(output, trap)`` pair per row."""
        try:
            with _np.errstate(all="ignore"):
                if self.snapshot is None:
                    self._start_cold()
                else:
                    self._start_seeded()
        except _AllDone:
            pass
        if self.alive_count:
            for r in _np.nonzero(self.alive)[0]:
                r = int(r)
                self.results[r] = (self._row_output(r), None)
                self.stats.lockstep_steps += self.steps - self.base_steps
        return self.results, self.stats

    def _start_cold(self) -> None:
        prog = self.prog
        self.next_seg = prog._first_dyn_seg
        for seg, cells in prog.global_template:
            self.mem[seg] = list(cells)
        if self.bindings:
            for name, values in self.bindings.items():
                addr = prog.global_addr.get(name)
                if addr is None:
                    raise IRError(f"binding for unknown global @{name}")
                cells = self.mem[addr >> SEG_SHIFT]
                if len(values) > len(cells):
                    raise IRError(
                        f"binding for @{name} has {len(values)} values; "
                        f"global holds {len(cells)}"
                    )
                cells[: len(values)] = values
        main = prog.functions["main"]
        main_fn = prog.module.functions["main"]
        args = list(self.args) if self.args else []
        if len(args) != main.arg_slots:
            raise IRError(
                f"@main expects {main.arg_slots} arguments, got {len(args)}"
            )
        coerced = []
        for a, p in zip(args, main_fn.args):
            if p.type.is_float:
                coerced.append(float(a))
            else:
                coerced.append(int(a) & p.type.mask)
        self._exec_fn(main, coerced, [None] * len(coerced))

    def _start_seeded(self) -> None:
        snap = self.snapshot
        prog = self.prog
        self.steps = snap.steps
        self.base_steps = snap.steps
        self.maint_at = snap.steps + _MAINT_INTERVAL
        self.next_seg = snap.next_seg
        self.output = list(snap.output)
        self.mem = {seg: list(cells) for seg, cells in snap.mem.items()}
        for iid in self.f_by_iid:
            seen = snap.instr_counts[iid]
            for inst, _row, _bit in self.f_by_iid[iid]:
                if seen >= inst:
                    raise IRError(
                        f"snapshot at step {snap.steps} is past fault "
                        f"instance {inst} of iid {iid}"
                    )
            self.f_seen[iid] = seen
        frames = []
        for fr in snap.frames:
            dfn = prog.functions[fr.fn]
            frames.append(
                _RFrame(dfn, dfn.blocks[fr.block], fr.prev_gid,
                        fr.call_index, list(fr.slots))
            )
        self._exec_fn(frames[0].dfn, None, None, resume=(frames, 0))

    def _exec_fn(self, dfn, gargs, cargs, resume=None):
        """Mirror of ``Program._exec_fn``: golden replay + column planes.

        Returns the ret operand as a ``(golden value, column)`` pair.
        """
        # Rows parked at this frame's reconvergence blocks: gid -> records.
        parks: dict = {}
        self.park_stack.append(parks)
        # Slots the mirror writes in this frame while rows are parked here
        # (wake-time reconciliation candidates).
        slot_log: set = set()
        if resume is None:
            gslots = [None] * dfn.n_slots
            gslots[: len(gargs)] = gargs
            cols = [None] * dfn.n_slots
            cols[: len(cargs)] = cargs
            blk = dfn.entry
            prev_gid = -1
            code = None
            base_ci = 0
        else:
            frames, fi = resume
            fr = frames[fi]
            gslots = fr.gslots
            cols = fr.cols
            blk = fr.blk
            prev_gid = fr.prev_gid
            base_ci = 0
            if fi + 1 < len(frames):
                d = blk.code[fr.call_index]
                self.shadow.append(
                    (dfn, gslots, cols, blk, prev_gid, fr.call_index)
                )
                rv, rcol = self._exec_fn(
                    frames[fi + 1].dfn, None, None, (frames, fi + 1)
                )
                self.shadow.pop()
                if d[2] >= 0:
                    gslots[d[2]] = rv
                    cols[d[2]] = rcol
                base_ci = fr.call_index + 1
                code = blk.code[base_ci:]
            else:
                code = None
        mem = self.mem

        while True:
            if code is None:
                # Block entry: step accounting exactly as the scalar
                # interpreter; the golden replay cannot exceed the limit
                # (the golden run finished under it), so the hang check
                # below covers only rows running ahead of it.
                if self.steps >= self.maint_at:
                    self._maintain(gslots, cols)
                wl = parks.pop(blk.gid, None) if parks else None
                if wl is not None:
                    # The mirror reached a reconvergence point: wake the
                    # rows parked here. Their step offset is fixed before
                    # the block's accounting (park state and mirror state
                    # are both at block entry); their frozen state is
                    # reconciled after the mirror's phis run.
                    for rec in wl:
                        row = rec[0]
                        self.parked[row] = False
                        self.exec_mask[row] = True
                        self.park_count -= 1
                        ex = rec[1] - self.steps
                        self.extra[row] = ex
                        if ex > self.max_extra:
                            self.max_extra = ex
                self.steps += len(blk.code) + 1
                if (
                    self.max_extra > 0
                    and self.step_limit is not None
                    and self.steps + self.max_extra > self.step_limit
                ):
                    self._hang_extras()
                if blk.phis:
                    gvals = []
                    cvals = []
                    for d in blk.phis:
                        k, v = d[3][prev_gid]
                        if k == 0:
                            gvals.append(v)
                            cvals.append(None)
                        else:
                            gvals.append(gslots[v])
                            cvals.append(cols[v])
                    for d, gv, cv in zip(blk.phis, gvals, cvals):
                        gslots[d[2]] = gv
                        cols[d[2]] = cv
                        if parks:
                            slot_log.add(d[2])
                    self.steps += len(blk.phis)
                if wl is not None:
                    for rec in wl:
                        if self.alive[rec[0]]:
                            self._wake_reconcile(
                                rec, blk, dfn, gslots, cols, slot_log
                            )
                    if not parks:
                        slot_log.clear()
                    if self.park_count == 0:
                        self.park_mem_log.clear()
                code = blk.code
                base_ci = 0

            for ci, d in enumerate(code):
                op = d[0]
                col = None
                if op <= 12:  # integer binop ----------------------------
                    a = d[4] if d[3] == 0 else gslots[d[4]]
                    b = d[6] if d[5] == 0 else gslots[d[6]]
                    mask = d[7]
                    if op == 0:
                        val = (a + b) & mask
                    elif op == 1:
                        val = (a - b) & mask
                    elif op == 2:
                        val = (a * b) & mask
                    elif op == 7:
                        val = a & b
                    elif op == 8:
                        val = a | b
                    elif op == 9:
                        val = a ^ b
                    else:
                        val = _int_op_scalar(op, a, b, d)
                    ca, cb = self._operand_cols(d, gslots, cols)
                    if ca is not None or cb is not None:
                        col = self._int_col(op, d, a, b, ca, cb, val)
                elif op <= 16:  # float binop ----------------------------
                    a = d[4] if d[3] == 0 else gslots[d[4]]
                    b = d[6] if d[5] == 0 else gslots[d[6]]
                    if op == 13:
                        val = a + b
                    elif op == 14:
                        val = a - b
                    elif op == 15:
                        val = a * b
                    else:
                        val = _fdiv_scalar(a, b)
                    if d[7]:
                        val = _f32(val)
                    ca, cb = self._operand_cols(d, gslots, cols)
                    if ca is not None or cb is not None:
                        col = self._float_col(op, d, a, b, ca, cb)
                elif op == 17:  # icmp -----------------------------------
                    a = d[4] if d[3] == 0 else gslots[d[4]]
                    b = d[6] if d[5] == 0 else gslots[d[6]]
                    val = self._icmp_scalar(d, a, b)
                    ca, cb = self._operand_cols(d, gslots, cols)
                    if ca is not None or cb is not None:
                        col = self._icmp_col(d, a, b, ca, cb)
                elif op == 18:  # fcmp -----------------------------------
                    a = d[4] if d[3] == 0 else gslots[d[4]]
                    b = d[6] if d[5] == 0 else gslots[d[6]]
                    val = self._fcmp_scalar(d, a, b)
                    ca, cb = self._operand_cols(d, gslots, cols)
                    if ca is not None or cb is not None:
                        col = self._fcmp_col(d, a, b, ca, cb)
                elif op == 19:  # select ---------------------------------
                    gc = d[4] if d[3] == 0 else gslots[d[4]]
                    gt = d[6] if d[5] == 0 else gslots[d[6]]
                    gf = d[8] if d[7] == 0 else gslots[d[8]]
                    val = gt if gc else gf
                    cc = None if d[3] == 0 else cols[d[4]]
                    ct = None if d[5] == 0 else cols[d[6]]
                    cf = None if d[7] == 0 else cols[d[8]]
                    if cc is not None or ct is not None or cf is not None:
                        C = self._arr_u(cc, gc)
                        if type(val) is float:
                            T = self._arr_f(ct, gt)
                            F = self._arr_f(cf, gf)
                        else:
                            T = self._arr_u(ct, gt)
                            F = self._arr_u(cf, gf)
                        col = _np.where(C != self._U64(0), T, F)
                elif op == 20:  # fmath ----------------------------------
                    x = d[4] if d[3] == 0 else gslots[d[4]]
                    val = _fmath_scalar(x, d[5])
                    if d[6]:
                        val = _f32(val)
                    cx = None if d[3] == 0 else cols[d[4]]
                    if cx is not None:
                        col = self._bcast(val)
                        for r in _np.nonzero(self._neq(cx, x))[0]:
                            r = int(r)
                            v = _fmath_scalar(float(cx[r]), d[5])
                            col[r] = _f32(v) if d[6] else v
                elif op <= 29:  # casts ----------------------------------
                    x = d[4] if d[3] == 0 else gslots[d[4]]
                    cx = None if d[3] == 0 else cols[d[4]]
                    val, col = self._cast(op, d, x, cx)
                elif op == 30:  # alloca ---------------------------------
                    if self.park_count:
                        self._flush_parked("golden-alloca")
                    seg = self.next_seg
                    self.next_seg = seg + 1
                    mem[seg] = [d[4]] * d[3]
                    val = seg << SEG_SHIFT
                elif op == 31:  # load -----------------------------------
                    gaddr = d[4] if d[3] == 0 else gslots[d[4]]
                    acol = None if d[3] == 0 else cols[d[4]]
                    val, col = self._load(d, gaddr, acol, dfn, gslots, cols)
                elif op == 32:  # store ----------------------------------
                    self._store(d, base_ci + ci, dfn, blk, prev_gid,
                                gslots, cols)
                    continue
                elif op == 33:  # gep ------------------------------------
                    p = d[4] if d[3] == 0 else gslots[d[4]]
                    idx = d[6] if d[5] == 0 else gslots[d[6]]
                    w = d[7]
                    sidx = idx - (1 << w) if idx & (1 << (w - 1)) else idx
                    val = (p + sidx) & _M64
                    ca, cb = self._operand_cols(d, gslots, cols)
                    if ca is not None or cb is not None:
                        P = self._arr_u(ca, p)
                        I = self._arr_u(cb, idx)
                        if w < 64:
                            sbit = self._U64(1 << (w - 1))
                            ext = self._U64((~((1 << w) - 1)) & _M64)
                            I = _np.where((I & sbit) != self._U64(0), I | ext, I)
                        col = P + I  # uint64 wrap == mod 2**64
                elif op == 35:  # call -----------------------------------
                    callee = d[3]
                    gcall = []
                    ccall = []
                    for k, v in d[4]:
                        if k == 0:
                            gcall.append(v)
                            ccall.append(None)
                        else:
                            gcall.append(gslots[v])
                            ccall.append(cols[v])
                    self.shadow.append((dfn, gslots, cols, blk, prev_gid, d[5]))
                    rv, rcol = self._exec_fn(callee, gcall, ccall)
                    self.shadow.pop()
                    if d[2] >= 0:
                        gslots[d[2]] = rv
                        cols[d[2]] = rcol
                        if parks:
                            slot_log.add(d[2])
                    continue
                elif op == 36:  # emit -----------------------------------
                    if self.park_count:
                        self._flush_parked("golden-emit")
                    gv = d[4] if d[3] == 0 else gslots[d[4]]
                    vcol = None if d[3] == 0 else cols[d[4]]
                    out = gv
                    if d[5] and out & d[5]:
                        out -= d[6]
                    self.output.append(out)
                    if vcol is not None:
                        rows = _np.nonzero(self._neq(vcol, gv))[0]
                        if rows.size:
                            pos = len(self.output) - 1
                            overrides = {}
                            if vcol.dtype == self._F64:
                                for r in rows:
                                    overrides[int(r)] = float(vcol[r])
                            else:
                                for r in rows:
                                    v = int(vcol[r])
                                    if d[5] and v & d[5]:
                                        v -= d[6]
                                    overrides[int(r)] = v
                            self.out_overlays.append((pos, overrides))
                            self.out_diff[rows] = True
                    continue
                elif op == 37:  # check ----------------------------------
                    a = d[4] if d[3] == 0 else gslots[d[4]]
                    b = d[6] if d[5] == 0 else gslots[d[6]]
                    ca, cb = self._operand_cols(d, gslots, cols)
                    if ca is not None or cb is not None:
                        neq = _np.zeros(self.n, dtype=bool)
                        if ca is not None:
                            neq |= self._neq(ca, a)
                        if cb is not None:
                            neq |= self._neq(cb, b)
                        for r in _np.nonzero(neq)[0]:
                            r = int(r)
                            ra = self._row_val(r, a, ca)
                            rb = self._row_val(r, b, cb)
                            if ra != rb and not (ra != ra and rb != rb):
                                self._finalize_trap(
                                    r, DetectedError(d[7], ra, rb)
                                )
                    continue
                elif op == 38:  # checkrange -----------------------------
                    # The golden value is inside [lo, hi] by construction
                    # (bounds are mined inclusively from the same input's
                    # golden run), so only divergent rows can trap.
                    x = d[4] if d[3] == 0 else gslots[d[4]]
                    cx = cols[d[4]] if d[3] == 1 else None
                    if cx is not None:
                        for r in _np.nonzero(self._neq(cx, x))[0]:
                            r = int(r)
                            rx = self._row_val(r, x, cx)
                            if rx != rx or rx < d[5] or rx > d[6]:
                                self._finalize_trap(
                                    r, DetectedError(d[7], rx, d[5])
                                )
                    continue
                else:  # pragma: no cover - phi handled at block entry
                    raise IRError(f"unexpected opcode {op} in body")

                # Fault tail + settle, mirroring the scalar interpreter's
                # value-producing common tail.
                col = self._fire_faults(d[1], val, col)
                if col is not None and self._settled(col, val):
                    col = None
                gslots[d[2]] = val
                cols[d[2]] = col
                if parks:
                    slot_log.add(d[2])

            # Terminator ------------------------------------------------
            code = None
            t = blk.term
            top = t[0]
            if top == "br":
                prev_gid = blk.gid
                blk = t[2]
            elif top == "condbr":
                gc = t[3] if t[2] == 0 else gslots[t[3]]
                cc = None if t[2] == 0 else cols[t[3]]
                if cc is not None:
                    truth = cc != self._U64(0)
                    dv = (truth != bool(gc)) & self.exec_mask
                    if dv.any():
                        # Divergent rows take the other branch — privately,
                        # up to this branch's immediate post-dominator,
                        # where they rejoin the batch. No post-dominator
                        # inside the function -> full detach as before.
                        atarget = t[5] if gc else t[4]
                        rblk = self._ipdom_for(dfn).get(blk.gid)
                        for r in _np.nonzero(dv)[0]:
                            r = int(r)
                            if rblk is None:
                                self._detach_row(
                                    r, dfn, atarget.name, blk.gid, gslots,
                                    cols, -1, "condbr",
                                )
                            else:
                                self._reconverge_row(
                                    r, dfn, blk, atarget, rblk, gslots,
                                    cols, parks,
                                )
                prev_gid = blk.gid
                blk = t[4] if gc else t[5]
            else:  # ret
                if parks:  # pragma: no cover - ipdoms precede the exit
                    self._flush_dict(parks, "frame-exit")
                self.park_stack.pop()
                if t[2] is None:
                    return None, None
                gv = t[3] if t[2] == 0 else gslots[t[3]]
                rcol = None if t[2] == 0 else cols[t[3]]
                return gv, rcol

    # -- scalar formulas shared with the golden mirror -----------------
    @staticmethod
    def _icmp_scalar(d, a, b) -> int:
        pred = d[7]
        if pred == 0:
            return 1 if a == b else 0
        if pred == 1:
            return 1 if a != b else 0
        if pred <= 5:
            w = d[8]
            sign = 1 << (w - 1)
            full = 1 << w
            sa = a - full if a & sign else a
            sb = b - full if b & sign else b
            if pred == 2:
                return 1 if sa < sb else 0
            if pred == 3:
                return 1 if sa <= sb else 0
            if pred == 4:
                return 1 if sa > sb else 0
            return 1 if sa >= sb else 0
        if pred == 6:
            return 1 if a < b else 0
        if pred == 7:
            return 1 if a <= b else 0
        if pred == 8:
            return 1 if a > b else 0
        return 1 if a >= b else 0

    @staticmethod
    def _fcmp_scalar(d, a, b) -> int:
        pred = d[7]
        if a != a or b != b:
            return 0
        if pred == 0:
            return 1 if a == b else 0
        if pred == 1:
            return 1 if a != b else 0
        if pred == 2:
            return 1 if a < b else 0
        if pred == 3:
            return 1 if a <= b else 0
        if pred == 4:
            return 1 if a > b else 0
        return 1 if a >= b else 0

    def _cast(self, op, d, x, cx):
        """Casts 21-29: golden value + column (vectorized where bit-safe,
        scalar fixup for fptosi/fptoui's arbitrary-precision truncation)."""
        U64 = self._U64
        F64 = self._F64
        col = None
        if op == 21:  # trunc
            val = x & d[7]
            if cx is not None:
                col = cx & U64(d[7])
        elif op == 22:  # zext
            val = x
            col = cx
        elif op == 23:  # sext
            sw = d[5]
            sign = 1 << (sw - 1)
            val = (x - (1 << sw) if x & sign else x) & d[7]
            if cx is not None:
                col = _np.where(
                    (cx & U64(sign)) != U64(0),
                    (cx - U64(1 << sw)) & U64(d[7]),
                    cx,
                )
        elif op == 24 or op == 25:  # fptosi / fptoui
            if x != x or x in (math.inf, -math.inf):
                val = 0
            else:
                val = int(x) & d[7]
            if cx is not None:
                col = self._bcast(val)
                for r in _np.nonzero(self._neq(cx, x))[0]:
                    r = int(r)
                    v = float(cx[r])
                    if v != v or v in (math.inf, -math.inf):
                        col[r] = 0
                    else:
                        col[r] = int(v) & d[7]
        elif op == 26:  # sitofp
            sw = d[5]
            sign = 1 << (sw - 1)
            val = float(x - (1 << sw)) if x & sign else float(x)
            if d[6] == 32:
                val = _f32(val)
            if cx is not None:
                if sw >= 64:
                    ext = cx
                else:
                    ebits = U64((~((1 << sw) - 1)) & _M64)
                    ext = _np.where((cx & U64(sign)) != U64(0), cx | ebits, cx)
                col = ext.view(_np.int64).astype(F64)
                if d[6] == 32:
                    col = col.astype(_np.float32).astype(F64)
        elif op == 27:  # uitofp
            val = float(x)
            if d[6] == 32:
                val = _f32(val)
            if cx is not None:
                col = cx.astype(F64)
                if d[6] == 32:
                    col = col.astype(_np.float32).astype(F64)
        elif op == 28:  # fpext
            val = x
            col = cx
        else:  # fptrunc
            val = _f32(x)
            if cx is not None:
                col = cx.astype(_np.float32).astype(F64)
        return val, col


def run_trials_lockstep(
    program,
    faults,
    args: list | None = None,
    bindings: dict | None = None,
    golden_output: list | None = None,
    snapshot: Snapshot | None = None,
    convergence: list | None = None,
    step_limit: int | None = None,
):
    """Run one lockstep batch of fault trials; the batch engine's entry point.

    Parameters
    ----------
    faults:
        One :class:`~repro.vm.interpreter.FaultSpec` per row. When
        ``snapshot`` is given, every fault's target instance must lie after
        the snapshot (the campaign groups trials by checkpoint segment).
    golden_output:
        The golden run's output, used to splice converged detached tails.
    snapshot / convergence:
        Checkpoint seeding: start the mirror replay at ``snapshot`` and hand
        ``convergence`` oracles to detached rows' scalar tails.
    step_limit:
        Hang budget applied to detached scalar tails (lockstep rows follow
        the golden trace and cannot hang by construction).

    Returns ``(results, stats)`` where ``results[i]`` is ``(output, trap)``
    for row i — the same observables the scalar injector classifies — and
    ``stats`` is a :class:`BatchStats`.
    """
    if _np is None:
        raise ConfigError("the batch engine requires numpy, which is not installed")
    if not faults:
        return [], BatchStats()
    run = _BatchRun(
        program,
        faults,
        args,
        bindings,
        golden_output if golden_output is not None else [],
        snapshot,
        convergence,
        step_limit,
    )
    with _span("batch.lockstep", infra=True) as sp:
        results, stats = run.run()
        sp.fields["trials"] = stats.trials
        sp.fields["detached"] = stats.detached
    t = _obs_current()
    if t is not None:
        t.count("batch.batches")
        t.count("batch.trials", stats.trials)
        t.count("batch.detached", stats.detached)
        t.count("batch.reconverged", stats.reconverged)
        t.count("batch.lockstep_steps", stats.lockstep_steps)
        t.count("batch.scalar_steps", stats.scalar_steps)
        for site, n in stats.detach_sites.items():
            t.count(f"batch.detach_site.{site}", n)
        for site, n in stats.reconverge_sites.items():
            t.count(f"batch.reconverge_site.{site}", n)
    return results, stats
