"""Per-opcode dynamic-cycle cost model.

Equation (1) of the paper defines an instruction's *cost* as its dynamic
cycles over the program's total cycles. The VM charges each executed
instruction a per-opcode latency in the style of classic RISC cost tables;
absolute values matter less than their ratios, which shape the knapsack's
choices exactly as dynamic-cycle profiling does on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import OPCODES

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]

_DEFAULT_CYCLES: dict[str, int] = {
    # integer ALU
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1,
    "shl": 1, "lshr": 1, "ashr": 1,
    "mul": 3,
    "sdiv": 20, "udiv": 20, "srem": 20, "urem": 20,
    # floating point
    "fadd": 3, "fsub": 3, "fmul": 5, "fdiv": 20,
    "fmath": 30,
    # comparisons / select / casts
    "icmp": 1, "fcmp": 1, "select": 1,
    "trunc": 1, "zext": 1, "sext": 1, "fptosi": 3, "fptoui": 3,
    "sitofp": 3, "uitofp": 3, "fpext": 1, "fptrunc": 1,
    # memory
    "alloca": 2, "load": 4, "store": 4, "gep": 1,
    # control
    "phi": 0, "call": 2, "br": 1, "condbr": 1, "ret": 1,
    # observability / protection
    "emit": 1, "check": 1, "checkrange": 2,
}


@dataclass(frozen=True)
class CostModel:
    """Maps opcodes to per-execution cycle latencies."""

    cycles: dict[str, int] = field(default_factory=lambda: dict(_DEFAULT_CYCLES))

    def __post_init__(self) -> None:
        missing = [op for op in OPCODES if op not in self.cycles]
        if missing:
            raise ValueError(f"cost model missing opcodes: {missing}")

    def cost_of(self, opcode: str) -> int:
        """Cycles charged per execution of ``opcode``."""
        return self.cycles[opcode]

    def with_overrides(self, **overrides: int) -> "CostModel":
        """A copy of this model with some opcode latencies replaced."""
        merged = dict(self.cycles)
        merged.update(overrides)
        return CostModel(merged)


#: The model used throughout the library unless an experiment overrides it.
DEFAULT_COST_MODEL = CostModel()
