"""Checkpoint/restore of interpreter state for FI-campaign acceleration.

Every fault-injection trial replays the program bit-identically from
instruction 0 up to the targeted dynamic instance before the flip happens.
For a campaign of N faults that replayed golden prefix dominates wall-clock:
>99% of interpreted instructions are redundant. The fix is the classic
checkpoint-resume scheme from the FI literature (FastFlip-style incremental
analysis): run the golden execution once while recording full interpreter
snapshots every K dynamic instructions, then start each trial from the
nearest snapshot *preceding* its injection point instead of from scratch.

A :class:`Snapshot` is a *portable* value object — function/block references
are stored by name, slots/memory as plain Python lists — so stores pickle
cheaply to worker processes, which re-resolve names against their own decoded
:class:`~repro.vm.interpreter.Program`.

Snapshots capture, at a block boundary:

- the full call stack (one :class:`FrameSnapshot` per active frame: function,
  current block, phi predecessor, suspended call site, and all value slots),
- every memory segment (globals and live allocas) plus the allocator cursor,
- the emitted output so far,
- per-instruction execution counts (so a fault's ``f_seen`` counter can be
  re-seated exactly), the dynamic step counter, and the derived cycle counter.

The same snapshots double as *convergence* oracles: a faulty run whose state
becomes bit-identical to the golden state at a later checkpoint boundary is
guaranteed to finish exactly like the golden run, so the interpreter can stop
early and splice the golden output tail (see ``convergence`` in
:meth:`Program.run`/:meth:`Program.resume`). That prunes the post-fault tail
of masked faults, which checkpoint-skipping alone cannot touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel

__all__ = [
    "FrameSnapshot",
    "Snapshot",
    "CheckpointStore",
    "auto_interval",
    "record_checkpoints",
]


@dataclass
class FrameSnapshot:
    """One suspended interpreter frame, by-name so it survives pickling."""

    #: Function name (key into ``Program.functions``).
    fn: str
    #: Name of the block the frame is positioned at.
    block: str
    #: Predecessor block gid feeding this block's phis (-1 at function entry).
    prev_gid: int
    #: Index of the suspended ``call`` in the block's code list, or -1 for the
    #: innermost frame, which resumes at the block entry itself.
    call_index: int
    #: All value slots of the frame (args + produced values, ``None`` unset).
    slots: list
    #: Innermost frame only: resume mid-block at this code index (-1 resumes
    #: at the block entry). Used by the batch engine's detach path, whose
    #: address-stream divergences surface at an individual store; checkpoint
    #: recording always captures at block boundaries and leaves this at -1.
    code_index: int = -1


@dataclass
class Snapshot:
    """Full interpreter state at one golden-run block boundary."""

    #: Dynamic instruction counter at capture (before the block's accounting).
    steps: int
    #: Next free memory segment id.
    next_seg: int
    #: Output emitted so far.
    output: list
    #: Per-iid execution counts at capture — seats the fault's instance
    #: counter on resume and decides which faults a snapshot can serve.
    instr_counts: list
    #: Memory image: segment id -> cell list (globals + live allocas).
    mem: dict
    #: Call stack, outermost first; the last entry is the running frame.
    frames: list
    #: Dynamic cycles at capture under the recording cost model.
    cycles: int = 0

    def cells(self) -> int:
        """Total memory cells held (rough size/memory accounting)."""
        return sum(len(c) for c in self.mem.values())


@dataclass
class CheckpointStore:
    """Ordered checkpoints of one golden (program, args, bindings) run."""

    interval: int
    snapshots: list
    #: Total steps of the recorded golden run.
    golden_steps: int = 0
    _conv_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.snapshots)

    def snapshot_index_for(self, iid: int, instance: int) -> int:
        """Latest snapshot taken strictly before the fault's injection point.

        Returns -1 when no snapshot precedes it (the trial starts cold).
        A snapshot is usable iff the target instruction had executed fewer
        than ``instance`` times at capture — the flip has not happened yet,
        so the resumed prefix stays bit-identical to a cold run.
        """
        snaps = self.snapshots
        lo, hi = 0, len(snaps)
        while lo < hi:
            mid = (lo + hi) // 2
            if snaps[mid].instr_counts[iid] < instance:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def snapshot_for(self, iid: int, instance: int):
        """The snapshot to resume from, or ``None`` for a cold start."""
        k = self.snapshot_index_for(iid, instance)
        return self.snapshots[k] if k >= 0 else None

    def convergence_from(self, index: int) -> list:
        """Snapshots after ``index`` (convergence oracles for that resume)."""
        tail = self._conv_cache.get(index)
        if tail is None:
            tail = self.snapshots[index + 1 :]
            self._conv_cache[index] = tail
        return tail

    def cells(self) -> int:
        """Total memory cells across all snapshots (memory footprint)."""
        return sum(s.cells() for s in self.snapshots)


def auto_interval(golden_steps: int) -> int:
    """Checkpoint-interval heuristic: ~48 snapshots across the golden run.

    The average resumed prefix is interval/2 and convergence of a masked
    fault is detected at the *next* snapshot boundary, so halving the
    interval halves both costs — until snapshot recording (one full state
    copy each) and store memory (snapshots × live cells) dominate. ~48
    keeps replay+detection slack around ~1% of the run while the store
    stays tens of state copies. Short programs get a floor of 256 steps —
    below that the snapshot copy costs more than the replay it saves.
    """
    return max(256, golden_steps // 48)


def record_checkpoints(
    program,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    interval: int | None = None,
    steps_hint: int | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    step_limit: int | None = None,
) -> CheckpointStore:
    """Golden-run ``program`` once, recording snapshots every ``interval``.

    ``interval=None`` applies :func:`auto_interval` to ``steps_hint`` (pass
    ``profile.steps`` when a profile exists — the campaigns do) or, lacking a
    hint, to the steps of one extra golden run. The recorded run itself
    counts per-instruction executions, so each snapshot carries the counts
    needed to seat fault instance counters on resume.
    """
    if interval is None:
        if steps_hint is None:
            steps_hint = program.run(args=args, bindings=bindings).steps
        interval = auto_interval(steps_hint)
    result, snapshots = program.run_checkpointed(
        args=args, bindings=bindings, interval=interval, step_limit=step_limit
    )
    cost = [0] * program.module.instruction_count()
    for instr in program.module.instructions():
        cost[instr.iid] = cost_model.cost_of(instr.opcode)
    for snap in snapshots:
        snap.cycles = sum(n * c for n, c in zip(snap.instr_counts, cost) if n)
    return CheckpointStore(
        interval=interval, snapshots=snapshots, golden_steps=result.steps
    )
