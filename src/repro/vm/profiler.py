"""Dynamic profiling: the measurement half of SID preparation (① in Fig. 4).

A profiled golden run yields per-instruction execution counts and CFG edge
counts. Combined with the cost model this gives each instruction's dynamic
cycles — the numerator of Eq. (1) — and the edge counts feed MINPSID's
weighted CFG (⑤ in Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import Module
from repro.obs.core import current as _obs_current
from repro.vm.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.vm.interpreter import Program, RunResult

__all__ = ["DynamicProfile", "profile_run"]


@dataclass
class DynamicProfile:
    """Execution statistics of one (program, input) pair."""

    #: Executions of each static instruction, indexed by iid.
    instr_counts: list[int]
    #: Executions of each static CFG edge, keyed by (src gid, dst gid).
    edge_counts: dict[tuple[int, int], int]
    #: Dynamic cycles of each static instruction, indexed by iid.
    instr_cycles: list[int]
    #: Total dynamic cycles of the run (denominator of Eq. 1).
    total_cycles: int
    #: Program output of the golden run (the SDC comparison baseline).
    output: list = field(default_factory=list)
    #: Total dynamic instructions executed.
    steps: int = 0
    #: Exclusive dynamic cycles per IR function name (sums to total_cycles).
    fn_cycles: dict[str, int] = field(default_factory=dict)
    #: Call-path entry counts keyed by the function-name tuple main → leaf.
    call_paths: dict[tuple[str, ...], int] = field(default_factory=dict)

    def cost_fraction(self, iid: int) -> float:
        """Eq. (1): the instruction's share of total dynamic cycles."""
        if self.total_cycles == 0:
            return 0.0
        return self.instr_cycles[iid] / self.total_cycles

    def executed_iids(self) -> list[int]:
        """iids that executed at least once under this input."""
        return [iid for iid, n in enumerate(self.instr_counts) if n > 0]

    def dynamic_value_instances(self, injectable_iids: list[int]) -> int:
        """Total dynamic instances across an injectable iid set."""
        return sum(self.instr_counts[iid] for iid in injectable_iids)


def profile_run(
    program: Program,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    step_limit: int | None = None,
) -> DynamicProfile:
    """Run ``program`` once with profiling and derive its dynamic profile."""
    result: RunResult = program.run(
        args=args, bindings=bindings, profile=True, step_limit=step_limit
    )
    module: Module = program.module
    counts = result.instr_counts or [0] * module.instruction_count()
    cycles = [0] * len(counts)
    total = 0
    fn_cycles: dict[str, int] = {}
    for fn in module.functions.values():
        fn_total = 0
        for instr in fn.instructions():
            c = counts[instr.iid] * cost_model.cost_of(instr.opcode)
            cycles[instr.iid] = c
            fn_total += c
        fn_cycles[fn.name] = fn_total
        total += fn_total
    call_paths = dict(result.call_paths or {})
    t = _obs_current()
    if t is not None:
        # Dynamic instruction mix: executed instances per opcode — the VM's
        # answer to "where do the cycles go" at trace granularity.
        mix: dict[str, int] = {}
        for instr in module.instructions():
            n = counts[instr.iid]
            if n:
                mix[instr.opcode] = mix.get(instr.opcode, 0) + n
        # The heaviest instructions by dynamic cycles: enough for the hotspot
        # table without shipping the whole per-iid vector in the trace.
        top = sorted(
            (iid for iid, c in enumerate(cycles) if c),
            key=lambda iid: -cycles[iid],
        )[:16]
        top_instructions = [
            {
                "iid": iid,
                "opcode": module.instruction(iid).opcode,
                "count": counts[iid],
                "cycles": cycles[iid],
            }
            for iid in top
        ]
        t.count("vm.profile_runs")
        t.emit(
            "vm.profile",
            {
                "module": module.name,
                "steps": result.steps,
                "total_cycles": total,
                "instruction_mix": mix,
                "functions": fn_cycles,
                # JSON keys must be strings: the path tuple joins with ";".
                "call_paths": {
                    ";".join(path): n for path, n in call_paths.items()
                },
                "top_instructions": top_instructions,
            },
        )
    return DynamicProfile(
        instr_counts=counts,
        edge_counts=result.edge_counts or {},
        instr_cycles=cycles,
        total_cycles=total,
        output=result.output,
        steps=result.steps,
        fn_cycles=fn_cycles,
        call_paths=call_paths,
    )
