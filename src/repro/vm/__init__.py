"""Deterministic virtual machine executing the mini-IR.

Provides golden runs, dynamic profiling (per-instruction execution counts and
CFG edge counts — the inputs to the SID cost model and to MINPSID's
weighted-CFG fitness), a single-bit-flip fault hook, and trap/hang semantics
that the fault-injection layer classifies into outcomes.
"""

from repro.vm.checkpoint import (
    CheckpointStore,
    FrameSnapshot,
    Snapshot,
    auto_interval,
    record_checkpoints,
)
from repro.vm.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.vm.memory import SEG_SHIFT, SEG_MASK, address_of, segment_of, offset_of
from repro.vm.interpreter import FaultSpec, Program, RunResult
from repro.vm.profiler import DynamicProfile, profile_run
from repro.vm.threads import ThreadedProgram

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "SEG_SHIFT",
    "SEG_MASK",
    "address_of",
    "segment_of",
    "offset_of",
    "Program",
    "RunResult",
    "FaultSpec",
    "DynamicProfile",
    "profile_run",
    "ThreadedProgram",
    "CheckpointStore",
    "FrameSnapshot",
    "Snapshot",
    "auto_interval",
    "record_checkpoints",
]
