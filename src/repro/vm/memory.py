"""Segmented memory model of the VM.

Addresses are 64-bit integers carrying a segment id in the high bits and an
element offset in the low :data:`SEG_SHIFT` bits. Every global array and every
executed ``alloca`` owns one segment. Memory cells are *typed values* (Python
ints/floats), not bytes: a ``gep`` adds element indices, matching LLVM's typed
getelementptr semantics.

This layout makes pointer bit flips behave realistically:

- flips in the low offset bits often stay inside the segment → silent wrong
  data (a potential SDC),
- flips in the segment bits land in unmapped memory → :class:`MemoryFault`,
  classified as a Crash, exactly the dichotomy hardware faults exhibit.
"""

from __future__ import annotations

from repro.errors import MemoryFault

__all__ = [
    "SEG_SHIFT",
    "SEG_MASK",
    "MAX_SEGMENT_ELEMS",
    "address_of",
    "segment_of",
    "offset_of",
    "Memory",
]

#: Number of low bits addressing elements inside a segment.
SEG_SHIFT = 20
#: Mask extracting the in-segment offset.
SEG_MASK = (1 << SEG_SHIFT) - 1
#: Largest allocation expressible in one segment.
MAX_SEGMENT_ELEMS = 1 << SEG_SHIFT


def address_of(segment: int, offset: int = 0) -> int:
    """Compose an address from a segment id and element offset."""
    return (segment << SEG_SHIFT) | (offset & SEG_MASK)


def segment_of(address: int) -> int:
    """Segment id of an address."""
    return address >> SEG_SHIFT


def offset_of(address: int) -> int:
    """In-segment element offset of an address."""
    return address & SEG_MASK


class Memory:
    """A thin, inspectable wrapper over the VM's segment dict.

    The interpreter's hot loop works on the raw dict directly; this class is
    the setup/teardown and debugging interface (allocations, reads for output
    checking, snapshots in tests).
    """

    __slots__ = ("segments", "next_segment")

    def __init__(self) -> None:
        self.segments: dict[int, list] = {}
        self.next_segment = 1  # segment 0 is intentionally unmapped (null page)

    def allocate(self, count: int, fill: int | float = 0) -> int:
        """Allocate a fresh segment of ``count`` cells; returns its address."""
        if not 0 < count <= MAX_SEGMENT_ELEMS:
            raise MemoryFault(f"allocation of {count} elements out of range")
        seg = self.next_segment
        self.next_segment += 1
        self.segments[seg] = [fill] * count
        return address_of(seg)

    def load(self, address: int):
        """Bounds-checked element read."""
        cells = self.segments.get(address >> SEG_SHIFT)
        off = address & SEG_MASK
        if cells is None or off >= len(cells):
            raise MemoryFault(f"load from unmapped address {address:#x}")
        return cells[off]

    def store(self, address: int, value) -> None:
        """Bounds-checked element write."""
        cells = self.segments.get(address >> SEG_SHIFT)
        off = address & SEG_MASK
        if cells is None or off >= len(cells):
            raise MemoryFault(f"store to unmapped address {address:#x}")
        cells[off] = value

    def read_array(self, address: int, count: int) -> list:
        """Read ``count`` consecutive cells (for harness output extraction)."""
        return [self.load(address + i) for i in range(count)]

    def write_array(self, address: int, values) -> None:
        """Write consecutive cells starting at ``address``."""
        for i, v in enumerate(values):
            self.store(address + i, v)
