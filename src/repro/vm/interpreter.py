"""The IR interpreter.

A module is *decoded* once into flat per-instruction lists (integer opcode,
pre-resolved operand slots/constants, pre-computed masks) and then executed
repeatedly — fault-injection campaigns run the same :class:`Program` thousands
of times. Following the profiling-first HPC guidance, the hot loop is a single
``while``/``if-elif`` dispatch over small lists with local-variable caching;
profiling hooks and the fault hook are one-comparison guards so unfaulted,
unprofiled runs (the overwhelming majority) pay almost nothing.

Fault model hook
----------------
A :class:`FaultSpec` names a static instruction (iid), a dynamic instance
(1-based execution count of that instruction) and a bit position. The flip is
applied to the instruction's return value the moment that instance executes —
LLFI's single-bit-flip-into-return-value model. Execution up to the flip is
bit-identical to the golden run, so the targeted instance is always reached.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from repro.errors import (
    ArithmeticTrap,
    HangTimeout,
    IRError,
    MemoryFault,
    DetectedError,
    StackOverflow,
)
from repro.ir.cfg import build_cfg
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalArray
from repro.obs.core import current as _obs_current
from repro.util.bitops import flip_value
from repro.vm.checkpoint import FrameSnapshot, Snapshot
from repro.vm.memory import MAX_SEGMENT_ELEMS, SEG_MASK, SEG_SHIFT

__all__ = ["Program", "RunResult", "FaultSpec", "INJECTABLE_OPCODES"]

# Opcodes whose return value is a legitimate fault-injection target. Matches
# the paper's model: computational results (ALU/FPU/load/address generation).
# alloca/phi/call produce values but model no datapath computation of their
# own (call results are covered by the callee's ret operand chain).
INJECTABLE_OPCODES = frozenset(
    {
        "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
        "and", "or", "xor", "shl", "lshr", "ashr",
        "fadd", "fsub", "fmul", "fdiv",
        "icmp", "fcmp", "select", "fmath",
        "trunc", "zext", "sext", "fptosi", "fptoui", "sitofp", "uitofp",
        "fpext", "fptrunc",
        "load", "gep",
    }
)

# Dense integer opcodes for dispatch.
_OP = {
    name: i
    for i, name in enumerate(
        [
            "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",  # 0-6
            "and", "or", "xor", "shl", "lshr", "ashr",  # 7-12
            "fadd", "fsub", "fmul", "fdiv",  # 13-16
            "icmp", "fcmp", "select", "fmath",  # 17-20
            "trunc", "zext", "sext", "fptosi", "fptoui",  # 21-25
            "sitofp", "uitofp", "fpext", "fptrunc",  # 26-29
            "alloca", "load", "store", "gep", "phi",  # 30-34
            "call", "emit", "check", "checkrange",  # 35-38
        ]
    )
}

_ICMP_PRED = {"eq": 0, "ne": 1, "slt": 2, "sle": 3, "sgt": 4, "sge": 5,
              "ult": 6, "ule": 7, "ugt": 8, "uge": 9}
_FCMP_PRED = {"oeq": 0, "one": 1, "olt": 2, "ole": 3, "ogt": 4, "oge": 5}
_FMATH = {"sqrt": 0, "sin": 1, "cos": 2, "exp": 3, "log": 4, "fabs": 5, "floor": 6}

_pack_f = struct.Struct("<f").pack
_unpack_f = struct.Struct("<f").unpack
_pack_d = struct.Struct("<d").pack
_unpack_Q = struct.Struct("<Q").unpack
_pack_Q = struct.Struct("<Q").pack
_unpack_d = struct.Struct("<d").unpack
_pack_I = struct.Struct("<I").pack
_unpack_I = struct.Struct("<I").unpack

_M64 = (1 << 64) - 1

#: Sentinel for "no block event pending" — never reached by real step counts.
_NEVER = 1 << 62


def _f32(x: float) -> float:
    """Round a Python float to binary32 precision."""
    try:
        return _unpack_f(_pack_f(x))[0]
    except OverflowError:
        return math.inf if x > 0 else -math.inf


def _note_run(
    state: "_RunState",
    faulty: bool = False,
    converged: bool = False,
    steps_base: int = 0,
) -> None:
    """Telemetry accounting for one completed (non-trapped) execution.

    One ``current()`` call when telemetry is off; every recorded quantity is
    deterministic in (program, input, seed), so counters agree across worker
    counts (workers accumulate locally and are reduced by the parent).
    ``steps_base`` subtracts the golden prefix of resumed runs so
    ``vm.steps`` counts instructions actually executed.
    """
    t = _obs_current()
    if t is None:
        return
    t.count("vm.runs")
    t.count("vm.steps", state.steps - steps_base)
    if faulty:
        t.count("vm.faulty_runs")
    if converged:
        t.count("vm.converged_runs")


def _note_restore(
    state: "_RunState", base_steps: int, faulty: bool = False,
    converged: bool = False,
) -> None:
    """Telemetry accounting for one completed checkpoint-resumed execution."""
    t = _obs_current()
    if t is None:
        return
    t.count("vm.checkpoint.restores")
    _note_run(state, faulty=faulty, converged=converged, steps_base=base_steps)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: flip ``bit`` of the ``instance``-th execution of
    static instruction ``iid``'s return value (instance counts from 1)."""

    iid: int
    instance: int
    bit: int

    def __post_init__(self) -> None:
        if self.instance < 1:
            raise ValueError("fault instance is 1-based")
        if self.bit < 0:
            raise ValueError("fault bit must be non-negative")


@dataclass
class RunResult:
    """Everything observable about one program execution."""

    #: Values the program emitted, in order — the output compared for SDCs.
    output: list = field(default_factory=list)
    #: Executed dynamic instructions (block-granular accounting).
    steps: int = 0
    #: Per-iid execution counts (only when profiling was requested).
    instr_counts: list[int] | None = None
    #: CFG edge execution counts keyed by (src block gid, dst block gid).
    edge_counts: dict[tuple[int, int], int] | None = None
    #: Call-path entry counts keyed by the tuple of function names from
    #: ``main`` down to the entered function (only when profiling was
    #: requested) — the raw material of folded flamegraph stacks.
    call_paths: dict[tuple[str, ...], int] | None = None
    #: Whether the requested fault actually fired during the run.
    fault_fired: bool = False
    #: Whether the run early-exited because its state became bit-identical to
    #: a golden checkpoint (``convergence`` runs only). ``output`` then holds
    #: only the values emitted up to that point; the caller splices the
    #: golden tail from ``converged_output_len`` onward.
    converged: bool = False
    #: Number of values the *golden* run had emitted at the matched
    #: checkpoint (the splice point into the golden output).
    converged_output_len: int = 0


class _DecodedBlock:
    __slots__ = (
        "gid", "phis", "code", "term", "name", "live_in", "live_after_call",
    )

    def __init__(self, gid: int, name: str) -> None:
        self.gid = gid
        self.name = name
        self.phis: list = []
        self.code: list = []
        self.term: list | None = None
        # Liveness, for convergence checks: slots readable at block entry,
        # and slots readable after each suspended call site (by code index).
        self.live_in: tuple = ()
        self.live_after_call: dict[int, tuple] = {}


class _DecodedFunction:
    __slots__ = ("name", "n_slots", "blocks", "entry", "arg_slots")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n_slots = 0
        self.blocks: dict[str, _DecodedBlock] = {}
        self.entry: _DecodedBlock | None = None
        self.arg_slots = 0


class _RunState:
    __slots__ = (
        "mem", "next_seg", "output", "steps", "limit", "depth",
        "f_iid", "f_instance", "f_bit", "f_seen", "f_fired",
        "sticky",
        "counts", "edges", "paths", "path_stack",
        "event_at", "ckpt", "conv", "conv_idx", "shadow",
    )

    def __init__(self) -> None:
        self.mem: dict[int, list] = {}
        self.next_seg = 1
        self.output: list = []
        self.steps = 0
        self.limit = 0
        self.depth = 0
        self.f_iid = -1
        self.f_instance = -1
        self.f_bit = 0
        self.f_seen = 0
        self.f_fired = False
        # Sticky host-fault visitor (repro.fi.hostfault.StickyRun), duck-
        # typed as `.iids` + `.visit(iid, val)`. None on transient-only runs.
        self.sticky = None
        self.counts: list[int] | None = None
        self.edges: dict[tuple[int, int], int] | None = None
        # Call-path profiling (profile runs only): the live function-name
        # stack and entry counts per path. Exceptions abort a profile run
        # outright, so the stack only needs to balance on the ret path.
        self.paths: dict[tuple[str, ...], int] | None = None
        self.path_stack: list[str] | None = None
        # Block-event machinery (checkpoint capture / convergence pruning).
        # Plain runs keep event_at at the sentinel so the hot loop pays a
        # single always-false integer comparison per block.
        self.event_at = _NEVER
        self.ckpt: _CkptState | None = None
        self.conv: list[Snapshot] | None = None
        self.conv_idx = 0
        self.shadow: list | None = None


class _CkptState:
    """Recording side of checkpointing: interval + captured snapshots."""

    __slots__ = ("interval", "snapshots")

    def __init__(self, interval: int) -> None:
        self.interval = interval
        self.snapshots: list[Snapshot] = []


class _Frame:
    """A resolved snapshot frame (names mapped back onto decoded objects)."""

    __slots__ = ("dfn", "blk", "prev_gid", "call_index", "slots", "code_index")

    def __init__(
        self, dfn, blk, prev_gid: int, call_index: int, slots: list,
        code_index: int = -1,
    ):
        self.dfn = dfn
        self.blk = blk
        self.prev_gid = prev_gid
        self.call_index = call_index
        self.slots = slots
        # >= 0: innermost frame resumes mid-block at this code index (the
        # block's entry accounting already happened before the snapshot).
        self.code_index = code_index


class _Converged(Exception):
    """Internal: faulty state re-joined the golden trajectory at a snapshot."""

    __slots__ = ("snapshot",)

    def __init__(self, snapshot: Snapshot) -> None:
        self.snapshot = snapshot


def _bits_equal(a: list, b: list) -> bool:
    """Bit-exact list equality beyond ``==`` (−0.0 vs 0.0, int vs float).

    Called only after ``==`` already matched, so NaNs cannot appear here
    (NaN != NaN fails the cheap check first unless both sides share the
    object, in which case the bits trivially agree).
    """
    for x, y in zip(a, b):
        if type(x) is not type(y):
            return False
        if type(x) is float and _pack_d(x) != _pack_d(y):
            return False
    return True


def _live_slots_equal(a: list, b: list, live: tuple) -> bool:
    """Bit-exact equality of two slot lists restricted to ``live`` indexes."""
    for i in live:
        x = a[i]
        y = b[i]
        if x != y or type(x) is not type(y):
            return False
        if type(x) is float and _pack_d(x) != _pack_d(y):
            return False
    return True


class Program:
    """A decoded, executable module.

    Parameters
    ----------
    module:
        A finalized :class:`~repro.ir.module.Module`.
    """

    def __init__(self, module: Module) -> None:
        if not module.finalized:
            module.finalize()
        self.module = module
        self.cfg = build_cfg(module)
        # Globals own the first segments, in declaration order.
        self.global_addr: dict[str, int] = {}
        self.global_template: list[tuple[int, list]] = []
        seg = 1
        for g in module.globals.values():
            if g.size > MAX_SEGMENT_ELEMS:
                raise IRError(f"global @{g.name} exceeds segment capacity")
            self.global_addr[g.name] = seg << SEG_SHIFT
            default = 0.0 if g.elem_type.is_float else 0
            cells = [default] * g.size
            if g.init is not None:
                for i, v in enumerate(g.init):
                    cells[i] = float(v) if g.elem_type.is_float else int(v)
            self.global_template.append((seg, cells))
            seg += 1
        self._first_dyn_seg = seg
        # Flip metadata per value-producing iid: (kind, width);
        # kind 0 = int/ptr, 1 = f64, 2 = f32.
        self.flip_info: dict[int, tuple[int, int]] = {}
        for instr in module.instructions():
            if instr.produces_value:
                t = instr.type
                if t.is_float:
                    self.flip_info[instr.iid] = (1, 64) if t.width == 64 else (2, 32)
                else:
                    self.flip_info[instr.iid] = (0, t.width)
        self.functions: dict[str, _DecodedFunction] = {}
        self._decode()

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _operand(self, v, slots: dict[int, int]):
        """Decode one operand to (kind, payload): kind 0 const, 1 slot."""
        if isinstance(v, Constant):
            return 0, v.value
        if isinstance(v, GlobalArray):
            return 0, self.global_addr[v.name]
        return 1, slots[id(v)]

    def _decode(self) -> None:
        # Two passes so calls can reference functions in any order.
        for fn in self.module.functions.values():
            self.functions[fn.name] = _DecodedFunction(fn.name)
        for fn in self.module.functions.values():
            self._decode_function(fn)

    def _decode_function(self, fn) -> None:
        dfn = self.functions[fn.name]
        slots: dict[int, int] = {}
        for i, arg in enumerate(fn.args):
            slots[id(arg)] = i
        nslots = len(fn.args)
        dfn.arg_slots = len(fn.args)
        for instr in fn.instructions():
            if instr.produces_value:
                slots[id(instr)] = nslots
                nslots += 1
        dfn.n_slots = nslots

        for blk in fn.blocks.values():
            gid = self.cfg.index[(fn.name, blk.name)]
            dfn.blocks[blk.name] = _DecodedBlock(gid, blk.name)
        dfn.entry = dfn.blocks[next(iter(fn.blocks))]

        for blk in fn.blocks.values():
            dblk = dfn.blocks[blk.name]
            for instr in blk.instructions:
                d = self._decode_instr(fn, dfn, instr, slots)
                if instr.opcode == "phi":
                    dblk.phis.append(d)
                elif instr.is_terminator:
                    dblk.term = d
                else:
                    dblk.code.append(d)
            # Calls learn their own code index so a snapshot can record where
            # a suspended frame resumes without searching the block.
            for i, d in enumerate(dblk.code):
                if d[0] == 35:
                    d.append(i)
        self._compute_liveness(fn, dfn, slots)

    def _compute_liveness(self, fn, dfn: _DecodedFunction, slots) -> None:
        """Per-block slot liveness, used by convergence state comparison.

        A faulty run whose *live* slots match the golden snapshot behaves
        identically from there on — dead slots can hold a corrupted value
        forever without ever being read again, so comparing them would block
        convergence for exactly the faults (logically masked ones) that
        benefit most from pruning. Phi reads are attributed to the phi's own
        block for every predecessor edge, an over-approximation that can only
        delay convergence, never mis-report it.
        """
        uses_of = {}
        for blk in fn.blocks.values():
            per = []
            for instr in blk.instructions:
                u = [slots[v_id] for v_id in map(id, instr.operands)
                     if v_id in slots]
                d = slots[id(instr)] if instr.produces_value else -1
                per.append((u, d))
            uses_of[blk.name] = per
        # Upward-exposed uses / defs per block.
        gen: dict[str, set] = {}
        kill: dict[str, set] = {}
        for name, per in uses_of.items():
            g: set = set()
            k: set = set()
            for u, d in per:
                g.update(s for s in u if s not in k)
                if d >= 0:
                    k.add(d)
            gen[name] = g
            kill[name] = k
        live_in = {name: set(gen[name]) for name in uses_of}
        changed = True
        while changed:
            changed = False
            for blk in fn.blocks.values():
                out: set = set()
                for s in blk.successors():
                    out |= live_in[s]
                new = gen[blk.name] | (out - kill[blk.name])
                if new != live_in[blk.name]:
                    live_in[blk.name] = new
                    changed = True
        for blk in fn.blocks.values():
            dblk = dfn.blocks[blk.name]
            dblk.live_in = tuple(sorted(live_in[blk.name]))
            live: set = set()
            for s in blk.successors():
                live |= live_in[s]
            # Backward scan to each call site; mirror the decode split so
            # indices line up with dblk.code (phis/terminator excluded).
            body = [
                (instr, u, d)
                for instr, (u, d) in zip(blk.instructions, uses_of[blk.name])
                if instr.opcode != "phi" and not instr.is_terminator
            ]
            term = blk.instructions[-1] if blk.instructions else None
            if term is not None and term.is_terminator:
                live.update(
                    slots[v_id] for v_id in map(id, term.operands)
                    if v_id in slots
                )
            for idx in range(len(body) - 1, -1, -1):
                instr, u, d = body[idx]
                if instr.opcode == "call":
                    # At the resume point the return value is about to be
                    # written, so the destination's stale content is dead.
                    dblk.live_after_call[idx] = tuple(sorted(live - {d}))
                if d >= 0:
                    live.discard(d)
                live.update(u)

    def _decode_instr(self, fn, dfn: _DecodedFunction, instr: Instruction, slots):
        op = instr.opcode
        iid = instr.iid
        dest = slots[id(instr)] if instr.produces_value else -1
        ops = instr.operands

        if op in ("br", "condbr", "ret"):
            if op == "br":
                return ["br", iid, dfn.blocks[instr.attrs["target"]]]
            if op == "condbr":
                ck, cv = self._operand(ops[0], slots)
                return [
                    "condbr", iid, ck, cv,
                    dfn.blocks[instr.attrs["iftrue"]],
                    dfn.blocks[instr.attrs["iffalse"]],
                ]
            if ops:
                vk, vv = self._operand(ops[0], slots)
                return ["ret", iid, vk, vv]
            return ["ret", iid, None, None]

        code = _OP[op]
        d: list = [code, iid, dest]
        if code <= 12:  # integer binop
            d += [*self._operand(ops[0], slots), *self._operand(ops[1], slots)]
            w = instr.type.width
            d += [instr.type.mask, w, 1 << (w - 1) if w else 0]
        elif code <= 16:  # float binop
            d += [*self._operand(ops[0], slots), *self._operand(ops[1], slots)]
            d.append(1 if instr.type.width == 32 else 0)
        elif code == 17:  # icmp
            d += [*self._operand(ops[0], slots), *self._operand(ops[1], slots)]
            d += [_ICMP_PRED[instr.attrs["pred"]], ops[0].type.width]
        elif code == 18:  # fcmp
            d += [*self._operand(ops[0], slots), *self._operand(ops[1], slots)]
            d.append(_FCMP_PRED[instr.attrs["pred"]])
        elif code == 19:  # select
            d += [*self._operand(ops[0], slots), *self._operand(ops[1], slots),
                  *self._operand(ops[2], slots)]
        elif code == 20:  # fmath
            d += [*self._operand(ops[0], slots)]
            d += [_FMATH[instr.attrs["fn"]], 1 if instr.type.width == 32 else 0]
        elif 21 <= code <= 29:  # casts
            d += [*self._operand(ops[0], slots)]
            d += [ops[0].type.width, instr.type.width, instr.type.mask]
        elif code == 30:  # alloca
            elem = instr.attrs["elem"]
            d += [instr.attrs["count"], 0.0 if elem.is_float else 0]
        elif code == 31:  # load
            d += [*self._operand(ops[0], slots)]
            # Result-type coercion info: loads through corrupted pointers can
            # hit cells of a different type; hardware would reinterpret the
            # raw bits, and so do we. want: 0 = int (with mask), 1 = f64,
            # 2 = f32.
            t = instr.type
            if t.is_float:
                d += [1 if t.width == 64 else 2, 0]
            else:
                d += [0, t.mask]
        elif code == 32:  # store
            d += [*self._operand(ops[0], slots), *self._operand(ops[1], slots)]
        elif code == 33:  # gep
            d += [*self._operand(ops[0], slots), *self._operand(ops[1], slots)]
            d.append(ops[1].type.width)
        elif code == 34:  # phi
            incoming = {}
            for blk_name, val in instr.attrs["incoming"]:
                gid = self.cfg.index[(fn.name, blk_name)]
                incoming[gid] = self._operand(val, slots)
            d.append(incoming)
        elif code == 35:  # call
            d.append(self.functions[instr.attrs["callee"]])
            d.append([self._operand(a, slots) for a in ops])
        elif code == 36:  # emit
            d += [*self._operand(ops[0], slots)]
            # Integers are emitted in signed form for readable outputs.
            t = ops[0].type
            if t.is_int and t.width > 1:
                d += [1 << (t.width - 1), 1 << t.width]
            else:
                d += [0, 0]
        elif code == 37:  # check
            d += [*self._operand(ops[0], slots), *self._operand(ops[1], slots)]
            d.append(instr.attrs.get("label", f"iid{iid}"))
        elif code == 38:  # checkrange
            d += [*self._operand(ops[0], slots)]
            d += [ops[1].value, ops[2].value]
            d.append(instr.attrs.get("label", f"iid{iid}"))
        else:  # pragma: no cover - exhaustive
            raise IRError(f"cannot decode opcode {op}")
        return d

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        args: list | None = None,
        bindings: dict[str, list] | None = None,
        fault: FaultSpec | None = None,
        profile: bool = False,
        step_limit: int | None = None,
        convergence: list[Snapshot] | None = None,
        sticky=None,
    ) -> RunResult:
        """Execute ``@main``.

        Parameters
        ----------
        args:
            Values for @main's parameters (ints for int/ptr params, floats
            for float params).
        bindings:
            Per-run contents for global arrays (input data), by global name.
            Shorter lists than the global's size leave the tail at its
            static/default value.
        fault:
            Optional single-bit fault to inject.
        profile:
            Collect per-instruction and CFG-edge execution counts.
        step_limit:
            Dynamic instruction budget; exceeding it raises
            :class:`HangTimeout`. Defaults to 50 million.
        convergence:
            Golden-run :class:`~repro.vm.checkpoint.Snapshot` list (ordered
            by steps). Once the fault has fired, the run compares its state
            against each snapshot it aligns with and early-exits as soon as
            the state is bit-identical — the remaining execution would be
            exactly the golden tail. Only meaningful together with ``fault``.
        sticky:
            A sticky host-fault visitor (``.iids`` set + ``.visit(iid,
            val)``; see :class:`repro.fi.hostfault.StickyRun`): every value
            produced by a matching instruction passes through it — the
            defective-core model, orthogonal to the transient ``fault``.
            Incompatible with ``convergence`` pruning (a sticky host never
            re-joins the golden trajectory, so nothing would be gained).
        """
        state, main, coerced = self._prepare(
            args, bindings, fault, profile, step_limit
        )
        state.sticky = sticky
        if convergence:
            state.conv = convergence
            state.event_at = convergence[0].steps
            state.shadow = []
        try:
            self._exec_fn(main, coerced, state)
        except _Converged as c:
            _note_run(state, faulty=True, converged=True)
            return self._converged_result(state, c)
        _note_run(state, faulty=fault is not None)
        return RunResult(
            output=state.output,
            steps=state.steps,
            instr_counts=state.counts,
            edge_counts=state.edges,
            call_paths=state.paths,
            fault_fired=state.f_fired,
        )

    def _prepare(self, args, bindings, fault, profile, step_limit):
        """Build the initial run state shared by all execution entry points."""
        state = _RunState()
        state.limit = step_limit if step_limit is not None else 50_000_000
        state.next_seg = self._first_dyn_seg
        for seg, cells in self.global_template:
            state.mem[seg] = list(cells)
        if bindings:
            for name, values in bindings.items():
                addr = self.global_addr.get(name)
                if addr is None:
                    raise IRError(f"binding for unknown global @{name}")
                cells = state.mem[addr >> SEG_SHIFT]
                if len(values) > len(cells):
                    raise IRError(
                        f"binding for @{name} has {len(values)} values; "
                        f"global holds {len(cells)}"
                    )
                cells[: len(values)] = values
        if fault is not None:
            state.f_iid = fault.iid
            state.f_instance = fault.instance
            state.f_bit = fault.bit
        if profile:
            state.counts = [0] * self.module.instruction_count()
            state.edges = {}
            state.paths = {}
            state.path_stack = []

        main = self.functions["main"]
        main_fn = self.module.functions["main"]
        args = list(args) if args else []
        if len(args) != main.arg_slots:
            raise IRError(
                f"@main expects {main.arg_slots} arguments, got {len(args)}"
            )
        coerced = []
        for a, p in zip(args, main_fn.args):
            if p.type.is_float:
                coerced.append(float(a))
            else:
                coerced.append(int(a) & p.type.mask)
        return state, main, coerced

    @staticmethod
    def _converged_result(state: _RunState, c: _Converged) -> RunResult:
        return RunResult(
            output=state.output,
            steps=state.steps,
            instr_counts=state.counts,
            edge_counts=state.edges,
            fault_fired=True,
            converged=True,
            converged_output_len=len(c.snapshot.output),
        )

    def run_checkpointed(
        self,
        args: list | None = None,
        bindings: dict[str, list] | None = None,
        interval: int = 4096,
        step_limit: int | None = None,
    ) -> tuple[RunResult, list[Snapshot]]:
        """Golden run recording a full state snapshot every ``interval`` steps.

        The run counts per-instruction executions (each snapshot needs them to
        seat fault instance counters), but skips edge profiling. Returns the
        run result plus the captured snapshots in steps order. Snapshots are
        portable: frames/memory are stored by name and plain lists, so they
        pickle to worker processes and restore against any equal program.
        """
        if interval < 1:
            raise IRError("checkpoint interval must be >= 1")
        state, main, coerced = self._prepare(args, bindings, None, False, step_limit)
        state.counts = [0] * self.module.instruction_count()
        ck = _CkptState(interval)
        state.ckpt = ck
        state.shadow = []
        state.event_at = interval
        self._exec_fn(main, coerced, state)
        _note_run(state)
        t = _obs_current()
        if t is not None:
            t.count("vm.checkpoint.recordings")
            t.count("vm.checkpoint.snapshots", len(ck.snapshots))
        result = RunResult(
            output=state.output,
            steps=state.steps,
            instr_counts=state.counts,
            fault_fired=False,
        )
        return result, ck.snapshots

    def resume(
        self,
        snapshot: Snapshot,
        fault: FaultSpec | None = None,
        step_limit: int | None = None,
        convergence: list[Snapshot] | None = None,
        fault_fired: bool = False,
    ) -> RunResult:
        """Restore ``snapshot`` and run to completion.

        The restored execution is bit-identical to a cold run that reached
        the snapshot point: memory, call stack, value slots, output, step
        counter, and the fault's already-seen instance count all come from
        the snapshot. ``fault`` must target an instance the snapshot has not
        yet executed (:meth:`CheckpointStore.snapshot_for` guarantees that).
        ``fault_fired`` marks the snapshot as post-flip state (the batch
        engine detaches rows after their fault fired), which arms the
        convergence oracles from the first block on.
        """
        state = _RunState()
        state.limit = step_limit if step_limit is not None else 50_000_000
        state.steps = snapshot.steps
        state.next_seg = snapshot.next_seg
        state.output = list(snapshot.output)
        state.mem = {seg: list(cells) for seg, cells in snapshot.mem.items()}
        state.f_fired = fault_fired
        if fault is not None:
            seen = snapshot.instr_counts[fault.iid]
            if seen >= fault.instance:
                raise IRError(
                    f"snapshot at step {snapshot.steps} is past fault "
                    f"instance {fault.instance} of iid {fault.iid}"
                )
            state.f_iid = fault.iid
            state.f_instance = fault.instance
            state.f_bit = fault.bit
            state.f_seen = seen
        frames = []
        for fr in snapshot.frames:
            dfn = self.functions[fr.fn]
            frames.append(
                _Frame(dfn, dfn.blocks[fr.block], fr.prev_gid, fr.call_index,
                       list(fr.slots), getattr(fr, "code_index", -1))
            )
        if convergence:
            state.conv = convergence
            state.event_at = convergence[0].steps
            state.shadow = [
                (f.dfn, f.slots, f.blk, f.prev_gid, f.call_index)
                for f in frames[:-1]
            ]
        try:
            self._exec_fn(frames[0].dfn, None, state, resume=(frames, 0))
        except _Converged as c:
            _note_restore(state, snapshot.steps, converged=True,
                          faulty=fault is not None)
            return self._converged_result(state, c)
        _note_restore(state, snapshot.steps, faulty=fault is not None)
        return RunResult(
            output=state.output, steps=state.steps, fault_fired=state.f_fired
        )

    def _flip(self, val, iid: int, bit: int):
        """Apply the single-bit flip to a just-computed return value."""
        kind, width = self.flip_info[iid]
        return flip_value(val, bit, kind, width)

    # ------------------------------------------------------------------
    # Block events: checkpoint capture & convergence pruning (cold path)
    # ------------------------------------------------------------------
    def _block_event(self, state: _RunState, dfn, blk, prev_gid: int, slots):
        """Handle a block-entry event: capture a snapshot or test convergence.

        Runs only when ``state.steps`` crossed ``state.event_at`` — never on
        plain runs. Updates ``event_at`` to the next threshold; raises
        :class:`_Converged` when a faulty state has re-joined the golden
        trajectory.
        """
        ck = state.ckpt
        if ck is not None:
            frames = [
                FrameSnapshot(f.name, b.name, pg, ci, list(sl))
                for f, sl, b, pg, ci in state.shadow
            ]
            frames.append(
                FrameSnapshot(dfn.name, blk.name, prev_gid, -1, list(slots))
            )
            ck.snapshots.append(
                Snapshot(
                    steps=state.steps,
                    next_seg=state.next_seg,
                    output=list(state.output),
                    instr_counts=list(state.counts),
                    mem={s: list(c) for s, c in state.mem.items()},
                    frames=frames,
                )
            )
            state.event_at = state.steps + ck.interval
            return
        conv = state.conv
        if conv is None:  # pragma: no cover - sentinel never crosses
            state.event_at = _NEVER
            return
        i = state.conv_idx
        n = len(conv)
        steps = state.steps
        # Skip oracles the (possibly control-diverged) run stepped past.
        while i < n and conv[i].steps < steps:
            i += 1
        state.conv_idx = i
        if i == n:
            state.event_at = _NEVER
            return
        snap = conv[i]
        state.event_at = snap.steps
        if snap.steps != steps or not state.f_fired:
            # Not aligned with this oracle (or the flip is still pending —
            # before it fires the state matches golden trivially).
            return
        if self._state_matches(snap, state, dfn, blk, prev_gid, slots):
            raise _Converged(snap)
        state.conv_idx = i + 1
        state.event_at = conv[i + 1].steps if i + 1 < n else _NEVER

    def _state_matches(
        self, snap: Snapshot, state: _RunState, dfn, blk, prev_gid: int, slots
    ) -> bool:
        """Is the reachable state bit-identical to a golden snapshot?

        Equality here implies the remaining execution *is* the golden tail
        (the interpreter is deterministic in this state), so the caller may
        stop early. Frame slots are compared through the decode-time
        liveness sets: a dead slot can never be read again, so a corrupted
        value parked there cannot affect the remaining run. Memory is always
        compared in full. Cell comparison is two-phase per value: cheap
        ``==`` first, then bit exactness (``==`` conflates -0.0/0.0 and
        1/1.0, which would break the bit-identical-outcome guarantee; a NaN
        fails ``==`` against itself, which is merely conservative).
        """
        if state.next_seg != snap.next_seg:
            return False
        frames = snap.frames
        shadow = state.shadow
        if len(shadow) != len(frames) - 1:
            return False
        inner = frames[-1]
        if (
            inner.fn != dfn.name
            or inner.block != blk.name
            or inner.prev_gid != prev_gid
        ):
            return False
        if not _live_slots_equal(slots, inner.slots, blk.live_in):
            return False
        for (f, sl, b, pg, ci), fr in zip(shadow, frames):
            if f.name != fr.fn or ci != fr.call_index or b.name != fr.block:
                return False
            if not _live_slots_equal(sl, fr.slots, b.live_after_call[ci]):
                return False
        if state.mem != snap.mem:
            return False
        for seg, cells in state.mem.items():
            if not _bits_equal(cells, snap.mem[seg]):
                return False
        return True

    def _exec_fn(
        self, dfn: _DecodedFunction, args: list | None, state: _RunState,
        resume: tuple | None = None,
    ):
        """Execute one function body; returns the ret operand value or None.

        ``resume`` is ``(frames, index)``: restore this frame from
        ``frames[index]`` instead of starting at the entry block. A frame
        with live callees first re-enters its child (recursively rebuilding
        the Python call stack), then finishes the remainder of its partially
        executed block; the innermost frame restarts at a block boundary.
        """
        state.depth += 1
        if state.depth > 200:
            state.depth -= 1
            raise StackOverflow(f"call depth exceeded in @{dfn.name}")
        if state.path_stack is not None:
            state.path_stack.append(dfn.name)
            key = tuple(state.path_stack)
            state.paths[key] = state.paths.get(key, 0) + 1
        if resume is None:
            slots = [None] * dfn.n_slots
            slots[: len(args)] = args
            blk = dfn.entry
            prev_gid = -1
            code = None
        else:
            frames, fi = resume
            fr = frames[fi]
            slots = fr.slots
            blk = fr.blk
            prev_gid = fr.prev_gid
            if fi + 1 < len(frames):
                # Re-enter the suspended callee, then continue after the call.
                d = blk.code[fr.call_index]
                rv = self._exec_fn(
                    frames[fi + 1].dfn, None, state, (frames, fi + 1)
                )
                if state.shadow is not None:
                    state.shadow.pop()
                if d[2] >= 0:
                    slots[d[2]] = rv
                code = blk.code[fr.call_index + 1 :]
            elif fr.code_index >= 0:
                # Mid-block resume (batch-engine detach at a store): the
                # block's entry accounting is already in snapshot.steps.
                code = blk.code[fr.code_index :]
            else:
                code = None
        mem = state.mem
        counts = state.counts
        f_iid = state.f_iid
        sticky = state.sticky
        sticky_iids = sticky.iids if sticky is not None else None
        shadow = state.shadow

        while True:
            if code is None:
                # Block entry. The event threshold folds checkpoint capture
                # and convergence checks into one always-false comparison for
                # plain runs; snapshots are defined at exactly this point,
                # before the block's step accounting.
                if state.steps >= state.event_at:
                    self._block_event(state, dfn, blk, prev_gid, slots)
                state.steps += len(blk.code) + 1
                if state.steps > state.limit:
                    state.depth -= 1
                    raise HangTimeout(f"step limit {state.limit} exceeded")
                if state.edges is not None and prev_gid >= 0:
                    key = (prev_gid, blk.gid)
                    state.edges[key] = state.edges.get(key, 0) + 1

                if blk.phis:
                    # Parallel phi semantics: read all incomings, then write.
                    vals = []
                    for d in blk.phis:
                        k, v = d[3][prev_gid]
                        vals.append(v if k == 0 else slots[v])
                        if counts is not None:
                            counts[d[1]] += 1
                    for d, v in zip(blk.phis, vals):
                        slots[d[2]] = v
                    state.steps += len(blk.phis)
                code = blk.code

            for d in code:
                op = d[0]
                if op <= 12:  # integer binop ----------------------------
                    a = d[4] if d[3] == 0 else slots[d[4]]
                    b = d[6] if d[5] == 0 else slots[d[6]]
                    mask = d[7]
                    if op == 0:
                        val = (a + b) & mask
                    elif op == 1:
                        val = (a - b) & mask
                    elif op == 2:
                        val = (a * b) & mask
                    elif op == 7:
                        val = a & b
                    elif op == 8:
                        val = a | b
                    elif op == 9:
                        val = a ^ b
                    elif op == 10:
                        val = (a << b) & mask if b < d[8] else 0
                    elif op == 11:
                        val = a >> b if b < d[8] else 0
                    elif op == 12:
                        w, sign = d[8], d[9]
                        sa = a - (1 << w) if a & sign else a
                        val = (sa >> b if b < w else (sa >> (w - 1))) & mask
                    elif op == 3 or op == 5:  # sdiv / srem
                        w, sign = d[8], d[9]
                        sa = a - (1 << w) if a & sign else a
                        sb = b - (1 << w) if b & sign else b
                        if sb == 0:
                            raise ArithmeticTrap("signed division by zero")
                        q, r = divmod(abs(sa), abs(sb))
                        if op == 3:
                            val = (-q if (sa < 0) != (sb < 0) else q) & mask
                        else:
                            val = (-r if sa < 0 else r) & mask
                    else:  # udiv / urem
                        if b == 0:
                            raise ArithmeticTrap("unsigned division by zero")
                        val = (a // b if op == 4 else a % b) & mask
                elif op <= 16:  # float binop ----------------------------
                    a = d[4] if d[3] == 0 else slots[d[4]]
                    b = d[6] if d[5] == 0 else slots[d[6]]
                    if op == 13:
                        val = a + b
                    elif op == 14:
                        val = a - b
                    elif op == 15:
                        val = a * b
                    else:
                        if b == 0.0:
                            if a == 0.0 or a != a:
                                val = math.nan
                            else:
                                val = math.copysign(math.inf, a) * math.copysign(
                                    1.0, b
                                )
                        else:
                            try:
                                val = a / b
                            except OverflowError:
                                val = math.copysign(math.inf, a) * math.copysign(1.0, b)
                    if d[7]:
                        val = _f32(val)
                elif op == 17:  # icmp -----------------------------------
                    a = d[4] if d[3] == 0 else slots[d[4]]
                    b = d[6] if d[5] == 0 else slots[d[6]]
                    pred = d[7]
                    if pred == 0:
                        val = 1 if a == b else 0
                    elif pred == 1:
                        val = 1 if a != b else 0
                    elif pred <= 5:  # signed
                        w = d[8]
                        sign = 1 << (w - 1)
                        full = 1 << w
                        sa = a - full if a & sign else a
                        sb = b - full if b & sign else b
                        if pred == 2:
                            val = 1 if sa < sb else 0
                        elif pred == 3:
                            val = 1 if sa <= sb else 0
                        elif pred == 4:
                            val = 1 if sa > sb else 0
                        else:
                            val = 1 if sa >= sb else 0
                    else:  # unsigned
                        if pred == 6:
                            val = 1 if a < b else 0
                        elif pred == 7:
                            val = 1 if a <= b else 0
                        elif pred == 8:
                            val = 1 if a > b else 0
                        else:
                            val = 1 if a >= b else 0
                elif op == 18:  # fcmp -----------------------------------
                    a = d[4] if d[3] == 0 else slots[d[4]]
                    b = d[6] if d[5] == 0 else slots[d[6]]
                    pred = d[7]
                    if a != a or b != b:  # NaN: all ordered preds false
                        val = 0
                    elif pred == 0:
                        val = 1 if a == b else 0
                    elif pred == 1:
                        val = 1 if a != b else 0
                    elif pred == 2:
                        val = 1 if a < b else 0
                    elif pred == 3:
                        val = 1 if a <= b else 0
                    elif pred == 4:
                        val = 1 if a > b else 0
                    else:
                        val = 1 if a >= b else 0
                elif op == 19:  # select ---------------------------------
                    c = d[4] if d[3] == 0 else slots[d[4]]
                    if c:
                        val = d[6] if d[5] == 0 else slots[d[6]]
                    else:
                        val = d[8] if d[7] == 0 else slots[d[8]]
                elif op == 20:  # fmath ----------------------------------
                    x = d[4] if d[3] == 0 else slots[d[4]]
                    fn = d[5]
                    if fn == 0:
                        val = math.sqrt(x) if x >= 0.0 else math.nan
                    elif fn == 1:
                        val = math.sin(x) if -1e18 < x < 1e18 else math.nan
                    elif fn == 2:
                        val = math.cos(x) if -1e18 < x < 1e18 else math.nan
                    elif fn == 3:
                        try:
                            val = math.exp(x)
                        except OverflowError:
                            val = math.inf
                    elif fn == 4:
                        if x > 0.0:
                            val = math.log(x)
                        elif x == 0.0:
                            val = -math.inf
                        else:
                            val = math.nan
                    elif fn == 5:
                        val = abs(x)
                    else:
                        val = math.floor(x) if math.isfinite(x) else x
                    if d[6]:
                        val = _f32(val)
                elif op == 21:  # trunc ----------------------------------
                    x = d[4] if d[3] == 0 else slots[d[4]]
                    val = x & d[7]
                elif op == 22:  # zext -----------------------------------
                    val = d[4] if d[3] == 0 else slots[d[4]]
                elif op == 23:  # sext -----------------------------------
                    x = d[4] if d[3] == 0 else slots[d[4]]
                    sw = d[5]
                    sign = 1 << (sw - 1)
                    val = (x - (1 << sw) if x & sign else x) & d[7]
                elif op == 24 or op == 25:  # fptosi / fptoui -------------
                    x = d[4] if d[3] == 0 else slots[d[4]]
                    if x != x or x in (math.inf, -math.inf):
                        val = 0
                    else:
                        val = int(x) & d[7]
                elif op == 26:  # sitofp ---------------------------------
                    x = d[4] if d[3] == 0 else slots[d[4]]
                    sw = d[5]
                    sign = 1 << (sw - 1)
                    val = float(x - (1 << sw)) if x & sign else float(x)
                    if d[6] == 32:
                        val = _f32(val)
                elif op == 27:  # uitofp ---------------------------------
                    x = d[4] if d[3] == 0 else slots[d[4]]
                    val = float(x)
                    if d[6] == 32:
                        val = _f32(val)
                elif op == 28:  # fpext ----------------------------------
                    val = d[4] if d[3] == 0 else slots[d[4]]
                elif op == 29:  # fptrunc --------------------------------
                    x = d[4] if d[3] == 0 else slots[d[4]]
                    val = _f32(x)
                elif op == 30:  # alloca ---------------------------------
                    seg = state.next_seg
                    state.next_seg = seg + 1
                    mem[seg] = [d[4]] * d[3]
                    val = seg << SEG_SHIFT
                elif op == 31:  # load -----------------------------------
                    addr = d[4] if d[3] == 0 else slots[d[4]]
                    cells = mem.get(addr >> SEG_SHIFT)
                    off = addr & SEG_MASK
                    if cells is None or off >= len(cells):
                        raise MemoryFault(f"load from {addr:#x}")
                    val = cells[off]
                    # Reinterpret raw bits if a (corrupted) pointer reached a
                    # cell of the wrong type — bits, not values, live in RAM.
                    if d[5] == 0:
                        if type(val) is float:
                            val = _unpack_Q(_pack_d(val))[0] & d[6]
                    elif type(val) is int:
                        if d[5] == 1:
                            val = _unpack_d(_pack_Q(val & _M64))[0]
                        else:
                            val = _unpack_f(_pack_I(val & 0xFFFFFFFF))[0]
                elif op == 32:  # store ----------------------------------
                    v = d[4] if d[3] == 0 else slots[d[4]]
                    addr = d[6] if d[5] == 0 else slots[d[6]]
                    cells = mem.get(addr >> SEG_SHIFT)
                    off = addr & SEG_MASK
                    if cells is None or off >= len(cells):
                        raise MemoryFault(f"store to {addr:#x}")
                    cells[off] = v
                    if counts is not None:
                        counts[d[1]] += 1
                    continue
                elif op == 33:  # gep ------------------------------------
                    p = d[4] if d[3] == 0 else slots[d[4]]
                    idx = d[6] if d[5] == 0 else slots[d[6]]
                    w = d[7]
                    if idx & (1 << (w - 1)):
                        idx -= 1 << w
                    val = (p + idx) & _M64
                elif op == 35:  # call -----------------------------------
                    callee = d[3]
                    a_specs = d[4]
                    call_args = [
                        (v if k == 0 else slots[v]) for k, v in a_specs
                    ]
                    if counts is not None:
                        counts[d[1]] += 1
                    if shadow is None:
                        rv = self._exec_fn(callee, call_args, state)
                    else:
                        # Frame-tracked run: expose this frame's suspension
                        # point so snapshots/convergence see the full stack.
                        shadow.append((dfn, slots, blk, prev_gid, d[5]))
                        rv = self._exec_fn(callee, call_args, state)
                        shadow.pop()
                    if d[2] >= 0:
                        slots[d[2]] = rv
                    continue
                elif op == 36:  # emit -----------------------------------
                    v = d[4] if d[3] == 0 else slots[d[4]]
                    if d[5] and v & d[5]:
                        v -= d[6]
                    state.output.append(v)
                    if counts is not None:
                        counts[d[1]] += 1
                    continue
                elif op == 37:  # check ----------------------------------
                    a = d[4] if d[3] == 0 else slots[d[4]]
                    b = d[6] if d[5] == 0 else slots[d[6]]
                    if a != b and not (a != a and b != b):
                        raise DetectedError(d[7], a, b)
                    if counts is not None:
                        counts[d[1]] += 1
                    continue
                elif op == 38:  # checkrange -----------------------------
                    x = d[4] if d[3] == 0 else slots[d[4]]
                    if x != x or x < d[5] or x > d[6]:
                        raise DetectedError(d[7], x, d[5])
                    if counts is not None:
                        counts[d[1]] += 1
                    continue
                else:  # pragma: no cover - phi handled at block entry
                    raise IRError(f"unexpected opcode {op} in body")

                # Common tail for value-producing instructions.
                if d[1] == f_iid:
                    state.f_seen += 1
                    if state.f_seen == state.f_instance:
                        val = self._flip(val, f_iid, state.f_bit)
                        state.f_fired = True
                if sticky_iids is not None and d[1] in sticky_iids:
                    val = sticky.visit(d[1], val)
                if counts is not None:
                    counts[d[1]] += 1
                slots[d[2]] = val

            # Terminator ------------------------------------------------
            code = None
            t = blk.term
            if counts is not None:
                counts[t[1]] += 1
            top = t[0]
            if top == "br":
                prev_gid = blk.gid
                blk = t[2]
            elif top == "condbr":
                c = t[3] if t[2] == 0 else slots[t[3]]
                prev_gid = blk.gid
                blk = t[4] if c else t[5]
            else:  # ret
                state.depth -= 1
                if state.path_stack is not None:
                    state.path_stack.pop()
                if t[2] is None:
                    return None
                return t[3] if t[2] == 0 else slots[t[3]]
