"""Multi-threaded execution support (§VIII-B of the paper).

The paper's argument for SID on parallel programs is that every thread runs
the same protected code and duplication checks fire before synchronization
points, i.e. before any cross-thread interaction — so detection behaves
per-thread exactly as in the sequential case. The studied multithreaded FFT
is fork-join data-parallel: threads partition index ranges within each
parallel phase and do not race.

:func:`make_thread_driver` models exactly that execution shape: it rewrites a
module's ``@main`` into a driver that runs every phase's worker function once
per thread over disjoint index ranges, sharing one memory image. Because the
phases are race-free, executing the thread quanta in tid order is an exact
linearization of the parallel execution, and fault injection then targets the
combined dynamic instruction stream — a fault lands in exactly one thread,
as in the paper's experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IRError
from repro.ir.builder import Builder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.types import VOID

__all__ = ["ThreadPhase", "make_thread_driver", "partition_range"]


@dataclass(frozen=True)
class ThreadPhase:
    """One fork-join parallel phase.

    ``worker`` must be a void function taking ``(tid, lo, hi, *extra)`` i64
    arguments; the driver block-partitions ``[0, size)`` across threads.
    """

    worker: str
    size: int
    extra_args: tuple[int, ...] = ()


def partition_range(size: int, num_threads: int) -> list[tuple[int, int]]:
    """Block-partition ``[0, size)`` into contiguous per-thread ranges."""
    if num_threads < 1:
        raise IRError("need at least one thread")
    base, rem = divmod(size, num_threads)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for t in range(num_threads):
        hi = lo + base + (1 if t < rem else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def make_thread_driver(
    module: Module, phases: list[ThreadPhase], num_threads: int
) -> Module:
    """Rewrite a module's ``@main`` into a fork-join thread driver.

    Returns a *clone* of ``module`` whose ``@main`` executes every phase's
    worker once per thread over disjoint index ranges. The clone is
    re-finalized, so downstream profiles must be rebuilt against it.
    """
    m = module.clone()
    if "main" in m.functions:
        del m.functions["main"]
    for ph in phases:
        if ph.worker not in m.functions:
            raise IRError(f"unknown worker function @{ph.worker}")

    fn = Function("main", [], VOID)
    m.add_function(fn)
    fn.add_block("entry")
    b = Builder(fn)
    for ph in phases:
        for tid, (lo, hi) in enumerate(partition_range(ph.size, num_threads)):
            args = [b.i64(tid), b.i64(lo), b.i64(hi)]
            args += [b.i64(x) for x in ph.extra_args]
            b.call(ph.worker, args, VOID)
    b.ret()
    m.finalize()
    return m


class ThreadedProgram:
    """Deprecated alias retained for API stability; use
    :func:`make_thread_driver` and an ordinary :class:`~repro.vm.Program`."""

    def __init__(self, *args, **kwargs) -> None:  # pragma: no cover
        raise IRError(
            "ThreadedProgram was replaced by make_thread_driver(); build a "
            "driver module and execute it with Program"
        )
