"""Exception hierarchy for the repro virtual machine and toolchain.

The VM distinguishes *traps* (runtime events that terminate a program run and
are classified as Crash/Hang/Detected outcomes by the fault-injection layer)
from *toolchain errors* (bugs in IR construction or analysis, which should
never be swallowed).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


# --------------------------------------------------------------------------
# Toolchain errors: invalid IR, bad configuration. These indicate programmer
# mistakes and are never caught by the fault-injection outcome classifier.
# --------------------------------------------------------------------------


class IRError(ReproError):
    """Invalid IR construction or use (wrong types, unknown names...)."""


class VerificationError(IRError):
    """Module failed the IR verifier."""


class ParseError(IRError):
    """Textual IR could not be parsed."""


class ConfigError(ReproError):
    """Invalid experiment or pipeline configuration."""


# --------------------------------------------------------------------------
# Traps: runtime events terminating a single program execution. The FI layer
# maps each trap class onto an Outcome.
# --------------------------------------------------------------------------


class Trap(ReproError):
    """Base class of run-terminating runtime events."""


class MemoryFault(Trap):
    """Out-of-bounds or unmapped memory access (classified as Crash)."""


class ArithmeticTrap(Trap):
    """Integer division/remainder by zero (classified as Crash)."""


class InvalidJump(Trap):
    """Branch to a block that does not exist (classified as Crash)."""


class StackOverflow(Trap):
    """Call depth exceeded the VM limit (classified as Crash)."""


class HangTimeout(Trap):
    """Dynamic instruction budget exhausted (classified as Hang)."""


class DetectedError(Trap):
    """A duplication check observed a mismatch (classified as Detected)."""

    def __init__(self, check_name: str, lhs: object, rhs: object) -> None:
        super().__init__(f"check {check_name}: {lhs!r} != {rhs!r}")
        self.check_name = check_name
        self.lhs = lhs
        self.rhs = rhs
