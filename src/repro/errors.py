"""Exception hierarchy for the repro virtual machine and toolchain.

The VM distinguishes *traps* (runtime events that terminate a program run and
are classified as Crash/Hang/Detected outcomes by the fault-injection layer)
from *toolchain errors* (bugs in IR construction or analysis, which should
never be swallowed).

A third family, *harness errors*, covers faults in the host machinery that
runs campaigns — a pool worker that segfaults, hangs past its deadline, or a
process pool that cannot be kept alive. They are strictly separate from
guest :class:`Trap`\\ s: a trap is a classified experimental outcome, a
:class:`HarnessError` means the experiment infrastructure itself failed
after exhausting its retries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


# --------------------------------------------------------------------------
# Toolchain errors: invalid IR, bad configuration. These indicate programmer
# mistakes and are never caught by the fault-injection outcome classifier.
# --------------------------------------------------------------------------


class IRError(ReproError):
    """Invalid IR construction or use (wrong types, unknown names...)."""


class VerificationError(IRError):
    """Module failed the IR verifier."""


class ParseError(IRError):
    """Textual IR could not be parsed."""


class ConfigError(ReproError):
    """Invalid experiment or pipeline configuration."""


# --------------------------------------------------------------------------
# Harness errors: host-side infrastructure faults of the campaign supervisor
# (repro.util.supervisor). Raised only after bounded retries are exhausted;
# never conflated with guest Traps and never cached as campaign outcomes.
# --------------------------------------------------------------------------


class HarnessError(ReproError):
    """The campaign harness failed after exhausting its recovery budget."""


class WorkerCrash(HarnessError):
    """A pool worker process died (segfault, OOM kill, ``os._exit``)."""


class WorkerTimeout(HarnessError):
    """A worker exceeded its per-chunk wall-clock deadline (hung)."""


class WorkerError(HarnessError):
    """A worker raised the same exception on every retry of a chunk.

    The final in-worker exception is attached as ``__cause__``.
    """


class PoolDegraded(HarnessError):
    """The process pool kept breaking and serial fallback was disabled."""


class ChaosError(HarnessError):
    """Deliberately injected harness fault (the ``REPRO_CHAOS`` hook)."""


# --------------------------------------------------------------------------
# Fabric errors: wire-protocol faults of the distributed campaign fabric
# (repro.fabric). Like the other harness errors they describe the transport
# infrastructure, never guest programs; docs/FABRIC.md specifies when each
# is raised.
# --------------------------------------------------------------------------


class ProtocolError(HarnessError):
    """A fabric peer violated the wire protocol (docs/FABRIC.md)."""


class FrameError(ProtocolError):
    """A byte frame failed validation: bad magic, CRC mismatch, an
    over-long declared length, or a stream that ended mid-frame."""


class HandshakeError(ProtocolError):
    """Version negotiation failed or a peer answered the HELLO wrongly."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection cleanly at a frame boundary."""


# --------------------------------------------------------------------------
# Traps: runtime events terminating a single program execution. The FI layer
# maps each trap class onto an Outcome.
# --------------------------------------------------------------------------


class Trap(ReproError):
    """Base class of run-terminating runtime events."""


class MemoryFault(Trap):
    """Out-of-bounds or unmapped memory access (classified as Crash)."""


class ArithmeticTrap(Trap):
    """Integer division/remainder by zero (classified as Crash)."""


class InvalidJump(Trap):
    """Branch to a block that does not exist (classified as Crash)."""


class StackOverflow(Trap):
    """Call depth exceeded the VM limit (classified as Crash)."""


class HangTimeout(Trap):
    """Dynamic instruction budget exhausted (classified as Hang)."""


class DetectedError(Trap):
    """A duplication check observed a mismatch (classified as Detected)."""

    def __init__(self, check_name: str, lhs: object, rhs: object) -> None:
        super().__init__(f"check {check_name}: {lhs!r} != {rhs!r}")
        self.check_name = check_name
        self.lhs = lhs
        self.rhs = rhs
