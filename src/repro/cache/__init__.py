"""Content-addressed caching of fault-injection campaign results.

A campaign's outcome is a pure function of (program text, input payload,
fault-model config, trial plan, code version) — see FastFlip's incremental
SDC analysis for the same observation. This package persists campaign
results on disk under a stable digest of exactly those ingredients, so
regenerating an unchanged figure dispatches zero campaigns and a GA input
search that revisits an input never re-pays for it.

Pieces:

* :mod:`repro.cache.keys` — what goes into a key (and what deliberately
  does not: worker counts and checkpoint schedules, which are guaranteed
  not to change outcomes);
* :mod:`repro.cache.store` — the sharded JSON store: atomic writes,
  checksum-verified corruption-tolerant reads, LRU eviction under a size
  cap;
* :mod:`repro.cache.active` — the process-wide installed cache that
  campaign entry points consult (CLI ``--cache-dir``, harness flag, or
  ``REPRO_CACHE_DIR``).

Cached and fresh results are bit-identical; tracing counters
(``cache.hit/miss/write/corrupt/evicted``) surface in ``repro obs report``.
"""

from repro.cache.active import CACHE_DIR_ENV, active_cache, cache_scope, store_for
from repro.cache.keys import CODE_SALT, per_instruction_key, whole_program_key
from repro.cache.store import CacheStats, CampaignCache, ENTRY_SCHEMA

__all__ = [
    "CACHE_DIR_ENV",
    "CODE_SALT",
    "ENTRY_SCHEMA",
    "CacheStats",
    "CampaignCache",
    "active_cache",
    "cache_scope",
    "per_instruction_key",
    "store_for",
    "whole_program_key",
]
