"""The on-disk, content-addressed campaign store.

Layout: ``<root>/<key[:2]>/<key>.json`` — one JSON file per entry, sharded
by key prefix so directories stay small. Every entry wraps its payload with
a schema version, its own key, and a checksum of the canonical payload
encoding, so a reader can always tell a good entry from a damaged one.

Robustness contract (the cache must never change results or crash a run):

* **Corruption-tolerant reads.** A truncated, garbled, mis-keyed, or
  wrong-schema entry is treated as a *miss*: the campaign recomputes, the
  bad file is quarantined (unlinked, best effort), and the incident is
  counted (``cache.corrupt``) — never an exception.
* **Concurrent writers.** Entries are written to a unique temp file in the
  same directory and published with :func:`os.replace`, which is atomic on
  POSIX and Windows. Two processes filling the same key race benignly: both
  payloads are identical by construction (results are pure functions of the
  key), and a reader sees either a complete old file or a complete new one.
* **Eviction.** A byte-size cap with least-recently-used replacement: hits
  refresh the entry's mtime, and :meth:`CampaignCache.prune` drops the
  stalest entries until the store fits. Eviction is a performance event,
  not a correctness one — an evicted entry simply recomputes next time.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.obs.core import current as _obs_current

__all__ = ["CampaignCache", "CacheStats", "ENTRY_SCHEMA"]

#: Entry-envelope version: bump when the on-disk wrapper format changes.
ENTRY_SCHEMA = 1

#: Default size cap (bytes); override per store or via REPRO_CACHE_MAX_BYTES.
DEFAULT_MAX_BYTES = 2 * 1024**3

#: Environment override for the store-wide size cap.
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Prune on the first write and then every this-many writes per store
#: instance, so long campaigns amortize the directory walk.
_PRUNE_EVERY = 32


def _payload_checksum(payload: dict) -> str:
    """Checksum of the canonical JSON encoding of a payload."""
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


def _count(name: str, n: int = 1) -> None:
    t = _obs_current()
    if t is not None:
        t.count(name, n)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time store statistics (the ``repro cache stats`` output)."""

    root: str
    entries: int
    bytes: int
    max_bytes: int | None

    def render(self) -> str:
        cap = f"{self.max_bytes}" if self.max_bytes else "unlimited"
        return (
            f"cache {self.root}: {self.entries} entries, "
            f"{self.bytes} bytes (cap {cap})"
        )


class CampaignCache:
    """Content-addressed result store keyed by campaign digests."""

    def __init__(
        self, root: str | Path, max_bytes: int | None = None
    ) -> None:
        self.root = Path(root)
        if max_bytes is None:
            raw = os.environ.get(MAX_BYTES_ENV, "").strip()
            try:
                max_bytes = int(raw) if raw else DEFAULT_MAX_BYTES
            except ValueError:
                max_bytes = DEFAULT_MAX_BYTES
        #: Size cap in bytes; ``None``/``0`` disables eviction.
        self.max_bytes = max_bytes or None
        self._writes = 0

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk location of one entry."""
        return self.root / key[:2] / f"{key}.json"

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return [
            p
            for shard in sorted(self.root.iterdir())
            if shard.is_dir()
            for p in sorted(shard.glob("*.json"))
        ]

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def _read(self, path: Path, key: str | None) -> dict | None:
        """Decode + integrity-check one entry file; ``None`` if damaged."""
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != ENTRY_SCHEMA:
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return None
        if key is not None and entry.get("key") != key:
            return None
        if entry.get("sha") != _payload_checksum(payload):
            return None
        return payload

    def get(self, key: str) -> dict | None:
        """The payload stored under ``key``, or ``None`` (a miss).

        Damaged entries are quarantined and read as misses; hits refresh
        the entry's LRU clock.
        """
        path = self.path_for(key)
        if not path.exists():
            _count("cache.miss")
            return None
        payload = self._read(path, key)
        if payload is None:
            _count("cache.corrupt")
            _count("cache.miss")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        _count("cache.hit")
        return payload

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def put(self, key: str, payload: dict) -> None:
        """Publish ``payload`` under ``key`` (atomic, last-writer-wins)."""
        path = self.path_for(key)
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": key,
            "sha": _payload_checksum(payload),
            "payload": payload,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f".{key}.{os.getpid()}.tmp"
            tmp.write_text(json.dumps(entry, separators=(",", ":")))
            os.replace(tmp, path)
        except OSError:
            return  # a full/read-only disk degrades to "no cache", not a crash
        _count("cache.write")
        if self._writes % _PRUNE_EVERY == 0:
            self.prune()
        self._writes += 1

    def prune(self, max_bytes: int | None = None) -> int:
        """Evict least-recently-used entries until the store fits the cap.

        Returns the number of entries removed. No-op when no cap is set.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if not cap:
            return 0
        aged = []
        total = 0
        for p in self._entries():
            try:
                st = p.stat()
            except OSError:
                continue
            aged.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        aged.sort()
        removed = 0
        for _, size, p in aged:
            if total <= cap:
                break
            try:
                p.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        if removed:
            _count("cache.evicted", removed)
        return removed

    # ------------------------------------------------------------------
    # Maintenance (the ``repro cache`` subcommand)
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Entry count and byte footprint of the store."""
        entries = self._entries()
        total = 0
        for p in entries:
            try:
                total += p.stat().st_size
            except OSError:
                pass
        return CacheStats(
            root=str(self.root),
            entries=len(entries),
            bytes=total,
            max_bytes=self.max_bytes,
        )

    def verify(self, delete: bool = False) -> list[Path]:
        """Integrity-check every entry; return (and optionally delete) the
        damaged ones."""
        bad = []
        for p in self._entries():
            if self._read(p, p.stem) is None:
                bad.append(p)
                if delete:
                    try:
                        p.unlink()
                    except OSError:
                        pass
        return bad

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for p in self._entries():
            try:
                p.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignCache(root={str(self.root)!r})"
