"""The process-wide active cache, mirroring :mod:`repro.obs.core`.

Campaign entry points consult :func:`active_cache` when no explicit store
is passed, so installing one cache at the top of a run (CLI flag, harness
flag, or the ``REPRO_CACHE_DIR`` environment variable) makes every campaign
underneath it incremental — including the GA input search's per-candidate
sweeps, which revisit inputs across generations.

Unlike telemetry there is no pid guard: the store is a plain directory and
is safe to share between processes (atomic writes, checksum reads). Pool
workers never reach it anyway — lookups happen in the parent, around whole
campaigns, before any fan-out.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

from repro.cache.store import CampaignCache

__all__ = ["active_cache", "cache_scope", "store_for", "CACHE_DIR_ENV"]

#: Opt-in environment default consulted when no cache is installed.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Sentinel installed by ``--no-cache``: beats the environment default.
_DISABLED = object()

_active = None

#: One store object per resolved directory, so repeated scopes (one per
#: figure driver, say) share prune bookkeeping instead of re-walking.
_stores: dict[str, CampaignCache] = {}


def store_for(root: str | Path, max_bytes: int | None = None) -> CampaignCache:
    """The memoized :class:`CampaignCache` for a directory."""
    resolved = str(Path(root).expanduser().resolve())
    store = _stores.get(resolved)
    if store is None:
        store = CampaignCache(resolved, max_bytes=max_bytes)
        _stores[resolved] = store
    return store


def active_cache() -> CampaignCache | None:
    """The installed cache; falls back to ``REPRO_CACHE_DIR`` when unset.

    Returns ``None`` when caching is off — either nothing is installed and
    the environment names no directory, or a ``--no-cache`` scope is active.
    """
    if _active is _DISABLED:
        return None
    if _active is not None:
        return _active
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return store_for(env)
    return None


@contextmanager
def cache_scope(spec):
    """Install a cache (or explicitly disable caching) for a block.

    ``spec`` may be a directory path or a :class:`CampaignCache` (install
    it), ``False`` (disable caching, overriding the environment default),
    or ``None`` (no-op: keep whatever is ambient). Scopes nest by
    shadowing; the previous state is restored on exit.
    """
    global _active
    if spec is None:
        yield active_cache()
        return
    prev = _active
    if spec is False:
        _active = _DISABLED
    elif isinstance(spec, CampaignCache):
        _active = spec
    else:
        _active = store_for(spec)
    try:
        yield None if _active is _DISABLED else _active
    finally:
        _active = prev
