"""Cache-key derivation: what a campaign outcome is a pure function of.

A fault-injection campaign is deterministic in

* the **program** — hashed as its canonical IR text (the printer's output is
  round-trippable, so two modules with identical text behave identically);
* the **input payload** — interpreter arguments and global-array bindings;
* the **fault model** — outcome-comparison tolerances (``rel_tol``,
  ``abs_tol``); the bit-flip model itself is part of the code salt;
* the **trial plan** — campaign kind, trial counts, seed, and (for
  per-instruction sweeps) the targeted iid set;
* the **code version** — :data:`CODE_SALT`, bumped whenever sampling,
  injection, or outcome-classification semantics change.

Deliberately *excluded*: ``workers`` and ``checkpoint_interval``/
``checkpoints``. Outcomes are guaranteed bit-identical across worker counts
and checkpoint schedules (the repo's core invariant, enforced by
``tests/test_fi_checkpoint.py`` and the obs determinism tests), so a result
computed serially may be served to a pooled, checkpointed re-run and vice
versa. Telemetry settings never enter the key either — tracing is inert.
"""

from __future__ import annotations

from repro.util.digest import stable_digest

__all__ = [
    "CODE_SALT",
    "ANALYSIS_SALT",
    "whole_program_key",
    "per_instruction_key",
    "section_summary_key",
    "value_profile_key",
]

#: Version salt folded into every key. Bump on any change to fault-site
#: sampling, injection semantics, outcome classification, or RNG derivation:
#: old entries then read as misses and are recomputed, never misused.
CODE_SALT = "repro-fi-1"

#: Salt of the static-analysis layer. Bump on any change to the propagation
#: algorithm or summary schema in :mod:`repro.analysis` (the masking
#: constants are keyed explicitly, so tuning them needs no bump).
ANALYSIS_SALT = "repro-analysis-1"


def _base(kind: str, module_text: str, args, bindings,
          rel_tol: float, abs_tol: float, seed: int) -> dict:
    return {
        "salt": CODE_SALT,
        "kind": kind,
        "module": module_text,
        "args": list(args) if args is not None else None,
        "bindings": (
            {k: list(v) for k, v in bindings.items()}
            if bindings is not None else None
        ),
        "rel_tol": float(rel_tol),
        "abs_tol": float(abs_tol),
        "seed": int(seed),
    }


def whole_program_key(
    module_text: str,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    n_faults: int,
    seed: int,
) -> str:
    """Key of a whole-program campaign (:func:`repro.fi.run_campaign`)."""
    payload = _base(
        "whole-program", module_text, args, bindings, rel_tol, abs_tol, seed
    )
    payload["n_faults"] = int(n_faults)
    return stable_digest(payload)


def per_instruction_key(
    module_text: str,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    trials_per_instruction: int,
    seed: int,
    target_iids,
) -> str:
    """Key of a per-instruction sweep.

    ``target_iids`` is the *resolved* target set, sorted: each iid samples
    from its own seeded child stream, so sweep order cannot affect per-iid
    outcomes and an explicit all-iids request keys identically to the
    default ``only_iids=None``.
    """
    payload = _base(
        "per-instruction", module_text, args, bindings, rel_tol, abs_tol, seed
    )
    payload["trials_per_instruction"] = int(trials_per_instruction)
    payload["targets"] = sorted(int(i) for i in target_iids)
    return stable_digest(payload)


def value_profile_key(module_text: str, args, bindings) -> str:
    """Key of a golden-run value profile (:mod:`repro.detectors`).

    A value profile is a pure function of the program and its input: the
    golden run is fault-free and deterministic, so tolerances, seeds and
    trial plans play no part. ``CODE_SALT`` still applies — interpreter
    semantics shape the observed values.
    """
    return stable_digest(
        {
            "salt": CODE_SALT,
            "kind": "value-profile",
            "module": module_text,
            "args": list(args) if args is not None else None,
            "bindings": (
                {k: list(v) for k, v in bindings.items()}
                if bindings is not None else None
            ),
        }
    )


def section_summary_key(function_text: str, masking_fingerprint: dict) -> str:
    """Key of one function's error-propagation summary (FastFlip-style).

    Content-addressed by the function's canonical text and the full masking
    constant set: editing any *other* function leaves this key (and its
    cached summary) untouched — the incremental re-analysis property.
    """
    return stable_digest(
        {
            "salt": ANALYSIS_SALT,
            "kind": "section-summary",
            "function": function_text,
            "masking": dict(masking_fingerprint),
        }
    )
