"""FI throughput measurement: cold vs. checkpoint-resumed campaigns.

The throughput bench (``benchmarks/test_perf_fi_throughput.py`` and
``scripts/bench_fi.py``) uses this module to measure injections/sec of the
two campaign engines on identical seeded fault lists, assert bit-identical
outcomes, and emit a JSON record so the perf trajectory is tracked across
PRs. It lives outside ``repro.fi.__init__``'s export surface because it
imports the app registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps import get_app
from repro.fi.campaign import CampaignResult, run_campaign
from repro.vm.checkpoint import auto_interval
from repro.vm.profiler import profile_run

__all__ = ["ThroughputReport", "measure_fi_throughput"]


@dataclass
class ThroughputReport:
    """One app's cold-vs-checkpointed campaign measurement."""

    app: str
    n_faults: int
    seed: int
    golden_steps: int
    checkpoint_interval: int
    workers: int
    cold_seconds: float
    checkpointed_seconds: float
    #: Did both engines classify every fault identically (they must)?
    identical: bool = True
    outcomes: dict = field(default_factory=dict)

    @property
    def cold_injections_per_sec(self) -> float:
        return self.n_faults / self.cold_seconds if self.cold_seconds else 0.0

    @property
    def checkpointed_injections_per_sec(self) -> float:
        s = self.checkpointed_seconds
        return self.n_faults / s if s else 0.0

    @property
    def speedup(self) -> float:
        if not self.checkpointed_seconds:
            return 0.0
        return self.cold_seconds / self.checkpointed_seconds

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "n_faults": self.n_faults,
            "seed": self.seed,
            "golden_steps": self.golden_steps,
            "checkpoint_interval": self.checkpoint_interval,
            "workers": self.workers,
            "cold_seconds": self.cold_seconds,
            "checkpointed_seconds": self.checkpointed_seconds,
            "cold_injections_per_sec": self.cold_injections_per_sec,
            "checkpointed_injections_per_sec": (
                self.checkpointed_injections_per_sec
            ),
            "speedup": self.speedup,
            "identical": self.identical,
            "outcomes": self.outcomes,
        }


def measure_fi_throughput(
    app_name: str,
    n_faults: int = 200,
    seed: int = 2022,
    checkpoint_interval: int | str = "auto",
    workers: int = 0,
    repeats: int = 1,
) -> ThroughputReport:
    """Run the same seeded whole-program campaign cold and checkpointed.

    Both runs share one golden profile (as the experiment pipelines do), so
    the measurement isolates trial execution plus, for the checkpointed
    side, the snapshot-recording run — the honest end-to-end cost a user
    pays. The two ``per_fault`` lists are compared for the bit-identity
    guarantee. With ``repeats > 1`` each engine runs that many times and
    the best (minimum) wall time is reported; campaigns here take fractions
    of a second, so a single scheduler hiccup otherwise dominates the ratio.
    """
    app = get_app(app_name)
    args, bindings = app.encode(app.reference_input)
    program = app.program
    profile = profile_run(program, args=args, bindings=bindings)
    common = dict(
        args=args,
        bindings=bindings,
        rel_tol=app.rel_tol,
        abs_tol=app.abs_tol,
        profile=profile,
    )
    repeats = max(1, repeats)

    cold_seconds = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        cold: CampaignResult = run_campaign(
            program, n_faults, seed=seed, workers=0, **common
        )
        cold_seconds = min(cold_seconds, time.perf_counter() - t0)

    checkpointed_seconds = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        ckpt: CampaignResult = run_campaign(
            program,
            n_faults,
            seed=seed,
            workers=workers,
            checkpoint_interval=checkpoint_interval,
            **common,
        )
        checkpointed_seconds = min(
            checkpointed_seconds, time.perf_counter() - t0
        )

    if checkpoint_interval == "auto":
        interval = auto_interval(profile.steps)
    else:
        interval = int(checkpoint_interval)
    return ThroughputReport(
        app=app_name,
        n_faults=n_faults,
        seed=seed,
        golden_steps=profile.steps,
        checkpoint_interval=interval,
        workers=workers,
        cold_seconds=cold_seconds,
        checkpointed_seconds=checkpointed_seconds,
        identical=cold.per_fault == ckpt.per_fault,
        outcomes={o.value: n for o, n in cold.counts.counts.items()},
    )
