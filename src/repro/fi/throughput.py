"""FI throughput measurement: cold vs. checkpoint-resumed campaigns.

The throughput bench (``benchmarks/test_perf_fi_throughput.py`` and
``scripts/bench_fi.py``) uses this module to measure injections/sec of the
two campaign engines on identical seeded fault lists, assert bit-identical
outcomes, and emit a JSON record so the perf trajectory is tracked across
PRs. It lives outside ``repro.fi.__init__``'s export surface because it
imports the app registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps import get_app
from repro.fi.campaign import CampaignResult, run_campaign
from repro.fi.faultmodel import sample_fault_sites
from repro.fi.injector import inject_one
from repro.fi.outcome import classify_run
from repro.util.rng import RngStream
from repro.vm.batch import BatchStats, resolve_batch_size, run_trials_lockstep
from repro.vm.checkpoint import auto_interval
from repro.vm.profiler import profile_run

__all__ = [
    "ThroughputReport",
    "measure_fi_throughput",
    "BatchThroughputReport",
    "measure_batch_throughput",
]


@dataclass
class ThroughputReport:
    """One app's cold-vs-checkpointed campaign measurement."""

    app: str
    n_faults: int
    seed: int
    golden_steps: int
    checkpoint_interval: int
    workers: int
    cold_seconds: float
    checkpointed_seconds: float
    #: Did both engines classify every fault identically (they must)?
    identical: bool = True
    outcomes: dict = field(default_factory=dict)

    @property
    def cold_injections_per_sec(self) -> float:
        return self.n_faults / self.cold_seconds if self.cold_seconds else 0.0

    @property
    def checkpointed_injections_per_sec(self) -> float:
        s = self.checkpointed_seconds
        return self.n_faults / s if s else 0.0

    @property
    def speedup(self) -> float:
        if not self.checkpointed_seconds:
            return 0.0
        return self.cold_seconds / self.checkpointed_seconds

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "n_faults": self.n_faults,
            "seed": self.seed,
            "golden_steps": self.golden_steps,
            "checkpoint_interval": self.checkpoint_interval,
            "workers": self.workers,
            "cold_seconds": self.cold_seconds,
            "checkpointed_seconds": self.checkpointed_seconds,
            "cold_injections_per_sec": self.cold_injections_per_sec,
            "checkpointed_injections_per_sec": (
                self.checkpointed_injections_per_sec
            ),
            "speedup": self.speedup,
            "identical": self.identical,
            "outcomes": self.outcomes,
        }


def measure_fi_throughput(
    app_name: str,
    n_faults: int = 200,
    seed: int = 2022,
    checkpoint_interval: int | str = "auto",
    workers: int = 0,
    repeats: int = 1,
) -> ThroughputReport:
    """Run the same seeded whole-program campaign cold and checkpointed.

    Both runs share one golden profile (as the experiment pipelines do), so
    the measurement isolates trial execution plus, for the checkpointed
    side, the snapshot-recording run — the honest end-to-end cost a user
    pays. The two ``per_fault`` lists are compared for the bit-identity
    guarantee. With ``repeats > 1`` each engine runs that many times and
    the best (minimum) wall time is reported; campaigns here take fractions
    of a second, so a single scheduler hiccup otherwise dominates the ratio.
    """
    app = get_app(app_name)
    args, bindings = app.encode(app.reference_input)
    program = app.program
    profile = profile_run(program, args=args, bindings=bindings)
    common = dict(
        args=args,
        bindings=bindings,
        rel_tol=app.rel_tol,
        abs_tol=app.abs_tol,
        profile=profile,
    )
    repeats = max(1, repeats)

    cold_seconds = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        cold: CampaignResult = run_campaign(
            program, n_faults, seed=seed, workers=0, **common
        )
        cold_seconds = min(cold_seconds, time.perf_counter() - t0)

    checkpointed_seconds = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        ckpt: CampaignResult = run_campaign(
            program,
            n_faults,
            seed=seed,
            workers=workers,
            checkpoint_interval=checkpoint_interval,
            **common,
        )
        checkpointed_seconds = min(
            checkpointed_seconds, time.perf_counter() - t0
        )

    if checkpoint_interval == "auto":
        interval = auto_interval(profile.steps)
    else:
        interval = int(checkpoint_interval)
    return ThroughputReport(
        app=app_name,
        n_faults=n_faults,
        seed=seed,
        golden_steps=profile.steps,
        checkpoint_interval=interval,
        workers=workers,
        cold_seconds=cold_seconds,
        checkpointed_seconds=checkpointed_seconds,
        identical=cold.per_fault == ckpt.per_fault,
        outcomes={o.value: n for o, n in cold.counts.counts.items()},
    )


@dataclass
class BatchThroughputReport:
    """One app's scalar-vs-lockstep-batch cold-campaign measurement."""

    app: str
    n_faults: int
    seed: int
    golden_steps: int
    batch_size: int
    scalar_seconds: float
    batch_seconds: float
    #: Did both engines classify every fault identically (they must)?
    identical: bool = True
    #: Rows that left lockstep for a scalar tail, over all trials.
    detached: int = 0
    #: Divergent branch rows that rejoined the mirror instead of detaching.
    reconverged: int = 0
    #: Fraction of trial-instructions executed inside the shared mirror.
    lockstep_occupancy: float = 1.0
    outcomes: dict = field(default_factory=dict)

    @property
    def scalar_injections_per_sec(self) -> float:
        s = self.scalar_seconds
        return self.n_faults / s if s else 0.0

    @property
    def batch_injections_per_sec(self) -> float:
        s = self.batch_seconds
        return self.n_faults / s if s else 0.0

    @property
    def speedup(self) -> float:
        if not self.batch_seconds:
            return 0.0
        return self.scalar_seconds / self.batch_seconds

    @property
    def detach_rate(self) -> float:
        return self.detached / self.n_faults if self.n_faults else 0.0

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "n_faults": self.n_faults,
            "seed": self.seed,
            "golden_steps": self.golden_steps,
            "batch_size": self.batch_size,
            "scalar_seconds": self.scalar_seconds,
            "batch_seconds": self.batch_seconds,
            "scalar_injections_per_sec": self.scalar_injections_per_sec,
            "batch_injections_per_sec": self.batch_injections_per_sec,
            "speedup": self.speedup,
            "detached": self.detached,
            "detach_rate": self.detach_rate,
            "reconverged": self.reconverged,
            "lockstep_occupancy": self.lockstep_occupancy,
            "identical": self.identical,
            "outcomes": self.outcomes,
        }


def measure_batch_throughput(
    app_name: str,
    n_faults: int = 512,
    seed: int = 2022,
    batch_size: int | None = None,
    repeats: int = 1,
    batch_repeats: int | None = None,
) -> BatchThroughputReport:
    """Time one seeded fault list through the scalar and batch executors.

    Both timings are *cold* (no checkpoint store) and run the exact fault
    list a ``run_campaign(n_faults, seed)`` would sample, so the ratio is
    the honest per-trial speedup of lockstep vectorization — checkpoint
    resume composes on top and is measured separately by
    :func:`measure_fi_throughput`. The scalar side times
    :func:`~repro.fi.injector.inject_one` per site; the batch side times
    :func:`~repro.vm.batch.run_trials_lockstep` over ``batch_size``-wide
    chunks of the same list, and the two outcome sequences are compared
    element-wise for the bit-identity guarantee. Detach/reconverge counts
    and lockstep occupancy come from the engine's own
    :class:`~repro.vm.batch.BatchStats`.

    ``repeats`` times each side best-of-N; ``batch_repeats`` (default
    ``repeats``) can raise the batch side's count separately — a batch
    pass is ~20x shorter than the scalar pass, so one scheduler hiccup
    skews its minimum far more, and extra batch repeats are nearly free.
    """
    app = get_app(app_name)
    args, bindings = app.encode(app.reference_input)
    program = app.program
    profile = profile_run(program, args=args, bindings=bindings)
    rng = RngStream(seed, "campaign")
    sites = sample_fault_sites(program.module, profile, n_faults, rng)
    limit = profile.steps * 8 + 10_000
    width = resolve_batch_size(batch_size)
    repeats = max(1, repeats)

    scalar_seconds = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        scalar = [
            inject_one(
                program, s, profile.output, profile.steps,
                args=args, bindings=bindings,
                rel_tol=app.rel_tol, abs_tol=app.abs_tol,
            )
            for s in sites
        ]
        scalar_seconds = min(scalar_seconds, time.perf_counter() - t0)

    specs = [s.to_spec() for s in sites]
    batch_seconds = float("inf")
    for _ in range(max(1, batch_repeats or repeats)):
        stats = BatchStats()
        batched = []
        t0 = time.perf_counter()
        for i in range(0, len(specs), width):
            results, st = run_trials_lockstep(
                program, specs[i : i + width], args=args, bindings=bindings,
                golden_output=profile.output, step_limit=limit,
            )
            stats.merge(st)
            batched.extend(
                classify_run(profile.output, out, trap,
                             app.rel_tol, app.abs_tol)
                for out, trap in results
            )
        batch_seconds = min(batch_seconds, time.perf_counter() - t0)

    counts: dict[str, int] = {}
    for o in scalar:
        counts[o.value] = counts.get(o.value, 0) + 1
    return BatchThroughputReport(
        app=app_name,
        n_faults=n_faults,
        seed=seed,
        golden_steps=profile.steps,
        batch_size=width,
        scalar_seconds=scalar_seconds,
        batch_seconds=batch_seconds,
        identical=scalar == batched,
        detached=stats.detached,
        reconverged=stats.reconverged,
        lockstep_occupancy=stats.occupancy(),
        outcomes=counts,
    )
