"""Fault-site sampling under the paper's fault model.

A fault site is a (static instruction, dynamic instance, bit) triple. Sites
are sampled from the *golden* dynamic execution of the program under the
studied input:

- whole-program campaigns pick a uniformly random dynamic instance among all
  executions of injectable instructions (LLFI's default behaviour), and
- per-instruction campaigns pick a uniformly random dynamic instance of one
  chosen static instruction.

Injectable instructions are the value-producing computational ops (ALU, FPU,
comparisons, casts, loads, address generation); see
:data:`repro.vm.interpreter.INJECTABLE_OPCODES`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.ir.module import Module
from repro.util.rng import RngStream
from repro.vm.interpreter import INJECTABLE_OPCODES, FaultSpec
from repro.vm.profiler import DynamicProfile

__all__ = [
    "FaultSite",
    "injectable_iids",
    "sample_fault_sites",
    "sample_per_instruction_sites",
]


@dataclass(frozen=True)
class FaultSite:
    """A concrete fault: static iid + dynamic instance + bit position."""

    iid: int
    instance: int
    bit: int

    def to_spec(self) -> FaultSpec:
        return FaultSpec(self.iid, self.instance, self.bit)


def injectable_iids(module: Module) -> list[int]:
    """iids of fault-injectable instructions, in iid order."""
    return [
        instr.iid
        for instr in module.instructions()
        if instr.opcode in INJECTABLE_OPCODES
    ]


def _bit_width_of(module: Module, iid: int) -> int:
    t = module.instruction(iid).type
    return t.width


def sample_fault_sites(
    module: Module,
    profile: DynamicProfile,
    n: int,
    rng: RngStream,
) -> list[FaultSite]:
    """Sample ``n`` whole-program fault sites.

    The dynamic instance is uniform over *all* executions of injectable
    instructions under the profiled input, so hot instructions attract
    proportionally more faults — the activation-weighted sampling LLFI uses.
    """
    iids = injectable_iids(module)
    counts = profile.instr_counts
    weighted = [(iid, counts[iid]) for iid in iids if counts[iid] > 0]
    if not weighted:
        raise ConfigError("no injectable instruction executed under this input")
    # Cumulative counts for O(log n) instance -> iid mapping.
    cum: list[int] = []
    total = 0
    for _, c in weighted:
        total += c
        cum.append(total)
    sites: list[FaultSite] = []
    for _ in range(n):
        k = rng.randint(1, total)
        idx = bisect.bisect_left(cum, k)
        iid, c = weighted[idx]
        prev = cum[idx - 1] if idx else 0
        instance = k - prev  # 1-based instance of this static instruction
        bit = rng.randint(0, _bit_width_of(module, iid) - 1)
        sites.append(FaultSite(iid, instance, bit))
    return sites


def sample_per_instruction_sites(
    module: Module,
    profile: DynamicProfile,
    iid: int,
    n: int,
    rng: RngStream,
) -> list[FaultSite]:
    """Sample ``n`` fault sites targeting one static instruction.

    Returns an empty list if the instruction never executed under the input
    (its SDC probability is 0 by definition there — it cannot manifest).
    """
    if module.instruction(iid).opcode not in INJECTABLE_OPCODES:
        raise ConfigError(f"iid {iid} is not fault-injectable")
    count = profile.instr_counts[iid]
    if count == 0:
        return []
    width = _bit_width_of(module, iid)
    return [
        FaultSite(iid, rng.randint(1, count), rng.randint(0, width - 1))
        for _ in range(n)
    ]
