"""Fault injection: the LLFI-equivalent layer.

Implements the paper's fault model — single-bit flips in the return value of
a random dynamic instruction, faults in memory/control logic excluded — plus
the two campaign styles the paper uses:

- *whole-program* campaigns (1000 faults per program/input in the paper)
  estimating the program SDC probability, and
- *per-instruction* campaigns (100 faults per static instruction) estimating
  each instruction's SDC probability, which feeds the SID benefit model.
"""

from repro.fi.faultmodel import FaultSite, sample_fault_sites, sample_per_instruction_sites
from repro.fi.outcome import Outcome, OutcomeCounts, classify_run
from repro.fi.injector import inject_one, inject_one_resumed, golden_run
from repro.fi.campaign import (
    CampaignResult,
    PerInstructionResult,
    per_detector_detection,
    run_campaign,
    run_per_instruction_campaign,
)
from repro.fi.stats import binomial_confidence_interval, wilson_interval

__all__ = [
    "FaultSite",
    "sample_fault_sites",
    "sample_per_instruction_sites",
    "Outcome",
    "OutcomeCounts",
    "classify_run",
    "inject_one",
    "inject_one_resumed",
    "golden_run",
    "CampaignResult",
    "PerInstructionResult",
    "per_detector_detection",
    "run_campaign",
    "run_per_instruction_campaign",
    "binomial_confidence_interval",
    "wilson_interval",
]
