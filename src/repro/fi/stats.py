"""Statistics for FI campaigns: confidence intervals on outcome probabilities.

The paper reports 95% error bars of 0.26%-3.10% for its 1000-fault campaigns;
these helpers produce the equivalent bars for any trial count so every
reported estimate can carry its uncertainty.
"""

from __future__ import annotations

import math

__all__ = ["binomial_confidence_interval", "wilson_interval", "required_trials"]

# Two-sided z values for common confidence levels.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    try:
        return _Z[round(confidence, 2)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence {confidence}; use one of {sorted(_Z)}"
        ) from None


def binomial_confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation (Wald) CI for a binomial proportion.

    This is the interval the FI literature typically quotes; prefer
    :func:`wilson_interval` for small campaigns or extreme proportions.
    """
    if trials <= 0:
        return (0.0, 1.0)
    p = successes / trials
    half = _z_for(confidence) * math.sqrt(p * (1.0 - p) / trials)
    return (max(0.0, p - half), min(1.0, p + half))


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval — well behaved near p=0/1 and small n."""
    if trials <= 0:
        return (0.0, 1.0)
    z = _z_for(confidence)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4 * trials * trials))
        / denom
    )
    # The Wilson interval mathematically always contains the MLE; guard the
    # floating-point rounding at p = 0/1 so the property holds exactly.
    lo = min(max(0.0, centre - half), p)
    hi = max(min(1.0, centre + half), p)
    return (lo, hi)


def required_trials(
    half_width: float, p_estimate: float = 0.5, confidence: float = 0.95
) -> int:
    """Trials needed for a Wald CI of the given half width (planning aid)."""
    if not 0.0 < half_width < 1.0:
        raise ValueError("half_width must be in (0, 1)")
    z = _z_for(confidence)
    return math.ceil(z * z * p_estimate * (1.0 - p_estimate) / (half_width**2))
