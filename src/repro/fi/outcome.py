"""Outcome classification of faulty runs.

Mirrors the taxonomy the paper (and the LLFI literature) uses:

========  ===========================================================
Outcome   Meaning
========  ===========================================================
BENIGN    Run completed, output equals the golden output (masked)
SDC       Run completed, output differs silently
CRASH     Run trapped (memory fault, divide-by-zero, stack overflow)
HANG      Run exceeded its dynamic-instruction budget
DETECTED  A duplication check caught a mismatch before corruption
========  ===========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Outcome", "OutcomeCounts", "outputs_equal", "classify_run"]


class Outcome(str, Enum):
    BENIGN = "benign"
    SDC = "sdc"
    CRASH = "crash"
    HANG = "hang"
    DETECTED = "detected"


def outputs_equal(
    golden: list,
    actual: list,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> bool:
    """Compare emitted output streams.

    Integer values compare exactly; floats honour the app's tolerance (a
    scientific code's output is "corrupted" only beyond its accuracy bar —
    the standard SDC criterion in the HPC resilience literature). NaN in the
    actual output is always a corruption unless the golden value is NaN too.
    """
    if len(golden) != len(actual):
        return False
    for g, a in zip(golden, actual):
        if isinstance(g, float) or isinstance(a, float):
            g_f, a_f = float(g), float(a)
            if math.isnan(g_f) and math.isnan(a_f):
                continue
            if math.isnan(g_f) or math.isnan(a_f):
                return False
            if math.isinf(g_f) or math.isinf(a_f):
                if g_f != a_f:
                    return False
                continue
            if not math.isclose(g_f, a_f, rel_tol=rel_tol, abs_tol=abs_tol):
                return False
        else:
            if g != a:
                return False
    return True


@dataclass
class OutcomeCounts:
    """Tally of outcomes over a campaign."""

    counts: dict[Outcome, int] = field(
        default_factory=lambda: {o: 0 for o in Outcome}
    )

    def record(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def probability(self, outcome: Outcome) -> float:
        """Fraction of trials with the given outcome (0 on empty tallies)."""
        t = self.total
        return self.counts[outcome] / t if t else 0.0

    @property
    def sdc_probability(self) -> float:
        """The paper's SDC probability: SDCs per manifested fault."""
        return self.probability(Outcome.SDC)

    def merged(self, other: "OutcomeCounts") -> "OutcomeCounts":
        out = OutcomeCounts()
        for o in Outcome:
            out.counts[o] = self.counts[o] + other.counts[o]
        return out

    def __repr__(self) -> str:
        parts = ", ".join(f"{o.value}={n}" for o, n in self.counts.items() if n)
        return f"OutcomeCounts({parts or 'empty'})"


def classify_run(
    golden_output: list,
    actual_output: list | None,
    trap: BaseException | None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
) -> Outcome:
    """Map a finished/trapped faulty run to its outcome."""
    from repro.errors import DetectedError, HangTimeout, Trap

    if trap is not None:
        if isinstance(trap, DetectedError):
            return Outcome.DETECTED
        if isinstance(trap, HangTimeout):
            return Outcome.HANG
        if isinstance(trap, Trap):
            return Outcome.CRASH
        raise trap  # toolchain bug: never classify programmer errors
    assert actual_output is not None
    if outputs_equal(golden_output, actual_output, rel_tol, abs_tol):
        return Outcome.BENIGN
    return Outcome.SDC
