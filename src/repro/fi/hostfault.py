"""Sticky per-host fault signatures: the defective-core model.

The transient model of :mod:`repro.fi.faultmodel` flips one bit of one
dynamic instance and never misbehaves again — a cosmic-ray upset. "Silent
Data Corruptions at Scale" (Meta; PAPERS.md) describes the production
threat differently: a *defective core* carries a sticky, data-dependent
fault signature tied to a specific operation, corrupting results silently
for months until periodic in-field testing catches it. This module is that
second fault model.

A :class:`HostFaultModel` names the signature: one opcode, one bit, and a
manifestation mode —

``permanent``
    Data-dependent but deterministic: the defect fires exactly when the
    result's low ``pattern_bits`` match a seed-derived pattern. The key
    consequence is fidelity to the Meta paper's core observation about
    instruction duplication: both duplicated executions see the same
    operands on the same defective unit, compute the same wrong answer,
    and the comparison *passes* — a permanent signature is invisible to
    SID, only in-field testing can find it.

``intermittent``
    Electrically marginal: each matching execution corrupts independently
    with ``fire_rate`` probability (a deterministic counter-LCG stream, so
    runs replay bit-identically). Duplicated executions draw independently,
    so duplication *can* catch an intermittent defect — one copy corrupts,
    the comparison trips, and the mismatch surfaces as ``DETECTED``.

Binding a model against a :class:`~repro.vm.interpreter.Program` resolves
the opcode to concrete iids and per-iid flip kinds (reusing
:func:`repro.util.bitops.flip_value`, the same primitive the transient
model flips with); :meth:`BoundHostFault.start_run` then yields the
per-execution visitor the interpreter's sticky hook drives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, DetectedError
from repro.util.bitops import flip_value
from repro.util.rng import RngStream, derive_seed

__all__ = [
    "MODES",
    "HostFaultModel",
    "BoundHostFault",
    "StickyRun",
    "sample_host_fault",
]

#: Sticky-fault manifestation modes (see the module docstring).
MODES = ("permanent", "intermittent")

#: Counter-LCG constants (Knuth MMIX) — one multiply+add per intermittent
#: draw, cheap enough to sit inside the interpreter's hot loop.
_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_M64 = (1 << 64) - 1

# Bit-pattern extraction for data-dependent (permanent) firing: the defect
# keys on the low bits of the result's machine representation.
import struct as _struct

_pack_d = _struct.Struct("<d").pack
_unpack_Q = _struct.Struct("<Q").unpack
_pack_f = _struct.Struct("<f").pack
_unpack_I = _struct.Struct("<I").unpack


def _value_bits(val, kind: int) -> int:
    """Machine bits of a result value (kind 0 int/ptr, 1 f64, 2 f32)."""
    if kind == 0:
        return val
    try:
        if kind == 1:
            return _unpack_Q(_pack_d(val))[0]
        return _unpack_I(_pack_f(val))[0]
    except (OverflowError, ValueError):
        return 0


@dataclass(frozen=True)
class HostFaultModel:
    """One host's sticky fault signature.

    Parameters
    ----------
    opcode:
        The defective operation (an interpreter opcode name, e.g.
        ``"fmul"``); every value produced by an instruction of this opcode
        passes through the signature.
    bit:
        The stuck bit. Taken modulo each bound instruction's value width,
        so one signature applies across mixed-width programs.
    mode:
        ``"permanent"`` or ``"intermittent"`` (module docstring).
    seed:
        Identity of the deterministic draw/pattern stream — two hosts with
        equal parameters but different seeds corrupt different data.
    fire_rate:
        Intermittent only: per-matching-execution corruption probability.
    pattern_bits:
        Permanent only: data-dependence selectivity; the defect fires on
        ``2**-pattern_bits`` of value space.
    """

    opcode: str
    bit: int
    mode: str
    seed: int
    fire_rate: float = 0.1
    pattern_bits: int = 4

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(
                f"unknown host-fault mode {self.mode!r}; expected one of "
                f"{', '.join(MODES)}"
            )
        if self.bit < 0:
            raise ConfigError("host-fault bit must be non-negative")
        if not 0.0 < self.fire_rate <= 1.0:
            raise ConfigError(
                f"fire_rate must be in (0, 1], got {self.fire_rate}"
            )
        if not 1 <= self.pattern_bits <= 16:
            raise ConfigError(
                f"pattern_bits must be in [1, 16], got {self.pattern_bits}"
            )

    # -- signature physics ----------------------------------------------
    @property
    def pattern(self) -> int:
        """The permanent mode's seed-derived firing pattern."""
        return derive_seed(self.seed, "pattern") & self.pattern_mask

    @property
    def pattern_mask(self) -> int:
        return (1 << self.pattern_bits) - 1

    def fires_on(self, bits: int) -> bool:
        """Permanent data dependence: does the defect corrupt this value?"""
        return (bits & self.pattern_mask) == self.pattern

    def bind(self, program, protected=()) -> "BoundHostFault":
        """Resolve the signature against one program (see module docs)."""
        return BoundHostFault(self, program, protected)

    def in_field_probe(self, rng: RngStream, depth: int) -> bool:
        """Would a directed test of ``depth`` probe executions catch this?

        Models one in-field test of the defective unit: ``depth`` probe
        values run through the signature's operation against a known-good
        reference, so any firing is caught. Permanent signatures fire on a
        deterministic fraction of probe values; intermittent ones fire per
        execution with ``fire_rate``. Both use ``rng`` draws only, so a
        test schedule replays bit-identically.
        """
        if self.mode == "permanent":
            for _ in range(depth):
                if self.fires_on(rng.randint(0, _M64)):
                    return True
            return False
        for _ in range(depth):
            if rng.random() < self.fire_rate:
                return True
        return False


class BoundHostFault:
    """A :class:`HostFaultModel` resolved against one program.

    Precomputes the matching iid set, each iid's flip ``(kind, width,
    effective bit)``, and the protected subset (iids under SID
    duplication). The binding is immutable and reusable; per-run mutable
    state lives in the :class:`StickyRun` that :meth:`start_run` creates.
    """

    __slots__ = ("model", "program", "iids", "protected", "info")

    def __init__(self, model: HostFaultModel, program, protected=()) -> None:
        self.model = model
        self.program = program
        info: dict[int, tuple[int, int, int]] = {}
        for instr in program.module.instructions():
            if instr.opcode != model.opcode:
                continue
            fk = program.flip_info.get(instr.iid)
            if fk is None:
                continue
            kind, width = fk
            info[instr.iid] = (kind, width, model.bit % width)
        self.info = info
        self.iids = frozenset(info)
        self.protected = frozenset(protected) & self.iids

    def start_run(self, salt: int = 0) -> "StickyRun":
        """Fresh per-run visitor (safe to reuse the binding across runs).

        ``salt`` decorrelates the intermittent draw stream between runs
        (the fleet passes a per-job seed so the same host corrupts
        different jobs differently); equal salts replay bit-identically.
        Permanent signatures ignore it — they are data-dependent, not
        stochastic.
        """
        return StickyRun(self, salt)


class StickyRun:
    """Per-run sticky-fault state: the interpreter's ``sticky`` hook.

    The interpreter calls :meth:`visit` for every value produced by a
    matching instruction (``iids`` gates the hot-loop membership test).
    Protected iids model SID duplication *on the defective host*: the
    primary and duplicate execution each pass through the signature, and a
    mismatch raises :class:`~repro.errors.DetectedError` exactly as a real
    duplication check would. After the run, ``corrupted``/``detected``/
    ``visits`` report the ground truth the fleet simulator scores against.
    """

    __slots__ = (
        "iids", "_info", "_protected", "_permanent", "_model",
        "_lcg", "_threshold", "visits", "corrupted", "detected",
    )

    def __init__(self, bound: BoundHostFault, salt: int = 0) -> None:
        m = bound.model
        self.iids = bound.iids
        self._info = bound.info
        self._protected = bound.protected
        self._permanent = m.mode == "permanent"
        self._model = m
        self._lcg = derive_seed(m.seed, "draws", salt) | 1
        self._threshold = int(m.fire_rate * (1 << 24))
        self.visits = 0
        self.corrupted = 0
        self.detected = 0

    def _draw(self) -> bool:
        s = (self._lcg * _LCG_A + _LCG_C) & _M64
        self._lcg = s
        return (s >> 40) < self._threshold

    def visit(self, iid: int, val):
        """One matching execution; returns the (possibly corrupted) value.

        Raises :class:`DetectedError` when duplication catches an
        intermittent defect mid-run (the interpreter's normal DETECTED
        path). A permanent defect on a protected iid corrupts both copies
        identically, so the comparison passes and the corruption stays
        silent — the Meta paper's escape mode, reproduced faithfully.
        """
        self.visits += 1
        kind, width, bit = self._info[iid]
        if self._permanent:
            if self._model.fires_on(_value_bits(val, kind)):
                self.corrupted += 1
                return flip_value(val, bit, kind, width)
            return val
        fire = self._draw()
        if iid in self._protected:
            dup_fire = self._draw()
            if fire != dup_fire:
                self.detected += 1
                raise DetectedError(
                    f"hostfault@iid{iid}",
                    val,
                    flip_value(val, bit, kind, width),
                )
        if fire:
            self.corrupted += 1
            return flip_value(val, bit, kind, width)
        return val


def sample_host_fault(
    rng: RngStream,
    opcodes,
    intermittent_share: float = 0.5,
) -> HostFaultModel:
    """Draw one random-but-deterministic host signature.

    ``opcodes`` is the candidate defective-operation pool (the fleet
    seeder passes the opcode mix its job programs actually execute, so
    every seeded defect is reachable by at least one app).
    """
    opcode = rng.choice(sorted(opcodes))
    mode = "intermittent" if rng.random() < intermittent_share else "permanent"
    return HostFaultModel(
        opcode=opcode,
        bit=rng.randint(0, 63),
        mode=mode,
        seed=rng.randint(0, (1 << 62)),
        fire_rate=rng.uniform(0.05, 0.3),
        pattern_bits=rng.randint(3, 6),
    )
