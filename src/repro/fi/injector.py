"""Single-fault execution: run a program once with one bit flip and classify.

This is the inner loop of every campaign; it deliberately stays tiny.
"""

from __future__ import annotations

from repro.errors import Trap
from repro.fi.faultmodel import FaultSite
from repro.fi.outcome import Outcome, classify_run
from repro.vm.interpreter import Program, RunResult

__all__ = ["golden_run", "inject_one"]


def golden_run(
    program: Program,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    step_limit: int | None = None,
) -> RunResult:
    """Fault-free execution (raises on traps — a golden run must succeed)."""
    return program.run(args=args, bindings=bindings, step_limit=step_limit)


def inject_one(
    program: Program,
    site: FaultSite,
    golden_output: list,
    golden_steps: int,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    hang_factor: int = 8,
) -> Outcome:
    """Execute once with ``site``'s bit flip and classify the outcome.

    The hang budget is ``hang_factor``× the golden dynamic instruction count
    (plus slack for short programs), the usual FI-practice heuristic.
    """
    limit = golden_steps * hang_factor + 10_000
    trap: Trap | None = None
    output: list | None = None
    try:
        result = program.run(
            args=args, bindings=bindings, fault=site.to_spec(), step_limit=limit
        )
        output = result.output
    except Trap as t:
        trap = t
    return classify_run(golden_output, output, trap, rel_tol, abs_tol)
