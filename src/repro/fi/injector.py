"""Single-fault execution: run a program once with one bit flip and classify.

This is the inner loop of every campaign; it deliberately stays tiny.
"""

from __future__ import annotations

from repro.errors import Trap
from repro.fi.faultmodel import FaultSite
from repro.fi.outcome import Outcome, classify_run
from repro.obs.spans import span as _span
from repro.vm.checkpoint import CheckpointStore
from repro.vm.interpreter import Program, RunResult

__all__ = ["golden_run", "inject_one", "inject_one_resumed"]


def golden_run(
    program: Program,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    step_limit: int | None = None,
) -> RunResult:
    """Fault-free execution (raises on traps — a golden run must succeed)."""
    return program.run(args=args, bindings=bindings, step_limit=step_limit)


def inject_one(
    program: Program,
    site: FaultSite,
    golden_output: list,
    golden_steps: int,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    hang_factor: int = 8,
) -> Outcome:
    """Execute once with ``site``'s bit flip and classify the outcome.

    The hang budget is ``hang_factor``× the golden dynamic instruction count
    (plus slack for short programs), the usual FI-practice heuristic.
    """
    limit = golden_steps * hang_factor + 10_000
    trap: Trap | None = None
    output: list | None = None
    with _span("trial", {"iid": site.iid}, infra=True):
        with _span("vm.run", infra=True):
            try:
                result = program.run(
                    args=args, bindings=bindings, fault=site.to_spec(),
                    step_limit=limit,
                )
                output = result.output
            except Trap as t:
                trap = t
    return classify_run(golden_output, output, trap, rel_tol, abs_tol)


def inject_one_resumed(
    program: Program,
    site: FaultSite,
    store: CheckpointStore,
    golden_output: list,
    golden_steps: int,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    hang_factor: int = 8,
    snapshot_index: int | None = None,
) -> Outcome:
    """Like :func:`inject_one`, resuming from the nearest golden checkpoint.

    The trial restores the latest snapshot taken before the fault's dynamic
    instance (cold start when none precedes it) and runs with the later
    snapshots as convergence oracles: a faulty state that re-joins the
    golden trajectory bit-for-bit stops early and splices the golden output
    tail. Both paths are bit-identical to :func:`inject_one` by
    construction — the classified outcome never differs.

    ``snapshot_index`` (as from :meth:`CheckpointStore.snapshot_index_for`)
    skips the lookup when the scheduler already sorted sites by it.
    """
    if snapshot_index is None:
        snapshot_index = store.snapshot_index_for(site.iid, site.instance)
    convergence = store.convergence_from(snapshot_index)
    limit = golden_steps * hang_factor + 10_000
    trap: Trap | None = None
    output: list | None = None
    with _span("trial", {"iid": site.iid}, infra=True):
        try:
            if snapshot_index < 0:
                with _span("vm.run", infra=True):
                    result = program.run(
                        args=args,
                        bindings=bindings,
                        fault=site.to_spec(),
                        step_limit=limit,
                        convergence=convergence,
                    )
            else:
                with _span(
                    "checkpoint.restore",
                    {"snapshot": snapshot_index},
                    infra=True,
                ):
                    result = program.resume(
                        store.snapshots[snapshot_index],
                        fault=site.to_spec(),
                        step_limit=limit,
                        convergence=convergence,
                    )
            output = result.output
            if result.converged:
                output = output + golden_output[result.converged_output_len :]
        except Trap as t:
            trap = t
    return classify_run(golden_output, output, trap, rel_tol, abs_tol)
