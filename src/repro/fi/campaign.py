"""FI campaigns: whole-program and per-instruction Monte-Carlo estimation.

Both campaign styles are deterministic in (program, input, seed) and can fan
out across processes. For parallel runs, workers receive the module as text
(cheap to pickle) and rebuild/cache the decoded :class:`Program` per process,
mirroring how the paper farms LLFI runs across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fi.faultmodel import (
    FaultSite,
    injectable_iids,
    sample_fault_sites,
    sample_per_instruction_sites,
)
from repro.fi.injector import inject_one, inject_one_resumed
from repro.fi.outcome import Outcome, OutcomeCounts
from repro.fi.stats import wilson_interval
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.util.parallel import parallel_map, resolve_workers
from repro.util.rng import RngStream
from repro.vm.checkpoint import CheckpointStore, record_checkpoints
from repro.vm.interpreter import Program
from repro.vm.profiler import DynamicProfile, profile_run

__all__ = [
    "CampaignResult",
    "PerInstructionResult",
    "run_campaign",
    "run_per_instruction_campaign",
]


@dataclass
class CampaignResult:
    """Whole-program campaign outcome (the paper's 1000-fault campaigns)."""

    counts: OutcomeCounts
    #: (iid, outcome) per injected fault — feeds §IV's which-instruction-
    #: caused-this-SDC root-cause analysis.
    per_fault: list[tuple[int, Outcome]] = field(default_factory=list)
    trials: int = 0

    @property
    def sdc_probability(self) -> float:
        return self.counts.sdc_probability

    def sdc_confidence(self, confidence: float = 0.95) -> tuple[float, float]:
        return wilson_interval(
            self.counts.counts[Outcome.SDC], self.trials, confidence
        )

    def sdc_iids(self) -> set[int]:
        """Static instructions that produced at least one SDC."""
        return {iid for iid, o in self.per_fault if o is Outcome.SDC}


@dataclass
class PerInstructionResult:
    """Per-instruction campaign outcome (100 faults/instruction style)."""

    per_iid: dict[int, OutcomeCounts]
    profile: DynamicProfile
    trials_per_instruction: int

    def sdc_probability(self, iid: int) -> float:
        """SDC probability of one static instruction under this input.

        Instructions that never executed have probability 0 (no dynamic
        instance to corrupt) — the same convention the paper applies.
        """
        counts = self.per_iid.get(iid)
        return counts.sdc_probability if counts else 0.0

    def sdc_probabilities(self) -> dict[int, float]:
        return {iid: c.sdc_probability for iid, c in self.per_iid.items()}


# ---------------------------------------------------------------------------
# Parallel worker machinery. Workers rebuild the Program from module text and
# cache it per process keyed by identity of the text object's hash. Checkpoint
# campaigns additionally seed each worker with the golden CheckpointStore and
# trial context once, via the pool initializer, so per-batch payloads stay
# small (just the fault tuples).
# ---------------------------------------------------------------------------

_worker_cache: dict[int, Program] = {}
_ckpt_worker_ctx: dict = {}


def _get_program(module_text: str) -> Program:
    key = hash(module_text)
    prog = _worker_cache.get(key)
    if prog is None:
        prog = Program(parse_module(module_text))
        _worker_cache.clear()  # one campaign at a time; avoid unbounded growth
        _worker_cache[key] = prog
    return prog


def _init_ckpt_worker(
    module_text: str,
    store: CheckpointStore,
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
) -> None:
    """Per-process initializer: decode the program and pin the trial context."""
    _ckpt_worker_ctx.clear()
    _ckpt_worker_ctx.update(
        program=_get_program(module_text),
        store=store,
        golden_output=golden_output,
        golden_steps=golden_steps,
        args=args,
        bindings=bindings,
        rel_tol=rel_tol,
        abs_tol=abs_tol,
    )


def _inject_batch_resumed(batch) -> list[tuple[int, int, str]]:
    """Worker entry: run checkpoint-resumed trials, return (pos, iid, outcome)."""
    ctx = _ckpt_worker_ctx
    prog = ctx["program"]
    store = ctx["store"]
    out: list[tuple[int, int, str]] = []
    for pos, iid, instance, bit, snap_index in batch:
        o = inject_one_resumed(
            prog,
            FaultSite(iid, instance, bit),
            store,
            ctx["golden_output"],
            ctx["golden_steps"],
            args=ctx["args"],
            bindings=ctx["bindings"],
            rel_tol=ctx["rel_tol"],
            abs_tol=ctx["abs_tol"],
            snapshot_index=snap_index,
        )
        out.append((pos, iid, o.value))
    return out


def _inject_batch(payload) -> list[tuple[int, str]]:
    """Worker entry: run a batch of fault sites, return (iid, outcome) pairs."""
    (
        module_text,
        args,
        bindings,
        sites,
        golden_output,
        golden_steps,
        rel_tol,
        abs_tol,
    ) = payload
    prog = _get_program(module_text)
    out: list[tuple[int, str]] = []
    for iid, instance, bit in sites:
        o = inject_one(
            prog,
            FaultSite(iid, instance, bit),
            golden_output,
            golden_steps,
            args=args,
            bindings=bindings,
            rel_tol=rel_tol,
            abs_tol=abs_tol,
        )
        out.append((iid, o.value))
    return out


def _run_sites(
    program: Program,
    sites: list[FaultSite],
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    workers: int,
) -> list[tuple[int, Outcome]]:
    """Execute a list of fault sites serially or across processes."""
    if workers <= 1 or len(sites) < 32:
        return [
            (
                s.iid,
                inject_one(
                    program,
                    s,
                    golden_output,
                    golden_steps,
                    args=args,
                    bindings=bindings,
                    rel_tol=rel_tol,
                    abs_tol=abs_tol,
                ),
            )
            for s in sites
        ]
    module_text = print_module(program.module)
    raw_sites = [(s.iid, s.instance, s.bit) for s in sites]
    chunk = max(8, len(raw_sites) // (workers * 4))
    batches = [
        (
            module_text,
            args,
            bindings,
            raw_sites[i : i + chunk],
            golden_output,
            golden_steps,
            rel_tol,
            abs_tol,
        )
        for i in range(0, len(raw_sites), chunk)
    ]
    results = parallel_map(_inject_batch, batches, workers=workers)
    return [(iid, Outcome(o)) for batch in results for iid, o in batch]


def _run_sites_checkpointed(
    program: Program,
    sites: list[FaultSite],
    store: CheckpointStore,
    golden_output: list,
    golden_steps: int,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    workers: int,
) -> list[tuple[int, Outcome]]:
    """Checkpoint-resume scheduler: sort trials by injection point, resume
    each from the nearest preceding golden snapshot, batch across workers.

    Results are reassembled in the original sampling order, so ``per_fault``
    (and therefore every downstream number) is independent of the schedule —
    identical to the cold serial path for the same seed.
    """
    snap_index = [store.snapshot_index_for(s.iid, s.instance) for s in sites]
    # Trials sharing a snapshot run back-to-back (restore locality), ordered
    # by instance within it so execution sweeps the golden timeline once.
    order = sorted(
        range(len(sites)), key=lambda k: (snap_index[k], sites[k].instance)
    )
    results: list = [None] * len(sites)
    if workers <= 1 or len(sites) < 32:
        for k in order:
            s = sites[k]
            results[k] = (
                s.iid,
                inject_one_resumed(
                    program,
                    s,
                    store,
                    golden_output,
                    golden_steps,
                    args=args,
                    bindings=bindings,
                    rel_tol=rel_tol,
                    abs_tol=abs_tol,
                    snapshot_index=snap_index[k],
                ),
            )
        return results
    module_text = print_module(program.module)
    raw = [
        (k, sites[k].iid, sites[k].instance, sites[k].bit, snap_index[k])
        for k in order
    ]
    chunk = max(8, len(raw) // (workers * 4))
    batches = [raw[i : i + chunk] for i in range(0, len(raw), chunk)]
    init_args = (
        module_text, store, golden_output, golden_steps, args, bindings,
        rel_tol, abs_tol,
    )
    out = parallel_map(
        _inject_batch_resumed,
        batches,
        workers=workers,
        initializer=_init_ckpt_worker,
        initargs=init_args,
    )
    for batch in out:
        for pos, iid, o in batch:
            results[pos] = (iid, Outcome(o))
    return results


def _resolve_store(
    program: Program,
    args,
    bindings,
    profile: DynamicProfile,
    checkpoint_interval,
    checkpoints: CheckpointStore | None,
) -> CheckpointStore | None:
    """Normalize the checkpointing request of a campaign entry point.

    Precedence: an explicit pre-recorded ``checkpoints`` store wins;
    otherwise ``checkpoint_interval`` selects recording (``"auto"`` applies
    :func:`~repro.vm.checkpoint.auto_interval` to the golden step count, a
    positive int is taken literally, ``None``/``0`` keeps the cold path).
    """
    if checkpoints is not None:
        return checkpoints
    if checkpoint_interval in (None, 0):
        return None
    if checkpoint_interval == "auto":
        interval = None
    else:
        interval = int(checkpoint_interval)
    return record_checkpoints(
        program,
        args=args,
        bindings=bindings,
        interval=interval,
        steps_hint=profile.steps,
    )


def _dispatch_sites(
    program: Program,
    sites: list[FaultSite],
    store: CheckpointStore | None,
    profile: DynamicProfile,
    args,
    bindings,
    rel_tol: float,
    abs_tol: float,
    workers: int | None,
) -> list[tuple[int, Outcome]]:
    """Route a site list to the cold or checkpoint-resumed executor."""
    workers = resolve_workers(workers)
    if store is None:
        return _run_sites(
            program, sites, profile.output, profile.steps, args, bindings,
            rel_tol, abs_tol, workers,
        )
    return _run_sites_checkpointed(
        program, sites, store, profile.output, profile.steps, args, bindings,
        rel_tol, abs_tol, workers,
    )


# ---------------------------------------------------------------------------
# Public campaign entry points
# ---------------------------------------------------------------------------


def run_campaign(
    program: Program,
    n_faults: int,
    seed: int,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    workers: int | None = 0,
    profile: DynamicProfile | None = None,
    checkpoint_interval: int | str | None = None,
    checkpoints: CheckpointStore | None = None,
) -> CampaignResult:
    """Whole-program campaign: ``n_faults`` uniform dynamic-instance flips.

    Pass a pre-computed golden ``profile`` to skip the profiling run (the
    pipelines reuse one profile across many campaigns on the same input).
    ``checkpoint_interval`` (``"auto"`` or a step count) turns on
    checkpoint-resumed trials — bit-identical outcomes, a fraction of the
    replay; a pre-recorded ``checkpoints`` store skips even the recording
    run. ``workers=None`` defers to the ``REPRO_WORKERS`` environment.
    """
    if profile is None:
        profile = profile_run(program, args=args, bindings=bindings)
    store = _resolve_store(
        program, args, bindings, profile, checkpoint_interval, checkpoints
    )
    rng = RngStream(seed, "campaign")
    sites = sample_fault_sites(program.module, profile, n_faults, rng)
    per_fault = _dispatch_sites(
        program, sites, store, profile, args, bindings, rel_tol, abs_tol,
        workers,
    )
    counts = OutcomeCounts()
    for _, o in per_fault:
        counts.record(o)
    return CampaignResult(counts=counts, per_fault=per_fault, trials=len(sites))


def run_per_instruction_campaign(
    program: Program,
    trials_per_instruction: int,
    seed: int,
    args: list | None = None,
    bindings: dict[str, list] | None = None,
    rel_tol: float = 0.0,
    abs_tol: float = 0.0,
    workers: int | None = 0,
    profile: DynamicProfile | None = None,
    only_iids: list[int] | None = None,
    checkpoint_interval: int | str | None = None,
    checkpoints: CheckpointStore | None = None,
) -> PerInstructionResult:
    """Per-instruction campaign over every executed injectable instruction.

    ``only_iids`` restricts the sweep (used by incremental passes that only
    need a subset re-measured). ``checkpoint_interval``/``checkpoints`` and
    ``workers`` behave as in :func:`run_campaign` — per-instruction sweeps
    replay the golden prefix hardest (trials × instructions), so they gain
    the most from checkpoint resume.
    """
    if profile is None:
        profile = profile_run(program, args=args, bindings=bindings)
    store = _resolve_store(
        program, args, bindings, profile, checkpoint_interval, checkpoints
    )
    module = program.module
    targets = only_iids if only_iids is not None else injectable_iids(module)
    rng = RngStream(seed, "per-instr")
    all_sites: list[FaultSite] = []
    for iid in targets:
        all_sites.extend(
            sample_per_instruction_sites(
                module, profile, iid, trials_per_instruction, rng.child(iid)
            )
        )
    per_fault = _dispatch_sites(
        program, all_sites, store, profile, args, bindings, rel_tol, abs_tol,
        workers,
    )
    per_iid: dict[int, OutcomeCounts] = {}
    for iid, o in per_fault:
        per_iid.setdefault(iid, OutcomeCounts()).record(o)
    return PerInstructionResult(
        per_iid=per_iid,
        profile=profile,
        trials_per_instruction=trials_per_instruction,
    )
